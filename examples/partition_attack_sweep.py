#!/usr/bin/env python3
"""Walk the network-dynamics subsystem: partitions, eclipses, churn, placement.

Run with::

    python examples/partition_attack_sweep.py [--trials T] [--rounds R]
                                              [--seed S]

The paper's consistency bounds assume a static Δ-bounded network.  This
script stresses exactly that assumption:

1. sweep the partition duration with
   :func:`repro.analysis.partition_depth_sweep` and print the
   violation-depth table — the worst windowed
   ``adversarial blocks - convergence opportunities`` deficit (the depth of
   the Lemma 1 threat), deterministically non-decreasing in the duration
   under the shared-trace design;
2. run the registered ``partition_attack`` scenario — the adversary
   schedules the cut itself and mines privately inside it — and compare
   its attack-success probability against plain ``private_chain``
   withholding at the same parameter point;
3. position the adversary on a gossip graph with
   :class:`repro.simulation.AdversaryPlacement` (hub versus leaf) and show
   how a release that must itself gossip fares against the honest chain;
4. price a *partial* cut with the two-component scan
   (:func:`repro.analysis.equivocation_comparison_sweep`): equivocation —
   one conflicting private chain per partition component — versus
   single-chain withholding on the same shared traces, per cut duration;
5. print a churn-rate tightness table
   (:func:`repro.analysis.churn_tightness_table`): how much of the static
   Eq. 44 prediction survives periodic peer churn.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import (
    churn_tightness_table,
    equivocation_comparison_sweep,
    partition_depth_sweep,
    render_table,
)
from repro.params import parameters_from_c
from repro.simulation import (
    AdversaryPlacement,
    PartitionScenario,
    PeerGraphDelayModel,
    PeerGraphTopology,
    ScenarioSimulation,
    get_scenario,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=16, help="trials per point")
    parser.add_argument("--rounds", type=int, default=4_000, help="rounds per trial")
    parser.add_argument("--seed", type=int, default=2026, help="base seed")
    args = parser.parse_args(argv)

    # 1. Violation depth versus partition duration (full eclipse, no graph).
    durations = (0, args.rounds // 16, args.rounds // 8, args.rounds // 4)
    rows = partition_depth_sweep(
        durations,
        c=2.0,
        n=500,
        delta=3,
        nu=0.25,
        trials=args.trials,
        rounds=args.rounds,
        seed=args.seed,
    )
    print("Violation depth versus partition duration (c = 2, nu = 0.25)")
    print(
        render_table(
            [
                {
                    "duration": row["partition_duration"],
                    "mean depth": row["mean_violation_depth"],
                    "max depth": row["max_violation_depth"],
                    "co rate": row["mean_convergence_rate"],
                    "predicted (static)": row["predicted_rate_unpartitioned"],
                    "lemma1 fraction": row["lemma1_fraction"],
                }
                for row in rows
            ]
        )
    )
    print()

    # 2. The scheduled cut as an attack: the same withholding adversary,
    #    with longer and longer eclipse windows (duration 0 = no cut).
    params = parameters_from_c(c=2.0, n=500, delta=3, nu=0.3)
    registered = get_scenario("partition_attack")
    attack_rows = []
    for duration in (0, args.rounds // 8, args.rounds // 4):
        scenario = PartitionScenario(
            name=f"cut-{duration}",
            kind=registered.kind,
            target_depth=registered.target_depth,
            give_up_deficit=registered.give_up_deficit,
            partition_start=args.rounds // 4,
            partition_duration=duration,
        )
        result = ScenarioSimulation(params, scenario, rng=args.seed).run(
            args.trials, args.rounds
        )
        attack_rows.append(
            {
                "cut duration": duration,
                "success": result.attack_success_probability,
                "mean deepest fork": result.mean_deepest_fork,
                "max deepest fork": result.max_deepest_fork,
                "mean releases": float(result.releases.mean()),
            }
        )
    print(
        "partition_attack: the adversary cuts the network and mines "
        "privately inside the window (c = 2, nu = 0.3):"
    )
    print(render_table(attack_rows))
    print()

    # 3. Adversary placement: a release that must gossip from a leaf.  The
    #    latency spread makes peer positions genuinely unequal, so hub and
    #    leaf placements see different release delays.
    topology = PeerGraphTopology.random_regular(
        32, 4, latency_spread=3, rng=args.seed
    )
    graph_params = parameters_from_c(
        c=1.0, n=400, delta=max(topology.diameter, 3), nu=0.4
    )
    placements = [
        AdversaryPlacement("instant"),
        AdversaryPlacement("hub"),
        AdversaryPlacement("leaf"),
    ]
    placement_rows = []
    for placement in placements:
        result = ScenarioSimulation(
            graph_params,
            "private_chain",
            rng=args.seed,
            delay_model=PeerGraphDelayModel(topology),
            placement=placement,
        ).run(args.trials, args.rounds)
        placement_rows.append(
            {
                "placement": placement.kind,
                "release delay": result.release_delay,
                "success": result.attack_success_probability,
                "mean deepest fork": result.mean_deepest_fork,
            }
        )
    print("Adversary placement (releases propagate through gossip):")
    print(render_table(placement_rows))
    print()

    # 4. Partial cuts: the two-component scan prices the majority/minority
    #    race exactly, and equivocation (one private chain per component)
    #    is compared against single-chain withholding on shared traces.
    equivocation_rows = equivocation_comparison_sweep(
        durations=(0, args.rounds // 8, args.rounds // 4),
        partition_start=args.rounds // 4,
        trials=args.trials,
        rounds=args.rounds,
        seed=args.seed,
    )
    print(
        "Partial cut (half the honest power isolated): equivocation vs "
        "single-chain withholding on shared traces:"
    )
    print(
        render_table(
            [
                {
                    "cut duration": row["partition_duration"],
                    "single fork": row["single_mean_deepest_fork"],
                    "single success": row["single_success_probability"],
                    "equiv fork": row["equivocation_mean_deepest_fork"],
                    "equiv success": row["equivocation_success_probability"],
                    "merge depth": row["equivocation_mean_merge_depth"],
                    "equiv advantage": row["equivocation_advantage"],
                }
                for row in equivocation_rows
            ]
        )
    )
    print()

    # 5. Churn tightness: the static prediction under periodic peer churn.
    churn_rows = churn_tightness_table(
        leave_counts=(0, 2, 4),
        period=max(args.rounds // 8, 1),
        off_duration=max(args.rounds // 16, 1),
        graph_nodes=32,
        degree=4,
        trials=max(args.trials // 2, 2),
        rounds=args.rounds,
        seed=args.seed,
    )
    print("Churn-rate tightness (empirical / fixed-Delta prediction):")
    print(
        render_table(
            [
                {
                    "peers leaving": row["leave_count"],
                    "churn events": row["churn_events"],
                    "empirical rate": row["empirical_rate"],
                    "predicted": row["predicted_rate_nominal"],
                    "tightness": row["tightness_vs_nominal"],
                    "mean depth": row["mean_violation_depth"],
                }
                for row in churn_rows
            ]
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
