#!/usr/bin/env python3
"""Security-margin sweep: how much hardware headroom does each analysis require?

Run with::

    python examples/security_margin_sweep.py [--delta D]

For adversarial fractions nu from 5% to 45%, the script prints the minimal
``c = 1/(p n Delta)`` required by

* the paper's neat bound ``2 mu / ln(mu/nu)``,
* the PSS (Eurocrypt 2017) consistency analysis, and
* the largest ``c`` at which the PSS Remark 8.5 attack still succeeds,

together with the improvement factor of the paper over PSS and the per-step
thresholds of the proof's implication chain (the ablation of Lemmas 4-8).
A protocol designer reads this as: "given an expected adversary of nu, how
conservatively must I set the block rate relative to the network delay?"
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import implication_chain_ablation, render_table, security_margin_sweep

NU_GRID = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--delta", type=int, default=10)
    args = parser.parse_args(argv)

    print("Required c per analysis (smaller is better for throughput)")
    print(render_table(security_margin_sweep(NU_GRID)))
    print()

    print(
        "Ablation: minimal c required after each sufficiency step of the proof\n"
        f"(Delta = {args.delta}, n = 1e5, eps1 = 0.1, eps2 = 0.01)"
    )
    print(render_table(implication_chain_ablation(NU_GRID, delta=args.delta, n=100_000)))
    print()
    print(
        "step_55 is the exact inversion of Theorem 1's condition; step_59 is the\n"
        "Theorem 3 threshold.  The gap between them is the price of the neat\n"
        "closed form; the gap between the neat bound and step_59 is the eps slack."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
