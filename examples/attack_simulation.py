#!/usr/bin/env python3
"""Simulate the private-chain withholding attack across the (c, nu) plane.

Run with::

    python examples/attack_simulation.py [--rounds N] [--delta D] [--miners M]

For a handful of (c, nu) scenarios straddling the paper's bound and the PSS
attack curve, the script runs the round-based Nakamoto simulator against the
withholding attacker and reports, per scenario:

* whether the paper's neat bound and the PSS attack condition predict
  consistency or a successful attack,
* the Lemma 1 counters (convergence opportunities vs adversarial blocks), and
* the deepest consistency violation the attack achieved.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis import render_table
from repro.core.bounds import neat_bound
from repro.core.pss import pss_attack_succeeds
from repro.params import parameters_from_c
from repro.simulation import NakamotoSimulation, PrivateChainAdversary

SCENARIOS = [
    {"c": 8.0, "nu": 0.15},
    {"c": 6.0, "nu": 0.30},
    {"c": 2.0, "nu": 0.35},
    {"c": 1.0, "nu": 0.40},
    {"c": 0.5, "nu": 0.45},
]


def run_scenario(c, nu, rounds, delta, miners, seed):
    params = parameters_from_c(c=c, n=miners, delta=delta, nu=nu)
    adversary = PrivateChainAdversary(delta, target_depth=6)
    result = NakamotoSimulation(
        params, adversary=adversary, rng=np.random.default_rng(seed), snapshot_interval=200
    ).run(rounds)
    return {
        "c": c,
        "nu": nu,
        "consistent (ours)": c > neat_bound(nu),
        "attack predicted (PSS)": pss_attack_succeeds(c, nu),
        "convergence opps": result.convergence_opportunities,
        "adversary blocks": result.total_adversary_blocks,
        "releases": result.adversary_releases,
        "max violation depth": result.consistency.max_violation_depth,
        "chain quality": result.quality,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=20_000)
    parser.add_argument("--delta", type=int, default=3)
    parser.add_argument("--miners", type=int, default=1_000)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    rows = [
        run_scenario(
            scenario["c"], scenario["nu"], args.rounds, args.delta, args.miners,
            args.seed + index,
        )
        for index, scenario in enumerate(SCENARIOS)
    ]
    print(
        f"Withholding attack over {args.rounds} rounds "
        f"(Delta = {args.delta}, n = {args.miners})"
    )
    print(render_table(rows))
    print()
    print(
        "Reading the table: scenarios whose c exceeds the neat bound keep a\n"
        "positive C - A margin and show no deep reorganisations; scenarios in\n"
        "the attack region show violation depths well beyond the 6-block target."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
