#!/usr/bin/env python3
"""Map the attack-success surface over (scenario, nu, Delta) with the
vectorized scenario engine.

Run with::

    python examples/attack_surface_sweep.py [--trials T] [--rounds N]
                                            [--miners M] [--c C] [--seed S]

The paper's consistency guarantee is adversarial — it must hold against any
delay schedule and any withholding strategy — so the empirical picture is a
*surface*: for each registered attack scenario and each (nu, Delta) cell,
the probability that the attack displaces a public suffix at least
``target_depth`` blocks deep.  The legacy object-based simulator can only
afford a handful of such cells; :class:`repro.simulation.ScenarioSimulation`
runs every cell as one vectorized batch (all trials at once), and
:class:`repro.simulation.ExperimentRunner` adds per-cell deterministic
seeding, so the whole surface is reproducible from one seed.

The script prints, per cell:

* the attack-success probability with a 95% confidence interval,
* the mean and maximum depth of the displaced suffix, and
* the closed-form verdicts (the paper's neat bound, the PSS attack
  condition) for cross-reading against Figure 1.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import attack_success_grid, attack_surface_sweep, render_table

NU_VALUES = (0.15, 0.3, 0.4, 0.45)
DELTA_VALUES = (1, 3, 10)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=16)
    parser.add_argument("--rounds", type=int, default=6_000)
    parser.add_argument("--miners", type=int, default=500)
    parser.add_argument("--c", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    rows = attack_surface_sweep(
        ("private_chain", "selfish_mining"),
        NU_VALUES,
        DELTA_VALUES,
        c=args.c,
        n=args.miners,
        trials=args.trials,
        rounds=args.rounds,
        seed=args.seed,
    )
    print(
        f"Attack surface at c = {args.c} over {args.trials} trials x "
        f"{args.rounds} rounds per cell (n = {args.miners})"
    )
    print(
        render_table(
            [
                {
                    "scenario": row["scenario"],
                    "nu": row["nu"],
                    "delta": row["delta"],
                    "neat bound ok": row["neat_bound_satisfied"],
                    "attack predicted": row["attack_predicted"],
                    "success prob": row["attack_success_probability"],
                    "ci95": (
                        f"[{row['attack_success_ci95_low']:.2f}, "
                        f"{row['attack_success_ci95_high']:.2f}]"
                    ),
                    "mean fork depth": row["mean_deepest_fork"],
                    "max fork depth": row["max_deepest_fork"],
                }
                for row in rows
            ]
        )
    )

    grids = attack_success_grid(
        "private_chain",
        NU_VALUES,
        DELTA_VALUES,
        c=args.c,
        n=args.miners,
        trials=args.trials,
        rounds=args.rounds,
        seed=args.seed,
    )
    print()
    print("private_chain success probability, nu (rows) x Delta (columns):")
    header = "  nu \\ Delta " + "".join(f"{delta:>8d}" for delta in DELTA_VALUES)
    print(header)
    for row, nu in enumerate(NU_VALUES):
        cells = "".join(
            f"{grids['success_probability'][row, column]:>8.2f}"
            for column in range(len(DELTA_VALUES))
        )
        print(f"  {nu:>9.2f} {cells}")

    print()
    print(
        "Reading the surface: cells where the PSS condition predicts a\n"
        "successful attack show success probabilities near 1 and fork depths\n"
        "far beyond the withholding target; cells satisfying the paper's\n"
        "neat bound stay near 0.  Larger Delta helps the attacker at fixed\n"
        "c = 1/(p n Delta) by slowing honest convergence opportunities."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
