#!/usr/bin/env python3
"""Validate the paper's Markov-chain analysis empirically at small Delta.

Run with::

    python examples/markov_validation.py [--delta D] [--rounds N]

The script

1. builds the suffix chain C_F, prints its closed-form stationary distribution
   (Eqs. 37a-37d) next to the numerically solved and empirically sampled ones;
2. checks the convergence-opportunity probability of Eq. (44) against both an
   i.i.d. sampled trace and the full protocol simulator (Eqs. 26-27); and
3. reports the chain's mixing time, the input to the Chernoff-Hoeffding bound
   of Inequality (47).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis import render_table, validate_expectations, validate_suffix_stationary
from repro.core.suffix_chain import SuffixChain
from repro.markov import mixing_time, spectral_gap
from repro.params import parameters_from_c


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--delta", type=int, default=3)
    parser.add_argument("--rounds", type=int, default=100_000)
    parser.add_argument("--c", type=float, default=4.0)
    parser.add_argument("--nu", type=float, default=0.2)
    args = parser.parse_args(argv)

    params = parameters_from_c(c=args.c, n=1_000, delta=args.delta, nu=args.nu)
    chain = SuffixChain(params)
    rng = np.random.default_rng(0)

    closed = chain.closed_form_stationary()
    numeric = chain.numerical_stationary()
    empirical = chain.empirical_stationary(args.rounds, rng)
    rows = [
        {
            "state": state.label(),
            "closed form (Eq. 37)": closed[state],
            "numerical": numeric[state],
            "empirical": empirical[state],
        }
        for state in chain.states
    ]
    print(f"Stationary distribution of C_F (Delta = {args.delta})")
    print(render_table(rows))
    print()

    validation = validate_suffix_stationary(params, rounds=args.rounds, rng=rng)
    print(
        f"max |closed - numerical| = {validation.max_closed_vs_numeric:.2e}, "
        f"TV(closed, empirical) = {validation.total_variation_empirical:.4f}"
    )
    print()

    iid = validate_expectations(params, rounds=args.rounds, rng=rng, use_full_simulation=False)
    sim = validate_expectations(params, rounds=args.rounds // 3, rng=rng, use_full_simulation=True)
    print("Convergence-opportunity and adversarial-block rates (per round)")
    print(
        render_table(
            [
                {
                    "source": "theory (Eqs. 44, 27)",
                    "convergence rate": iid.theoretical_convergence_rate,
                    "adversary rate": iid.theoretical_adversary_rate,
                },
                {
                    "source": "i.i.d. sampled trace",
                    "convergence rate": iid.empirical_convergence_rate,
                    "adversary rate": iid.empirical_adversary_rate,
                },
                {
                    "source": "full protocol simulation",
                    "convergence rate": sim.empirical_convergence_rate,
                    "adversary rate": sim.empirical_adversary_rate,
                },
            ]
        )
    )
    print()

    markov = chain.to_markov_chain()
    print(
        f"C_F diagnostics: {markov.n_states} states, "
        f"mixing time (eps = 1/8) = {mixing_time(markov, 0.125)}, "
        f"spectral gap = {spectral_gap(markov):.4f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
