#!/usr/bin/env python3
"""Batch Monte Carlo validation: many trials, confidence bands, cached sweeps.

Run with::

    PYTHONPATH=src python examples/batch_validation.py

The script demonstrates the vectorized batch engine and the experiment
runner:

1. run 64 independent protocol executions *simultaneously* with
   :class:`repro.simulation.BatchSimulation` and compare the batch-mean
   convergence-opportunity and adversarial-block rates (with 95% confidence
   intervals) against the paper's Eqs. (26)-(27)/(44);
2. sweep a (c, nu) grid through :class:`repro.simulation.ExperimentRunner`,
   which derives an independent seed per point, shards points across
   processes on request, and caches results on disk so the second run of
   the same sweep is instantaneous.
"""

from __future__ import annotations

import tempfile
import time

from repro import BatchSimulation, parameters_from_c
from repro.analysis import render_mapping, render_table, validate_expectations_batch
from repro.simulation import ExperimentRunner


def main() -> None:
    params = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)

    # ------------------------------------------------------------------
    # 1. One batch: 64 trials x 20_000 rounds, vectorized.
    # ------------------------------------------------------------------
    started = time.perf_counter()
    validation = validate_expectations_batch(params, trials=64, rounds=20_000, rng=0)
    elapsed = time.perf_counter() - started

    print(f"Batch validation (64 trials x 20_000 rounds in {elapsed:.2f}s)")
    print(
        render_table(
            [
                {
                    "quantity": "convergence opportunities / round",
                    "theory": validation.theoretical_convergence_rate,
                    "batch mean": validation.mean_convergence_rate,
                    "ci95 low": validation.convergence_rate_ci95[0],
                    "ci95 high": validation.convergence_rate_ci95[1],
                    "theory in CI": validation.convergence_theory_in_ci,
                },
                {
                    "quantity": "adversarial blocks / round",
                    "theory": validation.theoretical_adversary_rate,
                    "batch mean": validation.mean_adversary_rate,
                    "ci95 low": validation.adversary_rate_ci95[0],
                    "ci95 high": validation.adversary_rate_ci95[1],
                    "theory in CI": validation.adversary_theory_in_ci,
                },
            ]
        )
    )
    print()
    print(
        render_mapping(
            {
                "fraction of trials with C > A (Lemma 1 event)": validation.lemma1_fraction,
            }
        )
    )
    print()

    # ------------------------------------------------------------------
    # 2. A cached, seeded sweep across the (c, nu) plane.
    # ------------------------------------------------------------------
    points = [
        parameters_from_c(c=c, n=1_000, delta=3, nu=nu)
        for c, nu in [(6.0, 0.15), (6.0, 0.30), (1.0, 0.40), (0.5, 0.45)]
    ]
    with tempfile.TemporaryDirectory() as cache_dir:
        runner = ExperimentRunner(base_seed=7, cache_dir=cache_dir)

        started = time.perf_counter()
        results = runner.run_grid(points, trials=32, rounds=10_000)
        cold = time.perf_counter() - started

        started = time.perf_counter()
        runner.run_grid(points, trials=32, rounds=10_000)
        warm = time.perf_counter() - started

        print("Batch sweep across the (c, nu) plane (32 trials per point)")
        print(
            render_table(
                [
                    {
                        "c": result.params.c,
                        "nu": result.params.nu,
                        "mean conv rate": result.mean_convergence_rate,
                        "mean adv rate": result.mean_adversary_rate,
                        "lemma1 fraction": result.lemma1_fraction,
                        "max worst A-C deficit": int(result.worst_deficits.max()),
                    }
                    for result in results
                ]
            )
        )
        print()
        print(
            render_mapping(
                {
                    "cold sweep (computed)": f"{cold:.2f}s",
                    "warm sweep (cache hits)": f"{warm:.4f}s",
                    "cache hits / misses": f"{runner.cache_hits} / {runner.cache_misses}",
                }
            )
        )

    # A direct handle on the engine, for ad-hoc exploration.
    batch = BatchSimulation(params, rng=42).run(trials=8, rounds=5_000)
    print()
    print("Per-trial Lemma 1 margins (8 fresh trials):", batch.lemma1_margins.tolist())


if __name__ == "__main__":
    main()
