#!/usr/bin/env python3
"""Regenerate Figure 1: our bound versus PSS consistency versus the PSS attack.

Run with::

    python examples/figure1_comparison.py [--points N] [--csv PATH]

Prints the three curves (maximum tolerable adversarial fraction nu versus c)
as a table and an ASCII sketch, and optionally writes a CSV for external
plotting.  The parameters n = 1e5 and Delta = 1e13 follow the paper.
"""

from __future__ import annotations

import argparse
import csv
import sys

from repro.analysis import figure1_checks, figure1_series, render_table
from repro.analysis.figure1 import default_c_grid


def ascii_sketch(series, width: int = 64, height: int = 20) -> str:
    """A rough log-x ASCII rendering of the three curves."""
    import math

    grid = [[" "] * width for _ in range(height)]
    points = series.points
    log_min = math.log10(points[0].c)
    log_max = math.log10(points[-1].c)

    def place(c, nu, marker):
        column = int((math.log10(c) - log_min) / (log_max - log_min) * (width - 1))
        row = height - 1 - int(nu / 0.5 * (height - 1))
        row = min(max(row, 0), height - 1)
        if grid[row][column] == " ":
            grid[row][column] = marker

    for point in points:
        place(point.c, point.nu_min_attack, "r")   # red: attack
        place(point.c, point.nu_max_ours, "m")      # magenta: ours
        place(point.c, point.nu_max_pss, "b")       # blue: PSS
    lines = ["nu"] + ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(f"c = {points[0].c:g} ... {points[-1].c:g} (log scale)   "
                 "m = ours, b = PSS consistency, r = PSS attack")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=48, help="number of c grid points")
    parser.add_argument("--csv", type=str, default=None, help="optional CSV output path")
    args = parser.parse_args(argv)

    series = figure1_series(c_values=default_c_grid(points=args.points))
    rows = series.as_rows()

    print("Figure 1 — maximum tolerable adversarial fraction versus c")
    step = max(len(rows) // 16, 1)
    print(render_table(rows[::step]))
    print()
    print(ascii_sketch(series))
    print()
    print("Qualitative checks:", figure1_checks(series))

    if args.csv:
        with open(args.csv, "w", newline="") as handle:
            writer = csv.DictWriter(
                handle, fieldnames=["c", "nu_max_ours", "nu_max_pss", "nu_min_attack"]
            )
            writer.writeheader()
            writer.writerows(rows)
        print(f"\nWrote {len(rows)} rows to {args.csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
