#!/usr/bin/env python3
"""Quickstart: evaluate the paper's consistency bound at one parameter point.

Run with::

    python examples/quickstart.py

The script configures a protocol instance (Table I quantities), asks every
analysis implemented by the library for its verdict — the paper's neat bound,
Theorems 1 and 2, the PSS baseline and the PSS attack — and prints a summary.
"""

from __future__ import annotations

from repro import ConsistencyAnalyzer, neat_bound, parameters_from_c
from repro.analysis import render_mapping, render_table, table_i
from repro.core.pss import nu_max_pss_consistency, pss_attack_succeeds


def main() -> None:
    # A protocol where a block is expected to take c = 5 network delays to
    # appear, with 10^5 miners, a delay cap of 10 rounds and a 25% adversary.
    params = parameters_from_c(c=5.0, n=100_000, delta=10, nu=0.25)

    print("Protocol configuration (Table I)")
    print(render_table(table_i(params)))
    print()

    analyzer = ConsistencyAnalyzer(params)
    verdict = analyzer.verdict()

    print("Consistency verdicts")
    print(
        render_mapping(
            {
                "c (configured)": verdict.c,
                "neat bound 2*mu/ln(mu/nu)": verdict.neat_threshold,
                "consistent by the paper's bound": verdict.satisfies_neat_bound,
                "Theorem 1 margin (log E[C]/E[A])": verdict.theorem1_margin_log,
                "largest admissible delta1": verdict.theorem1_max_delta1,
                "Theorem 2 threshold on c": verdict.theorem2_threshold,
                "consistent by Theorem 2": verdict.satisfies_theorem2,
                "consistent by PSS (approx.)": params.nu < nu_max_pss_consistency(params.c),
                "PSS Remark 8.5 attack succeeds": pss_attack_succeeds(params.c, params.nu),
            }
        )
    )
    print()

    # How many confirmations are "enough"?  Use the expectation machinery to
    # show the per-window counts the proof compares.
    window = 100_000
    print(f"Over a window of {window} rounds:")
    print(
        render_mapping(
            {
                "expected convergence opportunities E[C]": analyzer.expected_convergence_opportunities(window),
                "expected adversarial blocks E[A]": analyzer.expected_adversary_blocks(window),
                "ratio E[C] / E[A]": (
                    analyzer.expected_convergence_opportunities(window)
                    / analyzer.expected_adversary_blocks(window)
                ),
            }
        )
    )
    print()
    print(
        "The protocol is consistent whenever c exceeds "
        f"{neat_bound(params.nu):.4f} (the paper's neat bound at nu = {params.nu})."
    )


if __name__ == "__main__":
    main()
