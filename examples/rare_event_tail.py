#!/usr/bin/env python3
"""Chart the deep consistency-violation tail against the Lundberg predictions.

Run with::

    python examples/rare_event_tail.py [--c C] [--nu NU] [--trials N]

The script sweeps the violation depth with the exponentially tilted
rare-event estimator — down into the 1e-9 regime where plain Monte Carlo
would need tens of billions of trials per point — and compares the measured
tail ``P[worst windowed A-C deficit >= depth]`` against the analytical
Lundberg decay ``e^{-theta* depth}`` computed from the corrected Eq. (44)
convergence-opportunity rate and from Kiffer's (incorrect) rate.  It then
cross-checks the estimator itself in the overlap region, where plain MC,
tilting, and splitting must all agree within their 95% confidence
intervals.

Output is a plain-text log-scale chart plus the two tables from
:mod:`repro.analysis.tail_sweeps`.
"""

from __future__ import annotations

import argparse
import math
import sys

from repro.analysis import (
    lundberg_exponent,
    overlap_validation_table,
    render_table,
    tail_depth_sweep,
)
from repro.core.kiffer import kiffer_convergence_rate_incorrect
from repro.params import parameters_from_c

#: Chart geometry: one column per log10 decade step.
CHART_WIDTH = 60
CHART_FLOOR = -10.0


def ascii_tail_chart(rows) -> str:
    """A log-scale text chart: measured tail (*) vs both predictions (| and :)."""
    lines = [
        f"log10 P[deficit >= depth]   (floor {CHART_FLOOR:g}; "
        "* measured, | corrected prediction, : Kiffer prediction)"
    ]
    scale = CHART_WIDTH / -CHART_FLOOR

    def column(value: float) -> int:
        if value <= 0.0:
            return 0
        log10 = max(math.log10(value), CHART_FLOOR)
        return min(int(round(-log10 * scale)), CHART_WIDTH)

    for row in rows:
        cells = [" "] * (CHART_WIDTH + 1)
        cells[column(row["predicted_tail_kiffer"])] = ":"
        cells[column(row["predicted_tail"])] = "|"
        cells[column(row["probability"])] = "*"
        log10 = row["log10_probability"]
        label = f"{log10:7.2f}" if math.isfinite(log10) else "   -inf"
        lines.append(f"depth {row['depth']:>3d} {''.join(cells)} {label}")
    axis = " " * 10 + "".join(
        "+" if col % (CHART_WIDTH // 5) == 0 else "-"
        for col in range(CHART_WIDTH + 1)
    )
    ticks = " " * 10 + "".join(
        f"{-decade:<12d}" for decade in range(0, 11, 2)
    )
    lines.append(axis)
    lines.append(ticks.rstrip())
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--c", type=float, default=4.0, help="Delta-to-block-interval ratio c")
    parser.add_argument("--nu", type=float, default=0.2, help="adversarial power fraction")
    parser.add_argument("--miners", type=int, default=1_000, help="miner count n")
    parser.add_argument("--delta", type=int, default=3, help="network delay Delta (rounds)")
    parser.add_argument("--trials", type=int, default=6_000, help="trials per tilted point")
    parser.add_argument("--rounds", type=int, default=400, help="rounds per trial")
    parser.add_argument("--seed", type=int, default=2026, help="base seed")
    parser.add_argument(
        "--depths",
        type=int,
        nargs="+",
        default=[6, 9, 12, 15, 18, 21],
        help="violation depths to sweep",
    )
    args = parser.parse_args(argv)

    params = parameters_from_c(c=args.c, n=args.miners, delta=args.delta, nu=args.nu)
    theta = lundberg_exponent(params)
    theta_kiffer = lundberg_exponent(params, kiffer_convergence_rate_incorrect(params))
    print(
        f"Point c={args.c} nu={args.nu} Delta={args.delta} n={args.miners}: "
        f"Lundberg exponent theta*={theta:.4f} (corrected rate), "
        f"{theta_kiffer:.4f} (Kiffer rate)"
    )

    print("\n== Deep-tail sweep (tilted importance sampling) ==\n")
    sweep = tail_depth_sweep(
        params,
        args.depths,
        trials=args.trials,
        rounds=args.rounds,
        seed=args.seed,
    )
    print(ascii_tail_chart(sweep))
    print()
    print(
        render_table(
            sweep,
            columns=[
                "depth",
                "probability",
                "ci95_low",
                "ci95_high",
                "relative_error",
                "effective_sample_size",
                "predicted_tail",
                "predicted_tail_kiffer",
                "measured_vs_predicted_log10",
            ],
            precision=3,
        )
    )

    print("\n== Overlap-region cross-check (plain vs tilted vs splitting) ==\n")
    overlap = overlap_validation_table(
        params,
        depths=(8, 10),
        plain_trials=200_000,
        trials=args.trials,
        rounds=args.rounds,
        seed=args.seed,
    )
    print(
        render_table(
            overlap,
            columns=[
                "depth",
                "plain_probability",
                "tilted_probability",
                "splitting_probability",
                "tilted_agrees",
                "splitting_agrees",
            ],
            precision=3,
        )
    )
    agreed = all(row["tilted_agrees"] and row["splitting_agrees"] for row in overlap)
    print(
        "\nOverlap region: estimators "
        + ("agree within 95% CIs." if agreed else "DISAGREE — inspect the table above.")
    )
    return 0 if agreed else 1


if __name__ == "__main__":
    sys.exit(main())
