#!/usr/bin/env python3
"""Walk the network-topology subsystem: peer graphs, effective Δ, tightness.

Run with::

    python examples/topology_sweep.py [--nodes N] [--trials T] [--rounds R]
                                      [--seed S]

The paper prices every honest message at the worst-case delay Δ.  Real
gossip networks deliver most blocks much faster, so the fixed-Δ
convergence-opportunity rate (Eq. 44) is conservative.  This script
measures by how much:

1. build a random-regular peer graph with
   :class:`repro.simulation.PeerGraphTopology` and inspect its gossip
   structure (diameter, per-origin delivery radii);
2. estimate its *effective* Δ — the empirical quantile of the delivery
   radii — and map it back into the analytical world with
   :meth:`~repro.simulation.PeerGraphTopology.effective_parameters`;
3. run a topology grid over graph degrees through
   :meth:`~repro.simulation.ExperimentRunner.run_topology_point` (seeded
   and cacheable) and print the Δ-tightness table: empirical rate vs the
   fixed-Δ predictions at the nominal and effective Δ.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import delta_tightness_sweep, effective_delta_table, render_table
from repro.params import parameters_from_c
from repro.simulation import PeerGraphTopology

DEGREES = (2, 4, 8)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=64, help="peers in each graph")
    parser.add_argument("--trials", type=int, default=16, help="trials per grid cell")
    parser.add_argument("--rounds", type=int, default=8_000, help="rounds per trial")
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    args = parser.parse_args(argv)

    # 1. One concrete graph, inspected by hand.
    topology = PeerGraphTopology.random_regular(args.nodes, 4, rng=args.seed)
    radii = topology.delivery_radii()
    print(f"random 4-regular gossip graph: {topology}")
    print(
        f"  diameter {topology.diameter}, delivery radii "
        f"min/mean/max = {radii.min()}/{radii.mean():.2f}/{radii.max()}"
    )

    # 2. Effective Delta and the analytical point it induces.
    nominal = parameters_from_c(
        c=4.0, n=1_000, delta=max(topology.diameter, 1), nu=0.2
    )
    effective = topology.effective_parameters(nominal, quantile=0.95)
    print(
        f"  effective delta (95% quantile) = {effective.delta} "
        f"vs nominal {nominal.delta}"
    )
    print(
        "  fixed-delta predictions: nominal "
        f"{nominal.convergence_opportunity_probability:.3e}, effective "
        f"{effective.convergence_opportunity_probability:.3e}"
    )

    # 3. The Delta-tightness table across graph degrees.
    print("\nStructural effective-delta estimates per degree")
    print(
        render_table(
            effective_delta_table(
                DEGREES, (0,), graph_nodes=args.nodes, seed=args.seed
            )
        )
    )

    rows = delta_tightness_sweep(
        DEGREES,
        (0,),
        graph_nodes=args.nodes,
        trials=args.trials,
        rounds=args.rounds,
        seed=args.seed,
    )
    print("Delta tightness: empirical vs fixed-delta predictions (c=4, nu=0.2)")
    print(
        render_table(
            [
                {
                    "degree": row["degree"],
                    "effective delta": row["effective_delta"],
                    "nominal delta": row["nominal_delta"],
                    "empirical rate": row["empirical_rate"],
                    "ci95": f"[{row['empirical_ci95_low']:.2e}, "
                    f"{row['empirical_ci95_high']:.2e}]",
                    "predicted (nominal)": row["predicted_rate_nominal"],
                    "predicted (effective)": row["predicted_rate_effective"],
                    "tightness vs nominal": row["tightness_vs_nominal"],
                }
                for row in rows
            ]
        )
    )
    print(
        "A tightness ratio above 1 is security margin the worst-case bound "
        "leaves on the table for this topology."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
