#!/usr/bin/env python3
"""Walk the array-backend layer: dispatch, dtype policies, workspaces.

Run with::

    python examples/backend_speed.py [--trials T] [--rounds R] [--repeats K]
                                     [--backend NAME]

Every tensor operation in the batch, scenario, topology and dynamics
engines dispatches through ``repro.backend``.  This script shows the three
user-facing knobs:

1. **backend selection** — enumerate the registry with
   :func:`repro.backend.backend_specs` (unavailable accelerators report a
   skip reason, never crash) and pin one with
   :func:`repro.backend.use_backend`; the ``REPRO_BACKEND`` environment
   variable does the same without code changes.  The NumPy reference
   backend is bit-identical to the pre-backend engines; an installed
   CuPy/torch stack activates the ``array_api`` backend and its results
   still share the seed streams (randomness is drawn host-side and
   bridged).
2. **dtype policies** — ``wide`` (int64/bool/float64, the bit-exact
   default) versus ``compact`` (int32/uint8/float32): integer outputs stay
   exact, float statistics agree within the documented tolerance, memory
   traffic halves.
3. **workspaces** — a :class:`repro.backend.Workspace` pools the hot
   kernels' scratch buffers across repeated runs; the script times the
   per-call-allocation path against the pooled path on the same pre-drawn
   tensors (the ``bench_backend.py`` gate holds this at >= 1.5x).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.backend import (
    COMPACT_STAT_RTOL,
    Workspace,
    backend_specs,
    use_backend,
    use_dtype_policy,
)
from repro.params import parameters_from_c
from repro.simulation import BatchSimulation, draw_mining_traces


def best_of(repeats, callable_):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=256)
    parser.add_argument("--rounds", type=int, default=8_000)
    parser.add_argument("--repeats", type=int, default=10)
    parser.add_argument(
        "--backend",
        default="numpy",
        help="registry name to run the engine demo under (default: numpy)",
    )
    args = parser.parse_args(argv)
    params = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)

    # 1. The registry, with availability probed per backend.
    print("registered backends:")
    for name, spec in sorted(backend_specs().items()):
        if spec["available"]:
            detail = ", ".join(
                f"{key}={value}"
                for key, value in spec.items()
                if key not in ("name", "available")
            )
            print(f"  {name:10s} available" + (f" ({detail})" if detail else ""))
        else:
            print(f"  {name:10s} skipped: {spec['error']}")

    # 2. Bit-identical results under explicit selection, then the compact
    #    dtype policy's exact-integer / tolerant-float contract.
    with use_backend(args.backend):
        reference = BatchSimulation(params, rng=0).run(64, 2_000)
        with use_dtype_policy("compact"):
            compact = BatchSimulation(params, rng=0).run(64, 2_000)
    assert np.array_equal(
        reference.convergence_opportunities, compact.convergence_opportunities
    ), "compact integers must be exact"
    drift = abs(compact.mean_convergence_rate - reference.mean_convergence_rate)
    print(
        f"\ncompact dtype policy: integer outputs exact, mean-rate drift "
        f"{drift:.2e} (documented tolerance {COMPACT_STAT_RTOL:.0e} relative)"
    )

    # 3. Workspace reuse on the deterministic analysis half.
    with use_backend(args.backend):
        honest, adversary = draw_mining_traces(
            params, args.trials, args.rounds, rng=0
        )
        per_call = BatchSimulation(params, rng=0)
        pooled = BatchSimulation(params, rng=0, workspace=Workspace())
        cold = best_of(args.repeats, lambda: per_call.run_traces(honest, adversary))
        warm = best_of(args.repeats, lambda: pooled.run_traces(honest, adversary))
    print(
        f"workspace reuse at {args.trials}x{args.rounds}: per-call "
        f"{cold * 1e3:.2f}ms, pooled {warm * 1e3:.2f}ms, {cold / warm:.2f}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
