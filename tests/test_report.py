"""Tests for repro.analysis.report: the one-shot experiment report."""

from __future__ import annotations

import pytest

from repro.analysis.report import ReportConfig, generate_report, main


@pytest.fixture(scope="module")
def quick_report() -> str:
    """Generate one small report shared by the assertions below."""
    config = ReportConfig(
        figure1_points=8,
        validation_rounds=6_000,
        simulation_rounds=2_000,
        seed=5,
    )
    return generate_report(config)


class TestGenerateReport:
    def test_contains_every_section(self, quick_report):
        for heading in (
            "Figure 1",
            "Table I",
            "Remark 1",
            "Validation",
            "Withholding attack",
            "Required c per analysis",
        ):
            assert heading in quick_report

    def test_contains_key_quantities(self, quick_report):
        assert "nu_max_ours" in quick_report
        assert "alpha_bar" in quick_report
        assert "slack - 1" in quick_report
        assert "C - A margin" in quick_report

    def test_report_is_nonempty_markdown(self, quick_report):
        assert quick_report.startswith("# repro")
        assert len(quick_report.splitlines()) > 40

    def test_config_validation_parameters(self):
        config = ReportConfig()
        params = config.validation_parameters()
        assert params.c == pytest.approx(config.validation_c)
        assert params.delta == config.validation_delta


class TestCli:
    def test_main_quick_to_file(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        exit_code = main(["--quick", "--output", str(output)])
        assert exit_code == 0
        assert output.exists()
        assert "Figure 1" in output.read_text()
        assert "wrote report" in capsys.readouterr().out

    def test_main_quick_to_stdout(self, capsys):
        exit_code = main(["--quick"])
        assert exit_code == 0
        assert "Figure 1" in capsys.readouterr().out
