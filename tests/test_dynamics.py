"""Unit tests for the network-dynamics subsystem.

Covers the event/schedule validation surface (including the negative paths
the issue pins: disconnected-forever schedules and invalid event ordering),
exact agreement between the vectorized schedule-compilation kernel and its
pure-Python reference, the duration-0 no-op property (a partition that
heals immediately reproduces the unpartitioned run bit for bit), golden
violation-depth values at ``base_seed=2026``, adversary placement, and the
partition/eclipse scenarios in the registry.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.partition_sweeps import churn_tightness_table, partition_depth_sweep
from repro.errors import AnalysisError, SimulationError
from repro.params import parameters_from_c
from repro.simulation import (
    AdversaryPlacement,
    BatchSimulation,
    ChurnEvent,
    DynamicsSchedule,
    LatencyDriftEvent,
    PartitionEvent,
    PartitionScenario,
    PeerGraphTopology,
    Scenario,
    ScenarioSimulation,
    TimeVaryingDelayModel,
    compile_eclipse_offsets,
    compile_schedule,
    delay_model_specs,
    get_scenario,
    list_delay_models,
    list_placements,
    list_scenarios,
    reference_compile_schedule,
)

PARAMS = parameters_from_c(c=2.0, n=500, delta=3, nu=0.25)
ATTACK_PARAMS = parameters_from_c(c=1.0, n=400, delta=3, nu=0.4)


def small_topology(seed: int = 0, nodes: int = 16) -> PeerGraphTopology:
    return PeerGraphTopology.random_regular(nodes, 4, rng=seed)


# ----------------------------------------------------------------------
# Events and schedule validation
# ----------------------------------------------------------------------
class TestScheduleValidation:
    def test_events_must_be_ordered_by_start_round(self):
        with pytest.raises(SimulationError, match="ordered by start round"):
            DynamicsSchedule(
                [PartitionEvent(200, 50), PartitionEvent(100, 50)]
            )

    def test_event_field_validation(self):
        with pytest.raises(SimulationError, match="non-negative integer"):
            PartitionEvent(-1, 10)
        with pytest.raises(SimulationError, match="non-negative integer"):
            ChurnEvent(5, (1,), duration=-2)
        with pytest.raises(SimulationError, match="at least one node"):
            ChurnEvent(5, ())
        with pytest.raises(SimulationError, match="must not repeat"):
            ChurnEvent(5, (1, 1))
        with pytest.raises(SimulationError, match="positive number"):
            LatencyDriftEvent(5, factor=0.0)
        with pytest.raises(SimulationError, match="unknown dynamics event"):
            DynamicsSchedule(["not-an-event"])

    def test_topology_required_for_structural_events(self):
        churn = DynamicsSchedule([ChurnEvent(10, (0,), duration=5)])
        assert churn.requires_topology
        with pytest.raises(SimulationError, match="meaningless without"):
            TimeVaryingDelayModel(churn)
        cut = DynamicsSchedule([PartitionEvent(10, 5, nodes=(0, 1))])
        with pytest.raises(SimulationError, match="meaningless without"):
            TimeVaryingDelayModel(cut)
        # Full eclipses are fine without a graph.
        TimeVaryingDelayModel(DynamicsSchedule([PartitionEvent(10, 5)]))

    def test_event_nodes_must_exist_in_topology(self):
        schedule = DynamicsSchedule([ChurnEvent(10, (99,), duration=5)])
        with pytest.raises(SimulationError, match="names node 99"):
            compile_schedule(schedule, small_topology(), 100, 3)

    def test_disconnected_forever_partition_raises(self):
        forever = DynamicsSchedule([PartitionEvent(50, None)])
        with pytest.raises(SimulationError, match="disconnected forever|never heals"):
            compile_eclipse_offsets(forever, 200, 3)
        with pytest.raises(SimulationError, match="disconnected forever"):
            compile_schedule(forever, small_topology(), 200, 3)

    def test_disconnected_forever_churn_raises(self):
        # Churning the hub out of a star forever strands every other peer.
        star = PeerGraphTopology.star(6)
        schedule = DynamicsSchedule([ChurnEvent(20, (0,), duration=None)])
        with pytest.raises(SimulationError, match="disconnected forever"):
            compile_schedule(schedule, star, 100, 3)
        # The same churn with an eventual rejoin compiles fine.
        healing = DynamicsSchedule([ChurnEvent(20, (0,), duration=30)])
        compiled = compile_schedule(healing, star, 100, 3)
        assert compiled.max_offset > 3

    def test_churning_out_every_peer_raises(self):
        topology = small_topology()
        schedule = DynamicsSchedule(
            [ChurnEvent(10, tuple(range(topology.n_nodes)), duration=5)]
        )
        with pytest.raises(SimulationError, match="every peer"):
            compile_schedule(schedule, topology, 50, 3)


# ----------------------------------------------------------------------
# Compilation: vectorized kernel versus pure-Python reference
# ----------------------------------------------------------------------
class TestCompilationEquality:
    @pytest.mark.parametrize(
        "events",
        [
            [],
            [PartitionEvent(40, 25)],
            [PartitionEvent(40, 25, nodes=(0, 1, 2))],
            [ChurnEvent(30, (3, 7), duration=40)],
            [LatencyDriftEvent(25, 3.0, duration=50)],
            [
                ChurnEvent(20, (1,), duration=30),
                LatencyDriftEvent(35, 2.0, duration=40),
                PartitionEvent(60, 30, nodes=(0, 2, 4, 6)),
            ],
            # Back-to-back obstructions: a block can span several epochs.
            [PartitionEvent(40, 20), PartitionEvent(65, 20)],
        ],
    )
    def test_vectorized_matches_reference(self, events):
        topology = small_topology(seed=3, nodes=12)
        schedule = DynamicsSchedule(events)
        vectorized = compile_schedule(schedule, topology, 120, 4)
        reference = reference_compile_schedule(schedule, topology, 120, 4)
        assert np.array_equal(vectorized.offsets, reference.offsets)
        assert np.array_equal(vectorized.active, reference.active)
        assert vectorized.max_offset == reference.max_offset
        assert vectorized.uniform_origins == reference.uniform_origins

    def test_empty_schedule_offsets_are_capped_radii(self):
        topology = small_topology(seed=5)
        compiled = compile_schedule(DynamicsSchedule(), topology, 50, 2)
        expected = np.minimum(topology.delivery_radii(), 2)
        assert np.array_equal(compiled.offsets, np.tile(expected, (50, 1)))
        assert compiled.uniform_origins

    def test_offsets_monotone_in_partition_duration(self):
        topology = small_topology(seed=7)
        delta = topology.diameter
        shorter = compile_schedule(
            DynamicsSchedule([PartitionEvent(30, 20, nodes=(0, 1, 2, 3))]),
            topology,
            150,
            delta,
        )
        longer = compile_schedule(
            DynamicsSchedule([PartitionEvent(30, 60, nodes=(0, 1, 2, 3))]),
            topology,
            150,
            delta,
        )
        assert (longer.offsets >= shorter.offsets).all()

    def test_eclipse_offsets_shape(self):
        offsets = compile_eclipse_offsets(
            DynamicsSchedule([PartitionEvent(40, 30)]), 100, 3
        )
        assert offsets[39] == 3
        assert offsets[40] == 30 + 3  # waits out the whole window plus Delta
        assert offsets[69] == 1 + 3
        assert offsets[70] == 3


# ----------------------------------------------------------------------
# The duration-0 no-op property and trivial fast path
# ----------------------------------------------------------------------
class TestDurationZeroProperty:
    @given(
        start=st.integers(min_value=0, max_value=400),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_healing_at_duration_zero_is_bit_identical(self, start, seed):
        """A partition healed after 0 rounds reproduces the unpartitioned run."""
        healed = TimeVaryingDelayModel(DynamicsSchedule([PartitionEvent(start, 0)]))
        plain = BatchSimulation(PARAMS, rng=seed).run(3, 400, keep_traces=True)
        zero = BatchSimulation(PARAMS, rng=seed, delay_model=healed).run(
            3, 400, keep_traces=True
        )
        assert np.array_equal(plain.honest_counts, zero.honest_counts)
        assert np.array_equal(plain.adversary_counts, zero.adversary_counts)
        assert np.array_equal(
            plain.convergence_opportunities, zero.convergence_opportunities
        )
        assert np.array_equal(plain.worst_deficits, zero.worst_deficits)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_duration_zero_with_topology_matches_empty_schedule(self, seed):
        topology = small_topology(seed=11)
        zero = TimeVaryingDelayModel(
            DynamicsSchedule([PartitionEvent(100, 0, nodes=(0, 1))]),
            topology=topology,
        )
        empty = TimeVaryingDelayModel(DynamicsSchedule(), topology=topology)
        a = BatchSimulation(PARAMS, rng=seed, delay_model=zero).run(3, 300)
        b = BatchSimulation(PARAMS, rng=seed, delay_model=empty).run(3, 300)
        assert np.array_equal(
            a.convergence_opportunities, b.convergence_opportunities
        )
        assert np.array_equal(a.worst_deficits, b.worst_deficits)

    def test_empty_no_topology_model_is_trivial(self):
        model = TimeVaryingDelayModel()
        assert model.trivial
        assert model.delay_cap(3, rounds=100) == 3
        # Trivial models are skipped by the engines, so no entropy is drawn.
        rng = np.random.default_rng(0)
        delays = model.draw_delays(2, 50, 3, rng)
        assert (delays == 3).all()

    def test_partitioned_model_is_not_trivial_and_reports_cap(self):
        model = TimeVaryingDelayModel(DynamicsSchedule([PartitionEvent(20, 15)]))
        assert not model.trivial
        assert model.delay_cap(3, rounds=100) == 15 + 3
        with pytest.raises(SimulationError, match="round count"):
            model.delay_cap(3)


# ----------------------------------------------------------------------
# Violation depth: monotonicity and goldens at base_seed=2026
# ----------------------------------------------------------------------
class TestPartitionSweeps:
    def test_depth_table_monotone_in_duration(self):
        rows = partition_depth_sweep(
            durations=(0, 80, 200, 400),
            c=2.0,
            n=500,
            delta=3,
            nu=0.25,
            trials=8,
            rounds=2_500,
            seed=7,
        )
        depths = [row["mean_violation_depth"] for row in rows]
        assert depths == sorted(depths)
        maxima = [row["max_violation_depth"] for row in rows]
        assert maxima == sorted(maxima)

    def test_golden_depths_at_base_seed_2026(self):
        rows = partition_depth_sweep(
            durations=(0, 120, 360),
            c=2.0,
            n=500,
            delta=3,
            nu=0.25,
            trials=12,
            rounds=3_000,
            seed=2026,
        )
        depths = [row["mean_violation_depth"] for row in rows]
        assert depths == pytest.approx(
            [10.583333333333334, 12.083333333333334, 21.083333333333332],
            abs=1e-9,
        )
        assert [row["max_violation_depth"] for row in rows] == [28, 30, 43]
        rates = [row["mean_convergence_rate"] for row in rows]
        assert rates == pytest.approx(
            [0.051277777777777776, 0.049416666666666664, 0.04541666666666667],
            abs=1e-12,
        )
        fractions = [row["lemma1_fraction"] for row in rows]
        assert fractions == pytest.approx([1.0, 11 / 12, 10 / 12], abs=1e-12)

    def test_sweep_validation(self):
        with pytest.raises(AnalysisError, match="duration"):
            partition_depth_sweep(durations=())
        with pytest.raises(AnalysisError, match="non-negative"):
            partition_depth_sweep(durations=(-1,))
        with pytest.raises(AnalysisError, match="inside the run"):
            partition_depth_sweep(durations=(10,), rounds=100, partition_start=100)

    def test_churn_tightness_table(self):
        rows = churn_tightness_table(
            leave_counts=(0, 2),
            period=400,
            off_duration=200,
            graph_nodes=20,
            degree=4,
            trials=4,
            rounds=1_200,
            seed=5,
        )
        assert [row["leave_count"] for row in rows] == [0, 2]
        assert rows[0]["churn_events"] == 0
        assert rows[1]["churn_events"] == 2
        for row in rows:
            assert row["empirical_ci95_low"] <= row["empirical_rate"]
            assert row["empirical_rate"] <= row["empirical_ci95_high"]
            assert row["predicted_rate_nominal"] > 0
        with pytest.raises(AnalysisError, match="churn level"):
            churn_tightness_table(leave_counts=())


# ----------------------------------------------------------------------
# Adversary placement
# ----------------------------------------------------------------------
class TestAdversaryPlacement:
    def test_kinds_and_validation(self):
        assert list_placements() == sorted(("instant", "hub", "leaf", "random"))
        with pytest.raises(SimulationError, match="placement kind"):
            AdversaryPlacement("bridge")
        with pytest.raises(SimulationError, match="seed must be an integer"):
            AdversaryPlacement("random", seed=1.5)

    def test_release_delays_order(self):
        topology = small_topology(seed=2)
        delta = topology.diameter + 2
        hub = AdversaryPlacement("hub").release_delay(topology, delta)
        leaf = AdversaryPlacement("leaf").release_delay(topology, delta)
        random = AdversaryPlacement("random", seed=4).release_delay(topology, delta)
        assert hub <= random <= leaf
        assert leaf <= delta
        assert AdversaryPlacement().release_delay(topology, delta) == 0
        # Abstract extremes without a topology.
        assert AdversaryPlacement("hub").release_delay(None, 5) == 0
        assert AdversaryPlacement("leaf").release_delay(None, 5) == 5
        assert 0 <= AdversaryPlacement("random").release_delay(None, 5) <= 5

    def test_publish_scenarios_reject_placement(self):
        with pytest.raises(SimulationError, match="withholding"):
            ScenarioSimulation(
                ATTACK_PARAMS, "max_delay", placement=AdversaryPlacement("leaf")
            )

    def test_instant_placement_is_bit_identical_to_default(self):
        base = ScenarioSimulation(ATTACK_PARAMS, "private_chain", rng=9).run(
            4, 1_500, record_rounds=True
        )
        instant = ScenarioSimulation(
            ATTACK_PARAMS,
            "private_chain",
            rng=9,
            placement=AdversaryPlacement("instant"),
        ).run(4, 1_500, record_rounds=True)
        assert np.array_equal(base.public_heights, instant.public_heights)
        assert np.array_equal(base.deepest_forks, instant.deepest_forks)
        assert instant.release_delay == 0

    def test_delayed_release_loses_the_gossip_race(self):
        """Scripted: a release that gossips for one round can be overtaken.

        The adversary forks at height 1 with two withheld blocks and
        releases the moment the public chain reaches depth 1.  A perfectly
        connected adversary displaces that one-block suffix; a leaf
        adversary's release travels one round, an in-flight honest block
        lands first, and the late release displaces nothing.
        """
        params = parameters_from_c(c=1.0, n=10, delta=1, nu=0.4)
        scenario = Scenario(
            name="race", kind="private_chain", target_depth=1, give_up_deficit=None
        )
        honest = np.array([[1, 0, 1, 1, 0, 0, 0, 0]])
        adversary = np.array([[0, 2, 0, 0, 0, 0, 0, 0]])
        instant = ScenarioSimulation(params, scenario).run_traces(
            honest, adversary
        )
        delayed = ScenarioSimulation(
            params, scenario, placement=AdversaryPlacement("leaf")
        ).run_traces(honest, adversary)
        assert delayed.release_delay == 1
        # Both adversaries decide to release once, at the same round.
        assert instant.releases.tolist() == delayed.releases.tolist() == [1]
        # Instantaneous release displaces the depth-1 honest suffix ...
        assert instant.deepest_forks.tolist() == [1]
        # ... but the gossiping release is overtaken by the round-3 honest
        # block arriving at round 4, and lands displacing nothing.
        assert delayed.deepest_forks.tolist() == [0]
        # The released chain still merges into the final public height.
        assert delayed.final_public_heights.tolist() == [3]

    def test_delayed_release_statistics_stay_sane(self):
        delayed = ScenarioSimulation(
            ATTACK_PARAMS,
            "private_chain",
            rng=3,
            placement=AdversaryPlacement("leaf"),
        ).run(8, 3_000)
        instant = ScenarioSimulation(ATTACK_PARAMS, "private_chain", rng=3).run(
            8, 3_000
        )
        assert delayed.release_delay == ATTACK_PARAMS.delta
        # Placement consumes no entropy: the mining traces are identical.
        assert np.array_equal(instant.honest_blocks, delayed.honest_blocks)
        assert np.array_equal(instant.adversary_blocks, delayed.adversary_blocks)
        assert (delayed.releases > 0).all()
        assert (delayed.deepest_forks >= 0).all()
        assert delayed.summary()["release_delay"] == ATTACK_PARAMS.delta


# ----------------------------------------------------------------------
# Partition / eclipse scenarios
# ----------------------------------------------------------------------
class TestPartitionScenarios:
    def test_registered_in_scenario_registry(self):
        assert {"eclipse", "partition_attack"} <= set(list_scenarios())
        eclipse = get_scenario("eclipse")
        assert isinstance(eclipse, PartitionScenario)
        assert eclipse.kind == "private_chain"
        payload = eclipse.payload()
        assert payload["partition_start"] == 1_000
        assert payload["partition_duration"] == 200

    def test_time_varying_registered_in_delay_models(self):
        assert "time_varying" in list_delay_models()
        specs = delay_model_specs()
        assert specs["time_varying"]["schedule"] == {"events": []}
        assert set(specs) == set(list_delay_models())

    def test_partition_scenario_validation(self):
        with pytest.raises(SimulationError, match="withholds"):
            PartitionScenario(name="bad", kind="publish")
        with pytest.raises(SimulationError, match="non-negative integer"):
            PartitionScenario(
                name="bad", kind="private_chain", partition_start=-5
            )

    def test_scenario_auto_builds_its_cut(self):
        engine = ScenarioSimulation(ATTACK_PARAMS, "partition_attack", rng=0)
        assert isinstance(engine.delay_model, TimeVaryingDelayModel)
        assert not engine.delay_model.trivial
        events = engine.delay_model.schedule.events
        assert len(events) == 1 and events[0].duration == 300

    def test_explicit_delay_model_overrides_auto_cut(self):
        engine = ScenarioSimulation(
            ATTACK_PARAMS, "partition_attack", rng=0, delay_model="fixed_delta"
        )
        assert engine.delay_model.name == "fixed_delta"

    def test_partition_attack_beats_plain_withholding(self):
        """The scheduled cut makes the private fork strictly more dangerous."""
        params = parameters_from_c(c=2.0, n=500, delta=3, nu=0.3)
        plain = ScenarioSimulation(
            params,
            PartitionScenario(
                name="no-cut",
                kind="private_chain",
                target_depth=6,
                give_up_deficit=None,
                partition_start=500,
                partition_duration=0,
            ),
            rng=1,
        ).run(12, 4_000)
        attacked = ScenarioSimulation(
            params,
            PartitionScenario(
                name="cut",
                kind="private_chain",
                target_depth=6,
                give_up_deficit=None,
                partition_start=500,
                partition_duration=600,
            ),
            rng=1,
        ).run(12, 4_000)
        assert (
            attacked.attack_success_probability
            >= plain.attack_success_probability
        )
        assert attacked.deepest_forks.mean() >= plain.deepest_forks.mean()

    def test_eclipse_orphans_in_flight_honest_blocks(self):
        result = ScenarioSimulation(ATTACK_PARAMS, "eclipse", rng=5).run(8, 2_500)
        assert result.attack_success_probability > 0
        assert result.delay_model == "time_varying"
