"""Grid-progress reporting: accounting, sinks, resolution, runner wiring."""

from __future__ import annotations

import io
import json

import pytest

from repro.observability import (
    PROGRESS_ENV_VAR,
    PROGRESS_SCHEMA,
    GridProgress,
    JsonlProgressSink,
    StderrProgressSink,
    resolve_progress_sinks,
)
from repro.params import parameters_from_c
from repro.simulation import ExperimentRunner

POINTS = [
    parameters_from_c(c=2.0, n=300, delta=delta, nu=0.25) for delta in (3, 4)
]


class RecordingSink:
    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


# ----------------------------------------------------------------------
# GridProgress accounting
# ----------------------------------------------------------------------
class TestGridProgress:
    def test_counts_eta_and_cache_ratio(self):
        ticks = iter([0.0, 2.0, 4.0, 6.0])
        sink = RecordingSink()
        progress = GridProgress(
            "runner.run_grid", 3, [sink], clock=lambda: next(ticks)
        )
        first = progress.point_done(2.0, cache_misses=1)
        assert first["schema"] == PROGRESS_SCHEMA
        assert (first["completed"], first["total"]) == (1, 3)
        # 2s elapsed for 1 point -> 2 remaining cost 4s.
        assert first["eta_s"] == pytest.approx(4.0)
        assert first["cache_hit_ratio"] == pytest.approx(0.0)
        second = progress.point_done(2.0, cache_hits=1, shard=1)
        assert second["eta_s"] == pytest.approx(2.0)
        assert second["cache_hit_ratio"] == pytest.approx(0.5)
        assert second["shard"] == 1
        final = progress.point_done(2.0)
        assert final["eta_s"] == pytest.approx(0.0)
        assert len(sink.events) == 3

    def test_ratio_is_none_until_cache_activity(self):
        progress = GridProgress("g", 2, [])
        event = progress.point_done(0.1)
        assert event["cache_hit_ratio"] is None
        assert event["shard"] is None


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class TestSinks:
    def test_stderr_sink_rewrites_line_and_finishes_with_newline(self):
        buffer = io.StringIO()
        sink = StderrProgressSink(stream=buffer)
        progress = GridProgress("runner.run_grid", 2, [sink])
        progress.point_done(0.25, cache_hits=1)
        progress.point_done(0.25, cache_misses=1)
        output = buffer.getvalue()
        assert "[runner.run_grid] 1/2 points" in output
        assert "cache 100%" in output
        assert output.count("\r") == 1
        assert output.endswith("2/2 points | last 0.25s | eta 0.0s | cache 50%\n")

    def test_jsonl_sink_appends_one_object_per_event(self, tmp_path):
        path = tmp_path / "sub" / "progress.jsonl"
        sink = JsonlProgressSink(path)
        progress = GridProgress("g", 2, [sink])
        progress.point_done(0.1)
        progress.point_done(0.2, shard=1)
        lines = path.read_text().strip().splitlines()
        events = [json.loads(line) for line in lines]
        assert [event["completed"] for event in events] == [1, 2]
        assert events[1]["shard"] == 1


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
class TestResolveProgressSinks:
    def test_unset_environment_means_off(self):
        assert resolve_progress_sinks(environ={}) == []

    def test_env_var_selects_stderr_or_jsonl(self, tmp_path):
        (sink,) = resolve_progress_sinks(environ={PROGRESS_ENV_VAR: "stderr"})
        assert isinstance(sink, StderrProgressSink)
        (sink,) = resolve_progress_sinks(environ={PROGRESS_ENV_VAR: "-"})
        assert isinstance(sink, StderrProgressSink)
        path = str(tmp_path / "events.jsonl")
        (sink,) = resolve_progress_sinks(environ={PROGRESS_ENV_VAR: path})
        assert isinstance(sink, JsonlProgressSink)
        assert sink.path == path

    def test_explicit_argument_beats_environment(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        (sink,) = resolve_progress_sinks(
            path, environ={PROGRESS_ENV_VAR: "stderr"}
        )
        assert isinstance(sink, JsonlProgressSink)

    def test_sink_objects_and_sequences_pass_through(self):
        sink = RecordingSink()
        assert resolve_progress_sinks(sink) == [sink]
        assert resolve_progress_sinks([sink, sink]) == [sink, sink]
        assert resolve_progress_sinks(()) == []


# ----------------------------------------------------------------------
# Runner wiring
# ----------------------------------------------------------------------
class TestRunnerProgress:
    def test_serial_grid_reports_each_point(self, tmp_path):
        sink = RecordingSink()
        runner = ExperimentRunner(
            base_seed=1, cache_dir=str(tmp_path / "c"), progress=sink
        )
        runner.run_grid(POINTS, 4, 100)
        assert [event["completed"] for event in sink.events] == [1, 2]
        assert sink.events[0]["label"] == "runner.run_grid"
        assert sink.events[0]["cache_hit_ratio"] == pytest.approx(0.0)
        # Rerun from warm cache: ratio flips to all-hit.
        rerun = ExperimentRunner(
            base_seed=1, cache_dir=str(tmp_path / "c"), progress=sink
        )
        sink.events.clear()
        rerun.run_grid(POINTS, 4, 100)
        assert sink.events[-1]["cache_hit_ratio"] == pytest.approx(1.0)

    def test_sharded_grid_reports_with_shard_indices(self, tmp_path):
        sink = RecordingSink()
        runner = ExperimentRunner(
            base_seed=1,
            cache_dir=str(tmp_path / "c"),
            processes=2,
            progress=sink,
        )
        runner.run_grid(POINTS, 4, 100)
        assert len(sink.events) == len(POINTS)
        assert sorted(event["shard"] for event in sink.events) == [0, 1]
        assert {event["total"] for event in sink.events} == {2}

    def test_env_var_activates_jsonl_progress(self, tmp_path, monkeypatch):
        path = tmp_path / "progress.jsonl"
        monkeypatch.setenv(PROGRESS_ENV_VAR, str(path))
        runner = ExperimentRunner(base_seed=1)
        runner.run_rare_event_grid(POINTS, 32, 100, depth=3, method="plain")
        events = [
            json.loads(line)
            for line in path.read_text().strip().splitlines()
        ]
        assert [event["completed"] for event in events] == [1, 2]
        assert events[0]["label"] == "runner.run_rare_event_grid"

    def test_no_sinks_means_no_reporter(self):
        runner = ExperimentRunner(base_seed=1)
        assert runner.progress_sinks == []
