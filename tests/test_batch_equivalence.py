"""Seeded equivalence: the batch engine versus the legacy simulator.

The batch engine and the legacy :class:`NakamotoSimulation` are driven from
the *same* pre-drawn mining trace — the ``(trials, rounds)`` tensors that one
seed determines through :func:`draw_mining_traces`, replayed into the legacy
round loop via :class:`ScriptedMiningOracle`.  Both engines must then report
identical per-round honest/adversarial block counts, identical
convergence-opportunity tallies, and identical Lemma 1 margins, across the
(nu, delta) grid the issue prescribes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.params import parameters_from_c
from repro.simulation import (
    BatchSimulation,
    MaxDelayAdversary,
    NakamotoSimulation,
    PassiveAdversary,
    ScriptedMiningOracle,
    draw_mining_traces,
)

TRIALS = 3
ROUNDS = 1_200
GRID = [
    (nu, delta) for nu in (0.1, 0.25, 0.4) for delta in (1, 10)
]


def _params(nu: float, delta: int):
    return parameters_from_c(c=3.0, n=600, delta=delta, nu=nu)


@pytest.mark.parametrize("nu, delta", GRID)
class TestSeededEquivalence:
    def test_per_round_counts_and_tallies_match(self, nu, delta):
        """Same seed, same trace, same counts, same convergence tallies."""
        params = _params(nu, delta)
        seed = 1_000 + int(nu * 100) + delta
        honest, adversary = draw_mining_traces(params, TRIALS, ROUNDS, rng=seed)
        batch = BatchSimulation(params).run_traces(honest, adversary)

        for trial in range(TRIALS):
            legacy = NakamotoSimulation(
                params,
                adversary=PassiveAdversary(delta),
                rng=np.random.default_rng(0),
                oracle=ScriptedMiningOracle(honest[trial], adversary[trial]),
            ).run(ROUNDS)

            assert np.array_equal(legacy.honest_blocks_per_round, honest[trial])
            assert np.array_equal(legacy.adversary_blocks_per_round, adversary[trial])
            assert (
                legacy.convergence_opportunities
                == batch.convergence_opportunities[trial]
            )
            assert legacy.total_honest_blocks == batch.honest_blocks[trial]
            assert legacy.total_adversary_blocks == batch.adversary_blocks[trial]
            assert (
                legacy.convergence_opportunities - legacy.total_adversary_blocks
                == batch.lemma1_margins[trial]
            )

    def test_equivalence_is_adversary_independent(self, nu, delta):
        """Convergence tallies depend only on the honest trace (Eq. 26), so the
        batch count must also match a legacy run under a different adversary."""
        params = _params(nu, delta)
        honest, adversary = draw_mining_traces(params, 1, ROUNDS, rng=77)
        batch = BatchSimulation(params).run_traces(honest, adversary)
        legacy = NakamotoSimulation(
            params,
            adversary=MaxDelayAdversary(delta),
            rng=np.random.default_rng(0),
            oracle=ScriptedMiningOracle(honest[0], adversary[0]),
        ).run(ROUNDS)
        assert legacy.convergence_opportunities == batch.convergence_opportunities[0]


def test_injected_oracle_drives_exactly_one_run():
    """An injected oracle carries cursor state, so a second run() must refuse
    cleanly instead of replaying stale or exhausted draws."""
    params = _params(0.25, 3)
    honest, adversary = draw_mining_traces(params, 1, 100, rng=5)
    simulation = NakamotoSimulation(
        params, oracle=ScriptedMiningOracle(honest[0], adversary[0])
    )
    simulation.run(100)
    with pytest.raises(Exception, match="exactly one run"):
        simulation.run(100)
    # The default path still builds a fresh oracle per run.
    reusable = NakamotoSimulation(params, rng=np.random.default_rng(0))
    reusable.run(100)
    reusable.run(100)


def test_batch_engine_agrees_on_legacy_generated_traces():
    """The reverse direction: traces produced by the legacy simulator's own
    oracle, re-analysed by the batch engine, yield the legacy tallies."""
    params = _params(0.25, 3)
    legacy = NakamotoSimulation(params, rng=np.random.default_rng(42)).run(4_000)
    batch = BatchSimulation(params).run_traces(
        legacy.honest_blocks_per_round[np.newaxis, :],
        legacy.adversary_blocks_per_round[np.newaxis, :],
    )
    assert batch.convergence_opportunities[0] == legacy.convergence_opportunities
    assert batch.honest_blocks[0] == legacy.total_honest_blocks
    assert batch.adversary_blocks[0] == legacy.total_adversary_blocks
