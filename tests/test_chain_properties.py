"""Tests for repro.core.chain_properties and the selfish-mining adversary.

Chain growth and chain quality are the two properties the paper lists
alongside consistency (Section II); these tests check the analytical
lower-bound estimates against the simulator.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain_properties import (
    ChainPropertyEstimates,
    chain_growth_lower_bound,
    chain_quality_lower_bound,
    discounted_honest_rate,
    estimate_chain_properties,
    expected_block_interval_rounds,
)
from repro.params import parameters_from_c
from repro.simulation import (
    MaxDelayAdversary,
    NakamotoSimulation,
    SelfishMiningAdversary,
)


class TestAnalyticalEstimates:
    def test_discounted_rate_below_alpha(self, small_params):
        assert 0.0 < discounted_honest_rate(small_params) < small_params.alpha

    def test_discounted_rate_decreases_with_delta(self):
        fast = parameters_from_c(c=4.0, n=1_000, delta=1, nu=0.2)
        slow = parameters_from_c(c=4.0, n=1_000, delta=20, nu=0.2)
        # Same c means different p; compare at fixed p instead.
        slow_same_p = fast.with_delta(20)
        assert discounted_honest_rate(slow_same_p) < discounted_honest_rate(fast)
        assert slow.delta == 20  # silences unused-variable linters

    def test_growth_bound_equals_discounted_rate(self, small_params):
        assert chain_growth_lower_bound(small_params) == pytest.approx(
            discounted_honest_rate(small_params)
        )

    def test_quality_bound_in_unit_interval(self, small_params):
        quality = chain_quality_lower_bound(small_params)
        assert 0.0 <= quality <= 1.0

    def test_quality_bound_vacuous_when_adversary_dominates(self):
        params = parameters_from_c(c=0.1, n=1_000, delta=10, nu=0.45)
        assert chain_quality_lower_bound(params) == 0.0

    def test_block_interval_is_inverse_growth(self, small_params):
        assert expected_block_interval_rounds(small_params) == pytest.approx(
            1.0 / chain_growth_lower_bound(small_params)
        )

    def test_estimate_bundle(self, small_params):
        estimates = estimate_chain_properties(small_params)
        assert isinstance(estimates, ChainPropertyEstimates)
        assert estimates.consistent == (small_params.c > estimates.consistency_threshold_c)
        assert estimates.growth_per_round == pytest.approx(
            chain_growth_lower_bound(small_params)
        )

    @given(
        c=st.floats(min_value=0.5, max_value=50.0),
        nu=st.floats(min_value=0.02, max_value=0.48),
        delta=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=150, deadline=None)
    def test_bounds_always_well_defined(self, c, nu, delta):
        params = parameters_from_c(c=c, n=1_000, delta=delta, nu=nu)
        assert 0.0 < chain_growth_lower_bound(params) <= params.alpha
        assert 0.0 <= chain_quality_lower_bound(params) <= 1.0


class TestAgainstSimulation:
    def test_growth_bound_is_respected_under_max_delay(self, rng):
        """The measured growth rate under the worst-case delay adversary stays
        at or above the analytical lower bound (within sampling noise)."""
        params = parameters_from_c(c=3.0, n=1_000, delta=4, nu=0.2)
        result = NakamotoSimulation(
            params, adversary=MaxDelayAdversary(4), rng=rng
        ).run(30_000)
        bound = chain_growth_lower_bound(params)
        assert result.growth_rate >= bound * 0.9

    def test_quality_bound_is_respected_under_selfish_mining(self):
        """Selfish mining degrades chain quality but not below the analytical
        lower bound (within sampling noise)."""
        params = parameters_from_c(c=3.0, n=1_000, delta=3, nu=0.3)
        result = NakamotoSimulation(
            params,
            adversary=SelfishMiningAdversary(3),
            rng=np.random.default_rng(13),
        ).run(30_000)
        bound = chain_quality_lower_bound(params)
        assert result.quality >= bound - 0.05


class TestSelfishMiningAdversary:
    def test_degrades_quality_relative_to_passive(self):
        params = parameters_from_c(c=2.0, n=1_000, delta=3, nu=0.35)
        selfish_result = NakamotoSimulation(
            params,
            adversary=SelfishMiningAdversary(3),
            rng=np.random.default_rng(29),
        ).run(25_000)
        from repro.simulation import PassiveAdversary

        passive_result = NakamotoSimulation(
            params,
            adversary=PassiveAdversary(3),
            rng=np.random.default_rng(29),
        ).run(25_000)
        assert selfish_result.quality < passive_result.quality
        assert selfish_result.adversary_releases > 0

    def test_orphans_honest_blocks(self):
        params = parameters_from_c(c=1.5, n=1_000, delta=3, nu=0.4)
        adversary = SelfishMiningAdversary(3)
        NakamotoSimulation(
            params, adversary=adversary, rng=np.random.default_rng(31)
        ).run(20_000)
        assert adversary.orphaned_honest_blocks >= 0
        assert adversary.releases > 0

    def test_shallow_reorganisations_only_in_safe_regime(self):
        """Selfish mining does not create deep consistency violations when c is
        far above the bound (it is a quality attack, not a consistency attack)."""
        params = parameters_from_c(c=8.0, n=1_000, delta=3, nu=0.2)
        result = NakamotoSimulation(
            params,
            adversary=SelfishMiningAdversary(3),
            rng=np.random.default_rng(37),
            snapshot_interval=200,
        ).run(25_000)
        assert result.consistency.max_violation_depth <= 5
