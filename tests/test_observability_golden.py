"""Disabled-path golden digests: instrumentation off must be bit-identical.

The observability layer's contract is *zero interference when off*: with no
tracer or metrics registry installed (the default), every engine must
produce exactly the bytes it produced before the instrumentation existed.
The digests below were captured on v1.7.0 — the last release with no
instrumentation call sites at all — over a (nu, Delta, strategy) grid of
the batch and scenario engines, the dynamics subsystem (passive partition
batch + eclipse scenario), and the rare-event estimators.  Any drift in
these hashes means the "disabled" path is not actually a no-op.

The digest helper is :func:`repro.observability.digest_arrays` itself
(name + dtype + shape + raw bytes, names sorted), so the golden pins and
the runner's manifest ``result_digest`` fields share one definition.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.observability import METRICS, TRACE, digest_arrays
from repro.params import parameters_from_c
from repro.simulation import (
    BatchSimulation,
    DynamicsSchedule,
    PartitionEvent,
    PartitionScenario,
    RareEventSimulation,
    ScenarioSimulation,
    TimeVaryingDelayModel,
)

TRIALS, ROUNDS = 12, 900
GRID = [(0.15, 2), (0.25, 3), (0.40, 4)]
STRATEGIES = ["private_chain", "selfish_mining", "max_delay"]

#: Captured on v1.7.0 (pre-instrumentation) with the exact workloads below.
GOLDEN_DIGESTS = {
    "batch:nu=0.15:delta=2": "a1039641e123d9a158a5a705c66b023ef222b551fbc0d7e93c203b517a4e2376",
    "scenario:private_chain:nu=0.15:delta=2": "e921bb0c9ab015e7a633f4c1e4db1465d239698d3aada6b9a8510f73cbe71387",
    "scenario:selfish_mining:nu=0.15:delta=2": "bc55f0e8c1f03eadec8692e04f81a7b241925098de4107e04e3bba55b7c89f6c",
    "scenario:max_delay:nu=0.15:delta=2": "920ae131e1b614f881c9b419e4f06460d22e6fcad5d724b28bb7d3351af63148",
    "batch:nu=0.25:delta=3": "f36926a6eebe34fc202b2369948cd0251fa94a5afb5e6672249cd68cf437a93f",
    "scenario:private_chain:nu=0.25:delta=3": "e8253f999bd7e8d550635adb0128c78d113234ebf4a51f728c4f611769a478fc",
    "scenario:selfish_mining:nu=0.25:delta=3": "51fcb845a56733d5edf1e1d2bd7f37c2d4fa35fc9487c500b6ef98f68a0b65d2",
    "scenario:max_delay:nu=0.25:delta=3": "64475871495a2350a3c2ecfbed8281be3e8bff0a050d7ac8529eb380cd27420e",
    "batch:nu=0.4:delta=4": "b0a154b309ebb9acd7573bbce83d4309e44988ce941f5786ae5977350a1ffe43",
    "scenario:private_chain:nu=0.4:delta=4": "1563b6abc1ea26e00d1623b2bc9e72c71512e2f100039834f441201179e109b9",
    "scenario:selfish_mining:nu=0.4:delta=4": "a156845248b70ff4043bab6b1273730f0cb61a4c14422e787cac658645b57e62",
    "scenario:max_delay:nu=0.4:delta=4": "2296b757554806482f822184ecad6c8d79c11c7e0fc63db33162882655a91428",
    "dynamics:partition_batch": "5a705b22eff84624600b0214580c7a1beb78f5e00f66d6937d2614e80a9f3dd0",
    "dynamics:eclipse_scenario": "acb524c1aa576250eb274e1e815702ca57d98454a88208aff66e9fb6043ad2bf",
    "rare:plain_depth6": "fa80fa7fddc6fb2b31bc48eec7a00b99a565a4b44750300de953cbdc9dde5bdd",
    "rare:tilted_depth8": "0810a7f78e3a6b9110919b21b64fdd8f235fafcafc34094e6bbf44ce30f5fa8f",
}


@pytest.fixture(autouse=True)
def _instrumentation_disabled():
    """The golden contract is about the *default* state: nothing installed."""
    assert not TRACE.enabled, "a global tracer is installed (REPRO_TRACE=1?)"
    assert not METRICS.enabled
    yield


def _json_digest(values) -> str:
    return hashlib.sha256(json.dumps(values, sort_keys=True).encode()).hexdigest()


@pytest.mark.parametrize("nu,delta", GRID)
def test_batch_engine_matches_golden(nu, delta):
    params = parameters_from_c(c=2.0, n=400, delta=delta, nu=nu)
    result = BatchSimulation(params, rng=2026).run(TRIALS, ROUNDS)
    digest = digest_arrays(
        convergence_opportunities=result.convergence_opportunities,
        honest_blocks=result.honest_blocks,
        adversary_blocks=result.adversary_blocks,
        worst_deficits=result.worst_deficits,
    )
    assert digest == GOLDEN_DIGESTS[f"batch:nu={nu}:delta={delta}"]


@pytest.mark.parametrize("nu,delta", GRID)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_scenario_engine_matches_golden(strategy, nu, delta):
    params = parameters_from_c(c=2.0, n=400, delta=delta, nu=nu)
    result = ScenarioSimulation(params, strategy, rng=2026).run(TRIALS, ROUNDS)
    digest = digest_arrays(
        releases=result.releases,
        abandons=result.abandons,
        deepest_forks=result.deepest_forks,
        orphaned_honest=result.orphaned_honest,
        withheld_final=result.withheld_final,
        final_public_heights=result.final_public_heights,
        worst_deficits=result.worst_deficits,
        convergence_opportunities=result.convergence_opportunities,
    )
    assert digest == GOLDEN_DIGESTS[f"scenario:{strategy}:nu={nu}:delta={delta}"]


def test_dynamics_partition_batch_matches_golden():
    params = parameters_from_c(c=2.0, n=400, delta=3, nu=0.3)
    model = TimeVaryingDelayModel(DynamicsSchedule([PartitionEvent(200, 60)]))
    result = BatchSimulation(params, rng=2026, delay_model=model).run(
        TRIALS, ROUNDS
    )
    digest = digest_arrays(
        convergence_opportunities=result.convergence_opportunities,
        honest_blocks=result.honest_blocks,
        adversary_blocks=result.adversary_blocks,
        worst_deficits=result.worst_deficits,
    )
    assert digest == GOLDEN_DIGESTS["dynamics:partition_batch"]


def test_dynamics_eclipse_scenario_matches_golden():
    params = parameters_from_c(c=2.0, n=400, delta=3, nu=0.3)
    eclipse = PartitionScenario(
        name="golden_eclipse",
        kind="private_chain",
        honest_delay=None,
        target_depth=6,
        give_up_deficit=None,
        partition_start=200,
        partition_duration=60,
    )
    result = ScenarioSimulation(
        params,
        eclipse,
        rng=2026,
        delay_model=TimeVaryingDelayModel(eclipse.dynamics_schedule()),
    ).run(TRIALS, ROUNDS)
    digest = digest_arrays(
        releases=result.releases,
        deepest_forks=result.deepest_forks,
        final_public_heights=result.final_public_heights,
        worst_deficits=result.worst_deficits,
    )
    assert digest == GOLDEN_DIGESTS["dynamics:eclipse_scenario"]


def test_rare_event_plain_matches_golden():
    params = parameters_from_c(c=2.0, n=400, delta=3, nu=0.3)
    plain = RareEventSimulation(params, depth=6, rng=2026).run_plain(400, 300)
    digest = _json_digest(
        [plain.probability, plain.ci_low, plain.ci_high, plain.hits]
    )
    assert digest == GOLDEN_DIGESTS["rare:plain_depth6"]


def test_rare_event_tilted_matches_golden():
    params = parameters_from_c(c=2.0, n=400, delta=3, nu=0.3)
    tilted = RareEventSimulation(params, depth=8, rng=2026).run_tilted(
        256, 300, pilot_trials=64, max_iterations=4
    )
    digest = _json_digest(
        [
            tilted.probability,
            tilted.ci_low,
            tilted.ci_high,
            tilted.hits,
            tilted.effective_sample_size,
            tilted.pilot_iterations,
            None if tilted.tilt is None else tilted.tilt.payload(),
        ]
    )
    assert digest == GOLDEN_DIGESTS["rare:tilted_depth8"]
