"""The unified chunk-size configuration (repro.backend.chunking).

One knob (``REPRO_CHUNK_CELLS`` / explicit overrides, validated in one
place) feeds every bounded-memory execution path: the Bernoulli summation
fallback, the rare-event estimators and the streaming trial engine.  These
tests pin the resolution precedence, the validation failure modes and the
routing into the engines that consume it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    CHUNK_ENV_VAR,
    DEFAULT_CHUNK_CELLS,
    chunk_sizes,
    chunk_trials,
    resolve_chunk_cells,
)
from repro.errors import BackendError
from repro.params import parameters_from_c
from repro.simulation import rare_events
from repro.simulation.rare_events import RareEventSimulation


@pytest.fixture
def params():
    return parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)


class TestResolveChunkCells:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(CHUNK_ENV_VAR, raising=False)
        assert resolve_chunk_cells() == DEFAULT_CHUNK_CELLS

    def test_explicit_override_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV_VAR, "123")
        assert resolve_chunk_cells(777) == 777

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV_VAR, "4096")
        assert resolve_chunk_cells() == 4096

    def test_empty_env_falls_through_to_default(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV_VAR, "")
        assert resolve_chunk_cells() == DEFAULT_CHUNK_CELLS

    @pytest.mark.parametrize("bad", [0, -1, -1_000_000])
    def test_non_positive_rejected(self, bad):
        with pytest.raises(BackendError, match="positive"):
            resolve_chunk_cells(bad)

    def test_non_integer_rejected(self):
        with pytest.raises(BackendError, match="positive integer"):
            resolve_chunk_cells(2.5)

    @pytest.mark.parametrize("bad", ["zero", "2.5", "-3"])
    def test_invalid_env_rejected_with_source(self, monkeypatch, bad):
        monkeypatch.setenv(CHUNK_ENV_VAR, bad)
        with pytest.raises(BackendError, match=CHUNK_ENV_VAR):
            resolve_chunk_cells()


class TestChunkPlanning:
    def test_chunk_trials_floor(self):
        assert chunk_trials(100, cells=1000) == 10

    def test_chunk_trials_never_zero(self):
        assert chunk_trials(1_000_000, cells=1) == 1

    @pytest.mark.parametrize("trials,rounds,cells", [(0, 10, 100), (37, 10, 100), (100, 7, 13), (5, 1000, 1)])
    def test_chunk_sizes_cover_exactly(self, trials, rounds, cells):
        sizes = chunk_sizes(trials, rounds, cells=cells)
        assert sum(sizes) == trials
        per_chunk = chunk_trials(rounds, cells)
        assert all(0 < size <= per_chunk for size in sizes)

    def test_chunk_sizes_respects_env(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV_VAR, "50")
        assert chunk_sizes(25, 10) == [5, 5, 5, 5, 5]


class TestRareEventRouting:
    """The rare-event estimators consume the shared chunk configuration."""

    def test_explicit_ctor_override_wins(self, params):
        estimator = RareEventSimulation(params, 4, rng=0, chunk_cells=900)
        assert estimator._chunk_cells() == 900

    def test_legacy_module_hook_still_honored(self, params, monkeypatch):
        monkeypatch.setattr(rare_events, "_RARE_CHUNK_CELLS", 1234)
        estimator = RareEventSimulation(params, 4, rng=0)
        assert estimator._chunk_cells() == 1234

    def test_env_reaches_estimator(self, params, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV_VAR, "2048")
        estimator = RareEventSimulation(params, 4, rng=0)
        assert estimator._chunk_cells() == 2048

    def test_default_without_overrides(self, params, monkeypatch):
        monkeypatch.delenv(CHUNK_ENV_VAR, raising=False)
        estimator = RareEventSimulation(params, 4, rng=0)
        assert estimator._chunk_cells() == DEFAULT_CHUNK_CELLS

    def test_invalid_ctor_chunk_rejected(self, params):
        with pytest.raises(BackendError):
            RareEventSimulation(params, 4, rng=0, chunk_cells=0)

    def test_tiny_chunks_still_estimate(self, params):
        """A one-trial chunk budget degrades throughput, never correctness:
        the plain estimator still produces a coherent Wilson interval."""
        result = RareEventSimulation(params, 2, rng=3, chunk_cells=1).run_plain(
            200, 120
        )
        assert result.trials == 200
        assert 0.0 <= result.ci_low <= result.probability <= result.ci_high <= 1.0
        assert result.hits == int(round(result.probability * 200))
