"""Tests for repro.analysis.attack_sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ATTACK_SCENARIOS, attack_success_grid, attack_surface_sweep
from repro.errors import AnalysisError
from repro.simulation import ExperimentRunner, Scenario

NU_VALUES = (0.2, 0.42)
DELTA_VALUES = (1, 3)
SHAPE_KWARGS = dict(c=1.0, n=400, trials=4, rounds=800, seed=5)


class TestAttackSurfaceSweep:
    def test_rows_cover_the_grid(self):
        rows = attack_surface_sweep(
            ATTACK_SCENARIOS, NU_VALUES, DELTA_VALUES, **SHAPE_KWARGS
        )
        assert len(rows) == len(ATTACK_SCENARIOS) * len(NU_VALUES) * len(DELTA_VALUES)
        cells = {(row["scenario"], row["nu"], row["delta"]) for row in rows}
        assert ("private_chain", 0.42, 3) in cells
        for row in rows:
            assert 0.0 <= row["attack_success_probability"] <= 1.0
            assert (
                row["attack_success_ci95_low"]
                <= row["attack_success_probability"]
                <= row["attack_success_ci95_high"]
            )
            assert row["mean_deepest_fork"] <= row["max_deepest_fork"]
            assert isinstance(row["neat_bound_satisfied"], bool)
            assert isinstance(row["attack_predicted"], bool)

    def test_attack_region_dominates_safe_region(self):
        """At c = 1 the withholding attack succeeds far more often at
        nu = 0.42 than at nu = 0.2 (where it mostly gives up)."""
        rows = attack_surface_sweep(
            ("private_chain",),
            NU_VALUES,
            (3,),
            c=1.0,
            n=400,
            trials=8,
            rounds=2_000,
            seed=5,
        )
        by_nu = {row["nu"]: row for row in rows}
        assert (
            by_nu[0.42]["attack_success_probability"]
            > by_nu[0.2]["attack_success_probability"]
        )
        assert by_nu[0.42]["mean_deepest_fork"] > by_nu[0.2]["mean_deepest_fork"]

    def test_runner_reuse_and_caching(self, tmp_path):
        runner = ExperimentRunner(base_seed=5, cache_dir=str(tmp_path))
        first = attack_surface_sweep(
            ("selfish_mining",), NU_VALUES, (1,), runner=runner, **SHAPE_KWARGS
        )
        assert runner.cache_misses == len(NU_VALUES)
        second = attack_surface_sweep(
            ("selfish_mining",), NU_VALUES, (1,), runner=runner, **SHAPE_KWARGS
        )
        assert runner.cache_hits == len(NU_VALUES)
        for left, right in zip(first, second):
            assert left["attack_success_probability"] == pytest.approx(
                right["attack_success_probability"]
            )

    def test_input_validation(self):
        with pytest.raises(AnalysisError):
            attack_surface_sweep((), NU_VALUES, DELTA_VALUES, **SHAPE_KWARGS)
        with pytest.raises(AnalysisError):
            attack_surface_sweep(ATTACK_SCENARIOS, (), DELTA_VALUES, **SHAPE_KWARGS)
        with pytest.raises(AnalysisError):
            attack_surface_sweep(
                ATTACK_SCENARIOS, NU_VALUES, DELTA_VALUES, c=1.0, n=400,
                trials=0, rounds=800,
            )
        with pytest.raises(AnalysisError):
            attack_surface_sweep(
                ATTACK_SCENARIOS, NU_VALUES, DELTA_VALUES, c=1.0, n=400,
                trials=4, rounds=0,
            )


class TestAttackSuccessGrid:
    def test_grid_shapes_and_consistency(self):
        grids = attack_success_grid(
            "private_chain", NU_VALUES, DELTA_VALUES, **SHAPE_KWARGS
        )
        shape = (len(NU_VALUES), len(DELTA_VALUES))
        for name in (
            "success_probability",
            "success_ci_low",
            "success_ci_high",
            "mean_deepest_fork",
            "deepest_fork_ci_low",
            "deepest_fork_ci_high",
            "mean_releases",
        ):
            assert grids[name].shape == shape
        assert grids["max_deepest_fork"].shape == shape
        assert grids["max_deepest_fork"].dtype == np.int64
        assert np.array_equal(grids["nu_values"], np.asarray(NU_VALUES))
        assert np.array_equal(grids["delta_values"], np.asarray(DELTA_VALUES))
        assert (grids["success_ci_low"] <= grids["success_probability"]).all()
        assert (grids["success_probability"] <= grids["success_ci_high"]).all()
        assert (grids["success_probability"] >= 0).all()
        assert (grids["success_ci_high"] <= 1).all()
        assert (grids["mean_deepest_fork"] <= grids["max_deepest_fork"]).all()

    def test_matches_runner_pointwise(self):
        """Grid cells are exactly the runner's seeded per-point results."""
        from repro.params import parameters_from_c

        grids = attack_success_grid(
            "selfish_mining", (0.42,), (3,), **SHAPE_KWARGS
        )
        runner = ExperimentRunner(base_seed=SHAPE_KWARGS["seed"])
        params = parameters_from_c(c=1.0, n=400, delta=3, nu=0.42)
        point = runner.run_scenario_point(
            params, "selfish_mining", SHAPE_KWARGS["trials"], SHAPE_KWARGS["rounds"]
        )
        assert grids["success_probability"][0, 0] == pytest.approx(
            point.attack_success_probability
        )
        assert grids["mean_deepest_fork"][0, 0] == pytest.approx(
            point.mean_deepest_fork
        )

    def test_custom_success_depth_is_monotone(self):
        shallow = attack_success_grid(
            "private_chain", (0.42,), (3,), success_depth=1, **SHAPE_KWARGS
        )
        deep = attack_success_grid(
            "private_chain", (0.42,), (3,), success_depth=20, **SHAPE_KWARGS
        )
        assert (
            deep["success_probability"] <= shallow["success_probability"]
        ).all()

    def test_accepts_scenario_instances(self):
        scenario = Scenario(
            name="pc_shallow_grid", kind="private_chain", target_depth=2
        )
        grids = attack_success_grid(scenario, (0.42,), (1,), **SHAPE_KWARGS)
        assert grids["success_probability"].shape == (1, 1)

    def test_input_validation(self):
        with pytest.raises(AnalysisError):
            attack_success_grid("private_chain", (), DELTA_VALUES, **SHAPE_KWARGS)
