"""Tests for repro.simulation.protocol: the full round-based simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.params import parameters_from_c
from repro.simulation import (
    MaxDelayAdversary,
    NakamotoSimulation,
    PassiveAdversary,
    PrivateChainAdversary,
    SimulationResult,
)


class TestConstruction:
    def test_adversary_delta_must_match(self, small_params):
        with pytest.raises(SimulationError):
            NakamotoSimulation(small_params, adversary=PassiveAdversary(delta=7))

    def test_rejects_bad_snapshot_interval(self, small_params):
        with pytest.raises(SimulationError):
            NakamotoSimulation(small_params, snapshot_interval=0)

    def test_rejects_nonpositive_rounds(self, small_params, rng):
        simulation = NakamotoSimulation(small_params, rng=rng)
        with pytest.raises(SimulationError):
            simulation.run(0)


class TestBasicRun:
    def test_result_shape(self, small_params, rng):
        result = NakamotoSimulation(small_params, rng=rng, snapshot_interval=500).run(2_000)
        assert isinstance(result, SimulationResult)
        assert result.rounds == 2_000
        assert len(result.honest_blocks_per_round) == 2_000
        assert len(result.records) == 2_000
        assert result.total_honest_blocks == int(result.honest_blocks_per_round.sum())
        assert result.total_adversary_blocks == int(result.adversary_blocks_per_round.sum())
        assert len(result.chain_snapshots) == len(result.snapshot_rounds)

    def test_final_chain_starts_at_genesis_and_is_connected(self, small_params, rng):
        result = NakamotoSimulation(small_params, rng=rng).run(2_000)
        assert result.final_chain[0] == 0
        assert result.final_height == len(result.final_chain) - 1
        assert result.final_height > 0

    def test_determinism_under_fixed_seed(self, small_params):
        first = NakamotoSimulation(
            small_params, rng=np.random.default_rng(99)
        ).run(3_000)
        second = NakamotoSimulation(
            small_params, rng=np.random.default_rng(99)
        ).run(3_000)
        assert np.array_equal(first.honest_blocks_per_round, second.honest_blocks_per_round)
        assert first.final_chain == second.final_chain
        assert first.convergence_opportunities == second.convergence_opportunities

    def test_summary_keys(self, small_params, rng):
        summary = NakamotoSimulation(small_params, rng=rng).run(1_000).summary()
        for key in (
            "rounds",
            "c",
            "nu",
            "convergence_opportunities",
            "adversary_blocks",
            "empirical_convergence_rate",
            "theoretical_convergence_rate",
            "max_violation_depth",
            "chain_quality",
        ):
            assert key in summary


class TestAgreementWithTheory:
    def test_honest_rate_matches_binomial_mean(self, small_params, rng):
        result = NakamotoSimulation(small_params, rng=rng).run(30_000)
        expected = round(small_params.honest_count) * small_params.p
        assert result.honest_blocks_per_round.mean() == pytest.approx(expected, rel=0.05)

    def test_adversary_rate_matches_eq_27(self, small_params, rng):
        result = NakamotoSimulation(small_params, rng=rng).run(30_000)
        assert result.empirical_adversary_rate == pytest.approx(
            small_params.beta, rel=0.1
        )

    def test_convergence_rate_matches_eq_44(self, small_params, rng):
        result = NakamotoSimulation(small_params, rng=rng).run(60_000)
        assert result.empirical_convergence_rate == pytest.approx(
            small_params.convergence_opportunity_probability, rel=0.08
        )

    def test_lemma1_margin_positive_in_safe_regime(self, small_params, rng):
        # c = 4 with nu = 0.2 is far above the neat bound: convergence
        # opportunities must outnumber adversarial blocks.
        result = NakamotoSimulation(small_params, rng=rng).run(30_000)
        assert result.convergence_exceeds_adversary

    def test_growth_rate_bounded_by_alpha(self, small_params, rng):
        # The longest chain can grow by at most one block per round, and at
        # most at the rate honest+adversarial blocks appear.
        result = NakamotoSimulation(small_params, rng=rng).run(10_000)
        assert 0.0 < result.growth_rate <= 1.0
        assert result.growth_rate <= (
            small_params.alpha + small_params.beta
        ) * 1.2 + 0.01


class TestAdversaryBehaviour:
    def test_max_delay_slows_growth(self, rng):
        params = parameters_from_c(c=1.0, n=1_000, delta=5, nu=0.2)
        passive = NakamotoSimulation(
            params, adversary=PassiveAdversary(5), rng=np.random.default_rng(1)
        ).run(15_000)
        delayed = NakamotoSimulation(
            params, adversary=MaxDelayAdversary(5), rng=np.random.default_rng(1)
        ).run(15_000)
        assert delayed.growth_rate < passive.growth_rate

    def test_consistency_holds_in_safe_regime(self, rng):
        params = parameters_from_c(c=6.0, n=1_000, delta=3, nu=0.2)
        result = NakamotoSimulation(
            params,
            adversary=PrivateChainAdversary(3, target_depth=6),
            rng=np.random.default_rng(3),
            snapshot_interval=200,
        ).run(30_000)
        # Deep reorganisations must be rare/absent when c is far above the bound.
        assert result.consistency.max_violation_depth <= 6

    def test_attack_breaks_consistency_in_attack_regime(self, attack_params):
        result = NakamotoSimulation(
            attack_params,
            adversary=PrivateChainAdversary(attack_params.delta, target_depth=6),
            rng=np.random.default_rng(5),
            snapshot_interval=200,
        ).run(20_000)
        assert result.adversary_releases > 0
        assert result.consistency.max_violation_depth >= 6
        # In this regime adversarial blocks also outnumber convergence opportunities.
        assert not result.convergence_exceeds_adversary

    def test_chain_quality_degrades_under_attack(self, attack_params):
        result = NakamotoSimulation(
            attack_params,
            adversary=PrivateChainAdversary(attack_params.delta, target_depth=3),
            rng=np.random.default_rng(5),
        ).run(15_000)
        honest_share = attack_params.mu
        assert result.quality < honest_share
