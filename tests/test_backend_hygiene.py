"""Lint-style guard: no direct NumPy tensor-op call sites in engine hot paths.

The backend abstraction only holds if nobody quietly reintroduces a
module-level ``np.`` call into a refactored kernel.  This test parses the
four engine modules and asserts that every designated hot-path function
touches ``np``/``numpy`` only through the allowlisted host-boundary names
(type annotations and the :class:`numpy.random.Generator` seeding surface).
Everything tensor-shaped must go through the dispatched backend handle or
Python operators, which dispatch through the array type itself.

Failing this test means a new ``np.<op>`` crept into a hot path — route it
through :func:`repro.backend.get_backend` (adding the op to
:data:`repro.backend.ARRAY_OPS` if it is genuinely new) instead of widening
the allowlist.

The guard also pins the observability layer's cost model: hot paths may
touch instrumentation only through the module-level no-op handles
(``_TRACE`` / ``_METRICS`` — one ``None`` check when disabled), never
through the public names or a live tracer object, and never from inside a
``for``/``while`` loop, so steady-state kernels stay instrumentation-free
per iteration even when tracing is on.
"""

from __future__ import annotations

import ast
import inspect

import pytest

import repro.simulation.batch as batch
import repro.simulation.dynamics as dynamics
import repro.simulation.rare_events as rare_events
import repro.simulation.scenarios as scenarios
import repro.simulation.streaming as streaming
import repro.simulation.topology as topology

#: Names the engines may import NumPy under.
NUMPY_ALIASES = {"np", "numpy"}

#: ``np.<attr>`` accesses that remain legitimate inside hot paths: type
#: annotations (``np.ndarray``) and the host RNG surface
#: (``np.random.Generator`` annotations — all *draws* go through the
#: backend's host-seeded bridge).
ALLOWED_ATTRS = {"ndarray", "random"}

#: The hot-path functions the guard covers, as (module, qualname) pairs.
HOT_PATHS = [
    (batch, "draw_mining_traces"),
    (batch, "_bernoulli_counts"),
    (batch, "count_convergence_opportunities_batch"),
    (batch, "_opportunity_mask_ws"),
    (batch, "worst_window_deficits"),
    (batch, "_worst_window_deficits_ws"),
    (batch, "BatchSimulation.run_traces"),
    (scenarios, "_max_window_successes"),
    (scenarios, "ScenarioSimulation.run_traces"),
    (scenarios, "ScenarioSimulation._scan"),
    (topology, "convergence_opportunity_mask_with_delays"),
    (topology, "PeerGraphTopology.distances"),
    (topology, "FixedDeltaDelayModel.draw_delays"),
    (topology, "UniformDelayModel.draw_delays"),
    (topology, "TruncatedGeometricDelayModel.draw_delays"),
    (topology, "PeerGraphDelayModel.draw_delays"),
    (dynamics, "compile_eclipse_offsets"),
    (dynamics, "_epoch_distances"),
    (dynamics, "_masked_min_plus"),
    (dynamics, "compile_schedule"),
    (dynamics, "TimeVaryingDelayModel.draw_delays"),
    (rare_events, "draw_tilted_traces"),
    (streaming, "StreamingBatchSimulation._stream"),
    (streaming, "StreamingScenarioSimulation._stream"),
    (streaming, "StreamingAccumulator.update"),
    (streaming, "ScenarioStreamingAccumulator.update"),
    (streaming, "OnlineMoments.update"),
    (streaming, "OnlineMoments.combine"),
    (streaming, "DeficitHistogram.update"),
]


def _resolve_function_node(module, qualname: str) -> ast.FunctionDef:
    """The AST node for ``qualname`` (``Class.method`` or plain function)."""
    tree = ast.parse(inspect.getsource(module))
    parts = qualname.split(".")
    scope = tree.body
    node = None
    for part in parts:
        node = next(
            (
                child
                for child in scope
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
                and child.name == part
            ),
            None,
        )
        assert node is not None, f"{module.__name__}.{qualname} not found"
        scope = getattr(node, "body", [])
    assert isinstance(node, ast.FunctionDef)
    return node


def _numpy_violations(node: ast.FunctionDef) -> list:
    violations = []
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Attribute)
            and isinstance(child.value, ast.Name)
            and child.value.id in NUMPY_ALIASES
            and child.attr not in ALLOWED_ATTRS
        ):
            violations.append(f"np.{child.attr} at line {child.lineno}")
        # A bare `np`/`numpy` passed around (e.g. as a backend stand-in)
        # defeats the abstraction just as thoroughly as an attribute call.
        if (
            isinstance(child, ast.Name)
            and child.id in NUMPY_ALIASES
            and isinstance(child.ctx, ast.Load)
            and not _is_attribute_base(child, node)
        ):
            violations.append(f"bare {child.id} at line {child.lineno}")
    return violations


def _is_attribute_base(name: ast.Name, root: ast.FunctionDef) -> bool:
    return any(
        isinstance(parent, ast.Attribute) and parent.value is name
        for parent in ast.walk(root)
    )


@pytest.mark.parametrize(
    "module,qualname",
    HOT_PATHS,
    ids=[f"{module.__name__.split('.')[-1]}:{name}" for module, name in HOT_PATHS],
)
def test_hot_path_has_no_direct_numpy_tensor_ops(module, qualname):
    node = _resolve_function_node(module, qualname)
    violations = _numpy_violations(node)
    assert not violations, (
        f"{module.__name__}.{qualname} bypasses the backend layer: "
        + ", ".join(violations)
    )


def test_guard_actually_detects_violations():
    """The guard must flag a representative smuggled ``np.`` call (meta-test
    so allowlist edits cannot quietly blind it)."""
    source = (
        "def bad(x):\n"
        "    return np.cumsum(x) + np.asarray(x) + len(np.ndarray.__mro__)\n"
    )
    node = ast.parse(source).body[0]
    found = _numpy_violations(node)
    assert any("np.cumsum" in item for item in found)
    assert any("np.asarray" in item for item in found)
    assert not any("np.ndarray" in item for item in found)


# ----------------------------------------------------------------------
# Observability hygiene: handle-only dispatch, no per-iteration calls
# ----------------------------------------------------------------------

#: The module-level no-op handles hot paths may dispatch through.
INSTRUMENTATION_HANDLES = {"_TRACE", "_METRICS"}

#: Public observability names whose appearance inside a hot path means the
#: function bypassed the handle pattern (and with it the zero-overhead
#: disabled path).
FORBIDDEN_INSTRUMENTATION_NAMES = {
    "TRACE",
    "METRICS",
    "Tracer",
    "Metrics",
    "use_tracer",
    "use_metrics",
    "install_from_env",
}


def _instrumentation_violations(node: ast.FunctionDef) -> list:
    """Hot-path instrumentation must go through ``_TRACE``/``_METRICS``."""
    violations = []
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Name)
            and child.id in FORBIDDEN_INSTRUMENTATION_NAMES
        ):
            violations.append(f"{child.id} at line {child.lineno}")
    return violations


def _loop_instrumentation_violations(node: ast.FunctionDef) -> list:
    """No ``_TRACE.span`` / ``_METRICS.*`` call inside a for/while body.

    Spans and counters belong at call boundaries; a per-iteration dispatch
    would execute trials-times-rounds handle checks and, with tracing on,
    allocate a span per round — exactly the overhead the layer promises
    not to add.
    """
    violations = []
    for loop in ast.walk(node):
        if not isinstance(loop, (ast.For, ast.While, ast.AsyncFor)):
            continue
        for child in ast.walk(loop):
            if child is loop:
                continue
            if (
                isinstance(child, ast.Attribute)
                and isinstance(child.value, ast.Name)
                and child.value.id in INSTRUMENTATION_HANDLES
            ):
                violations.append(
                    f"{child.value.id}.{child.attr} inside loop at line "
                    f"{child.lineno}"
                )
    return violations


@pytest.mark.parametrize(
    "module,qualname",
    HOT_PATHS,
    ids=[f"{module.__name__.split('.')[-1]}:{name}" for module, name in HOT_PATHS],
)
def test_hot_path_instrumentation_is_handle_only_and_loop_free(module, qualname):
    node = _resolve_function_node(module, qualname)
    violations = _instrumentation_violations(node)
    violations += _loop_instrumentation_violations(node)
    assert not violations, (
        f"{module.__name__}.{qualname} breaks the zero-overhead "
        "instrumentation contract: " + ", ".join(violations)
    )


#: Runner orchestration paths covered by the instrumentation guard only
#: (they legitimately use NumPy for seeding/persistence, so the tensor-op
#: guard does not apply): spans/counters at call boundaries, and — since
#: grid loops run once per *point* — never from inside a loop body.  All
#: per-item telemetry merging is delegated to
#: :func:`repro.observability.distributed.merge_worker_telemetry`.
INSTRUMENTED_ORCHESTRATION_PATHS = [
    "ExperimentRunner._cached_run",
    "ExperimentRunner._run_grid",
]


@pytest.mark.parametrize("qualname", INSTRUMENTED_ORCHESTRATION_PATHS)
def test_runner_orchestration_instrumentation_is_handle_only_and_loop_free(
    qualname,
):
    import repro.simulation.runner as runner

    node = _resolve_function_node(runner, qualname)
    violations = _instrumentation_violations(node)
    violations += _loop_instrumentation_violations(node)
    assert not violations, (
        f"{runner.__name__}.{qualname} breaks the zero-overhead "
        "instrumentation contract: " + ", ".join(violations)
    )


def test_instrumented_modules_bind_private_handles():
    """Engine modules must hold the handles under the private names the
    loop guard inspects — a differently-named import would blind it."""
    import repro.backend.workspace as workspace

    engine_modules = (
        batch,
        scenarios,
        topology,
        dynamics,
        rare_events,
        streaming,
    )
    for module in (*engine_modules, workspace):
        bound = INSTRUMENTATION_HANDLES & set(vars(module))
        assert "_METRICS" in bound, f"{module.__name__} lacks _METRICS handle"
    from repro.observability import METRICS, TRACE

    for module in engine_modules:
        assert vars(module)["_TRACE"] is TRACE
        assert vars(module)["_METRICS"] is METRICS


def test_instrumentation_guard_actually_detects_violations():
    """Meta-test: the two new detectors must flag planted violations."""
    source = (
        "def bad(x):\n"
        "    with use_tracer() as t:\n"
        "        for item in x:\n"
        "            with _TRACE.span('per-item'):\n"
        "                _METRICS.increment('items')\n"
        "    return TRACE\n"
    )
    node = ast.parse(source).body[0]
    names = _instrumentation_violations(node)
    assert any("use_tracer" in item for item in names)
    assert any("TRACE at" in item for item in names)
    loops = _loop_instrumentation_violations(node)
    assert any("_TRACE.span inside loop" in item for item in loops)
    assert any("_METRICS.increment inside loop" in item for item in loops)

    clean = (
        "def good(x):\n"
        "    with _TRACE.span('call'):\n"
        "        for item in x:\n"
        "            total = item\n"
        "    _METRICS.increment('calls')\n"
        "    return total\n"
    )
    clean_node = ast.parse(clean).body[0]
    assert not _instrumentation_violations(clean_node)
    assert not _loop_instrumentation_violations(clean_node)
