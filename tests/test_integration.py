"""Integration tests: the layers working together, end to end."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    ConsistencyAnalyzer,
    ProtocolParameters,
    SuffixChain,
    neat_bound,
    nu_max_neat_bound,
    parameters_from_c,
)
from repro.analysis import figure1_series, validate_expectations
from repro.core.concat_chain import ConcatChain
from repro.markov import mixing_time, sample_path
from repro.simulation import (
    NakamotoSimulation,
    PassiveAdversary,
    PrivateChainAdversary,
)


class TestPublicApi:
    def test_top_level_exports_work_together(self):
        params = parameters_from_c(c=5.0, n=10_000, delta=4, nu=0.25)
        assert params.c > neat_bound(params.nu)
        verdict = ConsistencyAnalyzer(params).verdict()
        assert verdict.satisfies_neat_bound
        chain = SuffixChain(params)
        assert sum(chain.closed_form_stationary().values()) == pytest.approx(1.0)

    def test_version_exposed(self):
        import repro

        assert repro.__version__


class TestMarkovChainPipelines:
    def test_suffix_chain_walk_agrees_with_concat_chain_probability(self, rng):
        """Random walk on C_F: the fraction of time in the LONG_GAP state times
        alpha1 * alpha_bar^Delta reproduces Eq. (44)."""
        params = parameters_from_c(c=4.0, n=500, delta=2, nu=0.2)
        suffix = SuffixChain(params)
        markov = suffix.to_markov_chain()
        walk = sample_path(markov, 200_000, rng)
        frequencies = walk.frequencies()
        long_gap_label = "HN>=D"
        empirical_long_gap = frequencies[long_gap_label]
        concat = ConcatChain(params)
        expected = empirical_long_gap * params.alpha1 * params.alpha_bar**params.delta
        assert expected == pytest.approx(
            concat.convergence_opportunity_probability(), rel=0.05
        )

    def test_mixing_time_feeds_concentration_bound(self, small_params):
        """The C_F mixing time can be used directly in the Theorem 1 failure bound."""
        markov = SuffixChain(small_params).to_markov_chain()
        tau = mixing_time(markov, epsilon=0.125)
        analyzer = ConsistencyAnalyzer(small_params)
        bound = analyzer.failure_bound(rounds=500_000, mixing_time=float(tau))
        assert 0.0 <= bound.total <= 1.0
        larger = analyzer.failure_bound(rounds=5_000_000, mixing_time=float(tau))
        assert larger.total <= bound.total


class TestTheoryMeetsSimulation:
    def test_expected_counts_match_simulation(self, rng):
        params = parameters_from_c(c=3.0, n=2_000, delta=2, nu=0.25)
        rounds = 40_000
        analyzer = ConsistencyAnalyzer(params)
        result = NakamotoSimulation(
            params, adversary=PassiveAdversary(params.delta), rng=rng
        ).run(rounds)
        assert result.convergence_opportunities == pytest.approx(
            analyzer.expected_convergence_opportunities(rounds), rel=0.1
        )
        assert result.total_adversary_blocks == pytest.approx(
            analyzer.expected_adversary_blocks(rounds), rel=0.15
        )

    def test_neat_bound_separates_attack_outcomes(self):
        """Simulated withholding attacks: deep reorgs below the bound region,
        none far above it."""
        safe = parameters_from_c(c=8.0, n=800, delta=3, nu=0.15)
        unsafe = parameters_from_c(c=0.4, n=800, delta=3, nu=0.45)
        safe_result = NakamotoSimulation(
            safe,
            adversary=PrivateChainAdversary(3, target_depth=8),
            rng=np.random.default_rng(21),
        ).run(20_000)
        unsafe_result = NakamotoSimulation(
            unsafe,
            adversary=PrivateChainAdversary(3, target_depth=8),
            rng=np.random.default_rng(21),
        ).run(20_000)
        assert safe.c > neat_bound(safe.nu)
        assert unsafe.c < neat_bound(unsafe.nu)
        assert safe_result.consistency.max_violation_depth < 8
        assert unsafe_result.consistency.max_violation_depth >= 8
        assert (
            unsafe_result.adversary_deepest_fork
            > safe_result.adversary_deepest_fork
        )

    def test_figure1_against_simulation_verdicts(self):
        """At a handful of c values, simulated attacks succeed below the red
        curve and the Lemma 1 margin is positive above the magenta curve."""
        for c in (1.0, 4.0):
            nu_ours = nu_max_neat_bound(c)
            safe_nu = max(nu_ours * 0.5, 0.02)
            params = parameters_from_c(c=c, n=1_000, delta=3, nu=safe_nu)
            validation = validate_expectations(
                params, rounds=20_000, rng=np.random.default_rng(int(c * 10))
            )
            assert (
                validation.empirical_convergence_rate
                > validation.empirical_adversary_rate
            )

    def test_figure1_series_matches_parameter_scaling(self):
        """parameters_from_c and the figure's x-axis agree: scaling p to give a
        target c reproduces the same verdicts the closed-form curves give."""
        series = figure1_series(c_values=[0.5, 2.0, 8.0])
        for point in series.points:
            if point.nu_max_ours > 1e-6:
                nu_inside = point.nu_max_ours * 0.9
                params = parameters_from_c(c=point.c, n=10_000, delta=5, nu=nu_inside)
                assert params.c > neat_bound(nu_inside) * 0.999


class TestScaleRobustness:
    def test_paper_scale_pipeline_is_finite(self, paper_params):
        """The full analytical pipeline runs at n=1e5, Delta=1e13 without
        overflow/underflow surprises."""
        analyzer = ConsistencyAnalyzer(paper_params)
        verdict = analyzer.verdict()
        assert math.isfinite(verdict.theorem1_margin_log)
        assert math.isfinite(verdict.theorem2_threshold)
        concat = ConcatChain(paper_params)
        assert math.isfinite(concat.log_convergence_opportunity_probability())
        assert math.isfinite(concat.log_phi_pi_norm_bound())

    def test_small_and_large_delta_consistent_verdicts(self):
        """The neat-bound verdict depends only on c and nu, so changing Delta
        while holding c fixed must not change it."""
        for delta in (1, 5, 1_000):
            params = parameters_from_c(c=3.0, n=10_000, delta=delta, nu=0.3)
            assert ConsistencyAnalyzer(params).satisfies_neat_bound() == (
                3.0 > neat_bound(0.3)
            )
