"""Tests for repro.markov.walk, repro.markov.mixing and repro.markov.spectral."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import MarkovChainError
from repro.markov import (
    FiniteMarkovChain,
    distance_to_stationarity,
    eigenvalue_moduli,
    indicator_sum,
    mixing_time,
    mixing_time_bounds_from_spectrum,
    occupation_frequencies,
    pi_norm,
    relaxation_time,
    sample_path,
    second_largest_eigenvalue_modulus,
    spectral_gap,
    total_variation_distance,
)


@pytest.fixture
def lazy_chain() -> FiniteMarkovChain:
    """A small ergodic chain with a known stationary distribution."""
    return FiniteMarkovChain(
        [[0.6, 0.3, 0.1], [0.2, 0.5, 0.3], [0.1, 0.2, 0.7]], labels=["a", "b", "c"]
    )


class TestWalk:
    def test_path_length_and_labels(self, lazy_chain, rng):
        walk = sample_path(lazy_chain, 500, rng, initial_state="a")
        assert len(walk.states) == 500
        assert set(walk.label_path()) <= {"a", "b", "c"}

    def test_visit_counts_sum_to_length(self, lazy_chain, rng):
        walk = sample_path(lazy_chain, 1_000, rng)
        assert sum(walk.visit_counts().values()) == 1_000

    def test_frequencies_approach_stationary(self, lazy_chain, rng):
        frequencies = occupation_frequencies(lazy_chain, 100_000, rng)
        stationary = lazy_chain.stationary_as_dict()
        for label in ("a", "b", "c"):
            assert frequencies[label] == pytest.approx(stationary[label], abs=0.02)

    def test_indicator_sum(self, lazy_chain, rng):
        walk = sample_path(lazy_chain, 2_000, rng)
        count_a = indicator_sum(walk, lambda label: label == "a")
        assert count_a == walk.visit_counts()["a"]

    def test_rejects_nonpositive_steps(self, lazy_chain, rng):
        with pytest.raises(MarkovChainError):
            sample_path(lazy_chain, 0, rng)

    def test_deterministic_given_seed(self, lazy_chain):
        first = sample_path(lazy_chain, 200, np.random.default_rng(7), initial_state="a")
        second = sample_path(lazy_chain, 200, np.random.default_rng(7), initial_state="a")
        assert np.array_equal(first.states, second.states)


class TestTotalVariationAndMixing:
    def test_total_variation_basic(self):
        assert total_variation_distance([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)
        assert total_variation_distance([0.5, 0.5], [0.5, 0.5]) == pytest.approx(0.0)

    def test_total_variation_shape_mismatch(self):
        with pytest.raises(MarkovChainError):
            total_variation_distance([1.0, 0.0], [1.0, 0.0, 0.0])

    def test_distance_decreases_with_steps(self, lazy_chain):
        distances = [distance_to_stationarity(lazy_chain, steps) for steps in (0, 2, 5, 20)]
        assert distances == sorted(distances, reverse=True)

    def test_mixing_time_definition(self, lazy_chain):
        tau = mixing_time(lazy_chain, epsilon=0.125)
        assert distance_to_stationarity(lazy_chain, tau) <= 0.125
        if tau > 0:
            assert distance_to_stationarity(lazy_chain, tau - 1) > 0.125

    def test_mixing_time_smaller_for_larger_epsilon(self, lazy_chain):
        assert mixing_time(lazy_chain, epsilon=0.25) <= mixing_time(lazy_chain, epsilon=0.01)

    def test_mixing_time_rejects_bad_epsilon(self, lazy_chain):
        with pytest.raises(MarkovChainError):
            mixing_time(lazy_chain, epsilon=0.0)

    def test_periodic_chain_never_mixes(self):
        chain = FiniteMarkovChain([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(MarkovChainError):
            mixing_time(chain, epsilon=0.1, max_steps=64)

    def test_pi_norm_of_stationary_is_one(self, lazy_chain):
        pi = lazy_chain.stationary_distribution()
        assert pi_norm(pi, pi) == pytest.approx(1.0)

    def test_pi_norm_point_mass(self, lazy_chain):
        pi = lazy_chain.stationary_distribution()
        point = lazy_chain.point_distribution("a")
        # ||delta_a||_pi = 1/sqrt(pi(a))
        assert pi_norm(point, pi) == pytest.approx(1.0 / math.sqrt(pi[0]))


class TestSpectral:
    def test_largest_eigenvalue_is_one(self, lazy_chain):
        moduli = eigenvalue_moduli(lazy_chain)
        assert moduli[0] == pytest.approx(1.0)

    def test_spectral_gap_positive_for_ergodic(self, lazy_chain):
        assert 0.0 < spectral_gap(lazy_chain) <= 1.0
        assert relaxation_time(lazy_chain) >= 1.0

    def test_periodic_chain_has_zero_gap(self):
        chain = FiniteMarkovChain([[0.0, 1.0], [1.0, 0.0]])
        assert spectral_gap(chain) == pytest.approx(0.0, abs=1e-12)
        with pytest.raises(MarkovChainError):
            relaxation_time(chain)

    def test_slem_between_zero_and_one(self, lazy_chain):
        assert 0.0 <= second_largest_eigenvalue_modulus(lazy_chain) < 1.0

    def test_spectral_bounds_bracket_true_mixing_time(self, lazy_chain):
        lower, upper = mixing_time_bounds_from_spectrum(lazy_chain, epsilon=0.125)
        tau = mixing_time(lazy_chain, epsilon=0.125)
        assert lower <= tau + 1  # the lower bound is asymptotic; allow 1 step slack
        assert tau <= math.ceil(upper) + 1

    def test_suffix_chain_mixing_is_finite(self, small_params):
        """The paper's C_F chain (small Delta) mixes quickly."""
        from repro.core.suffix_chain import SuffixChain

        markov = SuffixChain(small_params).to_markov_chain()
        tau = mixing_time(markov, epsilon=0.125, max_steps=100_000)
        assert tau >= 1
        assert spectral_gap(markov) > 0.0
