"""Tests for repro.core.concentration: the tail bounds of Section V."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.concentration import (
    ConsistencyFailureBound,
    adversary_upper_tail_bound,
    adversary_upper_tail_log_bound,
    bernoulli_relative_entropy,
    consistency_failure_bound,
    markov_lower_tail_bound,
    markov_lower_tail_log_bound,
    window_for_target_failure,
)
from repro.errors import ParameterError
from repro.params import parameters_from_c


class TestRelativeEntropy:
    def test_zero_at_equal_probabilities(self):
        assert bernoulli_relative_entropy(0.3, 0.3) == pytest.approx(0.0, abs=1e-15)

    def test_positive_otherwise(self):
        assert bernoulli_relative_entropy(0.2, 0.1) > 0.0
        assert bernoulli_relative_entropy(0.05, 0.1) > 0.0

    def test_boundary_values(self):
        assert bernoulli_relative_entropy(0.0, 0.1) == pytest.approx(-math.log(0.9))
        assert bernoulli_relative_entropy(1.0, 0.1) == pytest.approx(-math.log(0.1))

    def test_rejects_invalid_base(self):
        with pytest.raises(ParameterError):
            bernoulli_relative_entropy(0.2, 0.0)
        with pytest.raises(ParameterError):
            bernoulli_relative_entropy(0.2, 1.0)

    @given(
        base=st.floats(min_value=1e-6, max_value=1 - 1e-6),
        inflated=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=300, deadline=None)
    def test_nonnegative(self, base, inflated):
        assert bernoulli_relative_entropy(inflated, base) >= -1e-15


class TestAdversaryTail:
    def test_decays_with_window_length(self, small_params):
        bounds = [
            adversary_upper_tail_bound(small_params, rounds, delta3=0.5)
            for rounds in (100, 1_000, 10_000)
        ]
        assert bounds[0] > bounds[1] > bounds[2]

    def test_log_bound_linear_in_rounds(self, small_params):
        one = adversary_upper_tail_log_bound(small_params, 1_000, 0.5)
        two = adversary_upper_tail_log_bound(small_params, 2_000, 0.5)
        assert two == pytest.approx(2.0 * one, rel=1e-9)

    def test_decays_with_delta3(self, small_params):
        small = adversary_upper_tail_bound(small_params, 1_000, delta3=0.1)
        large = adversary_upper_tail_bound(small_params, 1_000, delta3=1.0)
        assert large < small

    def test_impossible_tail_is_zero(self):
        params = parameters_from_c(c=0.5, n=10, delta=1, nu=0.4)
        # (1 + delta3) p > 1 makes the tail event impossible.
        assert adversary_upper_tail_bound(params, 100, delta3=1e6) == 0.0

    def test_rejects_bad_inputs(self, small_params):
        with pytest.raises(ParameterError):
            adversary_upper_tail_bound(small_params, 0, 0.5)
        with pytest.raises(ParameterError):
            adversary_upper_tail_bound(small_params, 100, 0.0)

    def test_bound_actually_dominates_empirical_tail(self, small_params, rng):
        """The Arratia-Gordon bound must dominate the Monte-Carlo tail frequency."""
        rounds, delta3, trials = 2_000, 0.5, 400
        expected = small_params.beta * rounds
        threshold = (1.0 + delta3) * expected
        adversary_trials = int(round(small_params.adversary_count)) * rounds
        exceedances = 0
        for _ in range(trials):
            total = rng.binomial(adversary_trials, small_params.p)
            if total >= threshold:
                exceedances += 1
        empirical = exceedances / trials
        bound = adversary_upper_tail_bound(small_params, rounds, delta3)
        assert empirical <= bound + 0.05


class TestMarkovTail:
    def test_decays_with_window_length(self, small_params):
        bounds = [
            markov_lower_tail_bound(small_params, rounds, 0.5, mixing_time=10.0)
            for rounds in (1_000, 10_000, 100_000)
        ]
        assert bounds[0] >= bounds[1] >= bounds[2]
        assert bounds[2] < bounds[0]

    def test_larger_mixing_time_weakens_bound(self, small_params):
        tight = markov_lower_tail_log_bound(small_params, 50_000, 0.5, mixing_time=5.0)
        loose = markov_lower_tail_log_bound(small_params, 50_000, 0.5, mixing_time=50.0)
        assert loose > tight

    def test_capped_at_one(self, small_params):
        assert markov_lower_tail_bound(small_params, 1, 0.01, mixing_time=1e6) <= 1.0

    def test_rejects_bad_inputs(self, small_params):
        with pytest.raises(ParameterError):
            markov_lower_tail_bound(small_params, 100, 1.5, mixing_time=10.0)
        with pytest.raises(ParameterError):
            markov_lower_tail_bound(small_params, 100, 0.5, mixing_time=0.0)
        with pytest.raises(ParameterError):
            markov_lower_tail_bound(small_params, 100, 0.5, mixing_time=10.0, phi_pi_norm=0.0)


class TestUnionBound:
    def test_total_is_sum_capped_at_one(self, small_params):
        bound = consistency_failure_bound(
            small_params, 50_000, delta1=0.5, mixing_time=10.0
        )
        assert bound.total == pytest.approx(
            min(1.0, bound.convergence_tail + bound.adversary_tail)
        )

    def test_delta2_delta3_follow_eq_23(self, small_params):
        bound = consistency_failure_bound(
            small_params, 10_000, delta1=0.5, mixing_time=10.0
        )
        assert bound.delta2 == pytest.approx(1.0 - 1.5 ** (-1.0 / 3.0))
        assert bound.delta3 == pytest.approx(1.5 ** (1.0 / 3.0) - 1.0)

    def test_guaranteed_gap_positive_and_linear_in_t(self, small_params):
        short = consistency_failure_bound(small_params, 1_000, 0.5, 10.0)
        long = consistency_failure_bound(small_params, 2_000, 0.5, 10.0)
        assert short.guaranteed_gap > 0.0
        assert long.guaranteed_gap == pytest.approx(2.0 * short.guaranteed_gap, rel=1e-9)

    def test_failure_probability_is_overwhelming_in_t(self, small_params):
        """The defining property of consistency: the bound decays at least
        exponentially, so doubling T at least squares (improves) the bound."""
        first = consistency_failure_bound(small_params, 200_000, 0.5, 10.0)
        second = consistency_failure_bound(small_params, 400_000, 0.5, 10.0)
        if first.total < 1.0:
            assert second.total <= first.total

    def test_window_for_target_failure(self, small_params):
        window = window_for_target_failure(
            small_params, delta1=0.5, mixing_time=10.0, target_probability=0.01
        )
        assert window > 0
        achieved = consistency_failure_bound(small_params, window, 0.5, 10.0).total
        assert achieved <= 0.01
        if window > 1:
            previous = consistency_failure_bound(small_params, window - 1, 0.5, 10.0).total
            assert previous > 0.01

    def test_window_search_rejects_bad_target(self, small_params):
        with pytest.raises(ParameterError):
            window_for_target_failure(small_params, 0.5, 10.0, target_probability=1.5)
