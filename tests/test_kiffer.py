"""Tests for repro.core.kiffer: the comparison with Kiffer et al. (CCS 2018)."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.kiffer import (
    correction_ratio,
    corrected_condition,
    corrected_convergence_rate,
    kiffer_convergence_rate_incorrect,
    kiffer_style_condition_incorrect,
)
from repro.errors import ParameterError
from repro.params import ProtocolParameters, parameters_from_c


class TestRates:
    def test_corrected_rate_matches_eq_44(self, small_params):
        assert corrected_convergence_rate(small_params) == pytest.approx(
            small_params.convergence_opportunity_probability, rel=1e-12
        )

    def test_rates_differ_when_mu_n_p_is_large(self, small_params):
        """At non-negligible mu*n*p the two normalisations disagree measurably."""
        assert kiffer_convergence_rate_incorrect(small_params) != pytest.approx(
            corrected_convergence_rate(small_params), rel=1e-3
        )

    def test_correction_ratio_positive(self, small_params):
        assert correction_ratio(small_params) > 0.0

    def test_correction_ratio_tends_to_one_as_p_shrinks(self):
        # The linearisation error vanishes when mu*n*p -> 0.
        loose = parameters_from_c(c=1.0, n=100, delta=2, nu=0.2)
        tight = parameters_from_c(c=1_000.0, n=100, delta=2, nu=0.2)
        assert abs(correction_ratio(tight) - 1.0) < abs(correction_ratio(loose) - 1.0)
        assert correction_ratio(tight) == pytest.approx(1.0, abs=1e-3)

    def test_incorrect_rate_rejects_saturated_rate(self):
        params = ProtocolParameters(p=0.5, n=10, delta=2, nu=0.2)
        with pytest.raises(ParameterError):
            kiffer_convergence_rate_incorrect(params)


class TestConditions:
    def test_corrected_condition_matches_theorem1(self, small_params):
        from repro.core.bounds import theorem1_condition

        for delta1 in (0.01, 0.5, 2.0):
            assert corrected_condition(small_params, delta1) == theorem1_condition(
                small_params, delta1
            )

    def test_conditions_can_disagree(self):
        """The incorrect normalisation changes the verdict near the boundary:
        there exist parameters where one condition holds and the other fails."""
        params = parameters_from_c(c=1.0, n=100, delta=2, nu=0.2)
        delta1 = 0.01
        boundary_delta1_corrected = (
            corrected_convergence_rate(params) / params.beta - 1.0
        )
        boundary_delta1_incorrect = (
            kiffer_convergence_rate_incorrect(params) / params.beta - 1.0
        )
        assert boundary_delta1_corrected != pytest.approx(
            boundary_delta1_incorrect, rel=1e-3
        )
        assert isinstance(corrected_condition(params, delta1), bool)
        assert isinstance(kiffer_style_condition_incorrect(params, delta1), bool)

    def test_rejects_nonpositive_delta1(self, small_params):
        with pytest.raises(ParameterError):
            corrected_condition(small_params, 0.0)
        with pytest.raises(ParameterError):
            kiffer_style_condition_incorrect(small_params, -1.0)

    @given(
        c=st.floats(min_value=0.5, max_value=50.0),
        nu=st.floats(min_value=0.05, max_value=0.45),
        delta=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=100, deadline=None)
    def test_ratio_positive_and_near_one_for_small_p(self, c, nu, delta):
        params = parameters_from_c(c=c, n=1_000, delta=delta, nu=nu)
        assume(params.honest_count * params.p < 0.5)
        ratio = correction_ratio(params)
        assert ratio > 0.0
        # The relative error is controlled by mu*n*p and Delta*mu*n*p.
        scale = params.honest_count * params.p * (1.0 + 2.0 * delta)
        assert abs(ratio - 1.0) <= max(4.0 * scale, 1e-9)
