"""Tests for repro.errors and the table-rendering edge cases."""

from __future__ import annotations

import math

import pytest

from repro.analysis.tables import format_value, render_mapping, render_table
from repro.errors import (
    AnalysisError,
    MarkovChainError,
    ParameterError,
    ReproError,
    SimulationError,
)


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for error_type in (ParameterError, MarkovChainError, SimulationError, AnalysisError):
            assert issubclass(error_type, ReproError)

    def test_parameter_error_is_value_error(self):
        assert issubclass(ParameterError, ValueError)
        assert issubclass(MarkovChainError, ValueError)

    def test_runtime_flavoured_errors(self):
        assert issubclass(SimulationError, RuntimeError)
        assert issubclass(AnalysisError, RuntimeError)

    def test_catching_base_class(self):
        with pytest.raises(ReproError):
            raise SimulationError("boom")


class TestFormatValue:
    def test_booleans(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_integers_passthrough(self):
        assert format_value(42) == "42"

    def test_zero_and_specials(self):
        assert format_value(0.0) == "0"
        # NaN marks a non-estimable statistic (e.g. a single-trial CI
        # half-width) and must read as such, not as a number.
        assert format_value(float("nan")) == "n/a"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("-inf")) == "-inf"

    def test_small_values_use_scientific_notation(self):
        rendered = format_value(1.23e-7)
        assert "e-07" in rendered

    def test_large_values_use_scientific_notation(self):
        rendered = format_value(4.56e9)
        assert "e+09" in rendered

    def test_moderate_values_use_fixed_notation(self):
        assert "e" not in format_value(3.14159)

    def test_strings_passthrough(self):
        assert format_value("hello") == "hello"


class TestRenderTable:
    def test_missing_column_renders_empty(self):
        text = render_table([{"a": 1, "b": 2}, {"a": 3}], columns=["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[-1].startswith("3")

    def test_explicit_column_order_respected(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_column_widths_accommodate_long_values(self):
        text = render_table([{"name": "x" * 30, "value": 1}])
        header, separator, row = text.splitlines()
        assert len(separator) >= 30

    def test_render_mapping_preserves_insertion_order(self):
        text = render_mapping({"zeta": 1, "alpha": 2})
        lines = text.splitlines()
        assert lines[2].startswith("zeta")
        assert lines[3].startswith("alpha")
