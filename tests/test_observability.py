"""Unit and integration tests for :mod:`repro.observability`.

Covers the four pieces of the layer: the tracer (span nesting, attribute
stamping, the shared null span of the disabled path), the metrics registry
(counters, gauges, snapshots, handle dispatch), the run-manifest schema
(record round-trips through a JSONL log, validation failures), and the
trajectory schema (appends, legacy migration).  The integration half drives
the :class:`~repro.simulation.ExperimentRunner` end to end: cache
hit/miss/version-skip accounting, manifest provenance per ``run_*`` call,
and the engine/workspace counters the instrumented modules feed.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro._version import __version__
from repro.errors import ObservabilityError
from repro.observability import (
    MANIFEST_SCHEMA,
    METRICS,
    NULL_SPAN,
    TRACE,
    TRAJECTORY_SCHEMA,
    Metrics,
    RunLog,
    Tracer,
    digest_arrays,
    install_from_env,
    load_trajectory,
    manifest_record,
    migrate_legacy_entries,
    read_run_log,
    resolve_run_log,
    resolve_trajectory_path,
    trajectory_record,
    use_metrics,
    use_tracer,
    validate_manifest_record,
    validate_trajectory_record,
)
from repro.analysis import latest_by_benchmark, perf_trajectory_table
from repro.backend import Workspace
from repro.params import parameters_from_c
from repro.simulation import BatchSimulation, ExperimentRunner, RareEventSimulation

PARAMS = parameters_from_c(c=2.0, n=400, delta=3, nu=0.25)


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_handle_returns_shared_null_span(self):
        assert not TRACE.enabled
        span = TRACE.span("anything", trials=3)
        assert span is NULL_SPAN
        # The null span is inert: enter/exit/set all no-op and chain.
        with span as inner:
            assert inner.set(key="value") is NULL_SPAN

    def test_spans_nest_by_runtime_call_order(self):
        tracer = Tracer(stamp_context=False)
        with tracer.span("outer", trials=4):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        assert [root.name for root in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == ["inner", "sibling"]
        assert outer.attributes == {"trials": 4}
        assert outer.duration >= outer.child_time
        assert outer.self_time == pytest.approx(
            outer.duration - outer.child_time
        )
        assert [record.name for record in tracer.walk()] == [
            "outer",
            "inner",
            "sibling",
        ]

    def test_span_stamps_backend_and_policy_context(self):
        with use_tracer() as tracer:
            with TRACE.span("ctx"):
                pass
        attributes = tracer.roots[0].attributes
        assert attributes["backend"] == "numpy"
        assert "dtype_policy" in attributes

    def test_set_attaches_attributes_after_entry(self):
        tracer = Tracer(stamp_context=False)
        with tracer.span("span") as span:
            span.set(cache="hit")
        assert tracer.roots[0].attributes == {"cache": "hit"}

    def test_snapshot_is_json_serializable(self):
        tracer = Tracer(stamp_context=False)
        with tracer.span("a", n=1):
            with tracer.span("b"):
                pass
        snapshot = tracer.snapshot()
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped[0]["name"] == "a"
        assert round_tripped[0]["children"][0]["name"] == "b"

    def test_use_tracer_restores_previous_state(self):
        assert not TRACE.enabled
        with use_tracer() as outer:
            assert TRACE.active is outer
            with use_tracer() as inner:
                assert TRACE.active is inner
            assert TRACE.active is outer
        assert not TRACE.enabled

    def test_reset_drops_recorded_spans(self):
        tracer = Tracer(stamp_context=False)
        with tracer.span("gone"):
            pass
        tracer.reset()
        assert tracer.roots == []
        assert tracer.depth == 0

    def test_install_from_env_respects_flag(self):
        assert install_from_env({"REPRO_TRACE": "0"}) is None
        assert not TRACE.enabled
        tracer = install_from_env({"REPRO_TRACE": "1"})
        try:
            assert TRACE.active is tracer
        finally:
            TRACE.uninstall()


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counters_accumulate_and_gauges_overwrite(self):
        metrics = Metrics()
        metrics.increment("runs")
        metrics.increment("runs", 4)
        metrics.gauge("ess", 12.5)
        metrics.gauge("ess", 31.0)
        assert metrics.counter("runs") == 5
        assert metrics.counter("never") == 0
        assert metrics.gauge_value("ess") == 31.0
        snapshot = metrics.snapshot()
        assert snapshot == {
            "counters": {"runs": 5},
            "gauges": {"ess": 31.0},
        }
        json.dumps(snapshot)

    def test_disabled_handle_is_a_no_op(self):
        assert not METRICS.enabled
        METRICS.increment("ignored")
        METRICS.gauge("ignored", 1)
        with use_metrics() as metrics:
            METRICS.increment("seen", 2)
            assert metrics.counter("seen") == 2
        assert not METRICS.enabled

    def test_reset_clears_everything(self):
        metrics = Metrics()
        metrics.increment("a")
        metrics.gauge("b", 1)
        metrics.reset()
        assert metrics.snapshot() == {"counters": {}, "gauges": {}}


# ----------------------------------------------------------------------
# Run manifests
# ----------------------------------------------------------------------
class TestManifest:
    def _record(self, **overrides):
        base = dict(
            method="run_point",
            cache_prefix="batch",
            cache_key="abc123",
            cache="miss",
            duration_s=0.25,
            params={"nu": 0.25},
            trials=8,
            rounds=500,
            base_seed=7,
            result_digest="deadbeef",
        )
        base.update(overrides)
        return manifest_record(**base)

    def test_record_round_trips_through_jsonl_log(self, tmp_path):
        log = RunLog(tmp_path / "run_log.jsonl")
        first = log.append(self._record())
        second = log.append(self._record(cache="hit", duration_s=0.01))
        records = log.read()
        assert records == [first, second]
        assert records == read_run_log(log.path)
        assert records[0]["schema"] == MANIFEST_SCHEMA
        assert records[0]["repro_version"] == __version__
        assert records[0]["backend"] == "numpy"
        assert records[1]["cache"] == "hit"

    def test_validation_rejects_bad_cache_state(self):
        with pytest.raises(ObservabilityError, match="cache state"):
            self._record(cache="warm")

    def test_validation_rejects_missing_field(self):
        record = self._record()
        del record["result_digest"]
        with pytest.raises(ObservabilityError, match="result_digest"):
            validate_manifest_record(record)

    def test_validation_rejects_wrong_type(self):
        record = self._record()
        record["trials"] = "eight"
        with pytest.raises(ObservabilityError, match="trials"):
            validate_manifest_record(record)

    def test_read_rejects_corrupt_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ObservabilityError, match="not valid JSON"):
            read_run_log(path)

    def test_resolve_run_log_precedence(self, tmp_path):
        sink = RunLog(tmp_path / "a.jsonl")
        assert resolve_run_log(sink) is sink
        assert resolve_run_log(tmp_path / "b.jsonl").path == str(
            tmp_path / "b.jsonl"
        )
        env = {"REPRO_RUN_LOG": str(tmp_path / "c.jsonl")}
        assert resolve_run_log(None, environ=env).path == str(
            tmp_path / "c.jsonl"
        )
        assert resolve_run_log(None, environ={}) is None

    def test_digest_arrays_is_order_independent_and_shape_aware(self):
        a = np.arange(6, dtype=np.int64)
        b = np.ones(3)
        assert digest_arrays(x=a, y=b) == digest_arrays(y=b, x=a)
        assert digest_arrays(x=a) != digest_arrays(x=a.reshape(2, 3))
        assert digest_arrays(x=a) != digest_arrays(x=a.astype(np.int32))


# ----------------------------------------------------------------------
# Bench trajectory
# ----------------------------------------------------------------------
class TestTrajectory:
    def test_record_append_load_round_trip(self, tmp_path):
        path = tmp_path / "trajectory.json"
        from repro.observability import append_trajectory

        append_trajectory(
            trajectory_record("scenarios", "quick", {"speedup": 7.5}), path
        )
        append_trajectory(
            trajectory_record("scenarios", "full", {"speedup": 9.1}), path
        )
        entries = load_trajectory(path)
        assert [entry["mode"] for entry in entries] == ["quick", "full"]
        assert entries[0]["schema"] == TRAJECTORY_SCHEMA
        assert entries[0]["version"] == __version__
        assert entries[0]["machine"]["python"]
        assert entries[1]["metrics"] == {"speedup": 9.1}

    def test_machine_fingerprint_is_stable_and_anonymous(self):
        import platform

        from repro.observability import machine_info

        first, second = machine_info(), machine_info()
        assert first == second  # stable within a process: no clocks, no load
        assert first["machine"] == platform.machine()
        assert first["python"] == platform.python_version()
        assert isinstance(first["cpu_count"], int) and first["cpu_count"] >= 1
        assert first["numpy"]
        # Committed trajectories must not leak host identity.
        node = platform.node()
        if node:
            assert node not in (first["cpu"] or "")
        assert "hostname" not in first and "node" not in first

    def test_validation_rejects_bad_mode_and_empty_metrics(self):
        with pytest.raises(ObservabilityError, match="mode"):
            trajectory_record("x", "warm", {"a": 1})
        with pytest.raises(ObservabilityError, match="empty metrics"):
            trajectory_record("x", "full", {})
        record = trajectory_record("x", "full", {"a": 1})
        record["schema_version"] = 99
        with pytest.raises(ObservabilityError, match="version"):
            validate_trajectory_record(record)

    def test_resolve_path_precedence(self, tmp_path):
        explicit = tmp_path / "explicit.json"
        assert resolve_trajectory_path(explicit) == str(explicit)
        env = {"REPRO_BENCH_TRAJECTORY": "/somewhere/else.json"}
        assert resolve_trajectory_path(None, environ=env) == "/somewhere/else.json"
        assert resolve_trajectory_path(None, environ={}) == "BENCH_trajectory.json"

    def test_migrate_legacy_entries_preserves_metrics_without_provenance(self):
        legacy = [{"version": "1.6.0", "speedup": 9.6, "trials": 256}]
        (record,) = migrate_legacy_entries("equivocation", legacy)
        assert record["benchmark"] == "equivocation"
        assert record["version"] == "1.6.0"
        assert record["mode"] == "full"
        assert record["timestamp"] is None
        assert record["machine"] is None
        assert record["metrics"] == {"speedup": 9.6, "trials": 256}

    def test_perf_report_renders_trajectory(self, tmp_path):
        path = tmp_path / "trajectory.json"
        from repro.observability import append_trajectory

        append_trajectory(
            trajectory_record("rare_events", "full", {"variance_reduction": 114.0}),
            path,
        )
        append_trajectory(
            trajectory_record("scenarios", "full", {"speedup": 8.0, "gate": 5.0}),
            path,
        )
        table = perf_trajectory_table(path)
        assert "variance_reduction=114" in table
        assert "speedup=8" in table
        assert perf_trajectory_table(path, benchmark="scenarios").count("\n") < (
            table.count("\n")
        )
        latest = latest_by_benchmark(path)
        assert set(latest) == {"rare_events", "scenarios"}
        assert latest["scenarios"]["metrics"]["speedup"] == 8.0


# ----------------------------------------------------------------------
# Engine + workspace counters
# ----------------------------------------------------------------------
class TestEngineMetrics:
    def test_batch_engine_counts_trials_and_rounds(self):
        with use_metrics() as metrics:
            BatchSimulation(PARAMS, rng=0).run(5, 200)
        assert metrics.counter("engine.batch.trials") == 5
        assert metrics.counter("engine.batch.rounds") == 1000

    def test_workspace_counts_reuse_vs_allocation(self):
        workspace = Workspace()
        with use_metrics() as metrics:
            workspace.empty("tag", (4, 4), np.int64)
            workspace.empty("tag", (4, 4), np.int64)
            workspace.empty("tag", (8, 4), np.int64)
        assert metrics.counter("workspace.allocated") == 2
        assert metrics.counter("workspace.reused") == 1

    def test_workspace_tracks_high_water_bytes(self):
        workspace = Workspace()
        assert workspace.high_water_bytes == 0
        workspace.empty("a", (8, 8), np.int64)
        first = workspace.high_water_bytes
        assert first >= 8 * 8 * 8
        workspace.empty("a", (4, 4), np.int64)  # shrink: mark is sticky
        assert workspace.high_water_bytes == first
        workspace.empty("b", (16, 16), np.float64)
        assert workspace.high_water_bytes > first

    def test_resource_gauges_sample_rss_and_workspace(self):
        from repro.observability import peak_rss_bytes, sample_resource_gauges

        workspace = Workspace()
        workspace.empty("a", (8, 8), np.int64)
        with use_metrics() as metrics:
            sample = sample_resource_gauges(workspace)
        assert sample["workspace_high_water_bytes"] == workspace.high_water_bytes
        rss = peak_rss_bytes()
        if rss is not None:  # resource module present (always on Linux CI)
            assert sample["peak_rss_bytes"] > 0
            assert metrics.gauge_value("resource.peak_rss_bytes") > 0
        assert (
            metrics.gauge_value("resource.workspace_high_water_bytes")
            == workspace.high_water_bytes
        )

    def test_rare_event_pilot_metrics(self):
        with use_metrics() as metrics:
            result = RareEventSimulation(PARAMS, depth=6, rng=2026).run_tilted(
                64, 200, pilot_trials=32, max_iterations=3
            )
        assert metrics.counter("engine.rare_events.trials") == 64
        assert (
            metrics.counter("rare_events.pilot_iterations")
            == result.pilot_iterations
        )
        ess = metrics.gauge_value("rare_events.effective_sample_size")
        assert ess == pytest.approx(result.effective_sample_size)

    def test_traced_batch_run_produces_span_tree(self):
        with use_tracer() as tracer:
            BatchSimulation(PARAMS, rng=0).run(4, 100)
        (root,) = tracer.roots
        assert root.name == "batch.run"
        child_names = {child.name for child in root.children}
        assert "batch.draw" in child_names
        assert root.duration >= root.child_time


# ----------------------------------------------------------------------
# Runner integration: manifests, counters, version skips
# ----------------------------------------------------------------------
class TestRunnerObservability:
    def test_run_point_emits_miss_then_hit_manifests(self, tmp_path):
        log_path = tmp_path / "run_log.jsonl"
        runner = ExperimentRunner(
            base_seed=11, cache_dir=str(tmp_path / "cache"), run_log=log_path
        )
        with use_metrics() as metrics:
            first = runner.run_point(PARAMS, 6, 300)
            second = runner.run_point(PARAMS, 6, 300)
        assert np.array_equal(first.worst_deficits, second.worst_deficits)
        assert (runner.cache_hits, runner.cache_misses) == (1, 1)
        assert metrics.counter("runner.run_point.cache_misses") == 1
        assert metrics.counter("runner.run_point.cache_hits") == 1

        records = read_run_log(log_path)
        assert [record["cache"] for record in records] == ["miss", "hit"]
        assert records[0]["result_digest"] == records[1]["result_digest"]
        assert records[0]["method"] == "run_point"
        assert records[0]["cache_prefix"] == "batch"
        assert records[0]["params"]["nu"] == PARAMS.nu
        assert records[0]["base_seed"] == 11
        assert records[0]["stale_version"] is None
        assert records[0]["duration_s"] >= records[1]["duration_s"] >= 0.0

    def test_uncached_runner_logs_disabled_state(self, tmp_path):
        log_path = tmp_path / "run_log.jsonl"
        runner = ExperimentRunner(base_seed=11, run_log=log_path)
        runner.run_point(PARAMS, 4, 200)
        (record,) = read_run_log(log_path)
        assert record["cache"] == "disabled"

    def test_version_skip_is_counted_and_logged(self, tmp_path, caplog):
        log_path = tmp_path / "run_log.jsonl"
        runner = ExperimentRunner(
            base_seed=11, cache_dir=str(tmp_path / "cache"), run_log=log_path
        )
        identity, _ = runner._point_identity_key(PARAMS, 6, 300)
        sidecar = runner._cache_index_path("batch", identity)
        # Fake an earlier release's sidecar: same identity, obsolete version.
        import os

        os.makedirs(os.path.dirname(sidecar), exist_ok=True)
        with open(sidecar, "w", encoding="utf-8") as sink:
            json.dump({"key": "oldkey", "package_version": "0.0.1"}, sink)

        with use_metrics() as metrics, caplog.at_level(
            "INFO", logger="repro.simulation.runner"
        ):
            runner.run_point(PARAMS, 6, 300)
        assert runner.version_skips == 1
        assert metrics.counter("runner.run_point.version_skips") == 1
        assert any("0.0.1" in message for message in caplog.messages)

        (record,) = read_run_log(log_path)
        assert record["cache"] == "miss"
        assert record["stale_version"] == "0.0.1"
        # The sidecar now names the current release: no skip on re-miss.
        with open(sidecar, "r", encoding="utf-8") as source:
            assert json.load(source)["package_version"] == __version__

    def test_env_var_activates_run_log(self, tmp_path, monkeypatch):
        log_path = tmp_path / "env_log.jsonl"
        monkeypatch.setenv("REPRO_RUN_LOG", str(log_path))
        runner = ExperimentRunner(base_seed=3)
        assert runner.run_log is not None
        runner.run_point(PARAMS, 4, 150)
        (record,) = read_run_log(log_path)
        assert record["trials"] == 4

    def test_runner_spans_wrap_engine_spans(self, tmp_path):
        runner = ExperimentRunner(base_seed=5, cache_dir=str(tmp_path / "cache"))
        with use_tracer() as tracer:
            runner.run_point(PARAMS, 4, 150)
        (root,) = tracer.roots
        assert root.name == "runner.run_point"
        assert root.attributes["cache"] == "miss"
        nested = {record.name for record in root.walk()}
        assert "batch.run" in nested
