"""Property-based invariants driven by pytest-parametrized random seeds.

Complements the hypothesis suite in ``test_properties.py`` with plainly
seeded randomized checks of the structures the simulation engines rely on:
block-tree monotonicity, suffix-chain stationarity, and the oracle-level
conservation law "blocks on chain never exceed oracle successes".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.suffix_chain import SuffixChain, suffix_trajectory
from repro.params import parameters_from_c
from repro.simulation import (
    BatchSimulation,
    BlockTree,
    MiningOracle,
    NakamotoSimulation,
    PrivateChainAdversary,
)
from repro.simulation.block import Block

SEEDS = list(range(10))


@pytest.mark.parametrize("seed", SEEDS)
class TestBlockTreeSeededInvariants:
    def test_random_growth_keeps_heights_monotone(self, seed):
        """Heights never decrease and the selected chain always spans them."""
        rng = np.random.default_rng(seed)
        tree = BlockTree()
        known = [0]
        previous_height = 0
        for next_id in range(1, 80):
            parent_id = int(known[rng.integers(len(known))])
            parent = tree.get(parent_id)
            tree.add(
                Block(
                    block_id=next_id,
                    parent_id=parent_id,
                    height=parent.height + 1,
                    round_mined=next_id,
                    miner_id=int(rng.integers(10)),
                    honest=bool(rng.random() < 0.7),
                )
            )
            known.append(next_id)
            chain = tree.longest_chain()
            # Longest-chain length never decreases and equals height + 1.
            assert len(chain) == tree.height + 1
            assert tree.height >= previous_height
            previous_height = tree.height
            # Heights strictly increase along the selected chain from genesis.
            heights = [tree.get(block_id).height for block_id in chain]
            assert heights == list(range(len(chain)))

    def test_partition_of_blocks_is_exact(self, seed):
        """Honest plus adversarial blocks account for every block exactly once."""
        rng = np.random.default_rng(seed)
        tree = BlockTree()
        known = [0]
        for next_id in range(1, 50):
            parent = tree.get(int(known[rng.integers(len(known))]))
            tree.add(
                Block(
                    block_id=next_id,
                    parent_id=parent.block_id,
                    height=parent.height + 1,
                    round_mined=next_id,
                    miner_id=0,
                    honest=bool(rng.random() < 0.5),
                )
            )
            known.append(next_id)
        assert len(tree.honest_blocks()) + len(tree.adversarial_blocks()) == len(tree)


@pytest.mark.parametrize("seed", SEEDS)
class TestSuffixChainSeededInvariants:
    def test_stationary_distribution_properties(self, seed):
        rng = np.random.default_rng(seed)
        params = parameters_from_c(
            c=float(rng.uniform(0.5, 20.0)),
            n=500,
            delta=int(rng.integers(1, 7)),
            nu=float(rng.uniform(0.05, 0.45)),
        )
        chain = SuffixChain(params)
        closed = chain.closed_form_stationary()
        numeric = chain.numerical_stationary()
        values = np.array(list(closed.values()))
        assert values.min() >= 0.0
        assert values.sum() == pytest.approx(1.0, abs=1e-9)
        for state in chain.states:
            assert closed[state] == pytest.approx(numeric[state], abs=1e-9)

    def test_random_trajectories_stay_in_state_space(self, seed):
        rng = np.random.default_rng(seed)
        delta = int(rng.integers(1, 6))
        states = (rng.random(300) < rng.uniform(0.05, 0.6)).tolist()
        trajectory = suffix_trajectory(states, delta)
        valid = set(
            SuffixChain(parameters_from_c(c=1.0, n=100, delta=delta, nu=0.2)).states
        )
        assert len(trajectory) == len(states)
        assert set(trajectory) <= valid


@pytest.mark.parametrize("seed", SEEDS[:6])
class TestOracleConservation:
    def test_adversarial_blocks_bounded_by_oracle_successes(self, seed):
        """Every adversarial block on record corresponds to an oracle success,
        and successes are bounded by the queries actually made."""
        params = parameters_from_c(c=1.5, n=400, delta=3, nu=0.4)
        rng = np.random.default_rng(seed)
        oracle = MiningOracle(params.p, rng)
        result = NakamotoSimulation(
            params,
            adversary=PrivateChainAdversary(3),
            rng=rng,
            oracle=oracle,
        ).run(3_000)
        adversary_count = int(round(params.adversary_count))
        assert result.total_adversary_blocks == result.adversary_blocks_per_round.sum()
        assert result.total_adversary_blocks <= oracle.adversary_queries
        assert oracle.adversary_queries == adversary_count * 3_000
        assert result.total_honest_blocks <= oracle.honest_queries

    def test_batch_trials_respect_the_same_conservation(self, seed):
        params = parameters_from_c(c=2.0, n=500, delta=2, nu=0.3)
        result = BatchSimulation(params, rng=seed).run(trials=8, rounds=1_500)
        honest_queries = max(int(round(params.honest_count)), 1) * 1_500
        adversary_queries = int(round(params.adversary_count)) * 1_500
        assert (result.honest_blocks <= honest_queries).all()
        assert (result.adversary_blocks <= adversary_queries).all()
        # Convergence opportunities require an H1 round each, so they are
        # bounded by the number of honest successes.
        assert (result.convergence_opportunities <= result.honest_blocks).all()
