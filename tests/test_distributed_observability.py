"""Cross-process telemetry: capture, transport, merge, and grid parity.

Unit coverage for :mod:`repro.observability.distributed` (the buffering run
log, span round-trips, the capture context, the merge) plus the integration
contract the tentpole promises: a ``processes=2`` sharded grid run under an
ambient tracer / metrics registry / run log must report the same merged
counter totals, the same manifest multiset (shard-stamped) and a grafted
span tree — while returning bit-identical results to the serial run of the
same points.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    METRICS,
    TRACE,
    BufferedRunLog,
    DiscardRunLog,
    capture_worker_telemetry,
    manifest_record,
    merge_worker_telemetry,
    read_run_log,
    span_from_dict,
    use_metrics,
    use_tracer,
)
from repro.observability.tracer import SpanRecord
from repro.params import parameters_from_c
from repro.simulation import ExperimentRunner

POINTS = [
    parameters_from_c(c=2.0, n=300, delta=delta, nu=0.25) for delta in (3, 4, 5)
]


def _record(method="run_point", prefix="batch", stale=None, extra=None):
    return manifest_record(
        method=method,
        cache_prefix=prefix,
        cache_key="ab" * 32,
        cache="miss",
        duration_s=0.5,
        params={"p": 0.001},
        trials=4,
        rounds=100,
        base_seed=0,
        result_digest="cd" * 32,
        stale_version=stale,
        extra=extra,
    )


# ----------------------------------------------------------------------
# Transport pieces
# ----------------------------------------------------------------------
class TestRunLogVariants:
    def test_buffered_log_validates_and_buffers(self):
        log = BufferedRunLog()
        log.append(_record())
        assert log.path is None
        assert len(log.read()) == 1
        assert log.read()[0]["method"] == "run_point"

    def test_buffered_log_rejects_invalid_records(self):
        log = BufferedRunLog()
        with pytest.raises(ObservabilityError):
            log.append({"method": "run_point"})
        assert log.read() == []

    def test_discard_log_drops_everything(self):
        log = DiscardRunLog()
        log.append(_record())
        assert log.read() == []


class TestSpanRoundTrip:
    def test_span_from_dict_rebuilds_tree(self):
        root = SpanRecord(
            name="runner.run_point",
            start=1.0,
            duration=2.0,
            attributes={"cache": "miss"},
            children=[
                SpanRecord(name="batch.run", start=1.1, duration=1.5)
            ],
        )
        rebuilt = span_from_dict(root.to_dict())
        assert rebuilt.name == root.name
        assert rebuilt.attributes == {"cache": "miss"}
        assert [child.name for child in rebuilt.children] == ["batch.run"]
        assert rebuilt.children[0].duration == pytest.approx(1.5)


class TestCaptureContext:
    def test_nothing_requested_yields_no_telemetry(self):
        with capture_worker_telemetry() as capture:
            assert capture.tracer is None
            assert capture.metrics is None
            assert isinstance(capture.run_log, DiscardRunLog)
        assert capture.telemetry() is None

    def test_capture_scopes_and_restores_handles(self):
        assert not TRACE.enabled and not METRICS.enabled
        with capture_worker_telemetry(spans=True, metrics=True, manifests=True) as capture:
            assert TRACE.enabled and METRICS.enabled
            with TRACE.span("work"):
                METRICS.increment("things")
            capture.run_log.append(_record())
        assert not TRACE.enabled and not METRICS.enabled
        telemetry = capture.telemetry()
        assert [span["name"] for span in telemetry.spans] == ["work"]
        assert telemetry.counters == {"things": 1}
        assert len(telemetry.manifests) == 1

    def test_partial_capture_ships_partial_envelope(self):
        with capture_worker_telemetry(metrics=True) as capture:
            METRICS.increment("only.metrics")
        telemetry = capture.telemetry()
        assert telemetry.spans == []
        assert telemetry.counters == {"only.metrics": 1}
        assert telemetry.manifests == []


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
class TestMerge:
    def test_merge_grafts_counts_and_appends(self, tmp_path, caplog):
        with capture_worker_telemetry(spans=True, metrics=True, manifests=True) as capture:
            with TRACE.span("runner.run_point"):
                METRICS.increment("runner.run_point.cache_misses")
            capture.run_log.append(_record(stale="0.0.1"))
        telemetry = capture.telemetry()

        parent_log = BufferedRunLog()
        import logging

        logger = logging.getLogger("test.merge")
        with use_tracer() as tracer, use_metrics() as metrics:
            with TRACE.span("runner.run_grid") as grid_span:
                with caplog.at_level("INFO", logger="test.merge"):
                    merge_worker_telemetry(
                        telemetry,
                        shard=2,
                        span=grid_span,
                        run_log=parent_log,
                        logger=logger,
                    )
        (root,) = tracer.roots
        (grafted,) = root.children
        assert grafted.name == "runner.run_point"
        assert grafted.attributes["shard"] == 2
        assert metrics.counter("runner.run_point.cache_misses") == 1
        (line,) = parent_log.read()
        assert line["extra"]["shard"] == 2
        assert any("0.0.1" in message for message in caplog.messages)
        assert any("shard 2" in message for message in caplog.messages)

    def test_merge_none_telemetry_is_noop(self):
        merge_worker_telemetry(None, shard=0)

    def test_merge_without_parent_state_is_safe(self):
        """Merging with tracing/metrics off must not explode (NULL_SPAN has
        no record, the handle has no active registry)."""
        with capture_worker_telemetry(spans=True, metrics=True) as capture:
            with TRACE.span("w"):
                METRICS.increment("c")
        span = TRACE.span("disabled")  # NULL_SPAN
        merge_worker_telemetry(capture.telemetry(), shard=0, span=span)


# ----------------------------------------------------------------------
# Sharded grid parity: the tentpole's acceptance contract
# ----------------------------------------------------------------------
def _observable_counters(metrics):
    """Counters comparable across execution layouts.

    Workspace allocation counters legitimately differ (each pool worker
    builds its own workspace); the runner/engine accounting must not.
    """
    return {
        name: value
        for name, value in metrics.snapshot()["counters"].items()
        if name.startswith(("runner.", "engine."))
    }


def _manifest_multiset(records):
    return sorted(
        (r["method"], r["cache_key"], r["result_digest"], r["cache"])
        for r in records
    )


class TestShardedGridParity:
    def test_sharded_grid_matches_sequential_telemetry(self, tmp_path):
        seq_log = tmp_path / "seq.jsonl"
        seq = ExperimentRunner(
            base_seed=9, cache_dir=str(tmp_path / "c_seq"), run_log=seq_log
        )
        with use_tracer() as seq_tracer, use_metrics() as seq_metrics:
            seq_results = seq.run_grid(POINTS, 6, 200)

        shard_log = tmp_path / "shard.jsonl"
        sharded = ExperimentRunner(
            base_seed=9,
            cache_dir=str(tmp_path / "c_shard"),
            processes=2,
            run_log=shard_log,
        )
        with use_tracer() as shard_tracer, use_metrics() as shard_metrics:
            shard_results = sharded.run_grid(POINTS, 6, 200)

        # Results are bit-identical: per-point seeds ignore layout.
        for a, b in zip(seq_results, shard_results):
            assert np.array_equal(a.worst_deficits, b.worst_deficits)
            assert np.array_equal(
                a.convergence_opportunities, b.convergence_opportunities
            )

        # Merged counters equal the sequential run's.
        assert _observable_counters(shard_metrics) == _observable_counters(
            seq_metrics
        )
        assert shard_metrics.counter("runner.run_point.cache_misses") == 3

        # One manifest line per point, same multiset, shard-stamped.
        seq_records = read_run_log(seq_log)
        shard_records = read_run_log(shard_log)
        assert len(shard_records) == len(POINTS)
        assert _manifest_multiset(shard_records) == _manifest_multiset(
            seq_records
        )
        assert sorted(r["extra"]["shard"] for r in shard_records) == [0, 1, 2]
        assert all(
            r["extra"]["resources"]["peak_rss_bytes"] is None
            or r["extra"]["resources"]["peak_rss_bytes"] > 0
            for r in shard_records
        )

        # Worker spans are grafted under the grid span, shard-stamped.
        (root,) = shard_tracer.roots
        assert root.name == "runner.run_grid"
        assert root.attributes["sharded"] is True
        assert [child.name for child in root.children] == [
            "runner.run_point"
        ] * 3
        assert [child.attributes["shard"] for child in root.children] == [0, 1, 2]
        nested = {record.name for record in root.walk()}
        assert "batch.run" in nested

        (seq_root,) = seq_tracer.roots
        assert seq_root.name == "runner.run_grid"
        assert seq_root.attributes["sharded"] is False

    def test_sharded_scenario_grid_counters_match(self, tmp_path):
        seq = ExperimentRunner(base_seed=5, cache_dir=str(tmp_path / "a"))
        with use_metrics() as seq_metrics:
            seq_results = seq.run_scenario_grid(POINTS, "private_chain", 4, 150)
        sharded = ExperimentRunner(
            base_seed=5, cache_dir=str(tmp_path / "b"), processes=2
        )
        with use_metrics() as shard_metrics:
            shard_results = sharded.run_scenario_grid(
                POINTS, "private_chain", 4, 150
            )
        for a, b in zip(seq_results, shard_results):
            assert np.array_equal(a.deepest_forks, b.deepest_forks)
        assert _observable_counters(shard_metrics) == _observable_counters(
            seq_metrics
        )
        assert (sharded.cache_hits, sharded.cache_misses) == (0, 3)

    def test_sharded_rare_event_grid_matches_serial(self):
        serial = ExperimentRunner(base_seed=3).run_rare_event_grid(
            POINTS[:2], 64, 150, depth=4, method="plain"
        )
        sharded = ExperimentRunner(base_seed=3, processes=2).run_rare_event_grid(
            POINTS[:2], 64, 150, depth=4, method="plain"
        )
        assert [r.probability for r in serial] == [
            r.probability for r in sharded
        ]

    def test_sharded_version_skip_accounting_reaches_parent(
        self, tmp_path, caplog
    ):
        """The satellite bug fix: worker-side version skips must reach the
        parent's counters, manifests and log lines."""
        cache = tmp_path / "cache"
        log = tmp_path / "log.jsonl"
        runner = ExperimentRunner(
            base_seed=11, cache_dir=str(cache), processes=2, run_log=log
        )
        # Fake an earlier release's sidecar for every point.
        import json as _json
        import os

        for point in POINTS:
            identity, _ = runner._point_identity_key(point, 5, 120)
            sidecar = runner._cache_index_path("batch", identity)
            os.makedirs(os.path.dirname(sidecar), exist_ok=True)
            with open(sidecar, "w", encoding="utf-8") as sink:
                _json.dump({"key": "old", "package_version": "0.0.1"}, sink)

        with use_metrics() as metrics, caplog.at_level(
            "INFO", logger="repro.simulation.runner"
        ):
            runner.run_grid(POINTS, 5, 120)
        assert runner.version_skips == 3
        assert metrics.counter("runner.run_point.version_skips") == 3
        records = read_run_log(log)
        assert [r["stale_version"] for r in records] == ["0.0.1"] * 3
        skip_lines = [m for m in caplog.messages if "0.0.1" in m]
        assert len(skip_lines) == 3
        assert all("shard" in line for line in skip_lines)

    def test_disabled_observability_sharded_grid_still_counts(self, tmp_path):
        """With no tracer/metrics/log, workers ship no telemetry but the
        scalar fold keeps the legacy counter semantics."""
        runner = ExperimentRunner(
            base_seed=2, cache_dir=str(tmp_path / "c"), processes=2
        )
        runner.run_grid(POINTS, 4, 100)
        assert (runner.cache_hits, runner.cache_misses) == (0, 3)
        rerun = ExperimentRunner(
            base_seed=2, cache_dir=str(tmp_path / "c"), processes=2
        )
        rerun.run_grid(POINTS, 4, 100)
        assert (rerun.cache_hits, rerun.cache_misses) == (3, 0)
