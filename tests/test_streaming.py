"""Streaming trial engine: chunk-invariant, O(chunk)-memory Monte Carlo.

The contract under test (see :mod:`repro.simulation.streaming`):

* **bit-identical across chunk sizes** — any ``chunk_cells`` setting
  (one cell, bigger than the whole run, anything between) produces the
  same streamed summary bit for bit, because draws happen per fixed-size
  seed block, never per execution chunk;
* **dense equivalence** — streaming the engine over the exact traces a
  dense run would consume reproduces the dense ``summary()``: integer
  statistics exactly, float moments within ``STREAM_STAT_RTOL``;
* **runner integration** — streamed points cache by statistical identity
  (``chunk_cells`` excluded), shard bit-identically, and reject
  configurations that cannot be honoured.
"""

from __future__ import annotations

import contextlib
import math
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.params import parameters_from_c
from repro.simulation import streaming
from repro.simulation.batch import (
    BatchSimulation,
    proportion_confidence_interval,
)
from repro.simulation.dynamics import PartitionScenario
from repro.simulation.runner import ExperimentRunner
from repro.simulation.scenarios import ScenarioSimulation
from repro.simulation.streaming import (
    SEED_BLOCK_CELLS,
    STREAM_STAT_RTOL,
    DeficitHistogram,
    OnlineMoments,
    StreamingBatchResult,
    StreamingBatchSimulation,
    StreamingScenarioSimulation,
    _spawn_block_seeds,
    seed_block_trials,
)

PARAMS = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)

#: The pinned seed of the equivalence grid, matching the golden suites.
BASE_SEED = 2026


def _state(result) -> dict:
    """The statistical payload, minus execution metadata (``n_chunks``)."""
    payload = result.payload()
    payload.pop("n_chunks")
    return payload


@contextlib.contextmanager
def _seed_block_cells(cells: int):
    """Temporarily shrink the seed-block protocol constant.

    Real block sizes (2^20 cells) would need million-cell runs to exercise
    multi-block execution; shrinking the constant keeps the property tests
    fast.  Within a patched world the chunk-invariance contract is the
    same — both runs under comparison always use the same constant.
    """
    original = streaming.SEED_BLOCK_CELLS
    streaming.SEED_BLOCK_CELLS = int(cells)
    try:
        yield
    finally:
        streaming.SEED_BLOCK_CELLS = original


class TestOnlineMoments:
    def test_matches_numpy_single_block(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=1000)
        moments = OnlineMoments()
        moments.update(values)
        assert moments.count == 1000
        assert moments.mean == pytest.approx(float(values.mean()), rel=1e-12)
        assert moments.m2 == pytest.approx(
            float(values.var()) * 1000, rel=1e-12
        )
        low, high = moments.ci95()
        std = float(values.std(ddof=1))
        half = 1.96 * std / math.sqrt(1000)
        assert low == pytest.approx(float(values.mean()) - half, rel=1e-9)
        assert high == pytest.approx(float(values.mean()) + half, rel=1e-9)

    def test_blockwise_matches_oneshot(self):
        rng = np.random.default_rng(1)
        values = rng.exponential(size=4096)
        oneshot = OnlineMoments()
        oneshot.update(values)
        blockwise = OnlineMoments()
        for start in range(0, 4096, 97):
            blockwise.update(values[start : start + 97])
        assert blockwise.count == oneshot.count
        assert blockwise.mean == pytest.approx(oneshot.mean, rel=1e-12)
        assert blockwise.m2 == pytest.approx(oneshot.m2, rel=1e-10)

    def test_fixed_block_order_is_deterministic(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=300)
        first, second = OnlineMoments(), OnlineMoments()
        for accumulator in (first, second):
            for start in range(0, 300, 13):
                accumulator.update(values[start : start + 13])
        assert first.payload() == second.payload()

    def test_below_two_observations_ci_is_nan(self):
        moments = OnlineMoments()
        assert all(math.isnan(edge) for edge in moments.ci95())
        moments.update(np.asarray([1.5]))
        assert all(math.isnan(edge) for edge in moments.ci95())

    def test_empty_update_is_noop(self):
        moments = OnlineMoments()
        moments.update(np.asarray([]))
        assert moments.count == 0

    def test_payload_round_trip(self):
        moments = OnlineMoments()
        moments.update(np.asarray([1.0, 2.0, 4.0]))
        restored = OnlineMoments.from_payload(moments.payload())
        assert restored.payload() == moments.payload()
        assert restored.ci95() == moments.ci95()


class TestDeficitHistogram:
    def test_exact_counts_and_overflow(self):
        histogram = DeficitHistogram(bins=4)
        histogram.update(np.asarray([0, 0, 1, 3, 3, 9, 100]))
        assert histogram.counts == [2, 1, 0, 2]
        assert histogram.overflow == 2
        assert histogram.total == 7

    def test_incremental_equals_oneshot(self):
        rng = np.random.default_rng(3)
        deficits = rng.integers(0, 80, size=500)
        oneshot = DeficitHistogram()
        oneshot.update(deficits)
        incremental = DeficitHistogram()
        for start in range(0, 500, 41):
            incremental.update(deficits[start : start + 41])
        assert incremental.payload() == oneshot.payload()

    def test_payload_round_trip(self):
        histogram = DeficitHistogram(bins=8)
        histogram.update(np.asarray([1, 2, 300]))
        restored = DeficitHistogram.from_payload(histogram.payload())
        assert restored.payload() == histogram.payload()

    def test_rejects_non_positive_bins(self):
        with pytest.raises(SimulationError, match="bins"):
            DeficitHistogram(bins=0)


class TestSeedBlocks:
    def test_block_size_floors_at_one_trial(self):
        assert seed_block_trials(1) == SEED_BLOCK_CELLS
        assert seed_block_trials(SEED_BLOCK_CELLS * 10) == 1

    def test_spawn_is_stateless(self):
        """Repeated spawning must reproduce a fresh sequence's first spawn —
        ``SeedSequence.spawn`` itself is stateful and would reroll."""
        root = np.random.SeedSequence(77)
        first = _spawn_block_seeds(root, 4)
        second = _spawn_block_seeds(root, 4)
        fresh = np.random.SeedSequence(77).spawn(4)
        for a, b, c in zip(first, second, fresh):
            assert a.generate_state(4).tolist() == b.generate_state(4).tolist()
            assert a.generate_state(4).tolist() == c.generate_state(4).tolist()


class TestChunkInvariance:
    @given(
        trials=st.integers(min_value=1, max_value=50),
        rounds=st.integers(min_value=1, max_value=24),
        chunk_cells=st.one_of(
            st.just(1),
            st.integers(min_value=2, max_value=400),
            st.just(10**9),
        ),
        block_cells=st.sampled_from([16, 64, 256]),
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_chunk_splits_are_bit_identical(
        self, trials, rounds, chunk_cells, block_cells
    ):
        """Property: chunk=1 cell, chunk>run, anything between — the streamed
        summary is bit-identical to the single-chunk reference."""
        with _seed_block_cells(block_cells):
            reference = StreamingBatchSimulation(
                PARAMS, seed=BASE_SEED, chunk_cells=10**9
            ).run(trials, rounds, depths=(1,))
            streamed = StreamingBatchSimulation(
                PARAMS, seed=BASE_SEED, chunk_cells=chunk_cells
            ).run(trials, rounds, depths=(1,))
        assert _state(streamed) == _state(reference)
        assert streamed.summary() == reference.summary()

    def test_real_protocol_multi_block_invariance(self):
        """Unpatched protocol constant: rounds > 2^19 makes every trial its
        own seed block, so chunked and single-chunk runs genuinely split."""
        rounds = SEED_BLOCK_CELLS // 2 + 1
        chunked = StreamingBatchSimulation(
            PARAMS, seed=BASE_SEED, chunk_cells=rounds
        ).run(6, rounds, depths=(1,))
        monolithic = StreamingBatchSimulation(PARAMS, seed=BASE_SEED).run(
            6, rounds, depths=(1,)
        )
        assert chunked.seed_block_trials == 1
        assert chunked.n_chunks == 6
        assert monolithic.n_chunks == 1
        assert _state(chunked) == _state(monolithic)
        assert chunked.summary() == monolithic.summary()

    def test_repeat_runs_and_audits_do_not_reroll(self):
        simulation = StreamingBatchSimulation(PARAMS, seed=5, chunk_cells=4000)
        first = simulation.run(300, 200, depths=(1,))
        simulation.materialize_traces(300, 200)
        second = simulation.run(300, 200, depths=(1,))
        assert first.payload() == second.payload()


class TestDenseEquivalence:
    """Streamed summaries vs the dense engine on the materialized traces."""

    @pytest.mark.parametrize("nu", [0.1, 0.25])
    @pytest.mark.parametrize("delta", [2, 4])
    def test_batch_grid(self, nu, delta):
        params = parameters_from_c(c=4.0, n=1_000, delta=delta, nu=nu)
        simulation = StreamingBatchSimulation(
            params, seed=BASE_SEED, chunk_cells=20_000
        )
        streamed = simulation.run(400, 250, depths=(1, 2))
        honest, adversary, delays = simulation.materialize_traces(400, 250)
        assert delays is None
        dense = BatchSimulation(params, rng=0).run_traces(honest, adversary)
        self._assert_summaries_match(streamed.summary(), dense.summary())
        # Exact integer cross-checks beyond the summary keys.
        assert streamed.max_worst_deficit == int(dense.worst_deficits.max())
        for depth in (1, 2):
            hits = int((dense.worst_deficits >= depth).sum())
            assert streamed.violation_probability(depth) == hits / 400
            assert streamed.violation_ci95(depth) == (
                proportion_confidence_interval(hits, 400)
            )
        assert streamed.deficit_histogram.total == 400

    @pytest.mark.parametrize("strategy", ["private_chain", "selfish_mining"])
    @pytest.mark.parametrize("nu", [0.1, 0.25])
    def test_scenario_grid(self, strategy, nu):
        params = parameters_from_c(c=4.0, n=1_000, delta=3, nu=nu)
        simulation = StreamingScenarioSimulation(
            params, strategy, seed=BASE_SEED, chunk_cells=15_000
        )
        streamed = simulation.run(300, 200)
        honest, adversary, third = simulation.materialize_traces(300, 200)
        assert third is None
        dense = ScenarioSimulation(params, strategy, rng=0).run_traces(
            honest, adversary
        )
        self._assert_summaries_match(streamed.summary(), dense.summary())

    def test_uniform_delay_model_batch(self):
        simulation = StreamingBatchSimulation(
            PARAMS, seed=9, delay_model="uniform", chunk_cells=3_000
        )
        streamed = simulation.run(300, 200)
        honest, adversary, delays = simulation.materialize_traces(300, 200)
        assert delays is not None
        dense = BatchSimulation(PARAMS, rng=0, delay_model="uniform").run_traces(
            honest, adversary, delays=delays
        )
        self._assert_summaries_match(streamed.summary(), dense.summary())

    def test_partition_cut_scenario(self):
        cut = PartitionScenario(
            name="cut_stream",
            kind="private_chain",
            target_depth=2,
            partition_start=50,
            partition_duration=40,
            cut_fraction=0.3,
        )
        simulation = StreamingScenarioSimulation(
            PARAMS, cut, seed=BASE_SEED, chunk_cells=8_000
        )
        streamed = simulation.run(300, 200)
        honest, adversary, split = simulation.materialize_traces(300, 200)
        assert split is not None
        dense = ScenarioSimulation(PARAMS, cut, rng=0).run_traces(
            honest, adversary, split_counts=split
        )
        self._assert_summaries_match(streamed.summary(), dense.summary())
        assert streamed.summary()["mean_merge_depth"] == pytest.approx(
            dense.summary()["mean_merge_depth"], rel=STREAM_STAT_RTOL
        )

    @staticmethod
    def _assert_summaries_match(streamed: dict, dense: dict) -> None:
        assert sorted(streamed) == sorted(dense)
        for key, expected in dense.items():
            actual = streamed[key]
            if isinstance(expected, str) or expected is None:
                assert actual == expected, key
            elif isinstance(expected, (int, np.integer)) and not isinstance(
                expected, bool
            ):
                assert actual == expected, key
            else:
                assert actual == pytest.approx(
                    expected, rel=STREAM_STAT_RTOL, abs=1e-12, nan_ok=True
                ), key


class TestValidationAndResults:
    def test_generator_seed_rejected(self):
        with pytest.raises(TypeError, match="Generator"):
            StreamingBatchSimulation(PARAMS, seed=np.random.default_rng(0))
        with pytest.raises(TypeError, match="Generator"):
            StreamingScenarioSimulation(
                PARAMS, "private_chain", seed=np.random.default_rng(0)
            )

    def test_negative_depth_rejected(self):
        with pytest.raises(SimulationError, match=">= 0"):
            StreamingBatchSimulation(PARAMS, seed=0).run(10, 10, depths=(-1,))

    def test_untracked_depth_raises(self):
        result = StreamingBatchSimulation(PARAMS, seed=0).run(
            20, 20, depths=(1,)
        )
        assert result.depths == (1,)
        with pytest.raises(SimulationError, match="not tracked"):
            result.violation_probability(5)

    def test_invalid_shapes_rejected(self):
        simulation = StreamingBatchSimulation(PARAMS, seed=0)
        with pytest.raises(SimulationError, match="trials"):
            simulation.run(0, 10)
        with pytest.raises(SimulationError, match="rounds"):
            simulation.run(10, 0)

    def test_batch_result_payload_round_trip(self):
        result = StreamingBatchSimulation(PARAMS, seed=4, chunk_cells=500).run(
            60, 40, depths=(1, 3)
        )
        restored = StreamingBatchResult.from_payload(result.payload(), PARAMS)
        assert restored.payload() == result.payload()
        assert restored.summary() == result.summary()
        assert restored.violation_ci95(3) == result.violation_ci95(3)

    def test_streamed_memory_stays_chunk_bounded(self):
        """With every trial its own seed block, a chunked run's workspace
        high-water mark stays well under the dense trace footprint."""
        from repro.backend import Workspace

        rounds = SEED_BLOCK_CELLS + 1
        trials = 24
        per_chunk = 2
        workspace = Workspace()
        simulation = StreamingBatchSimulation(
            PARAMS,
            seed=1,
            workspace=workspace,
            chunk_cells=per_chunk * rounds,
        )
        simulation.run(trials, rounds)
        dense_trace_bytes = 2 * trials * rounds * 8
        assert workspace.high_water_bytes < dense_trace_bytes / 2


class _CaptureSink:
    def __init__(self):
        self.events = []

    def emit(self, event: dict) -> None:
        self.events.append(event)


class TestRunnerIntegration:
    def test_cache_round_trip_and_chunk_key_exclusion(self, tmp_path):
        runner = ExperimentRunner(base_seed=BASE_SEED, cache_dir=str(tmp_path))
        first = runner.run_streaming_point(PARAMS, 200, 150, depths=(1,))
        assert runner.cache_misses == 1
        second = runner.run_streaming_point(PARAMS, 200, 150, depths=(1,))
        assert runner.cache_hits == 1
        assert second.payload() == first.payload()
        # chunk_cells is execution policy: a different setting must *hit*.
        third = runner.run_streaming_point(
            PARAMS, 200, 150, depths=(1,), chunk_cells=1
        )
        assert runner.cache_hits == 2
        assert third.payload() == first.payload()
        assert any(
            name.startswith("stream_") for name in os.listdir(tmp_path)
        )

    def test_scenario_cache_round_trip(self, tmp_path):
        runner = ExperimentRunner(base_seed=BASE_SEED, cache_dir=str(tmp_path))
        first = runner.run_streaming_point(
            PARAMS, 150, 120, scenario="selfish_mining"
        )
        second = runner.run_streaming_point(
            PARAMS, 150, 120, scenario="selfish_mining"
        )
        assert runner.cache_hits == 1
        assert second.summary() == first.summary()
        assert second.scenario.name == "selfish_mining"

    def test_depths_are_part_of_the_statistical_identity(self, tmp_path):
        runner = ExperimentRunner(base_seed=BASE_SEED, cache_dir=str(tmp_path))
        runner.run_streaming_point(PARAMS, 100, 80, depths=(1,))
        runner.run_streaming_point(PARAMS, 100, 80, depths=(1, 2))
        assert runner.cache_misses == 2

    def test_depths_with_scenario_rejected(self):
        runner = ExperimentRunner(base_seed=0)
        with pytest.raises(SimulationError, match="batch statistic"):
            runner.run_streaming_point(
                PARAMS, 50, 50, depths=(1,), scenario="private_chain"
            )

    def test_serial_and_sharded_grids_are_bit_identical(self):
        points = [
            PARAMS,
            parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.25),
            parameters_from_c(c=4.0, n=1_000, delta=2, nu=0.1),
        ]
        serial = ExperimentRunner(base_seed=7).run_streaming_grid(
            points, 200, 120, depths=(1,)
        )
        sharded = ExperimentRunner(base_seed=7, processes=2).run_streaming_grid(
            points, 200, 120, depths=(1,), chunk_cells=5_000
        )
        assert len(serial) == len(sharded) == 3
        for a, b in zip(serial, sharded):
            assert _state(a) == _state(b)
            assert a.summary() == b.summary()

    def test_streamed_point_is_independent_of_dense_point(self, tmp_path):
        """A streamed point is a new seeded experiment with its own cache
        slot — running both never collides or cross-fills."""
        runner = ExperimentRunner(base_seed=BASE_SEED, cache_dir=str(tmp_path))
        runner.run_point(PARAMS, 100, 80)
        runner.run_streaming_point(PARAMS, 100, 80)
        assert runner.cache_misses == 2
        assert runner.cache_hits == 0

    def test_chunk_progress_events(self):
        """Chunk-level progress: one event per chunk, schema-shaped."""
        sink = _CaptureSink()
        with _seed_block_cells(16):
            simulation = StreamingBatchSimulation(
                PARAMS, seed=0, chunk_cells=32
            )
            simulation.run(16, 8, progress=[sink])
        assert len(sink.events) == 4
        assert sink.events[-1]["completed"] == sink.events[-1]["total"] == 4
        assert sink.events[0]["label"] == "stream.batch"

    def test_stream_metrics_counters(self):
        from repro.observability import use_metrics

        with use_metrics() as metrics:
            StreamingBatchSimulation(PARAMS, seed=0, chunk_cells=100).run(
                30, 20
            )
        assert metrics.counter("engine.stream.trials") == 30
        assert metrics.counter("engine.stream.cells") == 600
        assert metrics.counter("engine.stream.chunks") >= 1
