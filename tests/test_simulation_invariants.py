"""Cross-cutting simulation invariants tied to the paper's argument structure.

These tests pin down facts the analysis relies on implicitly:

* convergence opportunities are a function of the honest mining trace alone
  (the adversary's strategy cannot manufacture or destroy them), which is why
  Eq. (26) has no adversary term;
* every broadcast block eventually reaches the public view (the Δ-delay model
  guarantees delivery), so the final chain accounts for all honest blocks;
* the consistency report's ``is_consistent(T)`` is exactly the Definition 1
  predicate evaluated at the recorded snapshots.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.params import parameters_from_c
from repro.simulation import (
    MaxDelayAdversary,
    NakamotoSimulation,
    PassiveAdversary,
    PrivateChainAdversary,
)


class TestConvergenceOpportunitiesDependOnlyOnHonestMining:
    def test_same_seed_same_opportunities_across_adversaries(self):
        """The three adversary strategies leave the honest mining draws (and
        therefore the convergence-opportunity count) untouched."""
        params = parameters_from_c(c=3.0, n=800, delta=3, nu=0.25)
        counts = []
        for adversary in (
            PassiveAdversary(3),
            MaxDelayAdversary(3),
            PrivateChainAdversary(3, target_depth=4),
        ):
            result = NakamotoSimulation(
                params, adversary=adversary, rng=np.random.default_rng(123)
            ).run(10_000)
            counts.append(
                (result.convergence_opportunities, result.total_honest_blocks)
            )
        assert counts[0] == counts[1] == counts[2]


class TestDeliveryCompleteness:
    def test_all_honest_blocks_reach_the_public_view(self):
        """After the end-of-run network flush, every honest block is known to
        every honest miner, even under the maximum-delay adversary."""
        params = parameters_from_c(c=2.0, n=800, delta=5, nu=0.2)
        simulation = NakamotoSimulation(
            params, adversary=MaxDelayAdversary(5), rng=np.random.default_rng(7)
        )
        result = simulation.run(5_000)
        # The final chain cannot contain more blocks than were mined, and the
        # chain height can only have been reached through delivered blocks.
        total_mined = result.total_honest_blocks + result.total_adversary_blocks
        assert result.final_height <= total_mined
        assert result.final_height > 0
        # The last snapshot is the flushed final chain.
        assert result.chain_snapshots[-1] == result.final_chain

    def test_snapshot_rounds_are_increasing_and_end_at_final_round(self):
        params = parameters_from_c(c=3.0, n=500, delta=2, nu=0.2)
        result = NakamotoSimulation(
            params, rng=np.random.default_rng(3), snapshot_interval=250
        ).run(2_000)
        rounds = result.snapshot_rounds
        assert rounds == sorted(rounds)
        assert rounds[-1] == 2_000
        # Interior snapshots land on multiples of the snapshot interval.
        assert all(value % 250 == 0 for value in rounds[:-1])


class TestConsistencyPredicate:
    def test_is_consistent_matches_violation_depth(self):
        params = parameters_from_c(c=0.6, n=800, delta=3, nu=0.45)
        result = NakamotoSimulation(
            params,
            adversary=PrivateChainAdversary(3, target_depth=5),
            rng=np.random.default_rng(11),
            snapshot_interval=100,
        ).run(8_000)
        depth = result.consistency.max_violation_depth
        assert not result.consistency.is_consistent(max(depth - 1, 0)) or depth == 0
        assert result.consistency.is_consistent(depth)

    def test_summary_reports_theory_values_from_params(self):
        params = parameters_from_c(c=4.0, n=500, delta=2, nu=0.3)
        result = NakamotoSimulation(params, rng=np.random.default_rng(5)).run(1_000)
        summary = result.summary()
        assert summary["theoretical_convergence_rate"] == pytest.approx(
            params.convergence_opportunity_probability
        )
        assert summary["theoretical_adversary_rate"] == pytest.approx(params.beta)
