"""Unit tests for the vectorized batch Monte Carlo engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import batch_simulation_sweep, validate_expectations_batch
from repro.core.concat_chain import count_convergence_opportunities
from repro.errors import AnalysisError, ParameterError, SimulationError
from repro.params import parameters_from_c
from repro.simulation import (
    BatchSimulation,
    ConvergenceOpportunityDetector,
    convergence_opportunity_mask,
    count_convergence_opportunities_batch,
    draw_mining_traces,
    worst_window_deficits,
)

PARAMS = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)


class TestDrawMiningTraces:
    def test_shapes_and_dtypes(self):
        honest, adversary = draw_mining_traces(PARAMS, trials=5, rounds=70, rng=0)
        assert honest.shape == adversary.shape == (5, 70)
        assert honest.dtype == np.int64 and adversary.dtype == np.int64
        assert (honest >= 0).all() and (adversary >= 0).all()

    def test_same_seed_same_tensors(self):
        first = draw_mining_traces(PARAMS, 4, 50, rng=123)
        second = draw_mining_traces(PARAMS, 4, 50, rng=123)
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])

    def test_counts_bounded_by_miner_populations(self):
        honest, adversary = draw_mining_traces(PARAMS, 8, 500, rng=1)
        assert honest.max() <= round(PARAMS.honest_count)
        assert adversary.max() <= round(PARAMS.adversary_count)

    def test_bernoulli_mode_matches_binomial_distribution(self):
        """The explicit (trials, rounds, miners) tensor agrees in distribution."""
        params = parameters_from_c(c=2.0, n=50, delta=2, nu=0.2, strict_model=True)
        honest, _ = draw_mining_traces(
            params, trials=8, rounds=2_000, rng=5, draw_mode="bernoulli"
        )
        assert honest.shape == (8, 2_000)
        expected = round(params.honest_count) * params.p
        assert honest.mean() == pytest.approx(expected, rel=0.1)

    def test_bernoulli_mode_is_deterministic(self):
        params = parameters_from_c(c=2.0, n=50, delta=2, nu=0.2)
        first = draw_mining_traces(params, 3, 40, rng=7, draw_mode="bernoulli")
        second = draw_mining_traces(params, 3, 40, rng=7, draw_mode="bernoulli")
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"trials": 0, "rounds": 10},
            {"trials": 3, "rounds": 0},
            {"trials": 3, "rounds": 10, "draw_mode": "quantum"},
        ],
    )
    def test_invalid_arguments_raise(self, kwargs):
        with pytest.raises(SimulationError):
            draw_mining_traces(PARAMS, rng=0, **kwargs)


class TestConvergenceOpportunityMask:
    @pytest.mark.parametrize("delta", [1, 2, 3, 4])
    def test_matches_streaming_detector_and_scalar_counter(self, delta, rng):
        """The vectorized window test equals both reference counters, row by row."""
        traces = rng.poisson(0.6, size=(12, 400))
        batch_counts = count_convergence_opportunities_batch(traces, delta)
        for row, expected in zip(traces, batch_counts):
            detector = ConvergenceOpportunityDetector(delta)
            detector.observe_many(row)
            assert detector.count == expected
            assert count_convergence_opportunities(row, delta) == expected

    def test_mask_positions_complete_the_pattern(self):
        # Delta = 2: the pattern N N 1 N N completes at index 4.
        trace = np.array([[0, 0, 1, 0, 0, 3, 0, 0, 1, 0, 0]])
        mask = convergence_opportunity_mask(trace, delta=2)
        assert mask.sum() == 2
        assert mask[0, 4] and mask[0, 10]

    def test_short_trace_has_no_opportunities(self):
        trace = np.zeros((3, 4), dtype=np.int64)
        trace[:, 1] = 1
        assert count_convergence_opportunities_batch(trace, delta=2).sum() == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            convergence_opportunity_mask(np.zeros((2, 10)), delta=0)
        with pytest.raises(ParameterError):
            convergence_opportunity_mask(np.zeros(10), delta=2)


class TestWorstWindowDeficits:
    def test_matches_brute_force_windows(self, rng):
        mask = rng.random((6, 120)) < 0.05
        adversary = rng.poisson(0.08, size=(6, 120))
        deficits = worst_window_deficits(mask, adversary)
        difference = np.cumsum(adversary - mask.astype(np.int64), axis=1)
        for trial in range(6):
            padded = np.concatenate([[0], difference[trial]])
            brute = max(
                padded[end] - padded[start]
                for start in range(len(padded))
                for end in range(start, len(padded))
            )
            assert deficits[trial] == brute

    def test_zero_adversary_means_zero_deficit(self):
        mask = np.ones((2, 30), dtype=bool)
        adversary = np.zeros((2, 30), dtype=np.int64)
        assert (worst_window_deficits(mask, adversary) == 0).all()

    def test_shape_mismatch_raises(self):
        with pytest.raises(SimulationError):
            worst_window_deficits(np.zeros((2, 5)), np.zeros((2, 6)))


class TestBatchSimulation:
    def test_run_is_deterministic_per_seed(self):
        first = BatchSimulation(PARAMS, rng=11).run(trials=6, rounds=900)
        second = BatchSimulation(PARAMS, rng=11).run(trials=6, rounds=900)
        assert np.array_equal(
            first.convergence_opportunities, second.convergence_opportunities
        )
        assert np.array_equal(first.adversary_blocks, second.adversary_blocks)
        third = BatchSimulation(PARAMS, rng=12).run(trials=6, rounds=900)
        assert not np.array_equal(third.honest_blocks, first.honest_blocks)

    def test_result_statistics_are_consistent(self):
        result = BatchSimulation(PARAMS, rng=3).run(trials=24, rounds=3_000)
        assert np.array_equal(
            result.lemma1_margins,
            result.convergence_opportunities - result.adversary_blocks,
        )
        low, high = result.convergence_rate_ci95
        assert low <= result.mean_convergence_rate <= high
        assert 0.0 <= result.lemma1_fraction <= 1.0
        # Deficits are bounded by the total adversarial blocks of the trial.
        assert (result.worst_deficits <= result.adversary_blocks).all()
        assert (result.worst_deficits >= 0).all()
        summary = result.summary()
        assert summary["trials"] == 24
        assert summary["mean_convergence_rate"] == pytest.approx(
            result.mean_convergence_rate
        )
        assert summary["lemma1_fraction"] == result.lemma1_fraction

    def test_batch_mean_tracks_theory(self):
        result = BatchSimulation(PARAMS, rng=0).run(trials=48, rounds=12_000)
        assert result.mean_convergence_rate == pytest.approx(
            result.theoretical_convergence_rate, rel=0.05
        )
        assert result.mean_adversary_rate == pytest.approx(
            result.theoretical_adversary_rate, rel=0.05
        )
        assert result.lemma1_fraction == 1.0

    def test_keep_traces_retains_tensors(self):
        result = BatchSimulation(PARAMS, rng=2).run(
            trials=3, rounds=200, keep_traces=True
        )
        assert result.honest_counts.shape == (3, 200)
        assert np.array_equal(result.honest_counts.sum(axis=1), result.honest_blocks)
        bare = BatchSimulation(PARAMS, rng=2).run(trials=3, rounds=200)
        assert bare.honest_counts is None

    def test_deficit_exceeds_flags(self):
        result = BatchSimulation(PARAMS, rng=4).run(trials=10, rounds=1_000)
        assert (result.deficit_exceeds(0)).all()
        huge = result.deficit_exceeds(10**9)
        assert not huge.any()
        with pytest.raises(SimulationError):
            result.deficit_exceeds(-1)

    def test_run_traces_validates_shapes(self):
        engine = BatchSimulation(PARAMS)
        with pytest.raises(SimulationError):
            engine.run_traces(np.zeros((2, 10)), np.zeros((3, 10)))
        with pytest.raises(SimulationError):
            engine.run_traces(np.zeros(10), np.zeros(10))


class TestBatchAnalysisLayer:
    def test_validate_expectations_batch_agrees_with_theory(self):
        validation = validate_expectations_batch(PARAMS, trials=48, rounds=10_000, rng=0)
        assert validation.agrees(tolerance=0.05)
        assert validation.convergence_theory_in_ci or (
            validation.convergence_relative_error < 0.02
        )
        assert validation.lemma1_fraction == 1.0

    def test_validate_expectations_batch_handles_adversary_free_configuration(self):
        from repro.params import ProtocolParameters

        params = ProtocolParameters(
            p=1.0 / 12_000.0, n=1_000, delta=3, nu=0.0, strict_model=False
        )
        validation = validate_expectations_batch(params, trials=6, rounds=2_000, rng=0)
        assert validation.mean_adversary_rate == 0.0
        assert validation.adversary_relative_error == 0.0
        assert validation.agrees(tolerance=0.2)

    def test_validate_expectations_batch_rejects_bad_sizes(self):
        with pytest.raises(AnalysisError):
            validate_expectations_batch(PARAMS, trials=0, rounds=100)
        with pytest.raises(AnalysisError):
            validate_expectations_batch(PARAMS, trials=4, rounds=0)

    def test_batch_simulation_sweep_rows(self):
        scenarios = [{"c": 6.0, "nu": 0.15}, {"c": 0.5, "nu": 0.45}]
        rows = batch_simulation_sweep(
            scenarios, trials=8, rounds=3_000, n=500, delta=3, seed=17
        )
        assert len(rows) == 2
        safe, attacked = rows
        assert safe["neat_bound_satisfied"] and not safe["attack_predicted"]
        assert not attacked["neat_bound_satisfied"] and attacked["attack_predicted"]
        assert safe["lemma1_fraction"] > 0.9
        assert attacked["lemma1_fraction"] < 0.1
        assert attacked["max_worst_deficit"] > safe["max_worst_deficit"]
