"""Tests for repro.markov.chain: the generic finite Markov chain."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MarkovChainError
from repro.markov import FiniteMarkovChain


def random_stochastic_matrix(size: int, rng: np.random.Generator) -> np.ndarray:
    matrix = rng.random((size, size)) + 1e-3
    return matrix / matrix.sum(axis=1, keepdims=True)


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(MarkovChainError):
            FiniteMarkovChain([[0.5, 0.5]])

    def test_rejects_rows_not_summing_to_one(self):
        with pytest.raises(MarkovChainError):
            FiniteMarkovChain([[0.5, 0.4], [0.5, 0.5]])

    def test_rejects_negative_entries(self):
        with pytest.raises(MarkovChainError):
            FiniteMarkovChain([[1.2, -0.2], [0.5, 0.5]])

    def test_rejects_wrong_label_count(self):
        with pytest.raises(MarkovChainError):
            FiniteMarkovChain([[0.5, 0.5], [0.5, 0.5]], labels=["only-one"])

    def test_rejects_duplicate_labels(self):
        with pytest.raises(MarkovChainError):
            FiniteMarkovChain([[0.5, 0.5], [0.5, 0.5]], labels=["a", "a"])

    def test_rejects_empty_matrix(self):
        with pytest.raises(MarkovChainError):
            FiniteMarkovChain(np.zeros((0, 0)))


class TestBasicAccessors:
    def test_probability_lookup(self):
        chain = FiniteMarkovChain([[0.1, 0.9], [0.7, 0.3]], labels=["a", "b"])
        assert chain.probability("a", "b") == pytest.approx(0.9)
        assert chain.probability("b", "a") == pytest.approx(0.7)

    def test_unknown_label(self):
        chain = FiniteMarkovChain([[1.0]])
        with pytest.raises(MarkovChainError):
            chain.index_of("missing")

    def test_default_labels(self):
        chain = FiniteMarkovChain([[0.5, 0.5], [0.5, 0.5]])
        assert chain.labels == [0, 1]


class TestStructure:
    def test_irreducible_chain(self):
        chain = FiniteMarkovChain([[0.5, 0.5], [0.5, 0.5]])
        assert chain.is_irreducible()
        assert chain.is_aperiodic()
        assert chain.is_ergodic()

    def test_reducible_chain(self):
        chain = FiniteMarkovChain([[1.0, 0.0], [0.5, 0.5]])
        assert not chain.is_irreducible()

    def test_periodic_chain(self):
        chain = FiniteMarkovChain([[0.0, 1.0], [1.0, 0.0]])
        assert chain.is_irreducible()
        assert chain.period() == 2
        assert not chain.is_aperiodic()
        assert not chain.is_ergodic()

    def test_three_cycle_period(self):
        matrix = [[0, 1, 0], [0, 0, 1], [1, 0, 0]]
        chain = FiniteMarkovChain(matrix)
        assert chain.period() == 3


class TestStationaryDistribution:
    def test_two_state_closed_form(self):
        # For [[1-a, a], [b, 1-b]] the stationary distribution is (b, a)/(a+b).
        a, b = 0.3, 0.1
        chain = FiniteMarkovChain([[1 - a, a], [b, 1 - b]])
        pi = chain.stationary_distribution()
        assert pi[0] == pytest.approx(b / (a + b))
        assert pi[1] == pytest.approx(a / (a + b))

    def test_uniform_for_doubly_stochastic(self):
        matrix = [[0.2, 0.3, 0.5], [0.5, 0.2, 0.3], [0.3, 0.5, 0.2]]
        pi = FiniteMarkovChain(matrix).stationary_distribution()
        assert np.allclose(pi, 1.0 / 3.0)

    def test_stationary_as_dict(self):
        chain = FiniteMarkovChain([[0.5, 0.5], [0.2, 0.8]], labels=["x", "y"])
        pi = chain.stationary_as_dict()
        assert set(pi) == {"x", "y"}
        assert sum(pi.values()) == pytest.approx(1.0)

    @given(size=st.integers(min_value=2, max_value=12), seed=st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=80, deadline=None)
    def test_stationary_is_invariant(self, size, seed):
        rng = np.random.default_rng(seed)
        chain = FiniteMarkovChain(random_stochastic_matrix(size, rng))
        pi = chain.stationary_distribution()
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi >= 0.0)
        assert np.allclose(pi @ chain.transition_matrix, pi, atol=1e-8)


class TestEvolutionAndHittingTimes:
    def test_evolve_preserves_mass(self):
        chain = FiniteMarkovChain([[0.5, 0.5], [0.1, 0.9]])
        distribution = chain.evolve(np.array([1.0, 0.0]), steps=5)
        assert distribution.sum() == pytest.approx(1.0)

    def test_evolve_converges_to_stationary(self):
        chain = FiniteMarkovChain([[0.5, 0.5], [0.1, 0.9]])
        distribution = chain.evolve(chain.point_distribution(0), steps=200)
        assert np.allclose(distribution, chain.stationary_distribution(), atol=1e-9)

    def test_evolve_rejects_bad_shape(self):
        chain = FiniteMarkovChain([[0.5, 0.5], [0.1, 0.9]])
        with pytest.raises(MarkovChainError):
            chain.evolve(np.array([1.0, 0.0, 0.0]))

    def test_hitting_times_two_state(self):
        # From state 0, expected time to hit state 1 is 1/a for leave-probability a.
        a = 0.25
        chain = FiniteMarkovChain([[1 - a, a], [0.5, 0.5]])
        hitting = chain.expected_hitting_times(1)
        assert hitting[1] == pytest.approx(0.0)
        assert hitting[0] == pytest.approx(1.0 / a)

    def test_mean_recurrence_time_is_inverse_stationary(self):
        chain = FiniteMarkovChain([[0.5, 0.5], [0.25, 0.75]], labels=["a", "b"])
        pi = chain.stationary_as_dict()
        assert chain.mean_recurrence_time("a") == pytest.approx(1.0 / pi["a"])
