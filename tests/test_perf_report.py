"""The perf-regression sentinel: baselines, tolerances, CLI exit codes."""

from __future__ import annotations

import pytest

from repro.analysis import DEFAULT_TOLERANCE, detect_regressions
from repro.analysis.perf_report import main
from repro.observability import append_trajectory, trajectory_record


def _write(path, benchmark, mode, metrics_list, metric="speedup", **kwargs):
    for value in metrics_list:
        append_trajectory(
            trajectory_record(benchmark, mode, {metric: value}, **kwargs), path
        )


class TestDetectRegressions:
    def test_synthetic_2x_slowdown_fires(self, tmp_path):
        path = tmp_path / "traj.json"
        _write(path, "scenarios", "full", [10.0, 9.6, 5.0])
        (verdict,) = detect_regressions(path)
        assert verdict["regressed"] is True
        assert verdict["metric"] == "speedup"
        assert verdict["baseline"] == pytest.approx(9.8)
        assert verdict["ratio"] == pytest.approx(5.0 / 9.8)
        assert verdict["history"] == 2

    def test_within_tolerance_passes(self, tmp_path):
        path = tmp_path / "traj.json"
        _write(path, "scenarios", "full", [10.0, 9.6, 9.0])
        (verdict,) = detect_regressions(path)
        assert verdict["regressed"] is False

    def test_lower_is_better_metric_fires_on_rise(self, tmp_path):
        path = tmp_path / "traj.json"
        _write(
            path,
            "observability",
            "full",
            [0.010, 0.012, 0.050],
            metric="overhead_fraction",
        )
        (verdict,) = detect_regressions(path)
        assert verdict["lower_is_better"] is True
        assert verdict["regressed"] is True
        # ...and an *improvement* (falling overhead) never fires.
        path2 = tmp_path / "traj2.json"
        _write(
            path2,
            "observability",
            "full",
            [0.010, 0.012, 0.001],
            metric="overhead_fraction",
        )
        (verdict,) = detect_regressions(path2)
        assert verdict["regressed"] is False

    def test_insufficient_history_never_regresses(self, tmp_path):
        path = tmp_path / "traj.json"
        _write(path, "scenarios", "full", [1.0])
        (verdict,) = detect_regressions(path)
        assert verdict["regressed"] is False
        assert "insufficient history" in verdict["detail"]
        assert verdict["baseline"] is None

    def test_modes_keep_separate_baselines(self, tmp_path):
        path = tmp_path / "traj.json"
        # Quick mode is legitimately much slower per-speedup than full; the
        # latest full record must only be judged against full history.
        _write(path, "scenarios", "quick", [2.0, 2.1])
        _write(path, "scenarios", "full", [10.0, 9.8])
        verdicts = detect_regressions(path)
        assert len(verdicts) == 2
        by_mode = {verdict["mode"]: verdict for verdict in verdicts}
        assert by_mode["full"]["baseline"] == pytest.approx(10.0)
        assert not by_mode["full"]["regressed"]
        assert not by_mode["quick"]["regressed"]

    def test_null_machine_and_timestamp_entries_are_tolerated(self, tmp_path):
        path = tmp_path / "traj.json"
        _write(
            path,
            "rare_events",
            "full",
            [100.0, 110.0],
            metric="variance_reduction",
            timestamp=None,
            machine=None,
        )
        (verdict,) = detect_regressions(path)
        assert verdict["regressed"] is False

    def test_tolerance_is_configurable(self, tmp_path):
        path = tmp_path / "traj.json"
        _write(path, "scenarios", "full", [10.0, 8.0])
        assert not detect_regressions(path)[0]["regressed"]
        assert detect_regressions(path, tolerance=0.1)[0]["regressed"]

    def test_min_history_gates_judgement(self, tmp_path):
        path = tmp_path / "traj.json"
        _write(path, "scenarios", "full", [10.0, 1.0])
        assert detect_regressions(path)[0]["regressed"]
        (verdict,) = detect_regressions(path, min_history=3)
        assert not verdict["regressed"]
        assert "insufficient history" in verdict["detail"]

    def test_benchmark_filter(self, tmp_path):
        path = tmp_path / "traj.json"
        _write(path, "scenarios", "full", [10.0, 1.0])
        _write(path, "topology", "full", [5.0, 5.0])
        verdicts = detect_regressions(path, benchmark="topology")
        assert [verdict["benchmark"] for verdict in verdicts] == ["topology"]

    def test_committed_trajectory_passes(self):
        import os

        path = os.path.join(os.path.dirname(__file__), "..", "BENCH_trajectory.json")
        verdicts = detect_regressions(path)
        assert verdicts, "committed trajectory should produce verdicts"
        assert not any(verdict["regressed"] for verdict in verdicts)


class TestSentinelCli:
    def test_exit_one_on_regression(self, tmp_path, capsys):
        path = tmp_path / "traj.json"
        _write(path, "scenarios", "full", [10.0, 9.6, 5.0])
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "scenarios/full" in out

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        path = tmp_path / "traj.json"
        _write(path, "scenarios", "full", [10.0, 9.6, 9.5])
        assert main([str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_cli_flags_are_honoured(self, tmp_path):
        path = tmp_path / "traj.json"
        _write(path, "scenarios", "full", [10.0, 8.0])
        assert main([str(path)]) == 0
        assert main([str(path), "--tolerance", "0.1"]) == 1
        assert main([str(path), "--tolerance", "0.1", "--min-history", "5"]) == 0

    def test_default_tolerance_catches_exact_2x(self):
        # The advertised contract: a clean 2x slowdown (ratio 0.5) must sit
        # outside the default tolerance band.
        assert 0.5 < 1.0 - DEFAULT_TOLERANCE
