"""Tests for the analysis harness: figure1, remark1, tables, validation, sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    PAPER_SETTINGS,
    bound_sweep,
    default_c_grid,
    figure1_checks,
    figure1_series,
    implication_chain_ablation,
    remark1_row,
    remark1_table,
    render_mapping,
    render_table,
    security_margin_sweep,
    simulation_sweep,
    table_i,
    validate_consistency_scenario,
    validate_expectations,
    validate_suffix_stationary,
)
from repro.errors import AnalysisError
from repro.params import parameters_from_c


class TestFigure1:
    def test_default_grid_spans_paper_range(self):
        grid = default_c_grid()
        assert grid[0] == pytest.approx(0.1)
        assert grid[-1] == pytest.approx(100.0)
        assert np.all(np.diff(grid) > 0)

    def test_grid_requires_two_points(self):
        with pytest.raises(AnalysisError):
            default_c_grid(points=1)

    def test_series_has_all_columns(self):
        series = figure1_series(c_values=[0.5, 2.0, 10.0])
        arrays = series.as_arrays()
        assert set(arrays) == {"c", "nu_max_ours", "nu_max_pss", "nu_min_attack"}
        assert len(series.points) == 3
        assert len(series.as_rows()) == 3

    def test_figure1_qualitative_checks_pass(self):
        """The three facts the paper reads off Figure 1 hold on the regenerated data."""
        checks = figure1_checks(figure1_series())
        assert checks["ours_above_pss"]
        assert checks["ours_below_attack"]
        assert checks["curves_monotone"]

    def test_specific_values_match_closed_forms(self):
        from repro.core.bounds import nu_max_neat_bound
        from repro.core.pss import nu_max_pss_consistency, nu_min_pss_attack

        series = figure1_series(c_values=[5.0])
        point = series.points[0]
        assert point.nu_max_ours == pytest.approx(nu_max_neat_bound(5.0))
        assert point.nu_max_pss == pytest.approx(nu_max_pss_consistency(5.0))
        assert point.nu_min_attack == pytest.approx(nu_min_pss_attack(5.0))


class TestRemark1:
    def test_paper_first_setting_reproduced(self):
        row = remark1_row(10**13, 1.0 / 6.0, 1.0 / 2.0)
        # Paper: 1e-63 <= nu <= 0.5 - 1e-7, slack 1 + 5e-5.
        assert row.log10_nu_low == pytest.approx(-63.7, abs=1.0)
        assert row.nu_high_gap == pytest.approx(1e-7, rel=0.5)
        assert row.slack_excess == pytest.approx(5e-5, rel=0.2)

    def test_paper_second_setting_reproduced(self):
        row = remark1_row(10**13, 1.0 / 8.0, 2.0 / 3.0)
        assert row.log10_nu_low == pytest.approx(-18.3, abs=1.0)
        assert row.nu_high_gap == pytest.approx(1e-9, rel=1.0)
        assert row.slack_excess == pytest.approx(2e-3, rel=0.1)

    def test_table_defaults_to_paper_settings(self):
        rows = remark1_table()
        assert len(rows) == len(PAPER_SETTINGS)
        assert rows[0].delta1 == pytest.approx(1.0 / 6.0)

    def test_custom_settings(self):
        rows = remark1_table(delta=10**6, settings=[(0.2, 0.3)])
        assert len(rows) == 1
        assert rows[0].slack_factor > 1.0

    def test_as_dict_round_trip(self):
        row = remark1_row(10**9, 0.2, 0.4)
        data = row.as_dict()
        assert data["slack_factor"] == pytest.approx(row.slack_factor)


class TestTables:
    def test_render_table_alignment(self):
        text = render_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_empty_table_rejected(self):
        with pytest.raises(AnalysisError):
            render_table([])

    def test_render_mapping(self):
        text = render_mapping({"alpha": 0.5, "holds": True})
        assert "alpha" in text
        assert "yes" in text

    def test_table_i_contains_all_symbols(self, small_params):
        rows = table_i(small_params)
        symbols = {row["symbol"] for row in rows}
        assert symbols == {"p", "n", "Delta", "c", "mu", "nu", "alpha", "alpha_bar", "alpha1"}
        rendered = render_table(rows)
        assert "alpha_bar" in rendered


class TestValidation:
    def test_suffix_stationary_agreement(self, small_params, rng):
        validation = validate_suffix_stationary(small_params, rounds=80_000, rng=rng)
        assert validation.agrees()
        assert validation.max_closed_vs_numeric < 1e-9

    def test_expectations_via_iid_sampling(self, small_params, rng):
        validation = validate_expectations(
            small_params, rounds=80_000, rng=rng, use_full_simulation=False
        )
        assert validation.agrees(tolerance=0.1)

    def test_expectations_via_full_simulation(self, small_params, rng):
        validation = validate_expectations(
            small_params, rounds=30_000, rng=rng, use_full_simulation=True
        )
        assert validation.agrees(tolerance=0.15)

    def test_consistency_scenario_safe_point(self, rng):
        params = parameters_from_c(c=6.0, n=1_000, delta=3, nu=0.2)
        scenario = validate_consistency_scenario(params, rounds=15_000, rng=rng)
        assert scenario.neat_bound_satisfied
        assert not scenario.attack_predicted
        assert scenario.lemma1_event_holds

    def test_consistency_scenario_attack_point(self, attack_params, rng):
        scenario = validate_consistency_scenario(attack_params, rounds=15_000, rng=rng)
        assert not scenario.neat_bound_satisfied
        assert scenario.attack_predicted
        assert scenario.max_violation_depth >= 6 or not scenario.lemma1_event_holds

    def test_rejects_nonpositive_rounds(self, small_params, rng):
        with pytest.raises(AnalysisError):
            validate_suffix_stationary(small_params, rounds=0, rng=rng)
        with pytest.raises(AnalysisError):
            validate_expectations(small_params, rounds=0, rng=rng)


class TestSweeps:
    def test_bound_sweep_shape_and_verdicts(self):
        rows = bound_sweep(c_values=[0.5, 5.0], nu_values=[0.1, 0.4], delta=5, n=10_000)
        assert len(rows) == 4
        by_point = {(row["c"], row["nu"]): row for row in rows}
        assert by_point[(5.0, 0.1)]["consistent_ours"]
        assert not by_point[(0.5, 0.4)]["consistent_ours"]
        assert by_point[(0.5, 0.4)]["attack_succeeds"]

    def test_security_margin_sweep_orderings(self):
        rows = security_margin_sweep(nu_values=[0.1, 0.25, 0.4])
        for row in rows:
            assert row["c_attack_below"] < row["c_required_ours"] < row["c_required_pss"]
            assert row["improvement_factor"] > 1.0

    def test_simulation_sweep_runs_each_scenario(self):
        scenarios = [{"c": 6.0, "nu": 0.2}, {"c": 0.5, "nu": 0.45}]
        results = simulation_sweep(scenarios, rounds=5_000, n=500, delta=3, seed=11)
        assert len(results) == 2
        assert results[0].neat_bound_satisfied
        assert not results[1].neat_bound_satisfied

    def test_implication_chain_ablation_monotone(self):
        rows = implication_chain_ablation(nu_values=[0.2, 0.35], delta=10, n=50_000)
        for row in rows:
            steps = [row[key] for key in sorted(row) if key.startswith("step_")]
            assert steps == sorted(steps)
            assert row["neat_bound"] <= steps[-1]
