"""Seeded equivalence: the scenario engine versus the legacy adversarial loop.

The scenario engine pre-draws ``(trials, rounds)`` success tensors plus a
rotating honest-attribution schedule; replaying exactly that trace through
the legacy :class:`NakamotoSimulation` — counts and miner ids via
:class:`ScriptedMiningOracle`, the strategy via
:meth:`Scenario.build_adversary` — must reproduce the engine's per-round
public and private heights, release and abandon rounds, and fork-depth
tallies *bit for bit*, across a (nu, Delta, strategy) grid covering all
four registered scenarios.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.params import parameters_from_c
from repro.simulation import (
    NakamotoSimulation,
    Scenario,
    ScenarioSimulation,
    ScriptedMiningOracle,
    draw_mining_traces,
    get_scenario,
    rotating_honest_attribution,
)

TRIALS = 2
ROUNDS = 700
#: c = 1 with small n keeps the adversary strong enough that the withholding
#: scenarios actually release (and, at small nu, actually give up).
C, MINERS = 1.0, 400

GRID = [
    (scenario, nu, delta)
    for scenario in ("passive", "max_delay", "private_chain", "selfish_mining")
    for nu in (0.2, 0.4)
    for delta in (1, 3)
]


def _run_both(scenario_name, nu, delta, seed):
    params = parameters_from_c(c=C, n=MINERS, delta=delta, nu=nu)
    scenario = get_scenario(scenario_name)
    engine = ScenarioSimulation(params, scenario, rng=seed)
    honest, adversary = draw_mining_traces(params, TRIALS, ROUNDS, rng=seed)
    result = engine.run_traces(honest, adversary, record_rounds=True)

    legacy_runs = []
    for trial in range(TRIALS):
        ids = rotating_honest_attribution(
            honest[trial], engine.honest_miners, engine.honest_delay
        )
        strategy = scenario.build_adversary(delta)
        simulation = NakamotoSimulation(
            params,
            adversary=strategy,
            rng=np.random.default_rng(0),
            oracle=ScriptedMiningOracle(
                honest[trial], adversary[trial], honest_miner_ids=ids
            ),
        )
        legacy_runs.append((simulation.run(ROUNDS), strategy))
    return result, legacy_runs


@pytest.mark.parametrize("scenario_name, nu, delta", GRID)
class TestScriptedReplayEquivalence:
    def test_per_round_heights_match(self, scenario_name, nu, delta):
        """Public chain height and private-fork height agree every round."""
        result, legacy_runs = _run_both(scenario_name, nu, delta, seed=900 + delta)
        for trial, (legacy, _strategy) in enumerate(legacy_runs):
            public = np.array([r.public_chain_height for r in legacy.records])
            private = np.array([r.adversary_private_height for r in legacy.records])
            assert np.array_equal(public, result.public_heights[trial])
            assert np.array_equal(private, result.private_heights[trial])

    def test_release_and_abandon_rounds_match(self, scenario_name, nu, delta):
        """The engines agree on exactly *when* chains were released/abandoned."""
        result, legacy_runs = _run_both(scenario_name, nu, delta, seed=900 + delta)
        for trial, (_legacy, strategy) in enumerate(legacy_runs):
            expected_releases = getattr(strategy, "release_rounds", [])
            expected_abandons = getattr(strategy, "abandon_rounds", [])
            assert list(result.release_rounds(trial)) == list(expected_releases)
            assert list(result.abandon_rounds(trial)) == list(expected_abandons)

    def test_fork_depth_tallies_match(self, scenario_name, nu, delta):
        """Releases, deepest displaced suffix and withheld counts agree."""
        result, legacy_runs = _run_both(scenario_name, nu, delta, seed=900 + delta)
        for trial, (legacy, strategy) in enumerate(legacy_runs):
            assert legacy.adversary_releases == result.releases[trial]
            assert legacy.adversary_deepest_fork == result.deepest_forks[trial]
            assert legacy.final_height == result.final_public_heights[trial]
            assert (
                getattr(strategy, "withheld_count", 0)
                == result.withheld_final[trial]
            )
            if scenario_name == "selfish_mining":
                assert (
                    strategy.orphaned_honest_blocks
                    == result.orphaned_honest[trial]
                )


def test_equivalence_exercises_both_attack_outcomes():
    """The grid must cover real attack activity, not just quiet runs: at
    nu=0.4 the withholding attack releases; at nu=0.2 it gives up."""
    strong, _ = _run_both("private_chain", 0.4, 3, seed=903)
    weak, _ = _run_both("private_chain", 0.2, 3, seed=903)
    assert int(strong.releases.sum()) > 0
    assert int(weak.abandons.sum()) > 0


def test_intermediate_delay_publish_replays_exactly():
    """A publish scenario with 0 < honest_delay < Delta (the delivery ring's
    general case) is also bit-comparable."""
    params = parameters_from_c(c=C, n=MINERS, delta=4, nu=0.35)
    scenario = Scenario(name="half_delay", kind="publish", honest_delay=2)
    engine = ScenarioSimulation(params, scenario, rng=55)
    honest, adversary = draw_mining_traces(params, 2, ROUNDS, rng=55)
    result = engine.run_traces(honest, adversary, record_rounds=True)
    for trial in range(2):
        ids = rotating_honest_attribution(honest[trial], engine.honest_miners, 2)
        legacy = NakamotoSimulation(
            params,
            adversary=scenario.build_adversary(4),
            rng=np.random.default_rng(0),
            oracle=ScriptedMiningOracle(
                honest[trial], adversary[trial], honest_miner_ids=ids
            ),
        ).run(ROUNDS)
        public = np.array([r.public_chain_height for r in legacy.records])
        assert np.array_equal(public, result.public_heights[trial])
        assert legacy.final_height == result.final_public_heights[trial]


def test_custom_scenario_replays_exactly():
    """A non-registered Scenario (shallow target, quick give-up) is equally
    bit-comparable — the replay harness is not limited to the registry."""
    scenario = Scenario(
        name="pc_shallow", kind="private_chain", target_depth=3, give_up_deficit=5
    )
    params = parameters_from_c(c=C, n=MINERS, delta=2, nu=0.35)
    engine = ScenarioSimulation(params, scenario, rng=31)
    honest, adversary = draw_mining_traces(params, 1, ROUNDS, rng=31)
    result = engine.run_traces(honest, adversary, record_rounds=True)

    ids = rotating_honest_attribution(honest[0], engine.honest_miners, 2)
    strategy = scenario.build_adversary(2)
    legacy = NakamotoSimulation(
        params,
        adversary=strategy,
        rng=np.random.default_rng(0),
        oracle=ScriptedMiningOracle(honest[0], adversary[0], honest_miner_ids=ids),
    ).run(ROUNDS)
    public = np.array([r.public_chain_height for r in legacy.records])
    assert np.array_equal(public, result.public_heights[0])
    assert legacy.adversary_releases == result.releases[0]
    assert legacy.adversary_deepest_fork == result.deepest_forks[0]
    assert strategy.release_rounds == list(result.release_rounds(0))
