"""Unit tests for the array-backend layer: dispatch, dtypes, workspaces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    ARRAY_OPS,
    BACKEND_ENV_VAR,
    COMPACT_POLICY,
    COMPACT_STAT_RTOL,
    DTYPE_POLICY_ENV_VAR,
    ArrayBackend,
    NumpyBackend,
    Workspace,
    backend_specs,
    get_backend,
    get_dtype_policy,
    list_backends,
    list_dtype_policies,
    register_backend,
    use_backend,
    use_dtype_policy,
)
from repro.backend.dispatch import DEFAULT_BACKEND
from repro.backend.dtypes import DtypePolicy
from repro.errors import BackendError, BackendUnavailableError
from repro.params import parameters_from_c
from repro.simulation import BatchSimulation, ScenarioSimulation


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
class TestDispatch:
    def test_default_backend_is_numpy(self):
        backend = get_backend()
        assert isinstance(backend, NumpyBackend)
        assert backend.name == DEFAULT_BACKEND == "numpy"

    def test_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_every_declared_op_exists_on_numpy_backend(self):
        backend = get_backend("numpy")
        missing = [op for op in ARRAY_OPS if not callable(getattr(backend, op, None))]
        assert not missing

    def test_env_var_selection(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert get_backend().name == "numpy"
        monkeypatch.setenv(BACKEND_ENV_VAR, "no_such_backend")
        with pytest.raises(BackendError, match="unknown backend"):
            get_backend()

    def test_empty_env_var_means_default(self, monkeypatch):
        """CI matrices export REPRO_BACKEND=\"\" on baseline legs; empty must
        behave exactly like unset (same for the dtype-policy variable)."""
        monkeypatch.setenv(BACKEND_ENV_VAR, "")
        assert get_backend().name == DEFAULT_BACKEND
        monkeypatch.setenv(DTYPE_POLICY_ENV_VAR, "")
        assert get_dtype_policy().name == "wide"

    def test_unknown_backend_error_lists_registry(self):
        with pytest.raises(BackendError, match="registered backends"):
            get_backend("definitely_not_registered")

    def test_context_manager_nesting(self):
        outer = get_backend("numpy")

        class Marker(NumpyBackend):
            name = "marker"

        marker = Marker()
        with use_backend(outer):
            assert get_backend() is outer
            with use_backend(marker):
                assert get_backend() is marker
            assert get_backend() is outer
        # The stack fully unwinds: ambient selection is back in charge.
        assert get_backend().name == "numpy"

    def test_context_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "no_such_backend")
        with use_backend("numpy"):
            assert get_backend().name == "numpy"

    def test_register_refuses_silent_redefinition(self):
        with pytest.raises(BackendError, match="already registered"):
            register_backend("numpy", NumpyBackend)

    def test_instance_passthrough(self):
        backend = NumpyBackend()
        assert get_backend(backend) is backend

    def test_list_and_specs(self):
        names = list_backends()
        assert "numpy" in names and "array_api" in names
        specs = backend_specs()
        assert specs["numpy"]["available"] is True
        assert "available" in specs["array_api"]

    def test_array_api_backend_degrades_to_clear_error(self):
        """Without the optional accelerator deps the backend must raise the
        skippable BackendUnavailableError, never crash; with them it must
        construct."""
        specs = backend_specs()["array_api"]
        if specs["available"]:
            backend = get_backend("array_api")
            assert isinstance(backend, ArrayBackend)
        else:
            with pytest.raises(BackendUnavailableError):
                get_backend("array_api")


# ----------------------------------------------------------------------
# Dtype policies
# ----------------------------------------------------------------------
class TestDtypePolicy:
    def test_wide_is_default_and_matches_history(self):
        policy = get_dtype_policy()
        backend = get_backend("numpy")
        assert policy.name == "wide"
        assert policy.index_dtype(backend) is np.int64
        assert policy.mask_dtype(backend) is np.bool_
        assert policy.stat_dtype(backend) is np.float64

    def test_compact_mapping(self):
        backend = get_backend("numpy")
        assert COMPACT_POLICY.index_dtype(backend) is np.int32
        assert COMPACT_POLICY.mask_dtype(backend) is np.uint8
        assert COMPACT_POLICY.stat_dtype(backend) is np.float32

    def test_env_var_and_context(self, monkeypatch):
        monkeypatch.setenv(DTYPE_POLICY_ENV_VAR, "compact")
        assert get_dtype_policy().name == "compact"
        with use_dtype_policy("wide"):
            assert get_dtype_policy().name == "wide"
        assert get_dtype_policy().name == "compact"

    def test_unknown_policy_errors(self):
        with pytest.raises(BackendError, match="registered policies"):
            get_dtype_policy("nope")

    def test_invalid_field_rejected(self):
        with pytest.raises(BackendError, match="must be one of"):
            DtypePolicy(name="bad", index="complex128")

    def test_listing(self):
        assert {"wide", "compact"} <= set(list_dtype_policies())

    def test_compact_rejects_overflowable_round_counts(self):
        with pytest.raises(BackendError, match="int32"):
            COMPACT_POLICY.check_rounds(2**30)
        COMPACT_POLICY.check_rounds(10_000)  # fine

    def test_compact_batch_integers_exact_floats_within_tolerance(self):
        """Compact results: integer outputs exact, statistics within the
        documented float32 tolerance."""
        params = parameters_from_c(c=4.0, n=400, delta=3, nu=0.2)
        wide = BatchSimulation(params, rng=7).run(16, 1_200)
        with use_dtype_policy("compact"):
            compact = BatchSimulation(params, rng=7).run(16, 1_200)
            compact_ci = compact.convergence_rate_ci95
        assert np.array_equal(
            wide.convergence_opportunities, compact.convergence_opportunities
        )
        assert np.array_equal(wide.honest_blocks, compact.honest_blocks)
        assert np.array_equal(wide.adversary_blocks, compact.adversary_blocks)
        assert np.array_equal(wide.worst_deficits, compact.worst_deficits)
        wide_ci = wide.convergence_rate_ci95
        assert compact_ci == pytest.approx(wide_ci, rel=COMPACT_STAT_RTOL)

    def test_compact_scenario_integers_exact(self):
        params = parameters_from_c(c=1.0, n=400, delta=3, nu=0.4)
        wide = ScenarioSimulation(params, "private_chain", rng=7).run(
            8, 1_000, record_rounds=True
        )
        with use_dtype_policy("compact"):
            compact = ScenarioSimulation(params, "private_chain", rng=7).run(
                8, 1_000, record_rounds=True
            )
        assert np.array_equal(wide.public_heights, compact.public_heights)
        assert np.array_equal(wide.private_heights, compact.private_heights)
        assert np.array_equal(wide.deepest_forks, compact.deepest_forks)
        assert np.array_equal(wide.releases, compact.releases)
        assert np.array_equal(wide.release_mask, compact.release_mask)
        assert np.array_equal(wide.worst_deficits, compact.worst_deficits)


# ----------------------------------------------------------------------
# Workspace
# ----------------------------------------------------------------------
class TestWorkspace:
    def test_same_tag_same_shape_reuses_buffer(self):
        workspace = Workspace()
        first = workspace.empty("tag", (8, 4), np.int64)
        second = workspace.empty("tag", (8, 4), np.int64)
        assert first is second

    def test_shape_or_dtype_change_reallocates(self):
        workspace = Workspace()
        first = workspace.empty("tag", (8, 4), np.int64)
        assert workspace.empty("tag", (8, 5), np.int64) is not first
        assert workspace.empty("tag", (8, 5), np.int32).dtype == np.int32

    def test_zeros_clears_reused_buffer(self):
        workspace = Workspace()
        buffer = workspace.zeros("tag", (4,), np.int64)
        buffer += 5
        again = workspace.zeros("tag", (4,), np.int64)
        assert again is buffer
        assert (again == 0).all()

    def test_binding_is_lazy_and_exclusive(self):
        workspace = Workspace()
        assert workspace.backend is None
        workspace.zeros("tag", (2,), np.int64)
        assert workspace.backend is get_backend("numpy")

        class Other(NumpyBackend):
            name = "other"

        with pytest.raises(BackendError, match="bound to backend"):
            workspace.bind(Other())

    def test_tags_nbytes_clear(self):
        workspace = Workspace()
        workspace.zeros("a", (4,), np.int64)
        workspace.zeros("b", (2, 2), np.int64)
        assert workspace.tags == ("a", "b")
        assert workspace.nbytes == 4 * 8 + 4 * 8
        workspace.clear()
        assert workspace.tags == ()
        assert workspace.backend is not None  # binding survives clear()

    def test_engine_results_do_not_alias_workspace(self):
        """Back-to-back runs through one workspace must not corrupt earlier
        results — everything escaping the engine is copied out."""
        params = parameters_from_c(c=1.0, n=400, delta=3, nu=0.4)
        workspace = Workspace()
        engine = ScenarioSimulation(
            params, "private_chain", rng=3, workspace=workspace
        )
        first = engine.run(8, 800)
        snapshot = first.deepest_forks.copy()
        engine.run(8, 800)  # reuses every scan buffer
        assert np.array_equal(first.deepest_forks, snapshot)

    def test_engine_built_in_context_runs_outside_it(self):
        """Engines bind backend, policy and workspace at construction; a run
        issued after the `use_backend` context closed must use that binding
        throughout (helpers and workspace must not re-consult the ambient
        selection mid-run)."""
        params = parameters_from_c(c=4.0, n=400, delta=3, nu=0.2)
        baseline = BatchSimulation(params, rng=5).run(8, 700)
        with use_backend(NumpyBackend()):  # fresh instance, not the singleton
            engine = BatchSimulation(params, rng=5, workspace=Workspace())
        result = engine.run(8, 700)  # outside the context
        assert np.array_equal(
            baseline.convergence_opportunities, result.convergence_opportunities
        )
        assert np.array_equal(baseline.worst_deficits, result.worst_deficits)

    def test_batch_workspace_path_matches_reference(self):
        params = parameters_from_c(c=4.0, n=400, delta=3, nu=0.2)
        reference = BatchSimulation(params, rng=11).run(12, 900)
        workspace = Workspace()
        for _ in range(2):  # second pass exercises warm-buffer reuse
            pooled = BatchSimulation(params, rng=11, workspace=workspace).run(
                12, 900
            )
            assert np.array_equal(
                reference.convergence_opportunities,
                pooled.convergence_opportunities,
            )
            assert np.array_equal(reference.worst_deficits, pooled.worst_deficits)
