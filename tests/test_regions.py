"""Tests for repro.analysis.regions: the (c, nu) security-region partition."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.regions import (
    RegionAreas,
    SecurityRegion,
    classify_point,
    region_areas,
)
from repro.core.bounds import nu_max_neat_bound
from repro.core.pss import nu_max_pss_consistency, nu_min_pss_attack
from repro.errors import AnalysisError


class TestClassifyPoint:
    def test_pss_region(self):
        # c = 10, tiny adversary: even PSS certifies consistency.
        assert classify_point(10.0, 0.05) is SecurityRegion.PSS_CONSISTENT

    def test_ours_only_region(self):
        # c = 2.5: PSS tolerates ~0.18, ours ~0.37.
        nu = (nu_max_pss_consistency(2.5) + nu_max_neat_bound(2.5)) / 2.0
        assert classify_point(2.5, nu) is SecurityRegion.OURS_ONLY

    def test_gap_region(self):
        nu = (nu_max_neat_bound(2.5) + nu_min_pss_attack(2.5)) / 2.0
        assert classify_point(2.5, nu) is SecurityRegion.GAP

    def test_attackable_region(self):
        assert classify_point(0.5, 0.45) is SecurityRegion.ATTACKABLE

    def test_below_c_two_pss_certifies_nothing(self):
        # For c <= 2 the PSS curve is at zero, so no point is PSS-consistent.
        assert classify_point(1.5, 0.01) in (
            SecurityRegion.OURS_ONLY,
            SecurityRegion.GAP,
            SecurityRegion.ATTACKABLE,
        )

    def test_rejects_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            classify_point(0.0, 0.2)
        with pytest.raises(AnalysisError):
            classify_point(1.0, 0.6)

    @given(
        c=st.floats(min_value=0.1, max_value=100.0),
        nu=st.floats(min_value=1e-4, max_value=0.499),
    )
    @settings(max_examples=300, deadline=None)
    def test_classification_consistent_with_curves(self, c, nu):
        region = classify_point(c, nu)
        if region is SecurityRegion.PSS_CONSISTENT:
            assert nu < nu_max_pss_consistency(c)
            assert nu < nu_max_neat_bound(c)
        elif region is SecurityRegion.OURS_ONLY:
            assert nu >= nu_max_pss_consistency(c)
            assert nu < nu_max_neat_bound(c)
        elif region is SecurityRegion.GAP:
            assert nu >= nu_max_neat_bound(c)
            assert nu < nu_min_pss_attack(c)
        else:
            assert nu >= nu_min_pss_attack(c)


class TestRegionAreas:
    @pytest.fixture(scope="class")
    def areas(self) -> RegionAreas:
        return region_areas(c_values=[0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0], nu_points=100)

    def test_fractions_sum_to_one(self, areas):
        assert sum(areas.fractions.values()) == pytest.approx(1.0)

    def test_every_region_is_present(self, areas):
        for region in SecurityRegion:
            assert areas.fractions[region] > 0.0

    def test_ours_certifies_strictly_more_than_pss(self, areas):
        assert areas.certified_by_ours > areas.certified_by_pss
        assert areas.improvement_ratio > 1.0

    def test_open_gap_is_nonzero(self, areas):
        # The paper's stated future direction: a gap remains between its bound
        # and the known attack.
        assert areas.open_gap > 0.0

    def test_as_rows_matches_fractions(self, areas):
        rows = areas.as_rows()
        assert len(rows) == len(SecurityRegion)
        assert sum(row["area fraction"] for row in rows) == pytest.approx(1.0)

    def test_rejects_bad_grids(self):
        with pytest.raises(AnalysisError):
            region_areas(nu_points=1)
        with pytest.raises(AnalysisError):
            region_areas(c_values=[1.0], nu_points=10)
