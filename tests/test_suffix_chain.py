"""Tests for repro.core.suffix_chain: the Markov chain C_F."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.suffix_chain import (
    SuffixChain,
    SuffixState,
    SuffixStateKind,
    suffix_states,
    suffix_trajectory,
)
from repro.errors import MarkovChainError, ParameterError
from repro.params import ProtocolParameters, parameters_from_c


class TestStateEnumeration:
    def test_state_count_is_2_delta_plus_1(self):
        for delta in (1, 2, 3, 5, 10):
            assert len(suffix_states(delta)) == 2 * delta + 1

    def test_states_are_unique(self):
        states = suffix_states(6)
        assert len(set(states)) == len(states)

    def test_delta_one_has_three_states(self):
        states = suffix_states(1)
        kinds = [state.kind for state in states]
        assert kinds == [
            SuffixStateKind.SHORT_GAP_HEAD,
            SuffixStateKind.LONG_GAP,
            SuffixStateKind.LONG_GAP_TAIL,
        ]

    def test_invalid_tail_values_rejected(self):
        with pytest.raises(MarkovChainError):
            SuffixState(SuffixStateKind.SHORT_GAP_HEAD, tail=1)
        with pytest.raises(MarkovChainError):
            SuffixState(SuffixStateKind.SHORT_GAP_TAIL, tail=0)
        with pytest.raises(MarkovChainError):
            SuffixState(SuffixStateKind.LONG_GAP_TAIL, tail=-1)

    def test_rejects_bad_delta(self):
        with pytest.raises(ParameterError):
            suffix_states(0)


class TestTrajectory:
    def test_paper_worked_example(self):
        """The paper's Delta = 3 example: states of rounds 1..10 are
        H,N,H,H,N,N,H,N,N,N; then F_7..F_10 are HN<=2 H, ...HN^1, ...HN^2, HN>=3."""
        rounds = [True, False, True, True, False, False, True, False, False, False]
        trajectory = suffix_trajectory(rounds, delta=3)
        assert trajectory[6] == SuffixState(SuffixStateKind.SHORT_GAP_HEAD)
        assert trajectory[7] == SuffixState(SuffixStateKind.SHORT_GAP_TAIL, 1)
        assert trajectory[8] == SuffixState(SuffixStateKind.SHORT_GAP_TAIL, 2)
        assert trajectory[9] == SuffixState(SuffixStateKind.LONG_GAP)

    def test_long_gap_then_h_goes_to_long_gap_tail_zero(self):
        rounds = [False] * 5 + [True]
        trajectory = suffix_trajectory(rounds, delta=3)
        assert trajectory[-1] == SuffixState(SuffixStateKind.LONG_GAP_TAIL, 0)

    def test_long_gap_tail_then_h_goes_to_short_gap_head(self):
        rounds = [False] * 5 + [True, False, True]
        trajectory = suffix_trajectory(rounds, delta=3)
        assert trajectory[-1] == SuffixState(SuffixStateKind.SHORT_GAP_HEAD)

    def test_trajectory_length_matches_input(self):
        rounds = [True, False] * 10
        assert len(suffix_trajectory(rounds, delta=2)) == 20


class TestTransitionMatrix:
    def test_rows_sum_to_one(self, small_params):
        chain = SuffixChain(small_params)
        matrix = chain.transition_matrix()
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_chain_is_ergodic(self, small_params):
        markov = SuffixChain(small_params).to_markov_chain()
        assert markov.is_irreducible()
        assert markov.is_aperiodic()
        assert markov.is_ergodic()

    def test_every_row_has_exactly_two_targets_or_fewer(self, small_params):
        # Each state moves to the H-successor w.p. alpha and N-successor w.p. alpha_bar.
        matrix = SuffixChain(small_params).transition_matrix()
        nonzero_per_row = (matrix > 0).sum(axis=1)
        assert np.all(nonzero_per_row <= 2)
        assert np.all(nonzero_per_row >= 1)


class TestStationaryDistribution:
    def test_closed_form_sums_to_one(self, small_params):
        chain = SuffixChain(small_params)
        assert sum(chain.closed_form_stationary().values()) == pytest.approx(1.0)

    def test_closed_form_matches_numerical(self, small_params):
        chain = SuffixChain(small_params)
        closed = chain.closed_form_stationary()
        numeric = chain.numerical_stationary()
        for state in chain.states:
            assert closed[state] == pytest.approx(numeric[state], abs=1e-10)

    def test_closed_form_is_invariant_under_transition(self, small_params):
        """pi P = pi for the closed-form pi of Eqs. (37a)-(37d)."""
        chain = SuffixChain(small_params)
        matrix = chain.transition_matrix()
        pi = np.array([chain.closed_form_stationary()[state] for state in chain.states])
        assert np.allclose(pi @ matrix, pi, atol=1e-12)

    def test_specific_closed_form_values(self):
        params = parameters_from_c(c=2.0, n=100, delta=2, nu=0.25)
        chain = SuffixChain(params)
        pi = chain.closed_form_stationary()
        alpha, alpha_bar = params.alpha, params.alpha_bar
        assert pi[SuffixState(SuffixStateKind.LONG_GAP)] == pytest.approx(alpha_bar**2)
        assert pi[SuffixState(SuffixStateKind.SHORT_GAP_HEAD)] == pytest.approx(
            alpha * (1 - alpha_bar**2)
        )
        assert pi[SuffixState(SuffixStateKind.SHORT_GAP_TAIL, 1)] == pytest.approx(
            alpha * (1 - alpha_bar**2) * alpha_bar
        )
        assert pi[SuffixState(SuffixStateKind.LONG_GAP_TAIL, 1)] == pytest.approx(
            alpha * alpha_bar**3
        )

    def test_log_stationary_matches_linear(self, small_params):
        chain = SuffixChain(small_params)
        closed = chain.closed_form_stationary()
        for state in chain.states:
            assert math.exp(chain.log_stationary(state)) == pytest.approx(
                closed[state], rel=1e-10
            )

    def test_log_stationary_finite_at_paper_scale(self, paper_params):
        chain = SuffixChain(paper_params, delta=paper_params.delta)
        # Do not enumerate states at Delta = 1e13; just query the two singletons.
        long_gap = SuffixState(SuffixStateKind.LONG_GAP)
        head = SuffixState(SuffixStateKind.SHORT_GAP_HEAD)
        assert math.isfinite(chain.log_stationary(long_gap))
        assert math.isfinite(chain.log_stationary(head))

    def test_min_stationary_matches_enumeration(self, small_params):
        chain = SuffixChain(small_params)
        closed = chain.closed_form_stationary()
        assert chain.min_stationary() == pytest.approx(min(closed.values()), rel=1e-9)

    def test_long_gap_probability(self, small_params):
        chain = SuffixChain(small_params)
        assert chain.long_gap_probability() == pytest.approx(
            small_params.alpha_bar**small_params.delta, rel=1e-10
        )

    @given(
        c=st.floats(min_value=0.2, max_value=100.0),
        nu=st.floats(min_value=0.01, max_value=0.49),
        delta=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=100, deadline=None)
    def test_closed_form_always_a_distribution_and_invariant(self, c, nu, delta):
        params = parameters_from_c(c=c, n=500, delta=delta, nu=nu)
        chain = SuffixChain(params)
        closed = chain.closed_form_stationary()
        values = np.array([closed[state] for state in chain.states])
        assert np.all(values >= 0.0)
        assert values.sum() == pytest.approx(1.0, abs=1e-9)
        matrix = chain.transition_matrix()
        assert np.allclose(values @ matrix, values, atol=1e-9)


class TestEmpiricalAgreement:
    def test_empirical_close_to_closed_form(self, small_params, rng):
        chain = SuffixChain(small_params)
        empirical = chain.empirical_stationary(150_000, rng)
        closed = chain.closed_form_stationary()
        for state in chain.states:
            assert empirical[state] == pytest.approx(closed[state], abs=0.01)

    def test_sample_rejects_nonpositive_rounds(self, small_params, rng):
        with pytest.raises(ParameterError):
            SuffixChain(small_params).sample_round_states(0, rng)
