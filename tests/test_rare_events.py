"""Tests for the rare-event estimator and the honest-CI bugfixes.

Three layers:

* correctness anchors — the identity tilt is *bit-identical* to plain MC at
  the same seed (same draws, every likelihood ratio exactly 1), and the
  linear-in-totals log-likelihood ratio matches the exact Binomial pmf
  ratio;
* statistical properties — tilted and splitting estimates agree with a
  plain-MC reference within joint 95% CIs on a small (nu, Delta) grid, the
  tilted estimator reaches <= 1e-8 probabilities with bounded relative
  error at a fixed trial budget, and zero-violation runs report a strictly
  positive Wilson upper bound;
* goldens — ``base_seed=2026`` pins for ``analysis.tail_sweeps`` so seeding
  or draw-protocol drift is caught exactly.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy import stats

from repro.analysis.tables import format_value
from repro.analysis.tail_sweeps import (
    lundberg_exponent,
    overlap_validation_table,
    tail_depth_sweep,
)
from repro.core.kiffer import (
    corrected_convergence_rate,
    kiffer_convergence_rate_incorrect,
)
from repro.errors import AnalysisError, SimulationError
from repro.params import parameters_from_c
from repro.simulation.batch import (
    BatchSimulation,
    _confidence_interval,
    draw_mining_traces,
    proportion_confidence_interval,
)
from repro.simulation.rare_events import (
    RARE_EVENT_METHODS,
    ExponentialTilt,
    RareEventSimulation,
    cross_entropy_tilt,
    draw_tilted_traces,
    log_likelihood_ratios,
)
from repro.simulation.runner import ExperimentRunner

GOLDEN_TOL = dict(rel=1e-9, abs=1e-12)


@pytest.fixture(scope="module")
def params():
    return parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)


class TestExponentialTilt:
    def test_identity_reproduces_model_probability(self, params):
        tilt = ExponentialTilt.identity(params)
        assert tilt.honest_p == params.p
        assert tilt.adversary_p == params.p
        assert tilt.is_identity(params)

    def test_from_theta_pushes_adversary_up_honest_down(self, params):
        tilt = ExponentialTilt.from_theta(params, 0.5)
        assert tilt.adversary_p > params.p
        assert tilt.honest_p < params.p
        assert not tilt.is_identity(params)

    def test_from_theta_zero_is_identity(self, params):
        assert ExponentialTilt.from_theta(params, 0.0).is_identity(params)

    def test_tilted_probability_closed_form(self, params):
        theta = 0.7
        tilt = ExponentialTilt.from_theta(params, theta)
        p = params.p
        expected = p * math.exp(theta) / (1.0 - p + p * math.exp(theta))
        assert tilt.adversary_p == pytest.approx(expected, rel=1e-12)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.5])
    def test_probabilities_outside_unit_interval_rejected(self, bad):
        with pytest.raises(SimulationError):
            ExponentialTilt(honest_p=bad, adversary_p=0.5)

    def test_payload_round_trips(self, params):
        tilt = ExponentialTilt.from_theta(params, 0.3)
        assert ExponentialTilt(**tilt.payload()) == tilt


class TestLogLikelihoodRatios:
    def test_identity_tilt_is_exactly_zero(self, params):
        ratios = log_likelihood_ratios(
            params,
            ExponentialTilt.identity(params),
            np.array([3, 0, 11]),
            np.array([1, 0, 4]),
            200,
        )
        assert ratios.dtype == np.float64
        assert np.all(ratios == 0.0)

    def test_matches_exact_binomial_pmf_ratio(self, params):
        tilt = ExponentialTilt.from_theta(params, 0.4)
        honest_miners = max(int(round(params.honest_count)), 1)
        adversary_miners = int(round(params.adversary_count))
        rounds = 50
        honest_blocks, adversary_blocks = 7, 3
        computed = log_likelihood_ratios(
            params,
            tilt,
            np.array([honest_blocks]),
            np.array([adversary_blocks]),
            rounds,
        )[0]
        # The per-trial totals are Binomial(miners * rounds, q) under the
        # tilt, so the exact pmf log-ratio is the reference.
        expected = (
            stats.binom.logpmf(honest_blocks, honest_miners * rounds, params.p)
            - stats.binom.logpmf(
                honest_blocks, honest_miners * rounds, tilt.honest_p
            )
            + stats.binom.logpmf(
                adversary_blocks, adversary_miners * rounds, params.p
            )
            - stats.binom.logpmf(
                adversary_blocks, adversary_miners * rounds, tilt.adversary_p
            )
        )
        assert computed == pytest.approx(expected, rel=1e-10)

    def test_per_trial_round_counts(self, params):
        tilt = ExponentialTilt.from_theta(params, 0.4)
        stacked = log_likelihood_ratios(
            params,
            tilt,
            np.array([5, 5]),
            np.array([2, 2]),
            np.array([40, 60]),
            np.array([30, 50]),
        )
        for index, (honest_rounds, adversary_rounds) in enumerate(
            [(40, 30), (60, 50)]
        ):
            single = log_likelihood_ratios(
                params,
                tilt,
                np.array([5]),
                np.array([2]),
                honest_rounds,
                adversary_rounds,
            )[0]
            assert stacked[index] == pytest.approx(single, rel=1e-12)

    def test_negative_round_counts_rejected(self, params):
        with pytest.raises(SimulationError):
            log_likelihood_ratios(
                params,
                ExponentialTilt.identity(params),
                np.array([1.0]),
                np.array([0.0]),
                -1,
            )


class TestDrawTiltedTraces:
    def test_identity_tilt_bit_identical_to_plain_draws(self, params):
        plain = draw_mining_traces(params, 64, 150, np.random.default_rng(7))
        tilted = draw_tilted_traces(
            params,
            ExponentialTilt.identity(params),
            64,
            150,
            np.random.default_rng(7),
        )
        assert np.array_equal(np.asarray(plain[0]), np.asarray(tilted[0]))
        assert np.array_equal(np.asarray(plain[1]), np.asarray(tilted[1]))

    def test_tilt_raises_adversary_block_rate(self, params):
        tilt = ExponentialTilt.from_theta(params, 1.5)
        _, plain_adv = draw_mining_traces(
            params, 256, 200, np.random.default_rng(1)
        )
        _, tilted_adv = draw_tilted_traces(
            params, tilt, 256, 200, np.random.default_rng(1)
        )
        assert np.asarray(tilted_adv).sum() > np.asarray(plain_adv).sum()

    @pytest.mark.parametrize("trials, rounds", [(0, 10), (10, 0)])
    def test_degenerate_shapes_rejected(self, params, trials, rounds):
        with pytest.raises(SimulationError):
            draw_tilted_traces(
                params, ExponentialTilt.identity(params), trials, rounds
            )


class TestCrossEntropyTilt:
    def test_tilt_aims_at_the_violation_event(self, params):
        tilt, iterations = cross_entropy_tilt(
            params, 6, 200, np.random.default_rng(0), pilot_trials=256
        )
        assert tilt.adversary_p >= params.p
        assert tilt.honest_p <= params.p
        assert iterations >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(pilot_trials=1),
            dict(elite_fraction=0.0),
            dict(elite_fraction=0.9),
            dict(max_iterations=0),
            dict(smoothing=0.0),
            dict(smoothing=1.5),
        ],
    )
    def test_invalid_pilot_configuration_rejected(self, params, kwargs):
        with pytest.raises(SimulationError):
            cross_entropy_tilt(params, 6, 200, 0, **kwargs)

    def test_zero_adversary_rejected(self):
        passive = parameters_from_c(
            c=4.0, n=1_000, delta=3, nu=0.0, strict_model=False
        )
        with pytest.raises(SimulationError):
            cross_entropy_tilt(passive, 3, 100, 0)


class TestIdentityTiltEquivalence:
    """tilt=0 must be *bit-identical* to plain MC, not merely close."""

    def test_run_tilted_identity_matches_run_plain(self, params):
        plain = RareEventSimulation(params, depth=2, rng=11).run_plain(
            trials=1_000, rounds=300
        )
        identity = RareEventSimulation(params, depth=2, rng=11).run_tilted(
            trials=1_000,
            rounds=300,
            tilt=ExponentialTilt.identity(params),
        )
        assert identity.hits == plain.hits
        # Every importance weight is exactly 1.0, so the weighted mean is
        # exactly the hit fraction.
        assert identity.probability == plain.probability
        assert identity.effective_sample_size == pytest.approx(
            float(plain.hits)
        )

    def test_chunked_accumulation_is_part_of_the_draw_protocol(self, params):
        """Chunk boundaries are seed-stable: two budgets share a prefix."""
        import repro.simulation.rare_events as rare_events

        original = rare_events._RARE_CHUNK_CELLS
        try:
            rare_events._RARE_CHUNK_CELLS = 300 * 100  # 100-trial chunks
            chunked = RareEventSimulation(params, depth=2, rng=11).run_plain(
                trials=1_000, rounds=300
            )
        finally:
            rare_events._RARE_CHUNK_CELLS = original
        whole = RareEventSimulation(params, depth=2, rng=11).run_plain(
            trials=1_000, rounds=300
        )
        # Chunking changes how many rounds each generator call spans, so the
        # two runs are *different* draw protocols on purpose — both valid,
        # each deterministic.  The estimates must still agree statistically.
        assert abs(chunked.probability - whole.probability) < 0.1


class TestOverlapRegionAgreement:
    """Unbiasedness: variance-reduced estimates match plain MC in joint CIs."""

    @pytest.mark.parametrize("nu, delta", [(0.2, 3), (0.25, 3), (0.2, 2)])
    def test_estimators_agree_within_joint_cis(self, nu, delta):
        point = parameters_from_c(c=4.0, n=1_000, delta=delta, nu=nu)
        runner = ExperimentRunner(base_seed=2026)
        plain = runner.run_rare_event_point(
            point, 20_000, 200, depth=5, method="plain"
        )
        tilted = runner.run_rare_event_point(
            point, 2_000, 200, depth=5, method="tilted"
        )
        splitting = runner.run_rare_event_point(
            point, 2_000, 200, depth=5, method="splitting"
        )
        assert plain.hits > 0
        assert tilted.agrees_with(plain)
        assert splitting.agrees_with(plain)

    def test_deep_tail_reaches_1e8_with_bounded_relative_error(self, params):
        result = ExperimentRunner(base_seed=2026).run_rare_event_point(
            params,
            4_000,
            300,
            depth=18,
            pilot_trials=512,
            max_iterations=15,
        )
        assert result.probability <= 1e-8
        assert result.probability > 0.0
        assert 0.0 < result.relative_error < 1.0
        assert result.ci_low > 0.0
        assert result.effective_sample_size > 1.0

    def test_splitting_levels_multiply_to_the_estimate(self, params):
        result = RareEventSimulation(params, depth=5, rng=3).run_splitting(
            trials=2_000, rounds=200
        )
        assert result.level_probabilities.shape == (5,)
        assert result.probability == pytest.approx(
            float(np.prod(result.level_probabilities)), rel=1e-12
        )
        assert result.ci_low <= result.probability <= result.ci_high


class TestHonestConfidenceIntervals:
    """The Wilson-score and NaN-half-width satellite bugfixes."""

    def test_zero_success_upper_bound_strictly_positive(self):
        low, high = proportion_confidence_interval(0, 1_000)
        assert low == 0.0
        assert 0.0 < high < 1.0
        # Wilson at zero successes: z^2 / (n + z^2).
        z = 1.96
        assert high == pytest.approx(z * z / (1_000 + z * z), rel=1e-12)

    def test_full_success_lower_bound_strictly_below_one(self):
        low, high = proportion_confidence_interval(1_000, 1_000)
        assert high == 1.0
        assert 0.0 < low < 1.0

    def test_interval_contains_the_point_estimate(self):
        for successes, trials in [(1, 10), (5, 10), (9, 10), (50, 1_000)]:
            low, high = proportion_confidence_interval(successes, trials)
            assert low <= successes / trials <= high
            assert 0.0 <= low <= high <= 1.0

    def test_zero_trials_not_estimable(self):
        low, high = proportion_confidence_interval(0, 0)
        assert math.isnan(low) and math.isnan(high)

    def test_out_of_range_successes_rejected(self):
        with pytest.raises(SimulationError):
            proportion_confidence_interval(11, 10)
        with pytest.raises(SimulationError):
            proportion_confidence_interval(-1, 10)

    def test_single_trial_mean_ci_is_nan_half_width(self):
        low, high = _confidence_interval(np.array([0.37]))
        assert math.isnan(low) and math.isnan(high)

    def test_empty_sample_ci_is_nan(self):
        low, high = _confidence_interval(np.array([]))
        assert math.isnan(low) and math.isnan(high)

    def test_nan_renders_as_not_available(self):
        assert format_value(float("nan")) == "n/a"

    def test_batch_violation_ci_uses_wilson(self, params):
        result = BatchSimulation(params, rng=0).run(trials=16, rounds=500)
        depth = int(result.worst_deficits.max()) + 1  # zero violations
        assert result.violation_probability(depth) == 0.0
        low, high = result.violation_ci95(depth)
        assert low == 0.0
        assert high > 0.0

    def test_zero_success_plain_run_reports_positive_upper_bound(self, params):
        result = RareEventSimulation(params, depth=40, rng=0).run_plain(
            trials=500, rounds=200
        )
        assert result.hits == 0
        assert result.probability == 0.0
        assert result.ci_high > 0.0
        assert math.isnan(result.relative_error)


class TestRunnerIntegration:
    def test_cache_round_trip_preserves_every_field(self, params, tmp_path):
        runner = ExperimentRunner(base_seed=2026, cache_dir=str(tmp_path))
        first = runner.run_rare_event_point(params, 1_000, 200, depth=6)
        assert runner.cache_misses == 1
        second = runner.run_rare_event_point(params, 1_000, 200, depth=6)
        assert runner.cache_hits == 1
        assert second.probability == first.probability
        assert second.ci95 == first.ci95
        assert second.relative_error == first.relative_error
        assert second.effective_sample_size == first.effective_sample_size
        assert second.hits == first.hits
        assert second.tilt == first.tilt
        assert second.pilot_iterations == first.pilot_iterations

    def test_splitting_cache_round_trips_level_probabilities(
        self, params, tmp_path
    ):
        runner = ExperimentRunner(base_seed=2026, cache_dir=str(tmp_path))
        first = runner.run_rare_event_point(
            params, 1_000, 200, depth=4, method="splitting"
        )
        second = runner.run_rare_event_point(
            params, 1_000, 200, depth=4, method="splitting"
        )
        assert runner.cache_hits == 1
        assert np.array_equal(
            first.level_probabilities, second.level_probabilities
        )

    def test_estimator_spec_distinguishes_cache_slots(self, params, tmp_path):
        runner = ExperimentRunner(base_seed=2026, cache_dir=str(tmp_path))
        runner.run_rare_event_point(params, 1_000, 200, depth=6)
        runner.run_rare_event_point(params, 1_000, 200, depth=7)
        runner.run_rare_event_point(
            params, 1_000, 200, depth=6, method="splitting"
        )
        runner.run_rare_event_point(
            params,
            1_000,
            200,
            depth=6,
            tilt=ExponentialTilt.from_theta(params, 0.5),
        )
        assert runner.cache_misses == 4
        assert runner.cache_hits == 0

    def test_grid_matches_pointwise_results(self, params):
        runner = ExperimentRunner(base_seed=2026)
        grid = runner.run_rare_event_grid([params], 1_000, 200, depth=6)
        point = runner.run_rare_event_point(params, 1_000, 200, depth=6)
        assert grid[0].probability == point.probability

    def test_unknown_method_rejected(self, params):
        assert "tilted" in RARE_EVENT_METHODS
        with pytest.raises(SimulationError):
            ExperimentRunner().run_rare_event_point(
                params, 100, 100, depth=3, method="magic"
            )

    def test_bernoulli_draw_mode_rejected(self, params):
        runner = ExperimentRunner(draw_mode="bernoulli")
        with pytest.raises(SimulationError):
            runner.run_rare_event_point(params, 100, 100, depth=3)


class TestLundbergExponent:
    def test_root_solves_the_lundberg_equation(self, params):
        theta = lundberg_exponent(params)
        assert theta > 0.0
        adversary_miners = int(round(params.adversary_count))
        rate = corrected_convergence_rate(params)
        mgf = (1.0 - params.p + params.p * math.exp(theta)) ** (
            adversary_miners
        ) * (1.0 - rate + rate * math.exp(-theta))
        assert mgf == pytest.approx(1.0, abs=1e-9)

    def test_kiffer_rate_gives_a_different_exponent(self, params):
        corrected = lundberg_exponent(params)
        kiffer = lundberg_exponent(
            params, kiffer_convergence_rate_incorrect(params)
        )
        assert kiffer != pytest.approx(corrected, rel=1e-6)

    def test_non_decaying_drift_rejected(self):
        # nu = 0.45 at c = 1: the adversary out-mines convergence
        # opportunities, the deficit drifts upward and no tail exponent
        # exists.
        overwhelmed = parameters_from_c(c=1.0, n=1_000, delta=3, nu=0.45)
        with pytest.raises(AnalysisError):
            lundberg_exponent(overwhelmed)

    def test_zero_adversary_rejected(self):
        passive = parameters_from_c(
            c=4.0, n=1_000, delta=3, nu=0.0, strict_model=False
        )
        with pytest.raises(AnalysisError):
            lundberg_exponent(passive)


class TestTailSweepGoldens:
    """base_seed=2026 pins: seeding or draw-protocol drift fails exactly."""

    def test_tail_depth_sweep_golden(self, params):
        rows = tail_depth_sweep(
            params,
            depths=(4, 8),
            trials=2_000,
            rounds=200,
            seed=2026,
            pilot_trials=256,
            max_iterations=8,
        )
        assert [row["depth"] for row in rows] == [4, 8]
        assert rows[0]["probability"] == pytest.approx(
            0.04674836069023866, **GOLDEN_TOL
        )
        assert rows[1]["probability"] == pytest.approx(
            0.00021946915739655843, **GOLDEN_TOL
        )
        for row in rows:
            assert row["lundberg_exponent"] == pytest.approx(
                0.9325693995681743, **GOLDEN_TOL
            )
            assert row["predicted_tail_kiffer"] < row["predicted_tail"]
            assert row["neat_bound_satisfied"] is True

    def test_overlap_validation_table_golden(self, params):
        rows = overlap_validation_table(
            params,
            depths=(5,),
            plain_trials=20_000,
            trials=2_000,
            rounds=200,
            seed=2026,
        )
        row = rows[0]
        assert row["plain_probability"] == pytest.approx(0.0123, **GOLDEN_TOL)
        assert row["tilted_probability"] == pytest.approx(
            0.013431021513768172, **GOLDEN_TOL
        )
        assert row["splitting_probability"] == pytest.approx(
            0.012186086488301249, **GOLDEN_TOL
        )
        assert row["tilted_agrees"] is True
        assert row["splitting_agrees"] is True

    def test_sweep_validation_errors(self, params):
        with pytest.raises(AnalysisError):
            tail_depth_sweep(params, depths=())
        with pytest.raises(AnalysisError):
            tail_depth_sweep(params, depths=(0,))
        with pytest.raises(AnalysisError):
            overlap_validation_table(
                params, depths=(5,), plain_trials=10, trials=100
            )
