"""Tests for repro.simulation.oracle and repro.simulation.network."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.params import parameters_from_c
from repro.simulation import (
    DeltaDelayNetwork,
    MiningOracle,
    NakamotoSimulation,
    PassiveAdversary,
    ScriptedMiningOracle,
    resolve_rng,
    spawn_rngs,
)
from repro.simulation.block import Block
from repro.simulation.rng import derive_seed_sequence


def make_block(block_id, parent_id=0, height=1, round_mined=1):
    return Block(
        block_id=block_id,
        parent_id=parent_id,
        height=height,
        round_mined=round_mined,
        miner_id=0,
        honest=True,
    )


class TestMiningOracle:
    def test_rejects_bad_hardness(self, rng):
        with pytest.raises(SimulationError):
            MiningOracle(0.0, rng)
        with pytest.raises(SimulationError):
            MiningOracle(1.0, rng)

    def test_zero_miners_yield_zero_blocks(self, rng):
        oracle = MiningOracle(0.1, rng)
        assert oracle.honest_successes(0) == 0
        assert oracle.adversary_successes(0) == 0

    def test_negative_miner_count_rejected(self, rng):
        oracle = MiningOracle(0.1, rng)
        with pytest.raises(SimulationError):
            oracle.honest_successes(-1)

    def test_success_counts_within_range(self, rng):
        oracle = MiningOracle(0.3, rng)
        for _ in range(100):
            count = oracle.honest_successes(10)
            assert 0 <= count <= 10

    def test_empirical_mean_matches_binomial(self, rng):
        oracle = MiningOracle(0.01, rng)
        draws = [oracle.honest_successes(1_000) for _ in range(2_000)]
        assert np.mean(draws) == pytest.approx(10.0, rel=0.05)

    def test_success_positions_distribution(self, rng):
        oracle = MiningOracle(0.05, rng)
        counts = [len(oracle.honest_success_positions(200)) for _ in range(2_000)]
        assert np.mean(counts) == pytest.approx(10.0, rel=0.1)

    def test_query_accounting(self, rng):
        oracle = MiningOracle(0.1, rng)
        oracle.honest_successes(10)
        oracle.honest_successes(10)
        oracle.adversary_successes(5)
        assert oracle.honest_queries == 20
        assert oracle.adversary_queries == 5


class TestScriptedMiningOracle:
    def test_script_shape_validation(self):
        with pytest.raises(SimulationError, match="1-dimensional"):
            ScriptedMiningOracle(np.ones((2, 2)), np.ones((2, 2)))
        with pytest.raises(SimulationError, match="same number of rounds"):
            ScriptedMiningOracle([1, 0], [0])
        with pytest.raises(SimulationError, match="non-negative"):
            ScriptedMiningOracle([-1], [0])

    def test_replay_and_exhaustion(self):
        oracle = ScriptedMiningOracle([2, 0], [1, 3])
        assert oracle.rounds_scripted == 2
        assert oracle.honest_successes(10) == 2
        assert oracle.adversary_successes(5) == 1
        assert oracle.honest_successes(10) == 0
        assert oracle.adversary_successes(5) == 3
        assert oracle.honest_queries == 20
        assert oracle.adversary_queries == 10
        with pytest.raises(SimulationError, match="exhausted its honest"):
            oracle.honest_successes(10)
        with pytest.raises(SimulationError, match="exhausted its adversary"):
            oracle.adversary_successes(5)

    def test_script_exceeding_miner_count_rejected(self):
        with pytest.raises(SimulationError, match="honest successes"):
            ScriptedMiningOracle([7], [0]).honest_successes(5)
        with pytest.raises(SimulationError, match="adversarial successes"):
            ScriptedMiningOracle([0], [7]).adversary_successes(5)
        oracle = ScriptedMiningOracle([1], [1])
        with pytest.raises(SimulationError, match="non-negative"):
            oracle.honest_successes(-1)
        with pytest.raises(SimulationError, match="non-negative"):
            oracle.adversary_successes(-1)

    def test_scripted_attribution_validation(self):
        """The oracle rejects malformed miner-id scripts up front and
        out-of-range ids at consumption time."""
        with pytest.raises(SimulationError, match="same number of rounds"):
            ScriptedMiningOracle([1, 0], [0, 0], honest_miner_ids=[[0]])
        with pytest.raises(SimulationError, match="expected 2 miner ids"):
            ScriptedMiningOracle([2], [0], honest_miner_ids=[[0]])
        with pytest.raises(SimulationError, match="distinct"):
            ScriptedMiningOracle([2], [0], honest_miner_ids=[[3, 3]])
        oracle = ScriptedMiningOracle([1], [0], honest_miner_ids=[[9]])
        with pytest.raises(SimulationError, match="out of range"):
            oracle.honest_successes(5)
        # Without a script the hook reports None (the simulator then draws).
        plain = ScriptedMiningOracle([1], [0])
        plain.honest_successes(5)
        assert plain.scripted_honest_miner_ids() is None
        scripted = ScriptedMiningOracle([2], [0], honest_miner_ids=[[4, 1]])
        with pytest.raises(SimulationError, match="no honest round"):
            scripted.scripted_honest_miner_ids()
        scripted.honest_successes(5)
        assert scripted.scripted_honest_miner_ids() == [4, 1]


class TestRngPlumbing:
    def test_resolve_rng_inputs(self):
        default = resolve_rng(None)
        assert isinstance(default, np.random.Generator)
        generator = np.random.default_rng(3)
        assert resolve_rng(generator) is generator
        seeded = resolve_rng(np.random.SeedSequence(4))
        assert isinstance(seeded, np.random.Generator)

    def test_derive_seed_sequence(self):
        sequence = np.random.SeedSequence(9)
        assert derive_seed_sequence(sequence) is sequence
        assert derive_seed_sequence(None).entropy == 0
        assert derive_seed_sequence(6).entropy == 6
        with pytest.raises(TypeError, match="live Generator"):
            derive_seed_sequence(np.random.default_rng(0))

    def test_spawn_rngs(self):
        children = spawn_rngs(5, 3)
        assert len(children) == 3
        draws = {float(child.random()) for child in children}
        assert len(draws) == 3  # streams are distinct
        from_generator = spawn_rngs(np.random.default_rng(1), 2)
        assert len(from_generator) == 2
        assert spawn_rngs(5, 0) == []
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(5, -1)


class TestDeltaDelayNetwork:
    def test_rejects_bad_delta(self):
        with pytest.raises(SimulationError):
            DeltaDelayNetwork(0)

    def test_delay_cap_enforced(self):
        network = DeltaDelayNetwork(3)
        with pytest.raises(SimulationError):
            network.broadcast(make_block(1), sent_round=1, delay=4)
        with pytest.raises(SimulationError):
            network.broadcast(make_block(1), sent_round=1, delay=-1)

    def test_delay_cap_rejects_not_clamps(self):
        """An over-cap delay must raise, never be silently clamped to Delta:
        nothing may enter the queue, so no delivery round ever sees it."""
        network = DeltaDelayNetwork(2)
        with pytest.raises(SimulationError, match=r"delay must lie in \[0, 2\]"):
            network.broadcast(make_block(1), sent_round=1, delay=3)
        assert network.pending_count() == 0
        assert network.sent_count == 0
        for round_index in range(1, 6):
            assert network.deliver(round_index) == []
        # The boundary itself is legal: exactly Delta is the model's guarantee.
        network.broadcast(make_block(2), sent_round=1, delay=2)
        assert [block.block_id for block in network.deliver(3)] == [2]

    def test_rogue_adversary_delay_surfaces_in_simulation(self):
        """A strategy that tries to delay beyond Delta is stopped by the
        network inside the simulation loop, not silently accepted."""

        class RogueAdversary(PassiveAdversary):
            def delay_for_honest_block(self, block, round_index):
                return self.delta + 1

        params = parameters_from_c(c=1.0, n=100, delta=2, nu=0.2)
        simulation = NakamotoSimulation(
            params, adversary=RogueAdversary(2), rng=np.random.default_rng(0)
        )
        with pytest.raises(SimulationError, match="delay must lie in"):
            simulation.run(500)

    def test_delivery_at_correct_round(self):
        network = DeltaDelayNetwork(3)
        block = make_block(1)
        network.broadcast(block, sent_round=2, delay=3)
        assert network.deliver(4) == []
        assert network.deliver(5) == [block]
        assert network.deliver(5) == []  # already delivered

    def test_zero_delay_delivery(self):
        network = DeltaDelayNetwork(2)
        block = make_block(1)
        network.broadcast(block, sent_round=4, delay=0)
        assert network.deliver(4) == [block]

    def test_delivery_order_is_deterministic(self):
        network = DeltaDelayNetwork(5)
        late = make_block(7, round_mined=3)
        early = make_block(2, round_mined=1)
        network.broadcast(late, sent_round=3, delay=2)
        network.broadcast(early, sent_round=1, delay=4)
        delivered = network.deliver(5)
        assert [block.block_id for block in delivered] == [2, 7]

    def test_pending_accounting(self):
        network = DeltaDelayNetwork(4)
        network.broadcast(make_block(1), sent_round=1, delay=2)
        network.broadcast(make_block(2), sent_round=1, delay=4)
        assert network.pending_count() == 2
        assert network.sent_count == 2
        network.deliver(3)
        assert network.pending_count() == 1
        assert network.delivered_count == 1
        assert [message.block.block_id for message in network.pending()] == [2]
