"""Tests for repro.simulation.oracle and repro.simulation.network."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation import DeltaDelayNetwork, MiningOracle
from repro.simulation.block import Block


def make_block(block_id, parent_id=0, height=1, round_mined=1):
    return Block(
        block_id=block_id,
        parent_id=parent_id,
        height=height,
        round_mined=round_mined,
        miner_id=0,
        honest=True,
    )


class TestMiningOracle:
    def test_rejects_bad_hardness(self, rng):
        with pytest.raises(SimulationError):
            MiningOracle(0.0, rng)
        with pytest.raises(SimulationError):
            MiningOracle(1.0, rng)

    def test_zero_miners_yield_zero_blocks(self, rng):
        oracle = MiningOracle(0.1, rng)
        assert oracle.honest_successes(0) == 0
        assert oracle.adversary_successes(0) == 0

    def test_negative_miner_count_rejected(self, rng):
        oracle = MiningOracle(0.1, rng)
        with pytest.raises(SimulationError):
            oracle.honest_successes(-1)

    def test_success_counts_within_range(self, rng):
        oracle = MiningOracle(0.3, rng)
        for _ in range(100):
            count = oracle.honest_successes(10)
            assert 0 <= count <= 10

    def test_empirical_mean_matches_binomial(self, rng):
        oracle = MiningOracle(0.01, rng)
        draws = [oracle.honest_successes(1_000) for _ in range(2_000)]
        assert np.mean(draws) == pytest.approx(10.0, rel=0.05)

    def test_success_positions_distribution(self, rng):
        oracle = MiningOracle(0.05, rng)
        counts = [len(oracle.honest_success_positions(200)) for _ in range(2_000)]
        assert np.mean(counts) == pytest.approx(10.0, rel=0.1)

    def test_query_accounting(self, rng):
        oracle = MiningOracle(0.1, rng)
        oracle.honest_successes(10)
        oracle.honest_successes(10)
        oracle.adversary_successes(5)
        assert oracle.honest_queries == 20
        assert oracle.adversary_queries == 5


class TestDeltaDelayNetwork:
    def test_rejects_bad_delta(self):
        with pytest.raises(SimulationError):
            DeltaDelayNetwork(0)

    def test_delay_cap_enforced(self):
        network = DeltaDelayNetwork(3)
        with pytest.raises(SimulationError):
            network.broadcast(make_block(1), sent_round=1, delay=4)
        with pytest.raises(SimulationError):
            network.broadcast(make_block(1), sent_round=1, delay=-1)

    def test_delivery_at_correct_round(self):
        network = DeltaDelayNetwork(3)
        block = make_block(1)
        network.broadcast(block, sent_round=2, delay=3)
        assert network.deliver(4) == []
        assert network.deliver(5) == [block]
        assert network.deliver(5) == []  # already delivered

    def test_zero_delay_delivery(self):
        network = DeltaDelayNetwork(2)
        block = make_block(1)
        network.broadcast(block, sent_round=4, delay=0)
        assert network.deliver(4) == [block]

    def test_delivery_order_is_deterministic(self):
        network = DeltaDelayNetwork(5)
        late = make_block(7, round_mined=3)
        early = make_block(2, round_mined=1)
        network.broadcast(late, sent_round=3, delay=2)
        network.broadcast(early, sent_round=1, delay=4)
        delivered = network.deliver(5)
        assert [block.block_id for block in delivered] == [2, 7]

    def test_pending_accounting(self):
        network = DeltaDelayNetwork(4)
        network.broadcast(make_block(1), sent_round=1, delay=2)
        network.broadcast(make_block(2), sent_round=1, delay=4)
        assert network.pending_count() == 2
        assert network.sent_count == 2
        network.deliver(3)
        assert network.pending_count() == 1
        assert network.delivered_count == 1
        assert [message.block.block_id for message in network.pending()] == [2]
