"""Tests for repro.params: Table I quantities and their invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.params import (
    ProtocolParameters,
    parameters_for_target_alpha,
    parameters_from_c,
)


class TestValidation:
    def test_rejects_p_out_of_range(self):
        with pytest.raises(ParameterError):
            ProtocolParameters(p=0.0, n=10, delta=2, nu=0.1)
        with pytest.raises(ParameterError):
            ProtocolParameters(p=1.0, n=10, delta=2, nu=0.1)
        with pytest.raises(ParameterError):
            ProtocolParameters(p=-0.1, n=10, delta=2, nu=0.1)

    def test_rejects_bad_n(self):
        with pytest.raises(ParameterError):
            ProtocolParameters(p=0.1, n=0, delta=2, nu=0.1)
        with pytest.raises(ParameterError):
            ProtocolParameters(p=0.1, n=-3, delta=2, nu=0.1)

    def test_rejects_bad_delta(self):
        with pytest.raises(ParameterError):
            ProtocolParameters(p=0.1, n=10, delta=0, nu=0.1)

    def test_strict_model_enforces_inequality_2(self):
        # nu must be strictly inside (0, 1/2) under the paper's model.
        with pytest.raises(ParameterError):
            ProtocolParameters(p=0.1, n=10, delta=2, nu=0.5)
        with pytest.raises(ParameterError):
            ProtocolParameters(p=0.1, n=10, delta=2, nu=0.0)

    def test_strict_model_enforces_inequality_3(self):
        with pytest.raises(ParameterError):
            ProtocolParameters(p=0.1, n=3, delta=2, nu=0.1)

    def test_relaxed_model_allows_nu_up_to_half(self):
        params = ProtocolParameters(p=0.1, n=10, delta=2, nu=0.5, strict_model=False)
        assert params.mu == pytest.approx(0.5)

    def test_relaxed_model_allows_zero_adversary(self):
        params = ProtocolParameters(p=0.1, n=2, delta=2, nu=0.0, strict_model=False)
        assert params.adversary_count == 0.0


class TestDerivedQuantities:
    def test_mu_nu_sum_to_one(self, small_params):
        assert small_params.mu + small_params.nu == pytest.approx(1.0)

    def test_c_definition(self):
        params = ProtocolParameters(p=1e-6, n=1_000, delta=10, nu=0.2)
        assert params.c == pytest.approx(1.0 / (1e-6 * 1_000 * 10))

    def test_alpha_plus_alpha_bar_is_one(self, small_params):
        assert small_params.alpha + small_params.alpha_bar == pytest.approx(1.0)

    def test_alpha_matches_direct_formula(self):
        params = ProtocolParameters(p=1e-3, n=100, delta=2, nu=0.25)
        honest = 0.75 * 100
        expected = 1.0 - (1.0 - 1e-3) ** honest
        assert params.alpha == pytest.approx(expected, rel=1e-12)

    def test_alpha1_matches_direct_formula(self):
        params = ProtocolParameters(p=1e-3, n=100, delta=2, nu=0.25)
        honest = 0.75 * 100
        expected = 1e-3 * honest * (1.0 - 1e-3) ** (honest - 1)
        assert params.alpha1 == pytest.approx(expected, rel=1e-12)

    def test_alpha1_less_than_alpha(self, small_params):
        assert small_params.alpha1 < small_params.alpha

    def test_beta_is_nu_n_p(self, small_params):
        assert small_params.beta == pytest.approx(
            small_params.nu * small_params.n * small_params.p
        )

    def test_log_quantities_consistent(self, small_params):
        assert math.exp(small_params.log_alpha_bar) == pytest.approx(
            small_params.alpha_bar, rel=1e-12
        )
        assert math.exp(small_params.log_alpha1) == pytest.approx(
            small_params.alpha1, rel=1e-12
        )

    def test_convergence_opportunity_probability(self, small_params):
        expected = small_params.alpha_bar ** (
            2 * small_params.delta
        ) * small_params.alpha1
        assert small_params.convergence_opportunity_probability == pytest.approx(
            expected, rel=1e-10
        )

    def test_paper_scale_does_not_underflow_logs(self, paper_params):
        # At Delta = 1e13 the linear-scale quantity underflows but the log stays finite.
        assert math.isfinite(paper_params.log_convergence_opportunity_probability)
        assert paper_params.log_convergence_opportunity_probability < 0.0

    def test_log_mu_nu_ratio(self, small_params):
        assert small_params.log_mu_nu_ratio == pytest.approx(math.log(0.8 / 0.2))


class TestTransformations:
    def test_with_nu(self, small_params):
        changed = small_params.with_nu(0.3)
        assert changed.nu == pytest.approx(0.3)
        assert changed.p == small_params.p

    def test_with_p_and_delta(self, small_params):
        assert small_params.with_p(1e-5).p == pytest.approx(1e-5)
        assert small_params.with_delta(7).delta == 7

    def test_scaled_to_c(self, small_params):
        scaled = small_params.scaled_to_c(12.5)
        assert scaled.c == pytest.approx(12.5)

    def test_scaled_to_c_rejects_nonpositive(self, small_params):
        with pytest.raises(ParameterError):
            small_params.scaled_to_c(0.0)

    def test_as_dict_contains_all_symbols(self, small_params):
        data = small_params.as_dict()
        for key in ("p", "n", "delta", "mu", "nu", "c", "alpha", "alpha_bar", "alpha1", "beta"):
            assert key in data


class TestConstructors:
    def test_parameters_from_c_roundtrip(self):
        params = parameters_from_c(c=7.5, n=10_000, delta=5, nu=0.3)
        assert params.c == pytest.approx(7.5)

    def test_parameters_from_c_rejects_nonpositive_c(self):
        with pytest.raises(ParameterError):
            parameters_from_c(c=0.0, n=100, delta=5, nu=0.3)

    def test_parameters_for_target_alpha(self):
        params = parameters_for_target_alpha(alpha=0.05, n=500, delta=4, nu=0.2)
        assert params.alpha == pytest.approx(0.05, rel=1e-9)

    def test_parameters_for_target_alpha_rejects_bad_alpha(self):
        with pytest.raises(ParameterError):
            parameters_for_target_alpha(alpha=1.0, n=500, delta=4, nu=0.2)


class TestPropertyBased:
    @given(
        c=st.floats(min_value=0.01, max_value=1_000.0),
        nu=st.floats(min_value=1e-6, max_value=0.499),
        delta=st.integers(min_value=1, max_value=100),
        n=st.integers(min_value=4, max_value=10**6),
    )
    @settings(max_examples=200, deadline=None)
    def test_probability_identities(self, c, nu, delta, n):
        # The implied hardness p = 1/(c n delta) must be a valid probability.
        assume(c * n * delta > 1.0)
        params = parameters_from_c(c=c, n=n, delta=delta, nu=nu)
        # alpha may round to exactly 1.0 (and alpha_bar to 0.0) when the honest
        # population is large and p is not tiny; the open bounds hold otherwise.
        assert 0.0 < params.alpha <= 1.0
        assert 0.0 <= params.alpha_bar < 1.0
        assert abs(params.alpha + params.alpha_bar - 1.0) < 1e-12
        assert 0.0 <= params.alpha1 <= params.alpha + 1e-15
        assert params.c == pytest.approx(c, rel=1e-9)

    @given(
        p=st.floats(min_value=1e-12, max_value=0.2),
        nu=st.floats(min_value=1e-4, max_value=0.499),
        n=st.integers(min_value=4, max_value=10**5),
    )
    @settings(max_examples=200, deadline=None)
    def test_log_forms_match_linear_forms(self, p, nu, n):
        params = ProtocolParameters(p=p, n=n, delta=2, nu=nu)
        assert math.exp(params.log_alpha_bar) == pytest.approx(
            params.alpha_bar, rel=1e-9
        )
        if params.alpha1 > 0:
            assert math.exp(params.log_alpha1) == pytest.approx(
                params.alpha1, rel=1e-9
            )
