"""Seeded equivalence: empty dynamics schedules versus the static engines.

The acceptance bar for the dynamics subsystem is that an *empty*
:class:`DynamicsSchedule` (no churn, no partitions, default placement) is a
bit-exact no-op along both static paths, across a (ν, Δ, strategy) grid:

* without a topology the :class:`TimeVaryingDelayModel` is trivial and the
  engines keep the legacy constant-Δ fast path — identical tensors,
  identical per-round records, no entropy consumed by the model;
* with a topology it must consume the same origin stream and produce the
  same capped radii as PR 3's :class:`PeerGraphDelayModel`, making every
  per-trial statistic identical.

This file also covers the runner-side wiring: ``run_dynamics_point`` cache
round-trips, schedule-aware cache keys (distinct schedules, topologies and
placements never collide) and the seed-stability discipline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.params import parameters_from_c
from repro.simulation import (
    AdversaryPlacement,
    BatchSimulation,
    DynamicsSchedule,
    ExperimentRunner,
    PartitionEvent,
    PeerGraphDelayModel,
    PeerGraphTopology,
    ScenarioSimulation,
    TimeVaryingDelayModel,
)

TRIALS = 4
ROUNDS = 900

BATCH_GRID = [(nu, delta) for nu in (0.2, 0.4) for delta in (1, 3)]

#: Scenarios whose honest delay is the full Δ — the cases where a delay
#: model's constant draw coincides with the legacy constant path.
SCENARIO_GRID = [
    (scenario, nu, delta)
    for scenario in ("max_delay", "private_chain", "selfish_mining")
    for nu in (0.2, 0.4)
    for delta in (1, 3)
]

_RECORD_ARRAYS = (
    "releases",
    "abandons",
    "deepest_forks",
    "orphaned_honest",
    "withheld_final",
    "final_public_heights",
    "honest_blocks",
    "adversary_blocks",
    "convergence_opportunities",
    "worst_deficits",
    "public_heights",
    "private_heights",
    "release_mask",
    "abandon_mask",
)


def topology_for(delta: int) -> PeerGraphTopology:
    """A seeded graph whose diameter fits under the given Δ cap."""
    return PeerGraphTopology.random_regular(24, 6, rng=delta)


@pytest.mark.parametrize("nu, delta", BATCH_GRID)
def test_batch_trivial_empty_schedule_is_bit_identical(nu, delta):
    params = parameters_from_c(c=2.0, n=500, delta=delta, nu=nu)
    seed = 4_000 + delta
    plain = BatchSimulation(params, rng=seed).run(TRIALS, ROUNDS, keep_traces=True)
    dynamic = BatchSimulation(
        params, rng=seed, delay_model=TimeVaryingDelayModel()
    ).run(TRIALS, ROUNDS, keep_traces=True)
    assert np.array_equal(plain.honest_counts, dynamic.honest_counts)
    assert np.array_equal(plain.adversary_counts, dynamic.adversary_counts)
    assert np.array_equal(
        plain.convergence_opportunities, dynamic.convergence_opportunities
    )
    assert np.array_equal(plain.worst_deficits, dynamic.worst_deficits)


@pytest.mark.parametrize("nu, delta", BATCH_GRID)
def test_batch_empty_schedule_matches_peer_graph_model(nu, delta):
    params = parameters_from_c(c=2.0, n=500, delta=delta, nu=nu)
    topology = topology_for(delta)
    seed = 5_000 + delta
    static = BatchSimulation(
        params, rng=seed, delay_model=PeerGraphDelayModel(topology)
    ).run(TRIALS, ROUNDS, keep_traces=True)
    dynamic = BatchSimulation(
        params, rng=seed, delay_model=TimeVaryingDelayModel(topology=topology)
    ).run(TRIALS, ROUNDS, keep_traces=True)
    assert np.array_equal(static.honest_counts, dynamic.honest_counts)
    assert np.array_equal(static.adversary_counts, dynamic.adversary_counts)
    assert np.array_equal(
        static.convergence_opportunities, dynamic.convergence_opportunities
    )
    assert np.array_equal(static.worst_deficits, dynamic.worst_deficits)


@pytest.mark.parametrize("scenario, nu, delta", SCENARIO_GRID)
def test_scenario_trivial_empty_schedule_is_bit_identical(scenario, nu, delta):
    params = parameters_from_c(c=1.0, n=400, delta=delta, nu=nu)
    seed = 6_000 + delta
    plain = ScenarioSimulation(params, scenario, rng=seed).run(
        TRIALS, ROUNDS, record_rounds=True
    )
    dynamic = ScenarioSimulation(
        params, scenario, rng=seed, delay_model=TimeVaryingDelayModel()
    ).run(TRIALS, ROUNDS, record_rounds=True)
    for name in _RECORD_ARRAYS:
        assert np.array_equal(
            getattr(plain, name), getattr(dynamic, name)
        ), f"{name} diverged for {scenario} at nu={nu}, delta={delta}"


@pytest.mark.parametrize("scenario, nu, delta", SCENARIO_GRID)
def test_scenario_empty_schedule_matches_peer_graph_model(scenario, nu, delta):
    params = parameters_from_c(c=1.0, n=400, delta=delta, nu=nu)
    topology = topology_for(delta)
    seed = 7_000 + delta
    static = ScenarioSimulation(
        params, scenario, rng=seed, delay_model=PeerGraphDelayModel(topology)
    ).run(TRIALS, ROUNDS, record_rounds=True)
    dynamic = ScenarioSimulation(
        params,
        scenario,
        rng=seed,
        delay_model=TimeVaryingDelayModel(topology=topology),
    ).run(TRIALS, ROUNDS, record_rounds=True)
    for name in _RECORD_ARRAYS:
        assert np.array_equal(
            getattr(static, name), getattr(dynamic, name)
        ), f"{name} diverged for {scenario} at nu={nu}, delta={delta}"


# ----------------------------------------------------------------------
# Runner wiring
# ----------------------------------------------------------------------
class TestRunnerDynamics:
    SCHEDULE = DynamicsSchedule([PartitionEvent(200, 120)])

    def params(self):
        return parameters_from_c(c=2.0, n=500, delta=3, nu=0.25)

    def test_dynamics_point_cache_roundtrip(self, tmp_path):
        runner = ExperimentRunner(base_seed=11, cache_dir=str(tmp_path))
        first = runner.run_dynamics_point(
            self.params(), TRIALS, ROUNDS, self.SCHEDULE
        )
        assert runner.cache_misses == 1
        second = runner.run_dynamics_point(
            self.params(), TRIALS, ROUNDS, self.SCHEDULE
        )
        assert runner.cache_hits == 1
        assert np.array_equal(first.worst_deficits, second.worst_deficits)
        assert np.array_equal(
            first.convergence_opportunities, second.convergence_opportunities
        )

    def test_dynamics_scenario_cache_roundtrip(self, tmp_path):
        runner = ExperimentRunner(base_seed=11, cache_dir=str(tmp_path))
        first = runner.run_dynamics_point(
            self.params(), TRIALS, ROUNDS, scenario="partition_attack"
        )
        assert runner.cache_misses == 1
        second = runner.run_dynamics_point(
            self.params(), TRIALS, ROUNDS, scenario="partition_attack"
        )
        assert runner.cache_hits == 1
        assert np.array_equal(first.deepest_forks, second.deepest_forks)
        # The cached copy reconstructs the PartitionScenario subclass.
        assert second.scenario.payload()["partition_duration"] == 300

    def test_schedule_aware_cache_keys_never_collide(self):
        runner = ExperimentRunner(base_seed=0)
        params = self.params()
        topology = topology_for(3)
        keys = {
            runner.cache_key(
                params,
                TRIALS,
                ROUNDS,
                delay_model=TimeVaryingDelayModel(schedule),
            )
            for schedule in (
                DynamicsSchedule(),
                DynamicsSchedule([PartitionEvent(200, 100)]),
                DynamicsSchedule([PartitionEvent(200, 101)]),
                DynamicsSchedule([PartitionEvent(201, 100)]),
            )
        }
        assert len(keys) == 4
        with_topology = runner.cache_key(
            params,
            TRIALS,
            ROUNDS,
            delay_model=TimeVaryingDelayModel(topology=topology),
        )
        assert with_topology not in keys
        placed = runner.cache_key(
            params,
            TRIALS,
            ROUNDS,
            scenario="private_chain",
            placement=AdversaryPlacement("leaf"),
        )
        unplaced = runner.cache_key(
            params, TRIALS, ROUNDS, scenario="private_chain"
        )
        assert placed != unplaced

    def test_dynamics_grid_matches_points(self):
        runner = ExperimentRunner(base_seed=3)
        points = [
            parameters_from_c(c=2.0, n=500, delta=3, nu=nu) for nu in (0.2, 0.3)
        ]
        grid = runner.run_dynamics_grid(points, TRIALS, ROUNDS, self.SCHEDULE)
        for point, result in zip(points, grid):
            alone = ExperimentRunner(base_seed=3).run_dynamics_point(
                point, TRIALS, ROUNDS, self.SCHEDULE
            )
            assert np.array_equal(result.worst_deficits, alone.worst_deficits)

    def test_placement_requires_scenario(self):
        from repro.errors import SimulationError

        runner = ExperimentRunner(base_seed=0)
        with pytest.raises(SimulationError, match="placement needs"):
            runner.run_dynamics_point(
                self.params(),
                TRIALS,
                ROUNDS,
                self.SCHEDULE,
                placement=AdversaryPlacement("leaf"),
            )
