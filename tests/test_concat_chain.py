"""Tests for repro.core.concat_chain: the chain C_F||P and Eq. (44)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.concat_chain import (
    ConcatChain,
    DetailedState,
    count_convergence_opportunities,
)
from repro.core.suffix_chain import SuffixState, SuffixStateKind
from repro.errors import ParameterError
from repro.params import parameters_from_c


class TestDetailedState:
    def test_labels(self):
        assert DetailedState(0).label() == "N"
        assert DetailedState(3).label() == "H3"

    def test_is_empty(self):
        assert DetailedState(0).is_empty
        assert not DetailedState(1).is_empty

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            DetailedState(-1)


class TestStationaryProductForm:
    def test_detailed_probabilities_match_eq_41(self, small_params):
        chain = ConcatChain(small_params)
        assert chain.detailed_state_probability(DetailedState(0)) == pytest.approx(
            small_params.alpha_bar
        )
        assert chain.detailed_state_probability(DetailedState(1)) == pytest.approx(
            small_params.alpha1, rel=1e-9
        )

    def test_product_form_eq_40(self, small_params):
        chain = ConcatChain(small_params)
        suffix = SuffixState(SuffixStateKind.LONG_GAP)
        detailed = [DetailedState(1)] + [DetailedState(0)] * small_params.delta
        expected = (
            chain.suffix_chain.closed_form_stationary()[suffix]
            * small_params.alpha1
            * small_params.alpha_bar**small_params.delta
        )
        assert chain.stationary_probability(suffix, detailed) == pytest.approx(
            expected, rel=1e-9
        )

    def test_rejects_wrong_number_of_detailed_states(self, small_params):
        chain = ConcatChain(small_params)
        with pytest.raises(ParameterError):
            chain.stationary_probability(
                SuffixState(SuffixStateKind.LONG_GAP), [DetailedState(1)]
            )

    def test_convergence_opportunity_probability_matches_eq_44(self, small_params):
        chain = ConcatChain(small_params)
        expected = (
            small_params.alpha_bar ** (2 * small_params.delta) * small_params.alpha1
        )
        assert chain.convergence_opportunity_probability() == pytest.approx(
            expected, rel=1e-10
        )

    def test_convergence_state_shape(self, small_params):
        chain = ConcatChain(small_params)
        suffix, detailed = chain.convergence_opportunity_state()
        assert suffix == SuffixState(SuffixStateKind.LONG_GAP)
        assert detailed[0] == DetailedState(1)
        assert all(state.is_empty for state in detailed[1:])
        assert len(detailed) == small_params.delta + 1

    def test_convergence_state_probability_equals_eq_44(self, small_params):
        chain = ConcatChain(small_params)
        suffix, detailed = chain.convergence_opportunity_state()
        assert chain.stationary_probability(suffix, detailed) == pytest.approx(
            chain.convergence_opportunity_probability(), rel=1e-9
        )

    def test_expected_convergence_opportunities_eq_26(self, small_params):
        chain = ConcatChain(small_params)
        assert chain.expected_convergence_opportunities(1_000) == pytest.approx(
            1_000 * chain.convergence_opportunity_probability(), rel=1e-12
        )

    def test_log_forms_finite_at_paper_scale(self, paper_params):
        chain = ConcatChain(paper_params)
        assert math.isfinite(chain.log_convergence_opportunity_probability())
        assert math.isfinite(chain.log_min_stationary())
        assert math.isfinite(chain.log_phi_pi_norm_bound())


class TestProposition1:
    def test_min_stationary_below_convergence_probability(self, small_params):
        chain = ConcatChain(small_params)
        assert chain.min_stationary() <= chain.convergence_opportunity_probability()

    def test_phi_pi_norm_bound_is_inverse_sqrt_of_min(self):
        # Use a tiny honest population so p^(mu n) stays representable in
        # linear scale; at realistic scales only the log forms are finite.
        from repro.params import ProtocolParameters

        params = ProtocolParameters(p=0.2, n=10, delta=2, nu=0.2)
        chain = ConcatChain(params)
        assert chain.min_stationary() > 0.0
        assert chain.phi_pi_norm_bound() == pytest.approx(
            1.0 / math.sqrt(chain.min_stationary()), rel=1e-9
        )

    def test_phi_pi_norm_log_bound_consistent(self, small_params):
        chain = ConcatChain(small_params)
        assert chain.log_phi_pi_norm_bound() == pytest.approx(
            -0.5 * chain.log_min_stationary(), rel=1e-12
        )

    def test_min_detailed_probability(self, small_params):
        chain = ConcatChain(small_params)
        honest = small_params.honest_count
        expected = min(
            honest * math.log(small_params.p), honest * math.log1p(-small_params.p)
        )
        assert chain.log_min_detailed_probability() == pytest.approx(expected)


class TestCountConvergenceOpportunities:
    def test_simple_pattern(self):
        # Delta = 2: quiet, quiet, single, quiet, quiet -> one opportunity.
        assert count_convergence_opportunities([0, 0, 1, 0, 0], delta=2) == 1

    def test_pattern_requires_single_block(self):
        assert count_convergence_opportunities([0, 0, 2, 0, 0], delta=2) == 0

    def test_pattern_requires_leading_quiet(self):
        assert count_convergence_opportunities([1, 0, 1, 0, 0], delta=2) == 0

    def test_pattern_requires_trailing_quiet(self):
        assert count_convergence_opportunities([0, 0, 1, 0, 1], delta=2) == 0

    def test_two_disjoint_opportunities(self):
        trace = [0, 0, 1, 0, 0] + [0, 0, 1, 0, 0]
        assert count_convergence_opportunities(trace, delta=2) == 2

    def test_short_trace_returns_zero(self):
        assert count_convergence_opportunities([0, 1, 0], delta=2) == 0

    def test_rejects_bad_delta(self):
        with pytest.raises(ParameterError):
            count_convergence_opportunities([0, 1, 0], delta=0)

    def test_rate_converges_to_eq_44(self, small_params, rng):
        rounds = 200_000
        honest = rng.binomial(
            int(round(small_params.honest_count)), small_params.p, size=rounds
        )
        count = count_convergence_opportunities(honest, small_params.delta)
        rate = count / rounds
        assert rate == pytest.approx(
            small_params.convergence_opportunity_probability, rel=0.05
        )

    @given(delta=st.integers(min_value=1, max_value=4), seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_matches_streaming_detector(self, delta, seed):
        from repro.simulation.events import ConvergenceOpportunityDetector

        rng = np.random.default_rng(seed)
        trace = rng.integers(0, 3, size=400)
        offline = count_convergence_opportunities(trace, delta)
        detector = ConvergenceOpportunityDetector(delta)
        detector.observe_many(trace)
        # The streaming detector does not require a full leading window, so it
        # may count at most the opportunities the offline counter sees plus any
        # completed within the first 2*delta rounds.
        head = count_convergence_opportunities(
            np.concatenate([np.zeros(2 * delta, dtype=int), trace[: 2 * delta + 1]]), delta
        )
        assert offline <= detector.count <= offline + head + 1
