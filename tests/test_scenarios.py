"""Tests for repro.simulation.scenarios: registry, engine, and invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.params import parameters_from_c
from repro.simulation import (
    BatchSimulation,
    ExperimentRunner,
    MaxDelayAdversary,
    PassiveAdversary,
    PrivateChainAdversary,
    Scenario,
    ScenarioSimulation,
    SelfishMiningAdversary,
    draw_mining_traces,
    get_scenario,
    list_scenarios,
    register_scenario,
    rotating_honest_attribution,
)

ATTACK_PARAMS = parameters_from_c(c=1.0, n=400, delta=3, nu=0.4)


# ----------------------------------------------------------------------
# Scenario dataclass and registry
# ----------------------------------------------------------------------
class TestScenarioRegistry:
    def test_default_registry_contents(self):
        assert list_scenarios() == [
            "eclipse",
            "equivocation",
            "max_delay",
            "partition_attack",
            "passive",
            "private_chain",
            "selfish_mining",
        ]

    def test_get_scenario_accepts_names_and_instances(self):
        by_name = get_scenario("private_chain")
        assert by_name.kind == "private_chain"
        custom = Scenario(name="mine", kind="selfish_mining")
        assert get_scenario(custom) is custom

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SimulationError, match="unknown scenario"):
            get_scenario("finney")

    def test_registration_refuses_silent_redefinition(self):
        duplicate = Scenario(name="passive", kind="publish", honest_delay=0)
        with pytest.raises(SimulationError, match="already registered"):
            register_scenario(duplicate)
        # Explicit overwrite is allowed (and restores the original here).
        register_scenario(duplicate, overwrite=True)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="", kind="publish"),
            dict(name="x", kind="eclipse"),
            dict(name="x", kind="publish", honest_delay=-1),
            dict(name="x", kind="private_chain", honest_delay=2),
            dict(name="x", kind="private_chain", target_depth=0),
            dict(name="x", kind="private_chain", give_up_deficit=0),
        ],
    )
    def test_invalid_scenarios_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            Scenario(**kwargs)

    def test_honest_delay_respects_delta_cap(self):
        capped = Scenario(name="x", kind="publish", honest_delay=5)
        with pytest.raises(SimulationError, match="beyond the Delta cap"):
            capped.resolved_honest_delay(3)
        assert capped.resolved_honest_delay(5) == 5
        assert get_scenario("max_delay").resolved_honest_delay(7) == 7
        assert get_scenario("passive").resolved_honest_delay(7) == 0
        assert get_scenario("private_chain").resolved_honest_delay(7) == 7

    def test_build_adversary_matches_kind(self):
        assert isinstance(get_scenario("passive").build_adversary(3), PassiveAdversary)
        assert isinstance(
            get_scenario("max_delay").build_adversary(3), MaxDelayAdversary
        )
        shallow = Scenario(name="x", kind="private_chain", target_depth=2)
        adversary = shallow.build_adversary(3)
        assert isinstance(adversary, PrivateChainAdversary)
        assert adversary.target_depth == 2
        assert isinstance(
            get_scenario("selfish_mining").build_adversary(3),
            SelfishMiningAdversary,
        )

    def test_success_depth(self):
        assert get_scenario("private_chain").success_depth == 6
        assert get_scenario("selfish_mining").success_depth == 1
        assert get_scenario("passive").success_depth == 1


# ----------------------------------------------------------------------
# Hand-crafted traces: exact expected outcomes
# ----------------------------------------------------------------------
class TestHandCraftedTraces:
    def test_private_chain_release_on_crafted_trace(self):
        """The adversary forks, the public chain grows past target depth, the
        private chain stays ahead, and the release lands where the state
        machine says it must."""
        params = parameters_from_c(c=1.0, n=40, delta=1, nu=0.4)
        scenario = Scenario(
            name="pc_test", kind="private_chain", target_depth=2, give_up_deficit=None
        )
        rounds = 8
        honest = np.zeros((1, rounds), dtype=np.int64)
        adversary = np.zeros((1, rounds), dtype=np.int64)
        adversary[0, 0] = 3  # fork from genesis: private height 3
        honest[0, 1] = 1     # public 1 (delivered at start of round 3)
        honest[0, 2] = 1     # public 2 at start of round 4 -> fork depth 2
        engine = ScenarioSimulation(params, scenario)
        result = engine.run_traces(honest, adversary, record_rounds=True)
        # Delta=1: the block mined in round 2 arrives at round 3, the round-3
        # block at round 4; depth 2 >= target and lead 3 > 2 trigger release.
        assert list(result.release_rounds(0)) == [4]
        assert result.deepest_forks[0] == 2
        assert result.releases[0] == 1
        # The release displaces the public suffix: height jumps to 3.
        assert result.public_heights[0, 3] == 3
        assert result.private_heights[0, 3] == 0

    def test_private_chain_gives_up_when_hopeless(self):
        params = parameters_from_c(c=1.0, n=40, delta=1, nu=0.4)
        scenario = Scenario(
            name="pc_giveup", kind="private_chain", target_depth=6, give_up_deficit=2
        )
        rounds = 6
        honest = np.zeros((1, rounds), dtype=np.int64)
        adversary = np.zeros((1, rounds), dtype=np.int64)
        adversary[0, 0] = 1              # private height 1
        honest[0, 0:3] = 1               # public reaches 3 by round 4
        result = ScenarioSimulation(params, scenario).run_traces(
            honest, adversary, record_rounds=True
        )
        assert result.releases[0] == 0
        assert result.abandons[0] == 1
        # Deficit hits 2 when the public chain reaches 3 at start of round 4.
        assert list(result.abandon_rounds(0)) == [4]
        assert result.withheld_final[0] == 0

    def test_selfish_mining_races_and_orphans(self):
        """Lead 2 withholds; the public chain catching up to lead 1 forces the
        release, orphaning the honest blocks above the fork point."""
        params = parameters_from_c(c=1.0, n=40, delta=1, nu=0.4)
        rounds = 6
        honest = np.zeros((1, rounds), dtype=np.int64)
        adversary = np.zeros((1, rounds), dtype=np.int64)
        adversary[0, 0] = 2   # private lead 2: withhold
        honest[0, 0] = 1      # public 1 at start of round 2 -> lead 1: release
        result = ScenarioSimulation(params, "selfish_mining").run_traces(
            honest, adversary, record_rounds=True
        )
        assert list(result.release_rounds(0)) == [2]
        assert result.orphaned_honest[0] == 1
        assert result.deepest_forks[0] == 1
        assert result.public_heights[0, 1] == 2

    def test_publish_scenarios_never_fork(self):
        honest, adversary = draw_mining_traces(ATTACK_PARAMS, 4, 500, rng=3)
        for name in ("passive", "max_delay"):
            result = ScenarioSimulation(ATTACK_PARAMS, name).run_traces(
                honest, adversary
            )
            assert (result.releases == 0).all()
            assert (result.deepest_forks == 0).all()
            assert (result.withheld_final == 0).all()


# ----------------------------------------------------------------------
# Adversary invariants (property tests over seeded batches)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["private_chain", "selfish_mining"])
@pytest.mark.parametrize("seed", [11, 12])
class TestAdversaryInvariants:
    def _result(self, name, seed):
        engine = ScenarioSimulation(ATTACK_PARAMS, name, rng=seed)
        return engine.run(trials=6, rounds=1_500, record_rounds=True)

    def test_private_lead_over_fork_never_negative(self, name, seed):
        """The private chain never sinks below its own fork point, and all
        recorded heights are non-negative."""
        result = self._result(name, seed)
        assert (result.private_heights >= 0).all()
        assert (result.public_heights >= 0).all()
        # lead + depth = private - fork at decision time: the private chain
        # never sinks below its own fork point (and fork depths are depths).
        assert (result.decision_leads + result.decision_fork_depths >= 0).all()
        assert (result.decision_fork_depths >= 0).all()

    def test_releases_only_when_private_exceeds_public(self, name, seed):
        """private_chain releases require a strictly longer private chain;
        selfish_mining releases happen exactly at leads 0 and 1."""
        result = self._result(name, seed)
        released = result.release_mask
        assert released.any(), "grid point must actually exercise releases"
        leads = result.decision_leads[released]
        if name == "private_chain":
            assert (leads > 0).all()
            assert (result.decision_fork_depths[released] >= 6).all()
        else:
            assert ((leads == 0) | (leads == 1)).all()

    def test_abandons_only_when_behind(self, name, seed):
        result = self._result(name, seed)
        abandoned = result.abandon_mask
        if name == "private_chain":
            assert (result.decision_leads[abandoned] <= -12).all()
        else:
            assert (result.decision_leads[abandoned] <= -1).all()

    def test_public_heights_monotone(self, name, seed):
        result = self._result(name, seed)
        assert (np.diff(result.public_heights, axis=1) >= 0).all()
        assert (result.final_public_heights >= result.public_heights[:, -1]).all()

    def test_tallies_consistent_with_masks(self, name, seed):
        result = self._result(name, seed)
        assert np.array_equal(result.release_mask.sum(axis=1), result.releases)
        assert np.array_equal(result.abandon_mask.sum(axis=1), result.abandons)


# ----------------------------------------------------------------------
# Delta-cap enforcement
# ----------------------------------------------------------------------
class TestDeltaCap:
    def test_engine_rejects_delay_beyond_cap(self):
        over = Scenario(name="over", kind="publish", honest_delay=9)
        with pytest.raises(SimulationError, match="beyond the Delta cap"):
            ScenarioSimulation(ATTACK_PARAMS, over)

    def test_every_imposed_delay_respects_cap(self):
        for name in list_scenarios():
            scenario = get_scenario(name)
            delay = scenario.resolved_honest_delay(ATTACK_PARAMS.delta)
            assert 0 <= delay <= ATTACK_PARAMS.delta
            adversary = scenario.build_adversary(ATTACK_PARAMS.delta)
            assert adversary.delta == ATTACK_PARAMS.delta


# ----------------------------------------------------------------------
# Attribution schedule
# ----------------------------------------------------------------------
class TestRotatingAttribution:
    def test_ids_are_distinct_within_delivery_window(self):
        counts = np.array([3, 2, 0, 4, 1])
        schedule = rotating_honest_attribution(counts, honest_miners=11, honest_delay=3)
        assert [len(ids) for ids in schedule] == list(counts)
        window: list = []
        for ids in schedule:
            window.append(set(int(i) for i in ids))
            recent = window[-3:]
            union = set().union(*recent)
            assert len(union) == sum(len(s) for s in recent)

    def test_infeasible_window_rejected(self):
        counts = np.array([3, 3, 3])
        with pytest.raises(SimulationError, match="distinct"):
            rotating_honest_attribution(counts, honest_miners=5, honest_delay=3)

    def test_engine_refuses_infeasible_traces(self):
        params = parameters_from_c(c=1.0, n=8, delta=4, nu=0.4, strict_model=False)
        honest = np.full((1, 12), 3, dtype=np.int64)
        adversary = np.zeros((1, 12), dtype=np.int64)
        with pytest.raises(SimulationError, match="distinct"):
            ScenarioSimulation(params, "max_delay").run_traces(honest, adversary)

    def test_validation_errors(self):
        with pytest.raises(SimulationError):
            rotating_honest_attribution(np.array([1]), honest_miners=0, honest_delay=1)
        with pytest.raises(SimulationError):
            rotating_honest_attribution(np.array([-1]), honest_miners=5, honest_delay=1)
        with pytest.raises(SimulationError):
            rotating_honest_attribution(np.ones((2, 2)), honest_miners=5, honest_delay=1)


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
class TestScenarioSimulation:
    def test_shares_the_batch_draw_protocol(self):
        """Same seed, same tensors: the passive scenario's count statistics
        coincide with the batch engine's."""
        batch = BatchSimulation(ATTACK_PARAMS, rng=5).run(8, 1_000)
        scenario = ScenarioSimulation(ATTACK_PARAMS, "passive", rng=5).run(8, 1_000)
        assert np.array_equal(
            batch.convergence_opportunities, scenario.convergence_opportunities
        )
        assert np.array_equal(batch.honest_blocks, scenario.honest_blocks)
        assert np.array_equal(batch.adversary_blocks, scenario.adversary_blocks)
        assert np.array_equal(batch.worst_deficits, scenario.worst_deficits)

    def test_shape_validation(self):
        engine = ScenarioSimulation(ATTACK_PARAMS, "private_chain")
        with pytest.raises(SimulationError):
            engine.run_traces(np.zeros(5), np.zeros(5))
        with pytest.raises(SimulationError):
            engine.run_traces(np.zeros((2, 5)), np.zeros((2, 6)))
        with pytest.raises(SimulationError):
            engine.run_traces(-np.ones((1, 5)), np.zeros((1, 5)))
        with pytest.raises(SimulationError):
            ScenarioSimulation(ATTACK_PARAMS, "passive", draw_mode="quantum")

    def test_records_are_opt_in(self):
        result = ScenarioSimulation(ATTACK_PARAMS, "private_chain", rng=1).run(2, 300)
        assert result.public_heights is None
        with pytest.raises(SimulationError, match="record_rounds"):
            result.release_rounds(0)
        kept = ScenarioSimulation(ATTACK_PARAMS, "private_chain", rng=1).run(
            2, 300, keep_traces=True
        )
        assert kept.honest_counts.shape == (2, 300)

    def test_summary_and_success_statistics(self):
        result = ScenarioSimulation(ATTACK_PARAMS, "private_chain", rng=7).run(
            12, 2_000
        )
        summary = result.summary()
        assert summary["scenario"] == "private_chain"
        assert 0.0 <= summary["attack_success_probability"] <= 1.0
        low, high = result.attack_success_ci95
        assert 0.0 <= low <= summary["attack_success_probability"] <= high <= 1.0
        assert summary["mean_deepest_fork"] <= summary["max_deepest_fork"]
        # In the attack region the withholding attack reliably succeeds.
        assert summary["attack_success_probability"] > 0.5
        assert np.array_equal(
            result.attack_success_mask(), result.deepest_forks >= 6
        )
        with pytest.raises(SimulationError):
            result.attack_success_mask(depth=0)

    def test_growth_slows_under_max_delay(self):
        """Delaying every honest block by Delta strictly slows chain growth."""
        passive = ScenarioSimulation(ATTACK_PARAMS, "passive", rng=2).run(8, 2_000)
        delayed = ScenarioSimulation(ATTACK_PARAMS, "max_delay", rng=2).run(8, 2_000)
        assert delayed.growth_rates.mean() < passive.growth_rates.mean()


# ----------------------------------------------------------------------
# ExperimentRunner integration
# ----------------------------------------------------------------------
class TestRunnerScenarioIntegration:
    def test_cache_roundtrip(self, tmp_path):
        runner = ExperimentRunner(base_seed=3, cache_dir=str(tmp_path))
        first = runner.run_scenario_point(ATTACK_PARAMS, "private_chain", 4, 600)
        assert runner.cache_misses == 1
        second = runner.run_scenario_point(ATTACK_PARAMS, "private_chain", 4, 600)
        assert runner.cache_hits == 1
        for name in (
            "releases",
            "deepest_forks",
            "orphaned_honest",
            "final_public_heights",
            "convergence_opportunities",
        ):
            assert np.array_equal(getattr(first, name), getattr(second, name))
        assert second.scenario.name == "private_chain"
        assert second.honest_delay == first.honest_delay

    def test_scenario_keys_are_distinct(self):
        runner = ExperimentRunner(base_seed=3)
        batch_key = runner.cache_key(ATTACK_PARAMS, 4, 600)
        private_key = runner.cache_key(ATTACK_PARAMS, 4, 600, "private_chain")
        selfish_key = runner.cache_key(ATTACK_PARAMS, 4, 600, "selfish_mining")
        assert len({batch_key, private_key, selfish_key}) == 3
        # Scenario parameters feed the key too.
        shallow = Scenario(name="private_chain", kind="private_chain", target_depth=2)
        assert runner.cache_key(ATTACK_PARAMS, 4, 600, shallow) != private_key

    def test_grid_matches_pointwise_runs(self):
        runner = ExperimentRunner(base_seed=9)
        points = [ATTACK_PARAMS, ATTACK_PARAMS.with_nu(0.3)]
        grid = runner.run_scenario_grid(points, "selfish_mining", 3, 400)
        alone = [
            ExperimentRunner(base_seed=9).run_scenario_point(
                point, "selfish_mining", 3, 400
            )
            for point in points
        ]
        for from_grid, from_point in zip(grid, alone):
            assert np.array_equal(from_grid.releases, from_point.releases)
            assert np.array_equal(from_grid.deepest_forks, from_point.deepest_forks)

    def test_sharded_grid_matches_serial(self, tmp_path):
        points = [ATTACK_PARAMS, ATTACK_PARAMS.with_nu(0.25)]
        serial = ExperimentRunner(base_seed=4).run_scenario_grid(
            points, "private_chain", 2, 300
        )
        sharded = ExperimentRunner(
            base_seed=4, cache_dir=str(tmp_path), processes=2
        ).run_scenario_grid(points, "private_chain", 2, 300)
        for left, right in zip(serial, sharded):
            assert np.array_equal(left.releases, right.releases)
            assert np.array_equal(left.deepest_forks, right.deepest_forks)
        assert ExperimentRunner(base_seed=4).run_scenario_grid([], "passive", 1, 1) == []
