"""Tests for repro.simulation.block and repro.simulation.blocktree."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulation import (
    GENESIS_ID,
    Block,
    BlockTree,
    common_prefix_length,
    genesis_block,
    is_prefix_up_to,
)


def make_block(block_id, parent_id, height, honest=True, round_mined=1, miner_id=0):
    return Block(
        block_id=block_id,
        parent_id=parent_id,
        height=height,
        round_mined=round_mined,
        miner_id=miner_id,
        honest=honest,
    )


class TestBlock:
    def test_genesis(self):
        genesis = genesis_block()
        assert genesis.is_genesis
        assert genesis.parent_id is None
        assert genesis.height == 0

    def test_non_genesis_requires_parent(self):
        with pytest.raises(SimulationError):
            Block(block_id=5, parent_id=None, height=1, round_mined=1, miner_id=0, honest=True)

    def test_block_cannot_be_own_parent(self):
        with pytest.raises(SimulationError):
            make_block(3, 3, 1)

    def test_genesis_shape_enforced(self):
        with pytest.raises(SimulationError):
            Block(block_id=GENESIS_ID, parent_id=1, height=0, round_mined=0, miner_id=-1, honest=True)

    def test_negative_ids_rejected(self):
        with pytest.raises(SimulationError):
            make_block(-1, 0, 1)


class TestBlockTree:
    def test_initial_state(self):
        tree = BlockTree()
        assert len(tree) == 1
        assert tree.best_tip == GENESIS_ID
        assert tree.height == 0
        assert tree.longest_chain() == [GENESIS_ID]

    def test_add_and_extend(self):
        tree = BlockTree()
        tree.add(make_block(1, 0, 1))
        tree.add(make_block(2, 1, 2))
        assert tree.height == 2
        assert tree.longest_chain() == [0, 1, 2]

    def test_add_requires_known_parent(self):
        tree = BlockTree()
        with pytest.raises(SimulationError):
            tree.add(make_block(2, 1, 2))

    def test_add_requires_correct_height(self):
        tree = BlockTree()
        with pytest.raises(SimulationError):
            tree.add(make_block(1, 0, 2))

    def test_re_adding_same_block_is_noop(self):
        tree = BlockTree()
        block = make_block(1, 0, 1)
        tree.add(block)
        tree.add(block)
        assert len(tree) == 2

    def test_conflicting_block_id_rejected(self):
        tree = BlockTree()
        tree.add(make_block(1, 0, 1))
        with pytest.raises(SimulationError):
            tree.add(make_block(1, 0, 1, honest=False))

    def test_longest_chain_rule_prefers_height(self):
        tree = BlockTree()
        tree.add(make_block(1, 0, 1))
        tree.add(make_block(2, 0, 1))  # fork at height 1
        tree.add(make_block(3, 2, 2))  # second branch grows taller
        assert tree.best_tip == 3
        assert tree.longest_chain() == [0, 2, 3]

    def test_tie_keeps_first_adopted_chain(self):
        tree = BlockTree()
        tree.add(make_block(1, 0, 1))
        tree.add(make_block(2, 0, 1))
        # Equal heights: the tip adopted first (block 1) is kept.
        assert tree.best_tip == 1

    def test_children_and_tips(self):
        tree = BlockTree()
        tree.add(make_block(1, 0, 1))
        tree.add(make_block(2, 0, 1))
        assert set(tree.children_of(0)) == {1, 2}
        assert set(tree.tips()) == {1, 2}

    def test_honest_and_adversarial_partition(self):
        tree = BlockTree()
        tree.add(make_block(1, 0, 1, honest=True))
        tree.add(make_block(2, 1, 2, honest=False))
        assert {block.block_id for block in tree.honest_blocks()} == {0, 1}
        assert {block.block_id for block in tree.adversarial_blocks()} == {2}

    def test_copy_is_independent(self):
        tree = BlockTree()
        tree.add(make_block(1, 0, 1))
        clone = tree.copy()
        clone.add(make_block(2, 1, 2))
        assert 2 in clone
        assert 2 not in tree

    def test_unknown_block_lookup(self):
        tree = BlockTree()
        with pytest.raises(SimulationError):
            tree.get(99)
        with pytest.raises(SimulationError):
            tree.children_of(99)


class TestPrefixPredicates:
    def test_common_prefix_length(self):
        assert common_prefix_length([0, 1, 2, 3], [0, 1, 5, 6]) == 2
        assert common_prefix_length([0, 1], [0, 1, 2]) == 2
        assert common_prefix_length([7], [0]) == 0

    def test_is_prefix_up_to(self):
        earlier = [0, 1, 2, 3, 4]
        later = [0, 1, 2, 9, 10, 11]
        assert not is_prefix_up_to(earlier, later, confirmations=1)
        assert is_prefix_up_to(earlier, later, confirmations=2)
        assert is_prefix_up_to(earlier, later, confirmations=10)

    def test_is_prefix_rejects_negative_confirmations(self):
        with pytest.raises(SimulationError):
            is_prefix_up_to([0], [0], confirmations=-1)

    @given(
        common=st.lists(st.integers(min_value=1, max_value=100), max_size=20),
        left_suffix=st.lists(st.integers(min_value=101, max_value=200), max_size=10),
        right_suffix=st.lists(st.integers(min_value=201, max_value=300), max_size=10),
    )
    @settings(max_examples=200, deadline=None)
    def test_common_prefix_property(self, common, left_suffix, right_suffix):
        left = [0] + common + left_suffix
        right = [0] + common + right_suffix
        prefix = common_prefix_length(left, right)
        assert prefix >= 1 + len(common)
        # The violation depth definition: left is a prefix of right once the
        # non-shared suffix is dropped.
        assert is_prefix_up_to(left, right, confirmations=len(left) - prefix)
