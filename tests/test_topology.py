"""Unit and property tests for the network-topology subsystem.

Covers the peer-graph generators and the vectorized gossip kernel (against
the per-source Dijkstra reference), the delay-model registry and its Δ-cap
guarantee, the generalized convergence-opportunity mask, heterogeneous
mining power, and the unified integer-coercion rule shared by
``ProtocolParameters`` and ``DeltaDelayNetwork``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.concat_chain import convergence_opportunity_mask
from repro.errors import ParameterError, SimulationError
from repro.params import ProtocolParameters, coerce_positive_int, parameters_from_c
from repro.simulation import (
    DeltaDelayNetwork,
    FixedDeltaDelayModel,
    MiningOracle,
    MiningPowerProfile,
    PeerGraphDelayModel,
    PeerGraphTopology,
    ScriptedMiningOracle,
    TruncatedGeometricDelayModel,
    UniformDelayModel,
    convergence_opportunity_mask_with_delays,
    get_delay_model,
    list_delay_models,
    reference_draw_delays,
    register_delay_model,
    resolve_delay_model,
)


# ----------------------------------------------------------------------
# Satellite: the unified integer-coercion rule
# ----------------------------------------------------------------------
class TestCoercePositiveInt:
    def test_accepts_ints_integral_floats_and_numpy_scalars(self):
        assert coerce_positive_int(3, "x") == 3
        assert coerce_positive_int(3.0, "x") == 3
        assert coerce_positive_int(np.int64(7), "x") == 7
        value = coerce_positive_int(np.float64(2.0), "x")
        assert value == 2 and isinstance(value, int)

    @pytest.mark.parametrize(
        "bad",
        [0, -1, 2.5, -3.0, True, False, "3", None, float("nan"), float("inf"), float("-inf")],
    )
    def test_rejects_non_positive_and_non_integral(self, bad):
        with pytest.raises(ParameterError):
            coerce_positive_int(bad, "x")

    def test_error_type_is_configurable(self):
        with pytest.raises(SimulationError):
            coerce_positive_int(0, "delta", error_type=SimulationError)

    def test_params_and_network_accept_the_same_integral_floats(self):
        params = ProtocolParameters(p=1e-4, n=100.0, delta=3.0, nu=0.2)
        assert params.n == 100 and isinstance(params.n, int)
        assert params.delta == 3 and isinstance(params.delta, int)
        network = DeltaDelayNetwork(3.0)
        assert network.delta == 3 and isinstance(network.delta, int)

    @pytest.mark.parametrize("bad_delta", [0, -2, 1.5, True])
    def test_params_and_network_reject_the_same_bad_deltas(self, bad_delta):
        with pytest.raises(ParameterError):
            ProtocolParameters(p=1e-4, n=100, delta=bad_delta, nu=0.2)
        with pytest.raises(SimulationError):
            DeltaDelayNetwork(bad_delta)


# ----------------------------------------------------------------------
# Peer graphs and the gossip kernel
# ----------------------------------------------------------------------
class TestPeerGraphTopology:
    def test_ring_structure(self):
        topology = PeerGraphTopology.ring(10)
        assert topology.n_nodes == 10
        assert topology.edge_count == 10
        assert (topology.degrees == 2).all()
        # A unit-latency ring's flood time is ceil(n/2) from every origin.
        assert (topology.delivery_radii() == 5).all()
        assert topology.diameter == 5

    def test_star_structure(self):
        topology = PeerGraphTopology.star(9)
        assert topology.edge_count == 8
        radii = topology.delivery_radii()
        assert radii[0] == 1  # the hub reaches everyone in one hop
        assert (radii[1:] == 2).all()

    def test_random_regular_is_regular_and_connected(self):
        topology = PeerGraphTopology.random_regular(24, 4, rng=3)
        assert (topology.degrees == 4).all()
        assert topology.is_connected
        assert topology.spec["kind"] == "random_regular"

    def test_random_regular_rejects_infeasible_requests(self):
        with pytest.raises(SimulationError):
            PeerGraphTopology.random_regular(9, 3)  # odd stub total
        with pytest.raises(SimulationError):
            PeerGraphTopology.random_regular(4, 4)  # degree >= nodes

    def test_erdos_renyi_is_connected(self):
        topology = PeerGraphTopology.erdos_renyi(20, 0.3, rng=5)
        assert topology.is_connected
        assert topology.n_nodes == 20

    def test_vectorized_distances_match_dijkstra_reference(self):
        for seed, spread in ((0, 0), (1, 3)):
            topology = PeerGraphTopology.random_regular(
                20, 3, latency_spread=spread, rng=seed
            )
            assert np.array_equal(topology.distances(), topology.distances_reference())

    def test_rejects_malformed_latency_matrices(self):
        with pytest.raises(SimulationError):
            PeerGraphTopology(np.zeros((3, 4)))
        with pytest.raises(SimulationError):
            PeerGraphTopology(np.array([[0, 1], [2, 0]]))  # asymmetric
        with pytest.raises(SimulationError):
            PeerGraphTopology(np.array([[1, 1], [1, 0]]))  # non-zero diagonal
        with pytest.raises(SimulationError):
            PeerGraphTopology(-np.ones((2, 2)) + np.eye(2))  # negative latency

    def test_disconnected_graph_refuses_delivery(self):
        latencies = np.zeros((4, 4), dtype=np.int64)
        latencies[0, 1] = latencies[1, 0] = 1
        latencies[2, 3] = latencies[3, 2] = 1
        topology = PeerGraphTopology(latencies)
        assert not topology.is_connected
        with pytest.raises(SimulationError):
            topology.delivery_radii()

    def test_effective_delta_quantiles(self):
        topology = PeerGraphTopology.star(17)
        assert topology.effective_delta(1.0) == topology.diameter == 2
        # Almost every origin is a leaf, so low quantiles still see radius 2.
        assert topology.effective_delta(0.5) == 2
        with pytest.raises(SimulationError):
            topology.effective_delta(0.0)

    def test_effective_parameters_maps_into_analytical_world(self):
        params = parameters_from_c(c=4.0, n=1_000, delta=10, nu=0.2)
        topology = PeerGraphTopology.random_regular(32, 8, rng=0)
        effective = topology.effective_parameters(params)
        assert effective.delta == min(topology.effective_delta(), 10)
        assert effective.delta < params.delta
        assert (
            effective.convergence_opportunity_probability
            > params.convergence_opportunity_probability
        )

    def test_payload_distinguishes_wiring(self):
        spec_payload = PeerGraphTopology.ring(8).payload()
        assert spec_payload["kind"] == "ring"
        explicit = PeerGraphTopology(PeerGraphTopology.ring(8).latencies)
        other = PeerGraphTopology(PeerGraphTopology.star(8).latencies)
        assert explicit.payload() != other.payload()
        # Same generator spec, different RNG: the realized wiring differs,
        # so the payloads (and hence runner cache keys) must too.
        seeded_a = PeerGraphTopology.random_regular(16, 4, rng=0)
        seeded_b = PeerGraphTopology.random_regular(16, 4, rng=12345)
        assert not np.array_equal(seeded_a.latencies, seeded_b.latencies)
        assert seeded_a.payload() != seeded_b.payload()
        spread_a = PeerGraphTopology.ring(8, latency_spread=3, rng=0)
        spread_b = PeerGraphTopology.ring(8, latency_spread=3, rng=99)
        assert spread_a.payload() != spread_b.payload()

    @given(
        nodes=st.integers(min_value=4, max_value=16),
        scale=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_gossip_delivery_monotone_in_edge_latency(self, nodes, scale, seed):
        """Scaling every edge latency up can never speed up gossip delivery."""
        topology = PeerGraphTopology.erdos_renyi(nodes, 0.6, rng=seed)
        slower = PeerGraphTopology(topology.latencies * scale)
        assert (slower.delivery_radii() >= topology.delivery_radii()).all()


# ----------------------------------------------------------------------
# Delay models
# ----------------------------------------------------------------------
class TestDelayModels:
    def test_registry_contains_the_four_families(self):
        assert {"fixed_delta", "uniform", "truncated_geometric", "peer_graph"} <= set(
            list_delay_models()
        )

    def test_get_and_resolve(self):
        assert isinstance(get_delay_model("uniform"), UniformDelayModel)
        assert resolve_delay_model(None) is None
        model = TruncatedGeometricDelayModel(0.25)
        assert resolve_delay_model(model) is model
        with pytest.raises(SimulationError):
            get_delay_model("no_such_model")

    def test_register_refuses_silent_redefinition(self):
        with pytest.raises(SimulationError):
            register_delay_model("uniform", UniformDelayModel)

    def test_fixed_delta_is_trivial_and_constant(self):
        model = FixedDeltaDelayModel()
        assert model.trivial
        delays = model.draw_delays(3, 7, 4, np.random.default_rng(0))
        assert (delays == 4).all()

    def test_uniform_respects_explicit_support(self):
        model = UniformDelayModel(low=1, high=2)
        delays = model.draw_delays(50, 50, 5, np.random.default_rng(0))
        assert delays.min() == 1 and delays.max() == 2
        with pytest.raises(SimulationError):
            UniformDelayModel(low=3, high=1)
        with pytest.raises(SimulationError):
            # Support empties out under a tighter Delta cap.
            UniformDelayModel(low=4).draw_delays(2, 2, 3, np.random.default_rng(0))

    def test_peer_graph_draw_matches_per_block_reference(self):
        topology = PeerGraphTopology.random_regular(16, 4, latency_spread=2, rng=2)
        model = PeerGraphDelayModel(topology)
        delta = topology.diameter
        vectorized = model.draw_delays(3, 40, delta, np.random.default_rng(9))
        reference = reference_draw_delays(
            topology, 3, 40, delta, np.random.default_rng(9)
        )
        assert np.array_equal(vectorized, reference)

    @pytest.mark.parametrize("name", ["fixed_delta", "uniform", "truncated_geometric", "peer_graph"])
    @given(
        delta=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_every_model_respects_the_delta_cap(self, name, delta, seed):
        """The network guarantee: no delivery offset ever exceeds Δ."""
        delays = get_delay_model(name).draw_delays(
            4, 50, delta, np.random.default_rng(seed)
        )
        assert delays.shape == (4, 50)
        assert delays.dtype == np.int64
        assert (delays >= 0).all() and (delays <= delta).all()


# ----------------------------------------------------------------------
# Generalized convergence-opportunity detection
# ----------------------------------------------------------------------
class TestMaskWithDelays:
    @given(
        delta=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.floats(min_value=0.05, max_value=0.8),
    )
    @settings(max_examples=40, deadline=None)
    def test_constant_delta_reduces_to_classic_mask(self, delta, seed, rate):
        counts = np.random.default_rng(seed).poisson(rate, size=(4, 60))
        delays = np.full_like(counts, delta)
        assert np.array_equal(
            convergence_opportunity_mask_with_delays(counts, delays, delta),
            convergence_opportunity_mask(counts, delta),
        )

    def test_short_traces_count_fast_deliveries(self):
        """A trace shorter than 2Δ+1 rounds can still host opportunities when
        realized delays are below Δ (the classic mask's early exit only
        applies to the constant-Δ case)."""
        counts = np.zeros((1, 8), dtype=np.int64)
        counts[0, 5] = 1
        delays = np.zeros_like(counts)
        mask = convergence_opportunity_mask_with_delays(counts, delays, 5)
        assert mask[0, 5] and mask.sum() == 1
        # At constant delay Δ the completion boundary alone rules it out,
        # matching the classic mask bit for bit.
        constant = convergence_opportunity_mask_with_delays(
            counts, np.full_like(counts, 5), 5
        )
        assert np.array_equal(constant, convergence_opportunity_mask(counts, 5))
        assert constant.sum() == 0

    def test_faster_delivery_creates_more_opportunities(self):
        counts = np.random.default_rng(0).poisson(0.25, size=(32, 2_000))
        slow = convergence_opportunity_mask_with_delays(
            counts, np.full_like(counts, 5), 5
        )
        fast = convergence_opportunity_mask_with_delays(
            counts, np.ones_like(counts), 5
        )
        assert fast.sum() > slow.sum()

    def test_rejects_out_of_cap_delays(self):
        counts = np.ones((2, 20), dtype=np.int64)
        with pytest.raises(SimulationError):
            convergence_opportunity_mask_with_delays(
                counts, np.full_like(counts, 4), 3
            )
        with pytest.raises(SimulationError):
            convergence_opportunity_mask_with_delays(
                counts, np.full_like(counts, -1), 3
            )

    def test_opportunity_requires_all_prior_blocks_delivered(self):
        # Round 4 has a loner, but the block from round 3 is still in flight
        # (delay 3 means it arrives at round 6), so round 4 is no opportunity.
        counts = np.array([[0, 0, 0, 1, 1, 0, 0, 0, 0, 0]])
        delays = np.array([[0, 0, 0, 3, 1, 0, 0, 0, 0, 0]])
        mask = convergence_opportunity_mask_with_delays(counts, delays, 3)
        assert mask.sum() == 0
        # With the round-3 block delivered immediately, both rounds are
        # opportunities: round 3 completes instantly (delay 0) and round 4
        # completes at round 5 (its own delay 1).
        delays_fast = np.array([[0, 0, 0, 0, 1, 0, 0, 0, 0, 0]])
        mask_fast = convergence_opportunity_mask_with_delays(counts, delays_fast, 3)
        assert mask_fast[0, 3] and mask_fast[0, 5] and mask_fast.sum() == 2


# ----------------------------------------------------------------------
# Heterogeneous mining power
# ----------------------------------------------------------------------
class TestMiningPowerProfile:
    def test_uniform_profile_validates(self, small_params):
        profile = MiningPowerProfile.uniform(small_params)
        profile.validate_against(small_params)
        assert profile.honest_miners == 800
        assert profile.adversary_miners == 200

    def test_from_weights_preserves_aggregate_and_ratios(self, small_params):
        weights = np.linspace(1.0, 3.0, 800)
        profile = MiningPowerProfile.from_weights(small_params, weights)
        assert profile.expected_honest_rate == pytest.approx(
            small_params.p * 800, rel=1e-12
        )
        ratio = profile.honest_p[-1] / profile.honest_p[0]
        assert ratio == pytest.approx(3.0, rel=1e-9)

    def test_validation_rejects_mismatched_counts_and_rates(self, small_params):
        wrong_count = MiningPowerProfile(np.full(10, small_params.p))
        with pytest.raises(SimulationError):
            wrong_count.validate_against(small_params)
        wrong_rate = MiningPowerProfile(
            np.full(800, small_params.p * 2.0), np.full(200, small_params.p)
        )
        with pytest.raises(SimulationError):
            wrong_rate.validate_against(small_params)

    def test_probabilities_must_be_open_interval(self):
        with pytest.raises(SimulationError):
            MiningPowerProfile([0.5, 1.0])
        with pytest.raises(SimulationError):
            MiningPowerProfile([0.0, 0.5])
        with pytest.raises(SimulationError):
            MiningPowerProfile([])

    def test_from_weights_rejects_bad_weights(self, small_params):
        with pytest.raises(SimulationError):
            MiningPowerProfile.from_weights(small_params, [1.0, -1.0] * 400)
        # At high hardness, one miner holding nearly all the power would
        # need p_i >= 1 to preserve the aggregate rate.
        hard = ProtocolParameters(p=0.4, n=4, delta=1, nu=0.25)
        with pytest.raises(SimulationError):
            MiningPowerProfile.from_weights(hard, [1e-9, 1e-9, 1.0])

    def test_heterogeneity_shifts_alpha_at_fixed_rate(self, small_params):
        uniform = MiningPowerProfile.uniform(small_params)
        skewed = MiningPowerProfile.from_weights(
            small_params, np.linspace(1.0, 9.0, 800)
        )
        assert uniform.alpha_bar == pytest.approx(small_params.alpha_bar, rel=1e-9)
        assert uniform.alpha1 == pytest.approx(small_params.alpha1, rel=1e-6)
        # AM-GM: at fixed sum(p_i), prod(1 - p_i) is maximised by equal p_i,
        # so skewing the power lowers alpha_bar (some round has a block more
        # often) and raises alpha.
        assert skewed.alpha_bar < uniform.alpha_bar
        assert skewed.alpha > uniform.alpha

    def test_oracle_draws_with_profile(self, small_params):
        profile = MiningPowerProfile.from_weights(
            small_params, np.linspace(1.0, 3.0, 800)
        )
        oracle = MiningOracle(
            small_params.p, np.random.default_rng(0), power=profile
        )
        total = sum(oracle.honest_successes(800) for _ in range(4_000))
        expected = profile.expected_honest_rate * 4_000
        assert abs(total - expected) < 5.0 * np.sqrt(expected)
        with pytest.raises(SimulationError):
            oracle.honest_successes(10)  # profile covers 800 miners
        with pytest.raises(SimulationError):
            oracle.adversary_successes(3)

    def test_oracle_positions_respect_profile_length(self, small_params):
        profile = MiningPowerProfile.uniform(small_params)
        oracle = MiningOracle(
            small_params.p, np.random.default_rng(0), power=profile
        )
        positions = oracle.honest_success_positions(800)
        assert all(0 <= index < 800 for index in positions)

    def test_scripted_oracle_validates_against_profile(self, small_params):
        profile = MiningPowerProfile.uniform(small_params)
        ScriptedMiningOracle([1, 0], [0, 1], power=profile)
        with pytest.raises(SimulationError):
            ScriptedMiningOracle([801, 0], [0, 0], power=profile)
        with pytest.raises(SimulationError):
            ScriptedMiningOracle([0, 0], [500, 0], power=profile)
        with pytest.raises(SimulationError):
            ScriptedMiningOracle(
                [1, 0], [0, 0], honest_miner_ids=[[800], []], power=profile
            )

    def test_scenario_engine_accepts_power(self, small_params):
        from repro.simulation import ScenarioSimulation

        profile = MiningPowerProfile.from_weights(
            small_params, np.linspace(1.0, 3.0, 800)
        )
        result = ScenarioSimulation(
            small_params, "max_delay", rng=0, power=profile
        ).run(4, 800)
        assert result.honest_blocks.sum() > 0
        mismatched = MiningPowerProfile(np.full(10, 0.5))
        with pytest.raises(SimulationError):
            ScenarioSimulation(small_params, "max_delay", power=mismatched)

    def test_batch_draws_match_profile_rates(self, small_params):
        from repro.simulation import draw_mining_traces

        profile = MiningPowerProfile.from_weights(
            small_params, np.linspace(1.0, 4.0, 800), np.linspace(1.0, 2.0, 200)
        )
        honest, adversary = draw_mining_traces(
            small_params, 16, 2_000, rng=0, power=profile
        )
        honest_rate = honest.mean()
        adversary_rate = adversary.mean()
        assert honest_rate == pytest.approx(
            profile.expected_honest_rate, rel=0.05
        )
        assert adversary_rate == pytest.approx(
            profile.expected_adversary_rate, rel=0.10
        )
