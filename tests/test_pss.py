"""Tests for repro.core.pss: the PSS consistency and attack baselines."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import nu_max_neat_bound
from repro.core.pss import (
    attack_c_threshold,
    nu_max_pss_consistency,
    nu_max_pss_consistency_exact,
    nu_min_pss_attack,
    pss_attack_succeeds,
    pss_c_threshold,
    pss_consistency_condition_exact,
    pss_consistency_margin_exact,
)
from repro.errors import ParameterError
from repro.params import parameters_from_c


class TestPssConsistencyCurve:
    def test_zero_below_c_equals_two(self):
        assert nu_max_pss_consistency(1.0) == 0.0
        assert nu_max_pss_consistency(2.0) == 0.0

    def test_positive_above_two(self):
        assert 0.0 < nu_max_pss_consistency(2.5) < 0.5

    def test_inverse_relationship_with_threshold(self):
        for nu in (0.05, 0.15, 0.3, 0.45):
            c = pss_c_threshold(nu)
            assert nu_max_pss_consistency(c) == pytest.approx(nu, abs=1e-9)

    def test_known_value(self):
        # c = 3: nu_max = (2 - 3 + sqrt(3)) / 2
        assert nu_max_pss_consistency(3.0) == pytest.approx(
            (math.sqrt(3.0) - 1.0) / 2.0, rel=1e-12
        )

    def test_monotone_in_c(self):
        values = [nu_max_pss_consistency(c) for c in (2.5, 3.0, 5.0, 10.0, 100.0)]
        assert values == sorted(values)

    def test_rejects_nonpositive_c(self):
        with pytest.raises(ParameterError):
            nu_max_pss_consistency(0.0)

    def test_threshold_rejects_nu_above_half(self):
        with pytest.raises(ParameterError):
            pss_c_threshold(0.5)


class TestPssExactCondition:
    def test_margin_positive_for_safe_parameters(self):
        params = parameters_from_c(c=50.0, n=10_000, delta=5, nu=0.1)
        assert pss_consistency_margin_exact(params) > 0.0
        assert pss_consistency_condition_exact(params)

    def test_margin_negative_for_aggressive_parameters(self):
        params = parameters_from_c(c=0.5, n=10_000, delta=5, nu=0.45)
        assert pss_consistency_margin_exact(params) < 0.0
        assert not pss_consistency_condition_exact(params)

    def test_exact_nu_max_close_to_approximation_for_large_delta(self):
        # For large Delta the approximation 2(1-nu)^2/(1-2nu) is accurate.
        c = 6.0
        exact = nu_max_pss_consistency_exact(c, n=10_000, delta=10_000)
        approx = nu_max_pss_consistency(c)
        assert exact == pytest.approx(approx, abs=0.02)


class TestPssAttack:
    def test_attack_threshold_known_value(self):
        # c = 1: nu_min = (3 - sqrt(5)) / 2
        assert nu_min_pss_attack(1.0) == pytest.approx(
            (3.0 - math.sqrt(5.0)) / 2.0, rel=1e-12
        )

    def test_attack_succeeds_above_threshold(self):
        for c in (0.5, 1.0, 3.0, 10.0):
            threshold = nu_min_pss_attack(c)
            assert pss_attack_succeeds(c, min(threshold + 1e-6, 0.499))
            assert not pss_attack_succeeds(c, max(threshold - 1e-6, 1e-9))

    def test_attack_c_threshold_inverse(self):
        for nu in (0.1, 0.2, 0.3, 0.45):
            c = attack_c_threshold(nu)
            assert nu_min_pss_attack(c) == pytest.approx(nu, abs=1e-9)

    def test_threshold_increasing_in_c(self):
        # A slower protocol (larger c) forces the attacker to control more power.
        values = [nu_min_pss_attack(c) for c in (0.5, 1.0, 3.0, 10.0, 100.0)]
        assert values == sorted(values)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            nu_min_pss_attack(0.0)
        with pytest.raises(ParameterError):
            pss_attack_succeeds(1.0, 0.0)
        with pytest.raises(ParameterError):
            attack_c_threshold(0.5)


class TestOrderingOfTheThreeCurves:
    """The qualitative content of Figure 1."""

    @given(c=st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=300, deadline=None)
    def test_ours_between_pss_and_attack(self, c):
        ours = nu_max_neat_bound(c)
        pss = nu_max_pss_consistency(c)
        attack = nu_min_pss_attack(c)
        # Our bound tolerates at least as much as PSS (strictly more when PSS > 0)
        assert ours >= pss
        if pss > 1e-9:
            assert ours > pss
        # and never crosses the attack curve.
        assert ours <= attack + 1e-12

    @given(nu=st.floats(min_value=0.01, max_value=0.49))
    @settings(max_examples=300, deadline=None)
    def test_thresholds_ordered_in_c_space(self, nu):
        from repro.core.bounds import neat_bound

        # attack threshold < our required c < PSS required c
        assert attack_c_threshold(nu) < neat_bound(nu) < pss_c_threshold(nu)
