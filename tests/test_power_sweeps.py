"""Pool-concentration sweep: helpers, structure, and the seeded golden."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    concentration_table,
    gini_coefficient,
    herfindahl_index,
    zipf_weights,
)
from repro.core.probabilities import HeterogeneousMiningProbabilities
from repro.errors import AnalysisError
from repro.params import parameters_from_c
from repro.simulation import MiningPowerProfile

TOLERANCE = 1e-9

#: Golden rows for concentration_table(skews=(0.0, 1.0, 2.0), trials=12,
#: rounds=3000, seed=2026) at the default c=4, n=200, delta=3, nu=0.2 point
#: (160 honest miners), pinned at the repo's standard base_seed=2026.
GOLDEN_ROWS = {
    0.0: {
        "gini": 0.0,
        "hhi": 6.250000000000e-03,
        "alpha_bar": 9.354939883590e-01,
        "alpha1": 6.239226266671e-02,
        "heterogeneous_rate": 4.181929832786e-02,
        "rate_shift": 1.0,
        "empirical_rate": 4.122222222222e-02,
    },
    1.0: {
        "gini": 6.526126504390e-01,
        "hhi": 5.123381067679e-02,
        "alpha_bar": 9.353998620579e-01,
        "alpha1": 6.257484830256e-02,
        "heterogeneous_rate": 4.191636511085e-02,
        "rate_shift": 1.002321100231e00,
        "empirical_rate": 4.172222222222e-02,
    },
    2.0: {
        "gini": 9.631098664523e-01,
        "hhi": 4.030474297388e-01,
        "alpha_bar": 9.346474573524e-01,
        "alpha1": 6.405078794909e-02,
        "heterogeneous_rate": 4.269838509927e-02,
        "rate_shift": 1.021021078941e00,
        "empirical_rate": 4.411111111111e-02,
    },
}


class TestHelpers:
    def test_zipf_weights_shape_and_skew(self):
        flat = zipf_weights(8, 0.0)
        assert np.allclose(flat, 1.0)
        skewed = zipf_weights(8, 1.0)
        assert skewed[0] == 1.0
        assert (np.diff(skewed) < 0).all()

    def test_zipf_rejects_bad_inputs(self):
        with pytest.raises(AnalysisError):
            zipf_weights(0, 1.0)
        with pytest.raises(AnalysisError):
            zipf_weights(4, -0.5)

    def test_gini_extremes(self):
        assert gini_coefficient([1.0, 1.0, 1.0, 1.0]) == pytest.approx(0.0)
        # One pool holding almost everything approaches (m-1)/m.
        assert gini_coefficient([1e-9, 1e-9, 1e-9, 1.0]) == pytest.approx(
            0.75, abs=1e-6
        )

    def test_hhi_extremes(self):
        assert herfindahl_index([1.0] * 5) == pytest.approx(0.2)
        assert herfindahl_index([1e-12, 1.0]) == pytest.approx(1.0, abs=1e-9)

    def test_helpers_reject_nonpositive_weights(self):
        for helper in (gini_coefficient, herfindahl_index):
            with pytest.raises(AnalysisError):
                helper([1.0, 0.0])
            with pytest.raises(AnalysisError):
                helper([])


class TestConcentrationTable:
    def test_rejects_empty_and_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            concentration_table(skews=())
        with pytest.raises(AnalysisError):
            concentration_table(trials=-1)
        with pytest.raises(AnalysisError):
            concentration_table(rounds=0)

    def test_analytical_rows_match_heterogeneous_probabilities(self):
        """Each row's rate is exactly the Poisson-binomial Eq. 44 of its
        profile — the table is a view over core.probabilities, not a
        reimplementation."""
        params = parameters_from_c(c=4.0, n=200, delta=3, nu=0.2)
        rows = concentration_table(skews=(1.2,), params=params)
        profile = MiningPowerProfile.from_weights(
            params, zipf_weights(rows[0]["honest_miners"], 1.2)
        )
        expected = HeterogeneousMiningProbabilities(
            profile.honest_p, profile.adversary_p
        ).convergence_opportunity(params.delta)
        assert rows[0]["heterogeneous_rate"] == pytest.approx(
            expected, rel=TOLERANCE
        )
        assert "empirical_rate" not in rows[0]  # trials=0: analytical only

    def test_concentration_statistics_are_monotone_in_skew(self):
        rows = concentration_table(skews=(0.0, 0.5, 1.0, 1.5, 2.0))
        ginis = [row["gini"] for row in rows]
        hhis = [row["hhi"] for row in rows]
        shifts = [row["rate_shift"] for row in rows]
        assert ginis == sorted(ginis)
        assert hhis == sorted(hhis)
        # At small per-miner p the one-success mass dominates: the rate
        # shift grows with concentration and never drops below 1.
        assert shifts == sorted(shifts)
        assert shifts[0] == pytest.approx(1.0, rel=TOLERANCE)

    def test_golden_table_at_base_seed_2026(self):
        rows = concentration_table(
            skews=tuple(GOLDEN_ROWS), trials=12, rounds=3_000, seed=2026
        )
        assert [row["skew"] for row in rows] == list(GOLDEN_ROWS)
        for row in rows:
            golden = GOLDEN_ROWS[row["skew"]]
            for key, expected in golden.items():
                assert row[key] == pytest.approx(expected, rel=TOLERANCE), (
                    row["skew"],
                    key,
                )
            assert row["ci_covers_prediction"] is True
            assert row["homogeneous_rate"] == pytest.approx(
                4.181929832786e-02, rel=TOLERANCE
            )
