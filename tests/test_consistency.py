"""Tests for repro.core.consistency: the window-level analyzer."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import neat_bound
from repro.core.consistency import ConsistencyAnalyzer, ConsistencyVerdict
from repro.errors import ParameterError
from repro.params import parameters_from_c


class TestExpectations:
    def test_expected_counts_match_eqs_26_27(self, small_params):
        analyzer = ConsistencyAnalyzer(small_params)
        rounds = 12_345
        assert analyzer.expected_convergence_opportunities(rounds) == pytest.approx(
            rounds * small_params.convergence_opportunity_probability
        )
        assert analyzer.expected_adversary_blocks(rounds) == pytest.approx(
            rounds * small_params.beta
        )

    def test_expectation_ratio_log(self, small_params):
        analyzer = ConsistencyAnalyzer(small_params)
        expected = math.log(
            small_params.convergence_opportunity_probability / small_params.beta
        )
        assert analyzer.expectation_ratio_log() == pytest.approx(expected, rel=1e-9)

    def test_rejects_nonpositive_rounds(self, small_params):
        analyzer = ConsistencyAnalyzer(small_params)
        with pytest.raises(ParameterError):
            analyzer.expected_convergence_opportunities(0)
        with pytest.raises(ParameterError):
            analyzer.expected_adversary_blocks(-1)


class TestTheoremApplication:
    def test_safe_configuration(self):
        params = parameters_from_c(c=10.0, n=50_000, delta=10, nu=0.2)
        analyzer = ConsistencyAnalyzer(params)
        assert analyzer.satisfies_neat_bound()
        assert analyzer.theorem1_applies()
        assert analyzer.theorem1_max_delta1() > 0.0
        assert analyzer.theorem2_applies()

    def test_unsafe_configuration(self):
        params = parameters_from_c(c=0.2, n=50_000, delta=10, nu=0.45)
        analyzer = ConsistencyAnalyzer(params)
        assert not analyzer.satisfies_neat_bound()
        assert not analyzer.theorem1_applies()
        assert analyzer.theorem1_max_delta1() < 0.0

    def test_rejects_bad_constants(self, small_params):
        with pytest.raises(ParameterError):
            ConsistencyAnalyzer(small_params, eps1=1.5)
        with pytest.raises(ParameterError):
            ConsistencyAnalyzer(small_params, eps2=0.0)


class TestFailureBound:
    def test_default_delta1_is_half_of_max(self, small_params):
        analyzer = ConsistencyAnalyzer(small_params)
        bound = analyzer.failure_bound(rounds=10_000, mixing_time=10.0)
        assert bound.delta1 == pytest.approx(analyzer.theorem1_max_delta1() / 2.0)

    def test_explicit_delta1_respected(self, small_params):
        analyzer = ConsistencyAnalyzer(small_params)
        bound = analyzer.failure_bound(rounds=10_000, mixing_time=10.0, delta1=0.25)
        assert bound.delta1 == pytest.approx(0.25)

    def test_requires_theorem1_or_explicit_delta1(self):
        params = parameters_from_c(c=0.2, n=50_000, delta=10, nu=0.45)
        analyzer = ConsistencyAnalyzer(params)
        with pytest.raises(ParameterError):
            analyzer.failure_bound(rounds=10_000, mixing_time=10.0)
        # Explicit delta1 bypasses the applicability check (the bound will just be weak).
        bound = analyzer.failure_bound(rounds=10_000, mixing_time=10.0, delta1=0.1)
        assert 0.0 <= bound.total <= 1.0


class TestVerdict:
    def test_verdict_fields(self, small_params):
        verdict = ConsistencyAnalyzer(small_params).verdict()
        assert isinstance(verdict, ConsistencyVerdict)
        assert verdict.c == pytest.approx(small_params.c)
        assert verdict.neat_threshold == pytest.approx(neat_bound(small_params.nu))
        assert verdict.satisfies_neat_bound == (verdict.c > verdict.neat_threshold)
        assert verdict.expected_adversary_rate == pytest.approx(small_params.beta)

    @given(
        c=st.floats(min_value=0.2, max_value=50.0),
        nu=st.floats(min_value=0.05, max_value=0.45),
        delta=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_theorem2_stricter_than_neat_bound(self, c, nu, delta):
        """Theorem 2 (with finite eps constants) never accepts a point the neat
        bound rejects."""
        params = parameters_from_c(c=c, n=10_000, delta=delta, nu=nu)
        analyzer = ConsistencyAnalyzer(params)
        if analyzer.theorem2_applies():
            assert analyzer.satisfies_neat_bound()

    @given(
        c=st.floats(min_value=0.2, max_value=50.0),
        nu=st.floats(min_value=0.05, max_value=0.45),
        delta=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_theorem1_margin_consistent_with_max_delta1(self, c, nu, delta):
        params = parameters_from_c(c=c, n=10_000, delta=delta, nu=nu)
        verdict = ConsistencyAnalyzer(params).verdict()
        assert (verdict.theorem1_margin_log > 0.0) == (verdict.theorem1_max_delta1 > 0.0)
