"""The two-component partition scan, pinned to its pure-Python reference.

Every tally and per-round record of :meth:`ScenarioSimulation._scan_partition`
must match :func:`reference_partition_scan` *bit for bit* over a
(kind, nu, Delta, cut-fraction, duration) grid including placement-aware
release routing, and the no-window / duration-0 configurations must stay
bit-identical to the aggregate single-height engine.  Alongside the
equivalence grid this module pins the satellite fixes of the same PR: the
partial-partition guard on the aggregate path, the growth-rate convention
golden, NaN-safe rare-event agreement, registry/cache wiring for the
``equivocation`` family, and the shared-trace comparison sweep.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.partition_sweeps import equivocation_comparison_sweep
from repro.errors import SimulationError
from repro.params import parameters_from_c
from repro.simulation import (
    AdversaryPlacement,
    DynamicsSchedule,
    EquivocationAdversary,
    ExperimentRunner,
    NakamotoSimulation,
    PartitionEvent,
    PartitionScenario,
    RareEventResult,
    Scenario,
    ScenarioSimulation,
    ScriptedMiningOracle,
    TimeVaryingDelayModel,
    draw_mining_traces,
    get_scenario,
    partition_windows,
    reference_partition_scan,
    rotating_honest_attribution,
)

TRIALS = 3
ROUNDS = 400
C, MINERS = 1.0, 400

#: (kind, nu, delta, cut_fraction, (start, duration)) equivalence grid.
GRID = [
    (kind, nu, delta, cut, window)
    for kind in ("private_chain", "selfish_mining", "equivocation")
    for nu in (0.2, 0.4)
    for delta in (1, 3)
    for cut in (0.3, 0.5)
    for window in ((120, 90), (0, 50), (380, 100))
]


def _make_scenario(kind, cut, start, duration, target_depth=4, give_up=8):
    return PartitionScenario(
        name="grid",
        kind=kind,
        target_depth=target_depth,
        give_up_deficit=give_up,
        partition_start=start,
        partition_duration=duration,
        cut_fraction=cut,
    )


def _draw(params, seed, rounds=ROUNDS, cut=0.5):
    honest, adversary = draw_mining_traces(
        params, TRIALS, rounds, np.random.default_rng(seed)
    )
    split = np.random.default_rng(seed + 1).binomial(np.asarray(honest), cut)
    return honest, adversary, split


def _assert_matches_reference(sim, scenario, honest, adversary, split, delta):
    result = sim.run_traces(
        honest, adversary, split_counts=split, record_rounds=True
    )
    windows = scenario.partition_windows(honest.shape[1])
    for trial in range(honest.shape[0]):
        reference = reference_partition_scan(
            honest[trial],
            adversary[trial],
            split[trial],
            delta=delta,
            windows=windows,
            kind=scenario.kind,
            target_depth=scenario.target_depth,
            give_up_deficit=scenario.give_up_deficit,
            release_delay=sim.release_delay,
        )
        for name, column in (
            ("releases", result.releases),
            ("abandons", result.abandons),
            ("deepest_fork", result.deepest_forks),
            ("orphaned_honest", result.orphaned_honest),
            ("withheld_final", result.withheld_final),
            ("final_public_height", result.final_public_heights),
            ("merge_depth", result.merge_depths),
        ):
            assert int(column[trial]) == int(reference[name]), (
                scenario.kind,
                trial,
                name,
            )
        np.testing.assert_array_equal(
            result.public_heights[trial], reference["public_heights"]
        )
        np.testing.assert_array_equal(
            result.private_heights[trial], reference["private_heights"]
        )
        np.testing.assert_array_equal(
            result.release_mask[trial].astype(bool),
            np.asarray(reference["release_mask"]),
        )
        np.testing.assert_array_equal(
            result.abandon_mask[trial].astype(bool),
            np.asarray(reference["abandon_mask"]),
        )
    return result


# ----------------------------------------------------------------------
# Bit-exact equivalence vs the pure-Python reference
# ----------------------------------------------------------------------
class TestReferenceEquivalence:
    @pytest.mark.parametrize("kind,nu,delta,cut,window", GRID)
    def test_grid_matches_reference(self, kind, nu, delta, cut, window):
        start, duration = window
        params = parameters_from_c(c=C, n=MINERS, delta=delta, nu=nu)
        scenario = _make_scenario(kind, cut, start, duration)
        sim = ScenarioSimulation(params, scenario, rng=0)
        honest, adversary, split = _draw(params, seed=17, cut=cut)
        _assert_matches_reference(sim, scenario, honest, adversary, split, delta)

    @pytest.mark.parametrize("kind", ["private_chain", "equivocation"])
    @pytest.mark.parametrize("placement_kind", ["leaf", "random"])
    def test_placement_release_routing_matches_reference(
        self, kind, placement_kind
    ):
        params = parameters_from_c(c=C, n=MINERS, delta=3, nu=0.4)
        scenario = _make_scenario(kind, 0.5, 100, 120)
        sim = ScenarioSimulation(
            params,
            scenario,
            rng=0,
            placement=AdversaryPlacement(placement_kind, seed=2),
        )
        assert sim.release_delay >= 1
        honest, adversary, split = _draw(params, seed=23)
        _assert_matches_reference(sim, scenario, honest, adversary, split, 3)

    def test_mid_run_window_never_merges(self):
        """A window still open at the end of the run tallies no merge depth."""
        params = parameters_from_c(c=C, n=MINERS, delta=2, nu=0.4)
        scenario = _make_scenario("equivocation", 0.5, 50, 10_000)
        sim = ScenarioSimulation(params, scenario, rng=0)
        honest, adversary, split = _draw(params, seed=29)
        result = _assert_matches_reference(
            sim, scenario, honest, adversary, split, 2
        )
        assert int(result.merge_depths.max()) == 0

    def test_no_window_bit_identical_to_aggregate_scan(self):
        params = parameters_from_c(c=C, n=MINERS, delta=3, nu=0.4)
        scenario = _make_scenario("private_chain", 0.5, 10_000, 100)
        honest, adversary, split = _draw(params, seed=31)
        partial = ScenarioSimulation(params, scenario, rng=0).run_traces(
            honest, adversary, split_counts=split, record_rounds=True
        )
        aggregate = ScenarioSimulation(
            params,
            Scenario(
                name="agg",
                kind="private_chain",
                target_depth=4,
                give_up_deficit=8,
            ),
            rng=0,
        ).run_traces(honest, adversary, record_rounds=True)
        for field in (
            "releases",
            "abandons",
            "deepest_forks",
            "orphaned_honest",
            "withheld_final",
            "final_public_heights",
            "public_heights",
            "private_heights",
            "release_mask",
            "abandon_mask",
            "worst_deficits",
            "convergence_opportunities",
        ):
            np.testing.assert_array_equal(
                getattr(partial, field), getattr(aggregate, field), field
            )
        assert int(partial.merge_depths.max()) == 0

    @settings(max_examples=25, deadline=None)
    @given(
        kind=st.sampled_from(
            ["private_chain", "selfish_mining", "equivocation"]
        ),
        start=st.integers(min_value=0, max_value=250),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_duration_zero_healing_is_a_bitexact_noop(self, kind, start, seed):
        """Cutting and healing in the same round changes nothing, bit for bit."""
        params = parameters_from_c(c=C, n=MINERS, delta=2, nu=0.35)
        honest, adversary = draw_mining_traces(
            params, 2, 300, np.random.default_rng(seed)
        )
        split = np.random.default_rng(seed).binomial(np.asarray(honest), 0.5)
        results = []
        for duration in (0, None):
            scenario = _make_scenario(
                kind, 0.5, start if duration == 0 else 10_000, duration or 0
            )
            results.append(
                ScenarioSimulation(params, scenario, rng=0).run_traces(
                    honest, adversary, split_counts=split, record_rounds=True
                )
            )
        zero, none = results
        for field in (
            "releases",
            "abandons",
            "deepest_forks",
            "orphaned_honest",
            "withheld_final",
            "final_public_heights",
            "merge_depths",
            "public_heights",
            "private_heights",
            "release_mask",
            "abandon_mask",
            "worst_deficits",
        ):
            np.testing.assert_array_equal(
                getattr(zero, field), getattr(none, field), field
            )

    def test_equivocation_outside_cut_equals_private_chain(self):
        """With no window reached, equivocation is plain withholding."""
        params = parameters_from_c(c=C, n=MINERS, delta=3, nu=0.4)
        honest, adversary, split = _draw(params, seed=37)
        results = []
        for kind in ("equivocation", "private_chain"):
            scenario = _make_scenario(kind, 0.5, 10_000, 100)
            results.append(
                ScenarioSimulation(params, scenario, rng=0).run_traces(
                    honest, adversary, split_counts=split
                )
            )
        np.testing.assert_array_equal(
            results[0].deepest_forks, results[1].deepest_forks
        )
        np.testing.assert_array_equal(results[0].releases, results[1].releases)


# ----------------------------------------------------------------------
# partition_windows
# ----------------------------------------------------------------------
class TestPartitionWindows:
    def test_clip_merge_and_drop(self):
        schedule = DynamicsSchedule(
            [
                PartitionEvent(10, 20),
                PartitionEvent(25, 10),  # overlaps the first
                PartitionEvent(35, 5),  # back-to-back merges too
                PartitionEvent(100, 0),  # empty vanishes
                PartitionEvent(150, 500),  # clipped at rounds
                PartitionEvent(900, 10),  # beyond the run, dropped
            ]
        )
        assert partition_windows(schedule, 200) == [(10, 40), (150, 200)]

    def test_rejects_node_set_and_forever_cuts(self):
        with pytest.raises(SimulationError):
            partition_windows(
                DynamicsSchedule([PartitionEvent(5, 10, nodes=(0, 1))]), 100
            )
        with pytest.raises(SimulationError):
            partition_windows(
                DynamicsSchedule([PartitionEvent(5, None)]), 100
            )

    def test_scenario_method_matches_module_function(self):
        scenario = _make_scenario("private_chain", 0.5, 30, 40)
        assert scenario.partition_windows(100) == [(30, 70)]
        assert scenario.partition_windows(50) == [(30, 50)]
        assert scenario.partition_windows(20) == []


# ----------------------------------------------------------------------
# Satellite: the partial-partition guard on the aggregate path
# ----------------------------------------------------------------------
class TestPartialPartitionGuard:
    def _model(self):
        from repro.simulation import PeerGraphTopology

        topology = PeerGraphTopology.ring(8)
        schedule = DynamicsSchedule([PartitionEvent(50, 20, nodes=(0, 1, 2))])
        return TimeVaryingDelayModel(schedule, topology=topology)

    def test_partial_cut_on_aggregate_path_raises(self):
        params = parameters_from_c(c=C, n=MINERS, delta=3, nu=0.3)
        with pytest.raises(ValueError, match="misprice"):
            ScenarioSimulation(
                params, "private_chain", rng=0, delay_model=self._model()
            )

    def test_opt_out_flag_downgrades_to_warning(self):
        params = parameters_from_c(c=C, n=MINERS, delta=3, nu=0.3)
        with pytest.warns(RuntimeWarning, match="misprice"):
            ScenarioSimulation(
                params,
                "private_chain",
                rng=0,
                delay_model=self._model(),
                allow_partial_partitions=True,
            )

    def test_full_eclipse_stays_silent(self):
        params = parameters_from_c(c=C, n=MINERS, delta=3, nu=0.3)
        model = TimeVaryingDelayModel(
            DynamicsSchedule([PartitionEvent(50, 20)])
        )
        ScenarioSimulation(params, "private_chain", rng=0, delay_model=model)

    def test_equivocation_without_cut_fraction_rejected(self):
        with pytest.raises(SimulationError, match="cut_fraction"):
            PartitionScenario(
                name="bad", kind="equivocation", partition_start=10
            )

    def test_partial_cut_rejects_explicit_delay_model(self):
        params = parameters_from_c(c=C, n=MINERS, delta=3, nu=0.3)
        scenario = _make_scenario("private_chain", 0.5, 100, 50)
        with pytest.raises(SimulationError, match="delay_model"):
            ScenarioSimulation(
                params, scenario, rng=0, delay_model="fixed_delta"
            )
        with pytest.raises(SimulationError):
            scenario.build_delay_model()


# ----------------------------------------------------------------------
# Satellite: the growth-rate convention golden
# ----------------------------------------------------------------------
class TestGrowthRateConvention:
    def test_growth_rate_matches_legacy_simulation_bit_for_bit(self):
        """No off-by-one: flush-inclusive final height over 1-indexed rounds.

        The legacy per-trial simulator labels rounds 1..rounds and reads the
        final height after the end-of-run network flush; the engine's
        ``growth_rates`` divides the same flush-inclusive height by the same
        denominator, so replaying the engine's traces through the legacy
        loop reproduces its growth rate exactly.
        """
        params = parameters_from_c(c=C, n=MINERS, delta=3, nu=0.3)
        sim = ScenarioSimulation(params, "private_chain", rng=11)
        honest, adversary = draw_mining_traces(
            params, 2, 500, np.random.default_rng(11)
        )
        result = sim.run_traces(honest, adversary)
        scenario = get_scenario("private_chain")
        for trial in range(2):
            ids = rotating_honest_attribution(
                honest[trial], sim.honest_miners, sim.honest_delay
            )
            legacy = NakamotoSimulation(
                params,
                adversary=scenario.build_adversary(params.delta),
                rng=np.random.default_rng(0),
                oracle=ScriptedMiningOracle(
                    honest[trial], adversary[trial], honest_miner_ids=ids
                ),
            ).run(500)
            assert result.growth_rates[trial] == pytest.approx(
                legacy.growth_rate, abs=0.0
            )
            assert float(result.final_public_heights[trial]) / 500 == (
                result.growth_rates[trial]
            )

    def test_growth_rate_golden_at_base_seed_2026(self):
        params = parameters_from_c(c=C, n=MINERS, delta=3, nu=0.3)
        result = ScenarioSimulation(params, "private_chain", rng=2026).run(
            4, 600
        )
        np.testing.assert_allclose(
            result.growth_rates, result.final_public_heights / 600
        )
        # Golden: the convention (and the engine behind it) must not drift.
        assert [int(h) for h in result.final_public_heights] == [85, 96, 94, 86]
        np.testing.assert_allclose(
            result.growth_rates, np.array([85, 96, 94, 86]) / 600.0
        )


# ----------------------------------------------------------------------
# Satellite: NaN-safe rare-event agreement
# ----------------------------------------------------------------------
class TestNaNAgreement:
    def _result(self, ci_low, ci_high):
        params = parameters_from_c(c=C, n=MINERS, delta=2, nu=0.2)
        return RareEventResult(
            params=params,
            depth=8,
            method="plain",
            trials=1,
            rounds=100,
            probability=0.5,
            ci_low=ci_low,
            ci_high=ci_high,
            relative_error=math.nan,
            effective_sample_size=math.nan,
            hits=1,
        )

    def test_nan_half_width_is_no_evidence_not_agreement(self):
        finite = self._result(0.1, 0.9)
        nan_high = self._result(0.0, math.nan)  # splitting zero-probability
        nan_low = self._result(math.nan, math.nan)  # single-trial CI
        assert finite.agrees_with(nan_high) is None
        assert nan_high.agrees_with(finite) is None
        assert finite.agrees_with(nan_low) is None
        assert nan_low.agrees_with(nan_high) is None

    def test_finite_intervals_still_boolean(self):
        a = self._result(0.1, 0.5)
        b = self._result(0.4, 0.9)
        c = self._result(0.6, 0.9)
        assert a.agrees_with(b) is True
        assert a.agrees_with(c) is False


# ----------------------------------------------------------------------
# Runner wiring and the comparison sweep
# ----------------------------------------------------------------------
class TestRunnerAndSweep:
    def test_equivocation_cache_roundtrip(self, tmp_path):
        params = parameters_from_c(c=C, n=MINERS, delta=2, nu=0.35)
        scenario = get_scenario("equivocation")
        first = ExperimentRunner(base_seed=2026, cache_dir=str(tmp_path))
        a = first.run_scenario_point(params, scenario, 4, 1_200)
        assert first.cache_misses == 1
        second = ExperimentRunner(base_seed=2026, cache_dir=str(tmp_path))
        b = second.run_scenario_point(params, scenario, 4, 1_200)
        assert second.cache_hits == 1
        np.testing.assert_array_equal(a.deepest_forks, b.deepest_forks)
        np.testing.assert_array_equal(a.merge_depths, b.merge_depths)
        assert getattr(b.scenario, "cut_fraction", None) == 0.5

    def test_cut_fraction_separates_cache_keys_and_seeds(self):
        params = parameters_from_c(c=C, n=MINERS, delta=2, nu=0.35)
        runner = ExperimentRunner(base_seed=2026)
        partial = _make_scenario("private_chain", 0.5, 100, 50)
        full = _make_scenario("private_chain", None, 100, 50)
        assert runner.cache_key(
            params, 4, 200, scenario=partial
        ) != runner.cache_key(params, 4, 200, scenario=full)
        assert "cut_fraction" not in full.payload()
        assert partial.payload()["cut_fraction"] == 0.5

    def test_run_dynamics_point_partial_cut(self):
        params = parameters_from_c(c=C, n=MINERS, delta=2, nu=0.35)
        runner = ExperimentRunner(base_seed=2026)
        scenario = _make_scenario("equivocation", 0.5, 100, 50)
        result = runner.run_dynamics_point(
            params, 4, 300, scenario=scenario
        )
        assert result.merge_depths is not None
        from repro.simulation import PeerGraphTopology

        with pytest.raises(SimulationError, match="topology"):
            runner.run_dynamics_point(
                params,
                4,
                300,
                scenario=scenario,
                topology=PeerGraphTopology.ring(8),
            )
        with pytest.raises(SimulationError, match="schedule"):
            runner.run_dynamics_point(
                params,
                4,
                300,
                schedule=DynamicsSchedule([PartitionEvent(5, 10)]),
                scenario=scenario,
            )

    def test_equivocation_comparison_sweep_shared_traces(self):
        rows = equivocation_comparison_sweep(
            durations=(0, 80),
            partition_start=50,
            trials=4,
            rounds=400,
            nu=0.35,
            seed=7,
        )
        assert len(rows) == 2
        # Duration 0 never cuts, so the strategies coincide exactly.
        assert rows[0]["equivocation_advantage"] == 0.0
        assert rows[0]["single_mean_merge_depth"] == 0.0
        for row in rows:
            assert row["cut_fraction"] == 0.5
            assert (
                row["equivocation_mean_deepest_fork"]
                == row["single_mean_deepest_fork"] + row["equivocation_advantage"]
            )

    def test_split_counts_validation(self):
        params = parameters_from_c(c=C, n=MINERS, delta=2, nu=0.35)
        scenario = _make_scenario("private_chain", 0.5, 50, 20)
        sim = ScenarioSimulation(params, scenario, rng=0)
        honest, adversary, split = _draw(params, seed=41, rounds=100)
        with pytest.raises(SimulationError, match="split_counts"):
            sim.run_traces(honest, adversary, split_counts=split[:, :50])
        with pytest.raises(SimulationError, match="split_counts"):
            sim.run_traces(
                honest, adversary, split_counts=np.asarray(honest) + 1
            )
        plain = ScenarioSimulation(params, "private_chain", rng=0)
        with pytest.raises(SimulationError, match="split_counts"):
            plain.run_traces(honest, adversary, split_counts=split)

    def test_equivocation_adversary_is_registered_projection(self):
        scenario = get_scenario("equivocation")
        adversary = scenario.build_adversary(3)
        assert isinstance(adversary, EquivocationAdversary)
        assert adversary.target_depth == 6
