"""Golden regression tests: pin the paper's headline numbers at 1e-9.

These values anchor the Figure 1 curves and the Table I-style quantities so
future refactors of the math layers cannot silently drift them.  They were
produced by the current implementation and cross-checked against the paper's
closed forms (``2 mu / ln(mu/nu)``, ``2 (1-nu)^2 / (1-2 nu)``,
``nu (1-nu)/(1-2 nu)``, Eqs. 7-9/44); any change beyond 1e-9 relative
tolerance is a behaviour change, not noise.
"""

from __future__ import annotations

import pytest

from repro.analysis import security_margin_sweep
from repro.core.bounds import neat_bound, nu_max_neat_bound, theorem2_c_threshold
from repro.core.kiffer import correction_ratio
from repro.core.pss import (
    attack_c_threshold,
    nu_max_pss_consistency,
    nu_min_pss_attack,
    pss_c_threshold,
)
from repro.params import parameters_from_c
from repro.simulation import ExperimentRunner

TOL = dict(rel=1e-9, abs=1e-12)


class TestNeatBoundGoldens:
    """The magenta curve of Figure 1: ``2 mu / ln(mu/nu)`` and its inverse."""

    @pytest.mark.parametrize(
        "nu, expected",
        [
            (0.1, 0.8192153039641537),
            (0.2, 1.1541560327111708),
            (0.25, 1.365358839940256),
            (1.0 / 3.0, 1.9235933878519509),
            (0.4, 2.9595641548517193),
            (0.45, 5.481617520020368),
        ],
    )
    def test_neat_bound(self, nu, expected):
        assert neat_bound(nu) == pytest.approx(expected, **TOL)

    @pytest.mark.parametrize(
        "c, expected",
        [
            (0.5, 0.019410124314230264),
            (1.0, 0.15605300058579624),
            (2.0, 0.3409539315925933),
            (4.0, 0.42912067834646717),
            (10.0, 0.47370975636753415),
        ],
    )
    def test_nu_max_neat_bound(self, c, expected):
        assert nu_max_neat_bound(c) == pytest.approx(expected, **TOL)

    def test_theorem2_threshold_at_reference_point(self):
        assert theorem2_c_threshold(0.25, 10, 0.1, 0.01) == pytest.approx(
            1.644458253710732, **TOL
        )


class TestPssBaselineGoldens:
    """The blue (PSS consistency) and red (Remark 8.5 attack) curves."""

    @pytest.mark.parametrize(
        "nu, consistency, attack",
        [
            (0.1, 2.025, 0.1125),
            (0.25, 2.25, 0.375),
            (0.4, 3.6000000000000005, 1.2000000000000002),
        ],
    )
    def test_c_space_thresholds(self, nu, consistency, attack):
        assert pss_c_threshold(nu) == pytest.approx(consistency, **TOL)
        assert attack_c_threshold(nu) == pytest.approx(attack, **TOL)

    @pytest.mark.parametrize(
        "c, pss_nu, attack_nu",
        [
            (3.0, 0.3660254037844386, 0.45861873485089033),
            (4.0, 0.41421356237309515, 0.46887112585072543),
            (10.0, 0.4721359549995796, 0.48750780274960626),
        ],
    )
    def test_nu_space_crossovers(self, c, pss_nu, attack_nu):
        assert nu_max_pss_consistency(c) == pytest.approx(pss_nu, **TOL)
        assert nu_min_pss_attack(c) == pytest.approx(attack_nu, **TOL)

    @pytest.mark.parametrize(
        "nu, improvement, gap",
        [
            (0.1, 2.471877649503247, 7.2819138130146985),
            (0.25, 1.6479184330021646, 3.6409569065073497),
            (0.4, 1.2163953243244927, 2.4663034623764326),
        ],
    )
    def test_improvement_over_pss(self, nu, improvement, gap):
        """The paper's headline comparison: its bound vs PSS vs the attack."""
        (row,) = security_margin_sweep([nu])
        assert row["improvement_factor"] == pytest.approx(improvement, **TOL)
        assert row["gap_to_attack"] == pytest.approx(gap, **TOL)


class TestKifferAndTableIGoldens:
    """The Kiffer-correction ratio and Table I quantities at fixed points."""

    def test_kiffer_correction_ratio_small_configuration(self):
        params = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)
        assert correction_ratio(params) == pytest.approx(1.0540559650331727, **TOL)

    def test_table_i_quantities_at_paper_scale(self):
        """Eqs. (7)-(9)/(44) at the Figure 1 operating point (n=1e5, Δ=1e13)."""
        params = parameters_from_c(c=10.0, n=100_000, delta=10**13, nu=0.25)
        assert params.alpha == pytest.approx(7.499999999999971e-15, **TOL)
        assert params.alpha1 == pytest.approx(7.499999999999944e-15, **TOL)
        assert params.beta == pytest.approx(2.5e-15, **TOL)
        assert params.log_convergence_opportunity_probability == pytest.approx(
            -32.673873374368426, **TOL
        )

    def test_small_configuration_rates(self):
        """The (c=4, n=1000, Δ=3, nu=0.2) workhorse used across the test suite."""
        params = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)
        assert params.p == pytest.approx(1.0 / 12_000.0, **TOL)
        assert params.convergence_opportunity_probability == pytest.approx(
            0.04180861013853035, **TOL
        )
        assert params.beta == pytest.approx(1.0 / 60.0, **TOL)


class TestAttackSurfaceGoldens:
    """Seeded attack-surface numbers from the vectorized scenario engine.

    Produced by ``ExperimentRunner(base_seed=2026)`` at (c=1, n=400,
    trials=24, rounds=1500) and pinned so that refactors of the scenario
    engine's scan, the draw protocol or the runner's per-point seeding
    cannot silently shift the attack statistics.  Values depend only on the
    seed and NumPy's stable Generator streams.
    """

    @pytest.mark.parametrize(
        "scenario, nu, delta, success_probability, mean_deepest_fork",
        [
            ("private_chain", 0.3, 1, 1.0, 13.25),
            ("private_chain", 0.3, 3, 0.9583333333333334, 13.25),
            ("private_chain", 0.42, 1, 1.0, 54.625),
            ("private_chain", 0.42, 3, 1.0, 35.291666666666664),
            ("selfish_mining", 0.3, 1, 1.0, 16.458333333333332),
            ("selfish_mining", 0.3, 3, 1.0, 6.458333333333333),
            ("selfish_mining", 0.42, 1, 1.0, 154.41666666666666),
            ("selfish_mining", 0.42, 3, 0.875, 21.833333333333332),
        ],
    )
    def test_attack_statistics(
        self, scenario, nu, delta, success_probability, mean_deepest_fork
    ):
        runner = ExperimentRunner(base_seed=2026)
        params = parameters_from_c(c=1.0, n=400, delta=delta, nu=nu)
        result = runner.run_scenario_point(params, scenario, trials=24, rounds=1_500)
        assert result.attack_success_probability == pytest.approx(
            success_probability, **TOL
        )
        assert result.mean_deepest_fork == pytest.approx(mean_deepest_fork, **TOL)
