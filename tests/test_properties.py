"""Cross-module property-based tests (hypothesis) for the paper's invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    neat_bound,
    nu_max_neat_bound,
    theorem1_condition,
    theorem2_c_threshold,
)
from repro.core.concat_chain import ConcatChain, count_convergence_opportunities
from repro.core.lemmas import delta1_constant, delta4_constant
from repro.core.pss import nu_max_pss_consistency, nu_min_pss_attack
from repro.core.suffix_chain import SuffixChain, suffix_trajectory
from repro.params import parameters_from_c
from repro.simulation import BlockTree, ConvergenceOpportunityDetector
from repro.simulation.block import Block

C_VALUES = st.floats(min_value=0.2, max_value=100.0)
NU_VALUES = st.floats(min_value=0.02, max_value=0.48)
SMALL_DELTA = st.integers(min_value=1, max_value=8)


class TestBoundInvariants:
    @given(nu=NU_VALUES)
    @settings(max_examples=200, deadline=None)
    def test_neat_bound_strictly_between_attack_and_pss(self, nu):
        """The central qualitative claim: the paper's requirement on c sits
        strictly between the known-attackable region and the PSS requirement."""
        from repro.core.pss import attack_c_threshold, pss_c_threshold

        assert attack_c_threshold(nu) < neat_bound(nu) < pss_c_threshold(nu)

    @given(c=C_VALUES, nu=NU_VALUES, delta=st.integers(min_value=1, max_value=100))
    @settings(max_examples=200, deadline=None)
    def test_theorem1_holds_whenever_c_is_generously_above_threshold(self, c, nu, delta):
        """Soundness sanity check: for c at least 4x the Theorem 2 threshold,
        Inequality (10) holds with the paper's own delta1 constant."""
        eps1, eps2 = 0.1, 0.01
        threshold = theorem2_c_threshold(nu, delta, eps1, eps2)
        assume(c >= 4.0 * threshold)
        params = parameters_from_c(c=c, n=10_000, delta=delta, nu=nu)
        delta1 = delta1_constant(nu, eps1, eps2)
        assert theorem1_condition(params, delta1)

    @given(c=C_VALUES)
    @settings(max_examples=200, deadline=None)
    def test_nu_max_curves_never_exceed_half(self, c):
        assert 0.0 <= nu_max_neat_bound(c) < 0.5
        assert 0.0 <= nu_max_pss_consistency(c) < 0.5
        assert 0.0 <= nu_min_pss_attack(c) <= 0.5

    @given(nu=NU_VALUES, eps1=st.floats(min_value=0.05, max_value=0.8), eps2=st.floats(min_value=0.01, max_value=0.5))
    @settings(max_examples=200, deadline=None)
    def test_paper_constants_satisfy_their_constraints(self, nu, eps1, eps2):
        delta4 = delta4_constant(nu, eps1, eps2)
        delta1 = delta1_constant(nu, eps1, eps2)
        log_ratio = math.log((1.0 - nu) / nu)
        assert 0.0 < delta4 < log_ratio
        assert delta1 > 0.0
        # The defining relation of Eq. (61): 1 + delta1 = (1+delta4)(1 - eps1*ln/(ln+1)).
        assert 1.0 + delta1 == pytest.approx(
            (1.0 + delta4) * (1.0 - eps1 * log_ratio / (log_ratio + 1.0)), rel=1e-12
        )


class TestMarkovChainInvariants:
    @given(
        c=st.floats(min_value=0.3, max_value=50.0),
        nu=NU_VALUES,
        delta=SMALL_DELTA,
    )
    @settings(max_examples=80, deadline=None)
    def test_stationary_distribution_properties(self, c, nu, delta):
        params = parameters_from_c(c=c, n=200, delta=delta, nu=nu)
        chain = SuffixChain(params)
        pi = chain.closed_form_stationary()
        values = np.array(list(pi.values()))
        assert values.min() >= 0.0
        assert values.sum() == pytest.approx(1.0, abs=1e-9)
        # Eq. (44) never exceeds the LONG_GAP stationary mass.
        concat = ConcatChain(params)
        assert concat.convergence_opportunity_probability() <= chain.long_gap_probability() + 1e-15

    @given(
        states=st.lists(st.booleans(), min_size=1, max_size=300),
        delta=SMALL_DELTA,
    )
    @settings(max_examples=150, deadline=None)
    def test_trajectory_is_well_defined_for_any_input(self, states, delta):
        trajectory = suffix_trajectory(states, delta)
        assert len(trajectory) == len(states)
        valid_states = set(SuffixChain(
            parameters_from_c(c=1.0, n=100, delta=delta, nu=0.2)
        ).states)
        assert set(trajectory) <= valid_states

    @given(
        trace=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=400),
        delta=SMALL_DELTA,
    )
    @settings(max_examples=150, deadline=None)
    def test_opportunity_counters_bounded_by_single_block_rounds(self, trace, delta):
        """No counter can report more opportunities than there are H1 rounds."""
        single_rounds = sum(1 for count in trace if count == 1)
        offline = count_convergence_opportunities(trace, delta)
        detector = ConvergenceOpportunityDetector(delta)
        detector.observe_many(trace)
        assert offline <= single_rounds
        assert detector.count <= single_rounds
        # The streaming detector sees at least as many as the offline counter
        # (it does not require a full leading window at the trace start).
        assert detector.count >= offline


class TestBlockTreeInvariants:
    @given(
        fork_choices=st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=60),
    )
    @settings(max_examples=100, deadline=None)
    def test_longest_chain_height_matches_tree_height(self, fork_choices):
        """Randomly grown trees: the selected chain length always equals height+1,
        heights never decrease, and every chain starts at genesis."""
        tree = BlockTree()
        next_id = 1
        known_ids = [0]
        previous_height = 0
        for choice in fork_choices:
            parent_id = known_ids[choice % len(known_ids)]
            parent = tree.get(parent_id)
            block = Block(
                block_id=next_id,
                parent_id=parent_id,
                height=parent.height + 1,
                round_mined=next_id,
                miner_id=0,
                honest=True,
            )
            tree.add(block)
            known_ids.append(next_id)
            next_id += 1
            chain = tree.longest_chain()
            assert chain[0] == 0
            assert len(chain) == tree.height + 1
            assert tree.height >= previous_height
            previous_height = tree.height
