"""Tests for repro.core.bounds: the neat bound and Theorems 1-3."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    evaluate_bounds,
    max_delta1_for_theorem1,
    neat_bound,
    nu_max_neat_bound,
    nu_range_bounds,
    nu_range_condition,
    simplified_slack_factor,
    theorem1_condition,
    theorem1_margin_log,
    theorem2_c_threshold,
    theorem2_condition,
    theorem2_simplified_c_threshold,
    theorem2_simplified_condition,
    theorem3_c_condition,
    theorem3_c_threshold,
    theorem3_pn_condition,
    theorem3_pn_threshold,
)
from repro.errors import ParameterError
from repro.params import parameters_from_c

NU_STRATEGY = st.floats(min_value=1e-4, max_value=0.499)


class TestNeatBound:
    def test_known_value(self):
        # 2 * 0.75 / ln(3) at nu = 0.25
        assert neat_bound(0.25) == pytest.approx(1.5 / math.log(3.0), rel=1e-12)

    def test_rejects_invalid_nu(self):
        with pytest.raises(ParameterError):
            neat_bound(0.6)
        with pytest.raises(ParameterError):
            neat_bound(0.0)

    def test_monotone_increasing_in_nu(self):
        values = [neat_bound(nu) for nu in (0.05, 0.1, 0.2, 0.3, 0.4, 0.45)]
        assert values == sorted(values)

    def test_diverges_near_one_half(self):
        assert neat_bound(0.4999) > 1_000.0

    @given(nu=NU_STRATEGY)
    @settings(max_examples=200, deadline=None)
    def test_positive(self, nu):
        assert neat_bound(nu) > 0.0


class TestNuMaxNeatBound:
    def test_inverse_of_neat_bound(self):
        for c in (0.5, 1.0, 2.0, 5.0, 20.0):
            nu_max = nu_max_neat_bound(c)
            assert neat_bound(nu_max) == pytest.approx(c, rel=1e-8)

    def test_small_c_gives_zero(self):
        assert nu_max_neat_bound(1e-9) == 0.0

    def test_monotone_in_c(self):
        values = [nu_max_neat_bound(c) for c in (0.5, 1.0, 2.0, 5.0, 20.0, 100.0)]
        assert values == sorted(values)

    def test_approaches_one_half(self):
        assert nu_max_neat_bound(1e6) > 0.499

    def test_rejects_nonpositive_c(self):
        with pytest.raises(ParameterError):
            nu_max_neat_bound(0.0)

    @given(c=st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=200, deadline=None)
    def test_in_range_and_consistent(self, c):
        nu_max = nu_max_neat_bound(c)
        assert 0.0 <= nu_max < 0.5
        if nu_max > 1e-6:
            # Just inside the bound consistency holds; just outside it fails.
            assert neat_bound(nu_max * 0.999) < c
            assert neat_bound(min(nu_max * 1.001, 0.4999)) > c or nu_max > 0.498


class TestTheorem1:
    def test_condition_holds_for_large_c(self):
        params = parameters_from_c(c=10.0, n=10_000, delta=5, nu=0.2)
        assert theorem1_condition(params, delta1=0.01)

    def test_condition_fails_for_tiny_c(self):
        params = parameters_from_c(c=0.05, n=10_000, delta=5, nu=0.45)
        assert not theorem1_condition(params, delta1=0.01)

    def test_margin_log_sign_matches_condition(self):
        params = parameters_from_c(c=10.0, n=10_000, delta=5, nu=0.2)
        assert theorem1_margin_log(params, 0.01) >= 0.0
        bad = parameters_from_c(c=0.05, n=10_000, delta=5, nu=0.45)
        assert theorem1_margin_log(bad, 0.01) < 0.0

    def test_max_delta1_boundary(self):
        params = parameters_from_c(c=10.0, n=10_000, delta=5, nu=0.2)
        max_delta1 = max_delta1_for_theorem1(params)
        assert max_delta1 > 0.0
        assert theorem1_condition(params, delta1=max_delta1 * 0.999)
        assert not theorem1_condition(params, delta1=max_delta1 * 1.001)

    def test_rejects_nonpositive_delta1(self):
        params = parameters_from_c(c=10.0, n=10_000, delta=5, nu=0.2)
        with pytest.raises(ParameterError):
            theorem1_condition(params, delta1=0.0)

    def test_works_at_paper_scale(self, paper_params):
        # The log-space formulation must not under/overflow at Delta = 1e13.
        assert isinstance(theorem1_condition(paper_params, delta1=0.01), bool)


class TestTheorem3:
    def test_pn_threshold_positive(self):
        assert theorem3_pn_threshold(0.25, 0.1) > 0.0

    def test_pn_condition(self):
        params = parameters_from_c(c=100.0, n=100, delta=1_000, nu=0.25)
        assert theorem3_pn_condition(params, eps1=0.5)

    def test_c_threshold_exceeds_neat_bound(self):
        for nu in (0.1, 0.25, 0.4):
            assert theorem3_c_threshold(nu, 10, 0.1, 0.01) > neat_bound(nu)

    def test_c_condition_consistent_with_threshold(self):
        threshold = theorem3_c_threshold(0.25, 10, 0.1, 0.01)
        above = parameters_from_c(c=threshold * 1.01, n=10_000, delta=10, nu=0.25)
        below = parameters_from_c(c=threshold * 0.99, n=10_000, delta=10, nu=0.25)
        assert theorem3_c_condition(above, 0.1, 0.01)
        assert not theorem3_c_condition(below, 0.1, 0.01)

    def test_rejects_bad_constants(self):
        with pytest.raises(ParameterError):
            theorem3_c_threshold(0.25, 10, 1.5, 0.01)
        with pytest.raises(ParameterError):
            theorem3_c_threshold(0.25, 10, 0.1, -0.1)


class TestTheorem2:
    def test_threshold_is_max_of_components(self):
        nu, delta, eps1, eps2 = 0.25, 10, 0.1, 0.01
        threshold = theorem2_c_threshold(nu, delta, eps1, eps2)
        first = theorem3_c_threshold(nu, delta, eps1, eps2)
        mu = 1.0 - nu
        second = (math.log(mu / nu) + 1.0) * mu / (eps1 * delta * math.log(mu / nu))
        assert threshold == pytest.approx(max(first, second), rel=1e-12)

    def test_condition_at_threshold(self):
        threshold = theorem2_c_threshold(0.2, 20, 0.1, 0.01)
        params = parameters_from_c(c=threshold * 1.001, n=50_000, delta=20, nu=0.2)
        assert theorem2_condition(params, 0.1, 0.01)

    def test_theorem2_implies_theorem1(self):
        """Soundness of the derivation: whenever Theorem 2's condition holds,
        Theorem 1's condition holds with the paper's delta1 (Eq. 61)."""
        from repro.core.lemmas import delta1_constant

        eps1, eps2 = 0.1, 0.01
        for nu in (0.05, 0.15, 0.25, 0.35, 0.45):
            for delta in (2, 10, 100):
                threshold = theorem2_c_threshold(nu, delta, eps1, eps2)
                params = parameters_from_c(
                    c=threshold * 1.0001, n=100_000, delta=delta, nu=nu
                )
                assert theorem2_condition(params, eps1, eps2)
                delta1 = delta1_constant(nu, eps1, eps2)
                assert theorem1_condition(params, delta1), (nu, delta)

    @given(
        nu=st.floats(min_value=0.01, max_value=0.49),
        delta=st.integers(min_value=1, max_value=10_000),
        eps1=st.floats(min_value=0.01, max_value=0.9),
        eps2=st.floats(min_value=0.001, max_value=1.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_threshold_dominates_neat_bound(self, nu, delta, eps1, eps2):
        assert theorem2_c_threshold(nu, delta, eps1, eps2) >= neat_bound(nu)


class TestNuRangeAndSimplifiedBound:
    def test_paper_first_setting(self):
        nu_low, nu_high = nu_range_bounds(10**13, 1.0 / 6.0, 1.0 / 2.0)
        # Paper: 1e-63 <= nu <= 0.5 - 1e-7 (order-of-magnitude agreement).
        assert nu_low < 1e-62
        assert 0.5 - nu_high == pytest.approx(1e-7, rel=0.5)

    def test_paper_second_setting(self):
        nu_low, nu_high = nu_range_bounds(10**13, 1.0 / 8.0, 2.0 / 3.0)
        assert 1e-20 < nu_low < 1e-17
        assert 0.5 - nu_high == pytest.approx(1e-9, rel=1.0)

    def test_slack_factors_match_paper(self):
        assert simplified_slack_factor(10**13, 1.0 / 6.0, 1.0 / 2.0) - 1.0 == pytest.approx(
            5e-5, rel=0.2
        )
        assert simplified_slack_factor(10**13, 1.0 / 8.0, 2.0 / 3.0) - 1.0 == pytest.approx(
            2e-3, rel=0.1
        )

    def test_rejects_delta_sum_ge_one(self):
        with pytest.raises(ParameterError):
            nu_range_bounds(100, 0.6, 0.5)
        with pytest.raises(ParameterError):
            simplified_slack_factor(100, 0.6, 0.5)

    def test_nu_range_condition(self):
        assert nu_range_condition(0.25, 10**13, 1.0 / 6.0, 1.0 / 2.0)
        assert not nu_range_condition(0.4999999999, 10**13, 1.0 / 6.0, 1.0 / 2.0)

    def test_simplified_condition_implies_full_theorem2(self):
        """Inequality (13) is a sufficient form of Inequality (11)."""
        delta = 10**7
        delta1, delta2 = 1.0 / 6.0, 1.0 / 2.0
        eps2 = 0.01
        for nu in (0.1, 0.25, 0.4):
            threshold = theorem2_simplified_c_threshold(nu, delta, eps2, delta1, delta2)
            params = parameters_from_c(
                c=threshold * 1.001, n=100_000, delta=delta, nu=nu
            )
            assert theorem2_simplified_condition(params, eps2, delta1, delta2)
            # The simplified threshold must dominate the neat bound.
            assert threshold > neat_bound(nu)

    def test_simplified_threshold_close_to_neat_bound(self):
        # The whole point of Remark 1: the threshold is only slightly above 2mu/ln(mu/nu).
        threshold = theorem2_simplified_c_threshold(
            0.3, 10**13, 1e-6, 1.0 / 6.0, 1.0 / 2.0
        )
        assert threshold / neat_bound(0.3) < 1.001


class TestEvaluateBounds:
    def test_summary_fields(self, small_params):
        evaluation = evaluate_bounds(small_params)
        assert evaluation.c == pytest.approx(small_params.c)
        assert evaluation.neat_threshold == pytest.approx(neat_bound(small_params.nu))
        assert evaluation.theorem1_holds == (evaluation.theorem1_margin_log >= 0.0)
