"""Tests for repro.simulation.events and repro.simulation.metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation import (
    BlockTree,
    ConvergenceOpportunityDetector,
    RoundRecord,
    chain_growth_rate,
    chain_quality,
    consistency_report,
    consistency_violation_depth,
)
from repro.simulation.block import Block


class TestRoundRecord:
    def test_states(self):
        quiet = RoundRecord(round_index=1, honest_blocks=0, adversary_blocks=2, public_chain_height=0)
        busy = RoundRecord(round_index=2, honest_blocks=3, adversary_blocks=0, public_chain_height=1)
        assert quiet.state == "N"
        assert quiet.detailed_state == "N"
        assert busy.state == "H"
        assert busy.detailed_state == "H3"


class TestConvergenceOpportunityDetector:
    def test_simple_opportunity(self):
        detector = ConvergenceOpportunityDetector(delta=2)
        completions = [detector.observe(count) for count in [0, 0, 1, 0, 0]]
        assert detector.count == 1
        assert completions == [False, False, False, False, True]

    def test_multi_block_round_does_not_qualify(self):
        detector = ConvergenceOpportunityDetector(delta=2)
        detector.observe_many([0, 0, 2, 0, 0])
        assert detector.count == 0

    def test_broken_trailing_quiet_spoils_candidate(self):
        detector = ConvergenceOpportunityDetector(delta=2)
        detector.observe_many([0, 0, 1, 1, 0, 0])
        assert detector.count == 0

    def test_insufficient_leading_quiet(self):
        detector = ConvergenceOpportunityDetector(delta=3)
        detector.observe_many([0, 0, 1, 0, 0, 0])
        assert detector.count == 0

    def test_back_to_back_opportunities(self):
        detector = ConvergenceOpportunityDetector(delta=1)
        # N 1 N 1 N: two opportunities (rounds 3 and 5 complete them).
        detector.observe_many([0, 1, 0, 1, 0])
        assert detector.count == 2

    def test_observe_many_returns_increment(self):
        detector = ConvergenceOpportunityDetector(delta=2)
        assert detector.observe_many([0, 0, 1, 0, 0]) == 1
        assert detector.observe_many([0, 1, 0, 0]) == 1

    def test_rejects_negative_counts_and_bad_delta(self):
        with pytest.raises(SimulationError):
            ConvergenceOpportunityDetector(delta=0)
        detector = ConvergenceOpportunityDetector(delta=2)
        with pytest.raises(SimulationError):
            detector.observe(-1)

    def test_rate_matches_theory_on_iid_trace(self, small_params, rng):
        rounds = 100_000
        trace = rng.binomial(
            int(round(small_params.honest_count)), small_params.p, size=rounds
        )
        detector = ConvergenceOpportunityDetector(small_params.delta)
        detector.observe_many(trace)
        rate = detector.count / rounds
        assert rate == pytest.approx(
            small_params.convergence_opportunity_probability, rel=0.08
        )


class TestConsistencyMetrics:
    def test_violation_depth_zero_for_prefix(self):
        assert consistency_violation_depth([0, 1, 2], [0, 1, 2, 3]) == 0

    def test_violation_depth_counts_divergent_suffix(self):
        assert consistency_violation_depth([0, 1, 2, 3], [0, 1, 9, 10]) == 2

    def test_shrinking_chain_counts_as_violation(self):
        # A later chain that is shorter than the earlier stable prefix.
        assert consistency_violation_depth([0, 1, 2, 3], [0, 1]) == 2

    def test_report_over_snapshots(self):
        snapshots = [
            [0, 1, 2],
            [0, 1, 2, 3],
            [0, 1, 7, 8, 9],  # displaces blocks 2 and 3
            [0, 1, 7, 8, 9, 10],
        ]
        report = consistency_report(snapshots)
        # The worst pair is ([0,1,2,3], [0,1,7,8,9]): blocks 2 and 3 are displaced.
        assert report.max_violation_depth == 2
        expected = max(
            consistency_violation_depth(snapshots[i], snapshots[j])
            for i in range(len(snapshots))
            for j in range(i + 1, len(snapshots))
        )
        assert report.max_violation_depth == expected
        assert report.snapshots_compared == 6
        assert not report.is_consistent(confirmations=expected - 1)
        assert report.is_consistent(confirmations=expected)

    def test_report_with_fewer_than_two_snapshots(self):
        report = consistency_report([[0, 1]])
        assert report.max_violation_depth == 0
        assert report.snapshots_compared == 0

    def test_chain_growth_rate(self):
        assert chain_growth_rate([0, 1, 2, 3], rounds=10) == pytest.approx(0.3)
        with pytest.raises(SimulationError):
            chain_growth_rate([0, 1], rounds=0)

    def test_chain_quality(self):
        tree = BlockTree()
        tree.add(Block(block_id=1, parent_id=0, height=1, round_mined=1, miner_id=0, honest=True))
        tree.add(Block(block_id=2, parent_id=1, height=2, round_mined=2, miner_id=9, honest=False))
        tree.add(Block(block_id=3, parent_id=2, height=3, round_mined=3, miner_id=1, honest=True))
        assert chain_quality(tree, [0, 1, 2, 3]) == pytest.approx(2.0 / 3.0)

    def test_chain_quality_of_genesis_only_chain(self):
        assert chain_quality(BlockTree(), [0]) == 1.0
