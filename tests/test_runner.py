"""Tests for the ExperimentRunner: seeding, caching, sharding."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.params import parameters_from_c
from repro.simulation import ExperimentRunner

PARAMS = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)
OTHER = parameters_from_c(c=2.0, n=1_000, delta=3, nu=0.3)


class TestSeeding:
    def test_same_base_seed_reproduces_results(self):
        first = ExperimentRunner(base_seed=5).run_point(PARAMS, trials=6, rounds=800)
        second = ExperimentRunner(base_seed=5).run_point(PARAMS, trials=6, rounds=800)
        assert np.array_equal(
            first.convergence_opportunities, second.convergence_opportunities
        )
        assert np.array_equal(first.adversary_blocks, second.adversary_blocks)

    def test_different_base_seed_changes_results(self):
        first = ExperimentRunner(base_seed=5).run_point(PARAMS, trials=6, rounds=800)
        third = ExperimentRunner(base_seed=6).run_point(PARAMS, trials=6, rounds=800)
        assert not np.array_equal(first.honest_blocks, third.honest_blocks)

    def test_point_results_independent_of_grid_composition(self):
        """A point's stream is a pure function of (params, shape, seed)."""
        runner = ExperimentRunner(base_seed=9)
        solo = runner.run_point(PARAMS, trials=4, rounds=600)
        grid = ExperimentRunner(base_seed=9).run_grid(
            [OTHER, PARAMS], trials=4, rounds=600
        )
        assert np.array_equal(
            solo.convergence_opportunities, grid[1].convergence_opportunities
        )
        assert np.array_equal(solo.honest_blocks, grid[1].honest_blocks)

    def test_cache_key_separates_configurations(self):
        runner = ExperimentRunner(base_seed=0)
        baseline = runner.cache_key(PARAMS, 4, 100)
        assert runner.cache_key(PARAMS, 5, 100) != baseline
        assert runner.cache_key(PARAMS, 4, 101) != baseline
        assert runner.cache_key(OTHER, 4, 100) != baseline
        assert ExperimentRunner(base_seed=1).cache_key(PARAMS, 4, 100) != baseline


class TestCache:
    def test_roundtrip_hit_returns_identical_result(self, tmp_path):
        runner = ExperimentRunner(base_seed=3, cache_dir=str(tmp_path))
        cold = runner.run_point(PARAMS, trials=5, rounds=500)
        assert runner.cache_misses == 1 and runner.cache_hits == 0
        files = [name for name in os.listdir(tmp_path) if name.endswith(".npz")]
        assert len(files) == 1

        warm = runner.run_point(PARAMS, trials=5, rounds=500)
        assert runner.cache_hits == 1
        assert np.array_equal(
            cold.convergence_opportunities, warm.convergence_opportunities
        )
        assert np.array_equal(cold.worst_deficits, warm.worst_deficits)
        assert warm.params == PARAMS
        assert warm.trials == 5 and warm.rounds == 500

    def test_cache_shared_across_runner_instances(self, tmp_path):
        first = ExperimentRunner(base_seed=3, cache_dir=str(tmp_path))
        cold = first.run_point(PARAMS, trials=4, rounds=400)
        second = ExperimentRunner(base_seed=3, cache_dir=str(tmp_path))
        warm = second.run_point(PARAMS, trials=4, rounds=400)
        assert second.cache_hits == 1 and second.cache_misses == 0
        assert np.array_equal(cold.honest_blocks, warm.honest_blocks)

    def test_no_cache_dir_never_touches_disk(self):
        runner = ExperimentRunner(base_seed=0, cache_dir=None)
        runner.run_point(PARAMS, trials=2, rounds=200)
        runner.run_point(PARAMS, trials=2, rounds=200)
        assert runner.cache_hits == 0 and runner.cache_misses == 2


class TestGrid:
    def test_serial_grid_preserves_point_order(self):
        results = ExperimentRunner(base_seed=1).run_grid(
            [PARAMS, OTHER], trials=3, rounds=300
        )
        assert [result.params for result in results] == [PARAMS, OTHER]

    def test_empty_grid(self):
        assert ExperimentRunner().run_grid([], trials=3, rounds=300) == []

    def test_multiprocess_grid_matches_serial(self, tmp_path):
        serial = ExperimentRunner(base_seed=4).run_grid(
            [PARAMS, OTHER], trials=3, rounds=400
        )
        sharded_runner = ExperimentRunner(
            base_seed=4, processes=2, cache_dir=str(tmp_path)
        )
        sharded = sharded_runner.run_grid([PARAMS, OTHER], trials=3, rounds=400)
        for left, right in zip(serial, sharded):
            assert np.array_equal(
                left.convergence_opportunities, right.convergence_opportunities
            )
            assert np.array_equal(left.adversary_blocks, right.adversary_blocks)
            assert left.params == right.params
        # Worker-side cache accounting folds back into the parent runner.
        assert sharded_runner.cache_misses == 2 and sharded_runner.cache_hits == 0
        sharded_runner.run_grid([PARAMS, OTHER], trials=3, rounds=400)
        assert sharded_runner.cache_hits == 2


class TestValidation:
    def test_invalid_configuration_raises(self):
        with pytest.raises(SimulationError):
            ExperimentRunner(draw_mode="quantum")
        with pytest.raises(SimulationError):
            ExperimentRunner(processes=0)
