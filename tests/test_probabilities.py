"""Tests for repro.core.probabilities."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.probabilities import (
    HeterogeneousMiningProbabilities,
    MiningProbabilities,
    adversary_block_distribution,
    binomial_pmf,
    expected_adversary_blocks,
    expected_honest_blocks,
    honest_block_distribution,
    log_binomial_pmf,
    poisson_binomial_convergence_opportunity,
    poisson_binomial_distribution,
    poisson_binomial_pmf,
    round_state_probabilities,
    sample_adversary_blocks,
    sample_honest_blocks,
)
from repro.errors import ParameterError
from repro.params import ProtocolParameters


class TestBinomialPmf:
    def test_matches_known_value(self):
        # Binomial(10, 0.1) at k=1: 10 * 0.1 * 0.9^9
        expected = 10 * 0.1 * 0.9**9
        assert binomial_pmf(1, 10, 0.1) == pytest.approx(expected, rel=1e-12)

    def test_out_of_range_k_is_zero(self):
        assert binomial_pmf(-1, 10, 0.1) == 0.0
        assert binomial_pmf(11, 10, 0.1) == 0.0
        assert log_binomial_pmf(11, 10, 0.1) == -math.inf

    def test_rejects_bad_success_probability(self):
        with pytest.raises(ParameterError):
            binomial_pmf(1, 10, 0.0)
        with pytest.raises(ParameterError):
            binomial_pmf(1, 10, 1.0)

    def test_real_valued_trials(self):
        # The paper treats mu*n as real-valued; the pmf must still be finite and positive.
        value = binomial_pmf(2, 7.5, 0.2)
        assert 0.0 < value < 1.0

    @given(
        trials=st.integers(min_value=1, max_value=200),
        success=st.floats(min_value=1e-6, max_value=1 - 1e-6),
    )
    @settings(max_examples=100, deadline=None)
    def test_pmf_sums_to_one(self, trials, success):
        total = sum(binomial_pmf(k, trials, success) for k in range(trials + 1))
        assert total == pytest.approx(1.0, abs=1e-9)


class TestDistributions:
    def test_honest_distribution_mean(self, small_params):
        dist = honest_block_distribution(small_params)
        assert dist.mean() == pytest.approx(
            round(small_params.honest_count) * small_params.p
        )

    def test_adversary_distribution_mean(self, small_params):
        dist = adversary_block_distribution(small_params)
        assert dist.mean() == pytest.approx(
            round(small_params.adversary_count) * small_params.p
        )

    def test_round_state_probabilities_sum_to_one(self, small_params):
        probs = round_state_probabilities(small_params, max_blocks=6)
        assert sum(probs.values()) == pytest.approx(1.0, abs=1e-9)
        assert probs["N"] == pytest.approx(small_params.alpha_bar)
        assert probs["H1"] == pytest.approx(small_params.alpha1, rel=1e-9)

    def test_round_state_tail_nonnegative(self, small_params):
        probs = round_state_probabilities(small_params, max_blocks=2)
        assert probs["H>=3"] >= 0.0


class TestMiningProbabilities:
    def test_from_parameters_matches_params(self, small_params):
        probs = MiningProbabilities.from_parameters(small_params)
        assert probs.alpha == pytest.approx(small_params.alpha)
        assert probs.alpha_bar == pytest.approx(small_params.alpha_bar)
        assert probs.alpha1 == pytest.approx(small_params.alpha1)
        assert probs.beta == pytest.approx(small_params.beta)

    def test_sanity_check(self, small_params):
        assert MiningProbabilities.from_parameters(small_params).sanity_check()

    def test_convergence_opportunity_matches_params(self, small_params):
        probs = MiningProbabilities.from_parameters(small_params)
        assert probs.convergence_opportunity(small_params.delta) == pytest.approx(
            small_params.convergence_opportunity_probability, rel=1e-10
        )

    def test_log_convergence_opportunity_finite_at_scale(self, paper_params):
        probs = MiningProbabilities.from_parameters(paper_params)
        assert math.isfinite(probs.log_convergence_opportunity(paper_params.delta))


class TestExpectationsAndSampling:
    def test_expected_blocks(self, small_params):
        assert expected_honest_blocks(small_params, 100) == pytest.approx(
            100 * small_params.honest_count * small_params.p
        )
        assert expected_adversary_blocks(small_params, 100) == pytest.approx(
            100 * small_params.beta
        )

    def test_sampling_shapes_and_means(self, small_params, rng):
        honest = sample_honest_blocks(small_params, 50_000, rng)
        adversary = sample_adversary_blocks(small_params, 50_000, rng)
        assert honest.shape == (50_000,)
        assert adversary.shape == (50_000,)
        assert honest.mean() == pytest.approx(
            small_params.honest_count * small_params.p, rel=0.05
        )
        assert adversary.mean() == pytest.approx(small_params.beta, rel=0.10)


class TestPoissonBinomial:
    def test_distribution_reduces_to_binomial_for_equal_p(self):
        pmf = poisson_binomial_distribution([0.1] * 10)
        for k in range(11):
            assert pmf[k] == pytest.approx(binomial_pmf(k, 10, 0.1), rel=1e-12)

    def test_pmf_normalises_and_bounds(self):
        probabilities = [0.02, 0.5, 0.13, 0.97, 0.3]
        pmf = poisson_binomial_distribution(probabilities)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-12)
        assert (pmf >= 0.0).all()
        assert poisson_binomial_pmf(-1, probabilities) == 0.0
        assert poisson_binomial_pmf(len(probabilities) + 1, probabilities) == 0.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            poisson_binomial_distribution([[0.1, 0.2]])
        with pytest.raises(ParameterError):
            poisson_binomial_distribution([0.5, 1.5])

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        miners=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_scalar_identities_match_full_pmf(self, seed, miners):
        probabilities = np.random.default_rng(seed).uniform(0.01, 0.6, size=miners)
        bundle = HeterogeneousMiningProbabilities(probabilities)
        pmf = bundle.honest_distribution()
        assert bundle.alpha_bar == pytest.approx(pmf[0], rel=1e-10)
        assert bundle.alpha1 == pytest.approx(pmf[1], rel=1e-10)
        assert bundle.alpha == pytest.approx(1.0 - pmf[0], rel=1e-10)
        assert bundle.sanity_check()


class TestHeterogeneousMiningProbabilities:
    def test_reduces_to_binomial_bundle_for_uniform_power(self, small_params):
        honest = int(round(small_params.honest_count))
        adversary = int(round(small_params.adversary_count))
        bundle = HeterogeneousMiningProbabilities(
            np.full(honest, small_params.p), np.full(adversary, small_params.p)
        )
        assert bundle.alpha == pytest.approx(small_params.alpha, rel=1e-12)
        assert bundle.alpha_bar == pytest.approx(small_params.alpha_bar, rel=1e-12)
        assert bundle.alpha1 == pytest.approx(small_params.alpha1, rel=1e-12)
        assert bundle.beta == pytest.approx(small_params.beta, rel=1e-12)
        assert bundle.convergence_opportunity(small_params.delta) == pytest.approx(
            small_params.convergence_opportunity_probability, rel=1e-12
        )

    def test_skewed_power_moves_the_scalars_as_amgm_predicts(self, small_params):
        """At a fixed aggregate rate, concentrating power lowers ``alpha_bar``
        (AM-GM on the ``1 - p_i``) and raises the one-success odds factor
        ``sum p_i / (1 - p_i)`` (convexity) — so the Eq. 44 rate genuinely
        shifts away from the identical-miner value."""
        honest = int(round(small_params.honest_count))
        uniform = HeterogeneousMiningProbabilities(np.full(honest, small_params.p))
        weights = np.linspace(1.0, 20.0, honest)
        skewed_p = weights / weights.sum() * (small_params.p * honest)
        skewed = HeterogeneousMiningProbabilities(skewed_p)
        assert skewed.alpha_bar < uniform.alpha_bar
        assert (skewed_p / (1.0 - skewed_p)).sum() > (
            honest * small_params.p / (1.0 - small_params.p)
        )
        assert skewed.convergence_opportunity(
            small_params.delta
        ) != pytest.approx(
            uniform.convergence_opportunity(small_params.delta), rel=1e-9
        )

    def test_validation(self):
        with pytest.raises(ParameterError):
            HeterogeneousMiningProbabilities([])
        with pytest.raises(ParameterError):
            HeterogeneousMiningProbabilities([0.5, 1.0])
        with pytest.raises(ParameterError):
            HeterogeneousMiningProbabilities([0.5], [0.0])
        with pytest.raises(ParameterError):
            HeterogeneousMiningProbabilities([0.5]).convergence_opportunity(0)

    def test_convenience_wrapper(self):
        assert poisson_binomial_convergence_opportunity(
            [0.01, 0.02], 2
        ) == pytest.approx(
            HeterogeneousMiningProbabilities([0.01, 0.02]).convergence_opportunity(2)
        )

    def test_validated_against_heterogeneous_power_batch_run(self):
        """The analytical rate sits inside the batch engine's 95% CI."""
        from repro.params import parameters_from_c
        from repro.simulation import BatchSimulation, MiningPowerProfile

        params = parameters_from_c(c=4.0, n=200, delta=2, nu=0.2)
        profile = MiningPowerProfile.from_weights(
            params, honest_weights=np.linspace(1.0, 8.0, 160)
        )
        bundle = profile.mining_probabilities()
        predicted = bundle.convergence_opportunity(params.delta)
        result = BatchSimulation(params, rng=2026, power=profile).run(24, 6_000)
        low, high = result.convergence_rate_ci95
        assert low <= predicted <= high
        # The heterogeneous prediction is a genuinely different number from
        # the identical-miner Eq. 44 at this skew.
        assert predicted != pytest.approx(
            params.convergence_opportunity_probability, rel=1e-6
        )
