"""Tests for repro.core.lemmas: the proof machinery of Section VI."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import neat_bound, theorem3_pn_threshold
from repro.core.lemmas import (
    delta1_constant,
    delta2_delta3_constants,
    delta4_constant,
    implication_chain_thresholds,
    lemma2_implication_holds,
    lemma2_premise,
    lemma3_delta4_lower_bound,
    lemma3_inequality_holds,
    lemma4_c_threshold,
    lemma5_inequality_holds,
    lemma6_inequality_holds,
    lemma7_brackets,
    lemma7_holds,
    lemma8_holds,
    proposition2_holds,
)
from repro.errors import ParameterError
from repro.params import ProtocolParameters, parameters_from_c

NU = st.floats(min_value=0.01, max_value=0.49)
EPS1 = st.floats(min_value=0.01, max_value=0.9)
EPS2 = st.floats(min_value=0.001, max_value=1.0)
DELTA = st.integers(min_value=1, max_value=10_000)


class TestConstants:
    @given(nu=NU, eps1=EPS1, eps2=EPS2)
    @settings(max_examples=300, deadline=None)
    def test_delta4_positive_and_below_log_ratio(self, nu, eps1, eps2):
        """The paper's Remark 5: Eq. (60) satisfies Inequality (73)."""
        delta4 = delta4_constant(nu, eps1, eps2)
        assert delta4 > 0.0
        assert delta4 < math.log((1.0 - nu) / nu)

    @given(nu=NU, eps1=EPS1, eps2=EPS2)
    @settings(max_examples=300, deadline=None)
    def test_delta4_exceeds_lemma3_lower_bound(self, nu, eps1, eps2):
        """Display (62): Eq. (60) implies Inequality (68)."""
        assert delta4_constant(nu, eps1, eps2) > lemma3_delta4_lower_bound(nu, eps1)

    @given(nu=NU, eps1=EPS1, eps2=EPS2)
    @settings(max_examples=300, deadline=None)
    def test_delta1_positive(self, nu, eps1, eps2):
        """Display (63): the delta1 of Eq. (61) is positive."""
        assert delta1_constant(nu, eps1, eps2) > 0.0

    def test_delta2_delta3_formulas(self):
        delta2, delta3 = delta2_delta3_constants(0.3)
        assert delta2 == pytest.approx(1.0 - 1.3 ** (-1.0 / 3.0), rel=1e-12)
        assert delta3 == pytest.approx(1.3 ** (1.0 / 3.0) - 1.0, rel=1e-12)

    @given(delta1=st.floats(min_value=1e-6, max_value=10.0))
    @settings(max_examples=200, deadline=None)
    def test_delta2_delta3_make_gap_positive(self, delta1):
        """Eq. (24): (1-delta2)(1+delta1) - (1+delta3) > 0 with Eq. (23)."""
        delta2, delta3 = delta2_delta3_constants(delta1)
        assert 0.0 < delta2 < 1.0
        assert delta3 > 0.0
        assert (1.0 - delta2) * (1.0 + delta1) - (1.0 + delta3) > 0.0

    def test_constants_reject_invalid_inputs(self):
        with pytest.raises(ParameterError):
            delta4_constant(0.6, 0.1, 0.01)
        with pytest.raises(ParameterError):
            delta4_constant(0.2, 1.5, 0.01)
        with pytest.raises(ParameterError):
            delta2_delta3_constants(0.0)


class TestLemma2:
    def test_premise(self):
        params = parameters_from_c(c=10.0, n=100, delta=2, nu=0.2)
        assert lemma2_premise(params)

    @given(
        c=st.floats(min_value=0.2, max_value=100.0),
        nu=NU,
        delta=st.integers(min_value=1, max_value=50),
        delta1=st.floats(min_value=1e-3, max_value=5.0),
    )
    @settings(max_examples=300, deadline=None)
    def test_implication_never_falsified(self, c, nu, delta, delta1):
        params = parameters_from_c(c=c, n=1_000, delta=delta, nu=nu)
        assert lemma2_implication_holds(params, delta1)


class TestLemma3:
    @given(nu=NU, eps1=EPS1, eps2=EPS2, delta=st.integers(min_value=1, max_value=1_000))
    @settings(max_examples=200, deadline=None)
    def test_inequality_70_holds_under_pn_condition(self, nu, eps1, eps2, delta):
        # Choose p n right at the Inequality (50) threshold (the hardest case).
        pn_limit = theorem3_pn_threshold(nu, eps1)
        n = 1_000
        p = min(pn_limit / n, 0.999)
        params = ProtocolParameters(p=p, n=n, delta=delta, nu=nu, strict_model=False)
        assert lemma3_inequality_holds(params, eps1, eps2)


class TestLemma4AndProposition2:
    @given(nu=NU, delta=st.integers(min_value=1, max_value=1_000))
    @settings(max_examples=200, deadline=None)
    def test_proposition2(self, nu, delta):
        delta4 = 0.5 * math.log((1.0 - nu) / nu)
        assert proposition2_holds(nu, delta, delta4)

    def test_threshold_positive(self):
        params = parameters_from_c(c=5.0, n=1_000, delta=10, nu=0.25)
        delta4 = 0.5 * math.log(3.0)
        assert lemma4_c_threshold(params, delta4) > 0.0

    def test_rejects_delta4_out_of_range(self):
        params = parameters_from_c(c=5.0, n=1_000, delta=10, nu=0.25)
        with pytest.raises(ParameterError):
            lemma4_c_threshold(params, math.log(3.0) * 1.5)


class TestLemmas5Through8:
    @given(nu=NU, delta=st.integers(min_value=1, max_value=1_000))
    @settings(max_examples=200, deadline=None)
    def test_lemma5(self, nu, delta):
        params = parameters_from_c(c=5.0, n=1_000, delta=delta, nu=nu)
        delta4 = 0.5 * math.log((1.0 - nu) / nu)
        assert lemma5_inequality_holds(params, delta4)

    @given(nu=NU, delta=st.integers(min_value=1, max_value=1_000))
    @settings(max_examples=200, deadline=None)
    def test_lemma6(self, nu, delta):
        delta4 = 0.5 * math.log((1.0 - nu) / nu)
        assert lemma6_inequality_holds(nu, delta, delta4)

    @given(nu=NU, delta=DELTA)
    @settings(max_examples=300, deadline=None)
    def test_lemma7_bracket(self, nu, delta):
        lower, middle, upper = lemma7_brackets(nu, delta)
        assert lower <= middle <= upper
        assert lemma7_holds(nu, delta)

    def test_lemma7_bracket_tightens_with_delta(self):
        # The bracket width is exactly 1/Delta, so larger Delta pins the middle
        # expression to 2/ln(mu/nu).
        lower_small, middle_small, _ = lemma7_brackets(0.3, 2)
        lower_large, middle_large, _ = lemma7_brackets(0.3, 10**6)
        assert abs(middle_large - lower_large) < abs(middle_small - lower_small)
        assert middle_large == pytest.approx(2.0 / math.log(0.7 / 0.3), rel=1e-5)

    @given(nu=NU, eps1=EPS1, eps2=EPS2)
    @settings(max_examples=300, deadline=None)
    def test_lemma8(self, nu, eps1, eps2):
        assert lemma8_holds(nu, eps1, eps2)

    def test_lemma_input_validation(self):
        with pytest.raises(ParameterError):
            lemma7_brackets(0.6, 10)
        with pytest.raises(ParameterError):
            lemma7_brackets(0.3, 0)
        with pytest.raises(ParameterError):
            lemma6_inequality_holds(0.3, 10, -0.1)


class TestImplicationChain:
    def test_thresholds_are_increasing_along_the_chain(self):
        """Each sufficiency step may only loosen the requirement on c."""
        steps = implication_chain_thresholds(0.25, 10, 100_000, 0.1, 0.01)
        thresholds = [step.c_threshold for step in steps]
        assert thresholds == sorted(thresholds)

    def test_final_step_matches_theorem3(self):
        from repro.core.bounds import theorem3_c_threshold

        steps = implication_chain_thresholds(0.25, 10, 100_000, 0.1, 0.01)
        assert steps[-1].c_threshold == pytest.approx(
            theorem3_c_threshold(0.25, 10, 0.1, 0.01), rel=1e-12
        )

    @given(nu=NU, delta=st.integers(min_value=2, max_value=1_000))
    @settings(max_examples=100, deadline=None)
    def test_chain_starts_above_neat_bound_scaled(self, nu, delta):
        steps = implication_chain_thresholds(nu, delta, 100_000, 0.1, 0.01)
        # Every threshold exceeds the ideal (unattainable) neat bound over (1-eps1).
        for step in steps:
            assert step.c_threshold > 0.0
        assert steps[-1].c_threshold >= neat_bound(nu)
