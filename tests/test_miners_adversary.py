"""Tests for repro.simulation.miners and repro.simulation.adversary."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simulation import (
    BlockTree,
    HonestPopulation,
    MaxDelayAdversary,
    PassiveAdversary,
    PrivateChainAdversary,
)
from repro.simulation.block import Block


def make_block(block_id, parent_id, height, honest=True, miner_id=0, round_mined=1):
    return Block(
        block_id=block_id,
        parent_id=parent_id,
        height=height,
        round_mined=round_mined,
        miner_id=miner_id,
        honest=honest,
    )


class TestHonestPopulation:
    def test_rejects_zero_miners(self):
        with pytest.raises(SimulationError):
            HonestPopulation(0)

    def test_default_mining_parent_is_genesis(self):
        population = HonestPopulation(10)
        parent_id, height = population.mining_parent_for(3)
        assert parent_id == 0
        assert height == 0

    def test_creator_extends_own_undelivered_block(self):
        population = HonestPopulation(10)
        own = make_block(1, 0, 1, miner_id=4)
        population.record_own_block(own)
        parent_id, height = population.mining_parent_for(4)
        assert parent_id == 1
        assert height == 1
        # Other miners have not seen it yet.
        other_parent, other_height = population.mining_parent_for(5)
        assert other_parent == 0
        assert other_height == 0

    def test_delivery_moves_block_into_public_view(self):
        population = HonestPopulation(10)
        own = make_block(1, 0, 1, miner_id=4)
        population.record_own_block(own)
        population.deliver([own])
        assert population.public_height == 1
        assert population.undelivered_count() == 0
        parent_id, _ = population.mining_parent_for(5)
        assert parent_id == 1

    def test_creator_abandons_own_block_when_public_is_higher(self):
        population = HonestPopulation(10)
        own = make_block(1, 0, 1, miner_id=4)
        population.record_own_block(own)
        # Deliver a competing two-block chain from elsewhere.
        population.deliver([make_block(2, 0, 1, miner_id=6)])
        population.deliver([make_block(3, 2, 2, miner_id=6)])
        parent_id, height = population.mining_parent_for(4)
        assert parent_id == 3
        assert height == 2

    def test_record_own_block_rejects_adversarial(self):
        population = HonestPopulation(10)
        with pytest.raises(SimulationError):
            population.record_own_block(make_block(1, 0, 1, honest=False))


class TestPassiveAndMaxDelayAdversary:
    def test_passive_has_zero_delay(self):
        adversary = PassiveAdversary(delta=3)
        assert adversary.delay_for_honest_block(make_block(1, 0, 1), 5) == 0

    def test_max_delay_uses_full_delta(self):
        adversary = MaxDelayAdversary(delta=3)
        assert adversary.delay_for_honest_block(make_block(1, 0, 1), 5) == 3

    def test_passive_releases_immediately(self):
        adversary = PassiveAdversary(delta=3)
        tree = BlockTree()
        block = make_block(1, 0, 1, honest=False)
        adversary.register_adversary_block(block, 2)
        assert adversary.blocks_to_release(tree, 2) == [block]
        assert adversary.blocks_to_release(tree, 3) == []

    def test_passive_mines_on_public_tip(self):
        adversary = PassiveAdversary(delta=3)
        tree = BlockTree()
        tree.add(make_block(1, 0, 1))
        assert adversary.mining_parent(tree, 1) == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(SimulationError):
            PassiveAdversary(delta=0)
        with pytest.raises(SimulationError):
            PassiveAdversary(delta=3, honest_delay=4)


class TestPrivateChainAdversary:
    def test_forks_from_public_tip_then_extends_private(self):
        adversary = PrivateChainAdversary(delta=3, target_depth=2)
        tree = BlockTree()
        tree.add(make_block(1, 0, 1))
        assert adversary.mining_parent(tree, 1) == 1
        private1 = make_block(10, 1, 2, honest=False)
        adversary.register_adversary_block(private1, 1)
        assert adversary.mining_parent(tree, 2) == 10
        assert adversary.withheld_count == 1
        assert adversary.private_height == 2

    def test_withholds_until_deep_enough(self):
        adversary = PrivateChainAdversary(delta=3, target_depth=3)
        tree = BlockTree()
        # Adversary forks from genesis and mines two private blocks.
        adversary.register_adversary_block(make_block(10, 0, 1, honest=False), 1)
        adversary.register_adversary_block(make_block(11, 10, 2, honest=False), 2)
        # Public chain has one block: private is ahead but fork depth (1) < target (3).
        tree.add(make_block(1, 0, 1))
        assert adversary.blocks_to_release(tree, 3) == []
        assert adversary.withheld_count == 2

    def test_releases_when_longer_and_deep(self):
        adversary = PrivateChainAdversary(delta=3, target_depth=2)
        tree = BlockTree()
        adversary.register_adversary_block(make_block(10, 0, 1, honest=False), 1)
        adversary.register_adversary_block(make_block(11, 10, 2, honest=False), 2)
        adversary.register_adversary_block(make_block(12, 11, 3, honest=False), 3)
        tree.add(make_block(1, 0, 1))
        tree.add(make_block(2, 1, 2))
        released = adversary.blocks_to_release(tree, 4)
        assert [block.block_id for block in released] == [10, 11, 12]
        assert adversary.releases == 1
        assert adversary.deepest_fork == 2
        assert adversary.withheld_count == 0

    def test_gives_up_when_hopelessly_behind(self):
        adversary = PrivateChainAdversary(delta=3, target_depth=2, give_up_deficit=2)
        tree = BlockTree()
        adversary.register_adversary_block(make_block(10, 0, 1, honest=False), 1)
        # Public chain races ahead by 3 blocks.
        tree.add(make_block(1, 0, 1))
        tree.add(make_block(2, 1, 2))
        tree.add(make_block(3, 2, 3))
        assert adversary.blocks_to_release(tree, 5) == []
        assert adversary.withheld_count == 0  # abandoned
        # Next mining restarts from the public tip.
        assert adversary.mining_parent(tree, 6) == 3

    def test_always_delays_honest_blocks_by_delta(self):
        adversary = PrivateChainAdversary(delta=4)
        assert adversary.delay_for_honest_block(make_block(1, 0, 1), 9) == 4

    def test_rejects_bad_parameters(self):
        with pytest.raises(SimulationError):
            PrivateChainAdversary(delta=3, target_depth=0)
        with pytest.raises(SimulationError):
            PrivateChainAdversary(delta=3, give_up_deficit=0)

    def test_describe(self):
        assert PrivateChainAdversary(3).describe() == "PrivateChainAdversary"
