"""Engine-level bit-equality grids against pre-refactor golden digests.

The digests below were produced by the engines *before* the backend-layer
refactor (PR 4 state, ``rng=2026``, 12 trials x 600 rounds) by hashing the
dtype, shape and raw bytes of every headline result tensor.  The refactored
engines must reproduce them exactly on the default NumPy backend — under
ambient selection, under an explicit ``use_backend("numpy")`` context, and
through a shared :class:`~repro.backend.Workspace` — which pins the claim
that routing the tensor math through ``repro.backend`` changed nothing
about the arithmetic.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.backend import Workspace, use_backend
from repro.params import parameters_from_c
from repro.simulation import BatchSimulation, ScenarioSimulation
from repro.simulation.dynamics import (
    DynamicsSchedule,
    PartitionEvent,
    TimeVaryingDelayModel,
)

TRIALS = 12
ROUNDS = 600
SEED = 2026
#: (nu, delta) cells of the grid; c=1, n=400 throughout.
GRID = [(0.2, 1), (0.2, 3), (0.4, 2)]
STRATEGIES = ["passive", "max_delay", "private_chain", "selfish_mining"]

#: Pre-refactor digests for the batch engine:
#: (convergence_opportunities, honest_blocks, adversary_blocks,
#:  worst_deficits).
BATCH_GOLDENS = {
    (0.2, 1): "1761b6542e07b74b",
    (0.2, 3): "48016c7b6d9f19f5",
    (0.4, 2): "9f36db722e8ae235",
}

#: Pre-refactor digests for the scenario engine (record_rounds=True):
#: (public_heights, private_heights, releases, abandons, deepest_forks,
#:  orphaned_honest, withheld_final, final_public_heights,
#:  convergence_opportunities, worst_deficits).
SCENARIO_GOLDENS = {
    (0.2, 1, "passive"): "4ff953789be5ab6f",
    (0.2, 1, "max_delay"): "4a70204582a42556",
    (0.2, 1, "private_chain"): "0745fe4acce7cd6f",
    (0.2, 1, "selfish_mining"): "aa852748ec2d5432",
    (0.2, 3, "passive"): "1ac118c4f0f94d23",
    (0.2, 3, "max_delay"): "fe755b7dd1786aa4",
    (0.2, 3, "private_chain"): "41d454a800262134",
    (0.2, 3, "selfish_mining"): "72874120746b3d87",
    (0.4, 2, "passive"): "61bff798a512bea0",
    (0.4, 2, "max_delay"): "7983b3c301d24a83",
    (0.4, 2, "private_chain"): "1aa18f3597911da8",
    (0.4, 2, "selfish_mining"): "8bc0386073ad5f55",
}

#: Pre-refactor digests for the dynamics subsystem: a PartitionEvent(200, 60)
#: TimeVaryingDelayModel through the batch engine
#: (convergence_opportunities, worst_deficits), and the registered "eclipse"
#: scenario (public_heights, private_heights, deepest_forks,
#: final_public_heights).
DYNAMICS_GOLDENS = {
    (0.2, 1): ("0654e463d56203bf", "0d7df612ed773756"),
    (0.2, 3): ("edd125d4231b7e2b", "694557f26217a1e8"),
    (0.4, 2): ("c9d6890d6a61596a", "37a53f3fe808458e"),
}


def _digest(*arrays) -> str:
    hasher = hashlib.sha256()
    for array in arrays:
        array = np.ascontiguousarray(array)
        hasher.update(str(array.dtype).encode())
        hasher.update(str(array.shape).encode())
        hasher.update(array.tobytes())
    return hasher.hexdigest()[:16]


def _params(nu: float, delta: int):
    return parameters_from_c(c=1.0, n=400, delta=delta, nu=nu)


def _batch_digest(nu, delta, workspace=None):
    result = BatchSimulation(
        _params(nu, delta), rng=SEED, workspace=workspace
    ).run(TRIALS, ROUNDS)
    return _digest(
        result.convergence_opportunities,
        result.honest_blocks,
        result.adversary_blocks,
        result.worst_deficits,
    )


def _scenario_digest(nu, delta, strategy, workspace=None):
    result = ScenarioSimulation(
        _params(nu, delta), strategy, rng=SEED, workspace=workspace
    ).run(TRIALS, ROUNDS, record_rounds=True)
    return _digest(
        result.public_heights,
        result.private_heights,
        result.releases,
        result.abandons,
        result.deepest_forks,
        result.orphaned_honest,
        result.withheld_final,
        result.final_public_heights,
        result.convergence_opportunities,
        result.worst_deficits,
    )


@pytest.mark.parametrize("nu,delta", GRID)
def test_batch_engine_bit_identical_to_pre_refactor(nu, delta):
    assert _batch_digest(nu, delta) == BATCH_GOLDENS[(nu, delta)]


@pytest.mark.parametrize("nu,delta", GRID)
def test_batch_engine_bit_identical_under_explicit_numpy_backend(nu, delta):
    with use_backend("numpy"):
        assert _batch_digest(nu, delta) == BATCH_GOLDENS[(nu, delta)]


@pytest.mark.parametrize("nu,delta", GRID)
def test_batch_engine_bit_identical_through_workspace(nu, delta):
    workspace = Workspace()
    for _ in range(2):  # the second pass reuses warm buffers
        assert (
            _batch_digest(nu, delta, workspace=workspace)
            == BATCH_GOLDENS[(nu, delta)]
        )


@pytest.mark.parametrize("nu,delta", GRID)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_scenario_engine_bit_identical_to_pre_refactor(nu, delta, strategy):
    assert (
        _scenario_digest(nu, delta, strategy)
        == SCENARIO_GOLDENS[(nu, delta, strategy)]
    )


@pytest.mark.parametrize("nu,delta", GRID)
@pytest.mark.parametrize("strategy", ["private_chain", "selfish_mining"])
def test_scenario_engine_bit_identical_through_workspace(nu, delta, strategy):
    workspace = Workspace()
    assert (
        _scenario_digest(nu, delta, strategy, workspace=workspace)
        == SCENARIO_GOLDENS[(nu, delta, strategy)]
    )


@pytest.mark.parametrize("nu,delta", GRID)
def test_dynamics_engines_bit_identical_to_pre_refactor(nu, delta):
    params = _params(nu, delta)
    model = TimeVaryingDelayModel(DynamicsSchedule([PartitionEvent(200, 60)]))
    batch = BatchSimulation(params, rng=SEED, delay_model=model).run(TRIALS, ROUNDS)
    eclipse = ScenarioSimulation(params, "eclipse", rng=SEED).run(
        TRIALS, ROUNDS, record_rounds=True
    )
    expected_batch, expected_scenario = DYNAMICS_GOLDENS[(nu, delta)]
    assert (
        _digest(batch.convergence_opportunities, batch.worst_deficits)
        == expected_batch
    )
    assert (
        _digest(
            eclipse.public_heights,
            eclipse.private_heights,
            eclipse.deepest_forks,
            eclipse.final_public_heights,
        )
        == expected_scenario
    )
