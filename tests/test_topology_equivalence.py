"""Seeded equivalence: ``delay_model="fixed_delta"`` versus the pre-topology engines.

The acceptance bar for the topology subsystem is that the fixed-Δ delay
model is a *bit-exact* no-op: across a (ν, Δ, strategy) grid, running the
batch and scenario engines with ``delay_model="fixed_delta"`` must
reproduce the default engines' per-round heights, convergence tallies and
attack-success masks exactly — same seeds, same arrays, no entropy
consumed by the model.  The default engines themselves are pinned against
the legacy loop by ``test_batch_equivalence`` / ``test_scenario_equivalence``
and against golden values by ``test_golden_regression``, which closes the
chain back to the pre-topology behaviour.

This file also covers the runner-side satellites: topology-aware cache
keys (graph wiring and power profiles are part of the key) and the
package-version stamp that invalidates warm caches across upgrades without
rerolling seeded results.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro._version
from repro.params import parameters_from_c
from repro.simulation import (
    BatchSimulation,
    ExperimentRunner,
    MiningPowerProfile,
    PeerGraphDelayModel,
    PeerGraphTopology,
    ScenarioSimulation,
    UniformDelayModel,
)

TRIALS = 4
ROUNDS = 900

BATCH_GRID = [(nu, delta) for nu in (0.2, 0.4) for delta in (1, 3)]

#: Scenarios whose honest delay is the full Δ — exactly the cases where the
#: fixed-delta model's constant draw coincides with the legacy constant path.
SCENARIO_GRID = [
    (scenario, nu, delta)
    for scenario in ("max_delay", "private_chain", "selfish_mining")
    for nu in (0.2, 0.4)
    for delta in (1, 3)
]

_SCENARIO_ARRAYS = (
    "releases",
    "abandons",
    "deepest_forks",
    "orphaned_honest",
    "withheld_final",
    "final_public_heights",
    "honest_blocks",
    "adversary_blocks",
    "convergence_opportunities",
    "worst_deficits",
    "public_heights",
    "private_heights",
    "release_mask",
    "abandon_mask",
)


@pytest.mark.parametrize("nu, delta", BATCH_GRID)
def test_batch_fixed_delta_is_bit_identical(nu, delta):
    params = parameters_from_c(c=2.0, n=500, delta=delta, nu=nu)
    seed = 7_000 + delta
    plain = BatchSimulation(params, rng=seed).run(TRIALS, ROUNDS, keep_traces=True)
    modelled = BatchSimulation(params, rng=seed, delay_model="fixed_delta").run(
        TRIALS, ROUNDS, keep_traces=True
    )
    assert np.array_equal(plain.honest_counts, modelled.honest_counts)
    assert np.array_equal(plain.adversary_counts, modelled.adversary_counts)
    assert np.array_equal(
        plain.convergence_opportunities, modelled.convergence_opportunities
    )
    assert np.array_equal(plain.worst_deficits, modelled.worst_deficits)
    assert modelled.delay_model == "fixed_delta" == plain.delay_model


@pytest.mark.parametrize("scenario_name, nu, delta", SCENARIO_GRID)
def test_scenario_fixed_delta_is_bit_identical(scenario_name, nu, delta):
    params = parameters_from_c(c=1.0, n=400, delta=delta, nu=nu)
    seed = 8_000 + delta
    plain = ScenarioSimulation(params, scenario_name, rng=seed).run(
        TRIALS, ROUNDS, record_rounds=True
    )
    modelled = ScenarioSimulation(
        params, scenario_name, rng=seed, delay_model="fixed_delta"
    ).run(TRIALS, ROUNDS, record_rounds=True)
    for name in _SCENARIO_ARRAYS:
        assert np.array_equal(getattr(plain, name), getattr(modelled, name)), name
    assert np.array_equal(
        plain.attack_success_mask(), modelled.attack_success_mask()
    )
    assert modelled.delay_model == "fixed_delta"
    assert plain.delay_model is None


def test_fixed_delta_grid_exercises_real_attacks():
    """The equivalence grid must cover actual releases, not just quiet runs."""
    params = parameters_from_c(c=1.0, n=400, delta=3, nu=0.4)
    result = ScenarioSimulation(
        params, "private_chain", rng=8_003, delay_model="fixed_delta"
    ).run(TRIALS, ROUNDS)
    assert int(result.releases.sum()) > 0


def test_faster_delay_model_orders_attack_surface():
    """Sub-Δ gossip delivery weakens the withholding adversary on the same
    mining trace: the public chain grows faster, so the adversary's lead
    condition fires less often (fewer releases)."""
    from repro.simulation import draw_mining_traces

    params = parameters_from_c(c=1.0, n=400, delta=4, nu=0.4)
    honest, adversary = draw_mining_traces(params, 8, 2_000, rng=5)
    worst = ScenarioSimulation(params, "private_chain", rng=0).run_traces(
        honest, adversary
    )
    fast = ScenarioSimulation(
        params, "private_chain", rng=0, delay_model=UniformDelayModel(low=0, high=1)
    ).run_traces(honest, adversary, delays=np.zeros_like(honest))
    assert int(fast.releases.sum()) < int(worst.releases.sum())
    assert int(fast.final_public_heights.sum()) > int(worst.final_public_heights.sum())


# ----------------------------------------------------------------------
# Runner integration: topology-aware cache keys and seeding
# ----------------------------------------------------------------------
def test_run_topology_point_caches_and_reproduces(tmp_path):
    params = parameters_from_c(c=4.0, n=1_000, delta=6, nu=0.2)
    topology = PeerGraphTopology.random_regular(24, 4, rng=1)
    model = PeerGraphDelayModel(topology)
    runner = ExperimentRunner(base_seed=3, cache_dir=str(tmp_path))
    first = runner.run_topology_point(params, 6, 1_500, delay_model=model)
    assert runner.cache_misses == 1
    second = runner.run_topology_point(params, 6, 1_500, delay_model=model)
    assert runner.cache_hits == 1
    assert np.array_equal(
        first.convergence_opportunities, second.convergence_opportunities
    )
    assert second.delay_model == "peer_graph"
    # A fresh runner instance reproduces the identical result from seed alone.
    rebuilt = ExperimentRunner(base_seed=3).run_topology_point(
        params, 6, 1_500, delay_model=PeerGraphDelayModel(topology)
    )
    assert np.array_equal(
        first.convergence_opportunities, rebuilt.convergence_opportunities
    )


def test_topology_cache_key_distinguishes_wiring_and_power(small_params):
    runner = ExperimentRunner(base_seed=0)
    ring = PeerGraphDelayModel(PeerGraphTopology.ring(12))
    star = PeerGraphDelayModel(PeerGraphTopology.star(12))
    key_ring = runner.cache_key(small_params, 4, 100, delay_model=ring)
    key_star = runner.cache_key(small_params, 4, 100, delay_model=star)
    key_plain = runner.cache_key(small_params, 4, 100)
    assert len({key_ring, key_star, key_plain}) == 3
    profile = MiningPowerProfile.from_weights(
        small_params, np.linspace(1.0, 2.0, 800)
    )
    key_power = runner.cache_key(small_params, 4, 100, delay_model=ring, power=profile)
    assert key_power != key_ring


def test_run_topology_grid_is_pointwise_consistent():
    points = [
        parameters_from_c(c=4.0, n=1_000, delta=5, nu=nu) for nu in (0.15, 0.3)
    ]
    runner = ExperimentRunner(base_seed=11)
    model = PeerGraphDelayModel(PeerGraphTopology.random_regular(16, 4, rng=0))
    grid = runner.run_topology_grid(points, 4, 1_000, delay_model=model)
    solo = ExperimentRunner(base_seed=11).run_topology_point(
        points[1], 4, 1_000, delay_model=model
    )
    assert np.array_equal(
        grid[1].convergence_opportunities, solo.convergence_opportunities
    )


def test_run_topology_point_requires_a_model(small_params):
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        ExperimentRunner().run_topology_point(small_params, 2, 100, delay_model=None)


# ----------------------------------------------------------------------
# Satellite: package version in cache keys
# ----------------------------------------------------------------------
def test_version_bump_invalidates_warm_cache(tmp_path, monkeypatch, small_params):
    runner = ExperimentRunner(base_seed=1, cache_dir=str(tmp_path))
    first = runner.run_point(small_params, 4, 500)
    assert (runner.cache_hits, runner.cache_misses) == (0, 1)
    runner.run_point(small_params, 4, 500)
    assert (runner.cache_hits, runner.cache_misses) == (1, 1)

    old_key = runner.cache_key(small_params, 4, 500)
    monkeypatch.setattr(repro._version, "__version__", "999.0.0")
    assert runner.cache_key(small_params, 4, 500) != old_key
    # The warm on-disk cache is keyed to the old version: the "upgraded"
    # library recomputes instead of silently reusing it...
    upgraded = runner.run_point(small_params, 4, 500)
    assert (runner.cache_hits, runner.cache_misses) == (1, 2)
    # ...but seeds exclude the version, so the recomputed point is identical.
    assert np.array_equal(
        first.convergence_opportunities, upgraded.convergence_opportunities
    )
    assert np.array_equal(first.worst_deficits, upgraded.worst_deficits)


def test_version_bump_invalidates_scenario_cache(tmp_path, monkeypatch):
    params = parameters_from_c(c=1.0, n=400, delta=3, nu=0.4)
    runner = ExperimentRunner(base_seed=2, cache_dir=str(tmp_path))
    runner.run_scenario_point(params, "private_chain", 4, 400)
    runner.run_scenario_point(params, "private_chain", 4, 400)
    assert (runner.cache_hits, runner.cache_misses) == (1, 1)
    monkeypatch.setattr(repro._version, "__version__", "999.0.0")
    runner.run_scenario_point(params, "private_chain", 4, 400)
    assert (runner.cache_hits, runner.cache_misses) == (1, 2)


def test_seed_sequence_is_version_independent(monkeypatch, small_params):
    runner = ExperimentRunner(base_seed=4)
    before = runner.seed_sequence_for(small_params, 8, 1_000)
    monkeypatch.setattr(repro._version, "__version__", "999.0.0")
    after = runner.seed_sequence_for(small_params, 8, 1_000)
    assert before.entropy == after.entropy


# ----------------------------------------------------------------------
# Analysis layer: Delta-tightness sweeps
# ----------------------------------------------------------------------
class TestTopologySweeps:
    def test_delta_tightness_rows_are_consistent(self, tmp_path):
        from repro.analysis import delta_tightness_sweep

        runner = ExperimentRunner(base_seed=5, cache_dir=str(tmp_path))
        rows = delta_tightness_sweep(
            degrees=(2, 8),
            graph_nodes=24,
            trials=4,
            rounds=2_000,
            seed=5,
            runner=runner,
        )
        assert len(rows) == 2
        by_degree = {row["degree"]: row for row in rows}
        # The nominal Delta covers the slowest cell in the family.
        assert all(
            row["nominal_delta"] >= row["diameter"] for row in rows
        )
        assert by_degree[8]["effective_delta"] < by_degree[2]["effective_delta"]
        # Denser gossip -> faster delivery -> rate at least the slow cell's,
        # and the effective-Delta prediction exceeds the nominal one.
        assert (
            by_degree[8]["predicted_rate_effective"]
            > by_degree[8]["predicted_rate_nominal"]
        )
        for row in rows:
            assert (
                row["empirical_ci95_low"]
                <= row["empirical_rate"]
                <= row["empirical_ci95_high"]
            )
        # A second sweep over the warm cache reproduces the rows exactly.
        again = delta_tightness_sweep(
            degrees=(2, 8),
            graph_nodes=24,
            trials=4,
            rounds=2_000,
            seed=5,
            runner=runner,
        )
        assert again == rows
        assert runner.cache_hits == 2

    def test_effective_delta_table_structure(self):
        from repro.analysis import effective_delta_table

        rows = effective_delta_table((2, 4), (0, 2), graph_nodes=16, seed=1)
        assert len(rows) == 4
        for row in rows:
            assert 1 <= row["effective_delta"] <= row["diameter"]
            assert row["mean_radius"] <= row["diameter"]

    def test_sweeps_reject_empty_grids(self):
        from repro.analysis import delta_tightness_sweep, effective_delta_table
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            delta_tightness_sweep(degrees=())
        with pytest.raises(AnalysisError):
            effective_delta_table((), (0,))
        with pytest.raises(AnalysisError):
            delta_tightness_sweep(degrees=(2,), trials=0)
