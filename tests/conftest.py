"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.params import ProtocolParameters, parameters_from_c


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_params() -> ProtocolParameters:
    """A small-Delta configuration convenient for exact/simulated comparisons."""
    return parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)


@pytest.fixture
def paper_params() -> ProtocolParameters:
    """A configuration at the paper's Figure 1 scale (n = 1e5, Delta = 1e13)."""
    return parameters_from_c(c=10.0, n=100_000, delta=10**13, nu=0.25)


@pytest.fixture
def attack_params() -> ProtocolParameters:
    """A configuration inside the PSS Remark 8.5 attack region."""
    return parameters_from_c(c=0.5, n=1_000, delta=3, nu=0.45)
