"""Protocol parameterisation (Table I of the paper).

This module defines :class:`ProtocolParameters`, the single value object that
the rest of the library consumes.  It captures the quantities of Table I of
the paper:

=========  ====================================================================
symbol     meaning
=========  ====================================================================
``p``      hardness of the proof of work (per-query success probability)
``n``      number of miners, each with identical computing power
``delta``  maximum message delay (in rounds) imposed by the adversary (Δ)
``mu``     fraction of computational power controlled by honest miners (μ)
``nu``     fraction of computational power controlled by the adversary (ν)
``c``      ``1 / (p · n · Δ)`` — the expected number of network delays before
           some block is mined
``alpha``  probability that *some* honest miner mines a block in one round
``alpha_bar``  probability that *no* honest miner mines a block in one round
``alpha1`` probability that *exactly one* honest miner mines in one round
=========  ====================================================================

The paper operates at extreme parameter ranges (Figure 1 uses ``n = 1e5`` and
``delta = 1e13``), where quantities such as ``alpha_bar ** (2 * delta)``
underflow IEEE-754 doubles.  Every derived quantity is therefore also exposed
in log space, computed with :func:`math.log1p` / :func:`math.expm1` so that
the values stay accurate for very small ``p``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ParameterError

__all__ = [
    "coerce_positive_int",
    "ProtocolParameters",
    "parameters_from_c",
    "parameters_for_target_alpha",
]


def coerce_positive_int(
    value, name: str, *, error_type: type = ParameterError
) -> int:
    """Validate that ``value`` is an integral number ``>= 1`` and return ``int``.

    The single integer-coercion rule shared by :class:`ProtocolParameters`
    and :class:`~repro.simulation.network.DeltaDelayNetwork` (and the
    topology generators), so every layer accepts exactly the same inputs —
    Python ints, integral floats (``3.0``), NumPy integer scalars — and
    rejects booleans, fractional values and non-numbers with one message
    shape.  ``error_type`` selects the layer's exception class.
    """
    if isinstance(value, bool):
        raise error_type(f"{name} must be a positive integer, got {value!r}")
    try:
        coerced = int(value)
    except (TypeError, ValueError, OverflowError):  # inf raises OverflowError
        raise error_type(
            f"{name} must be a positive integer, got {value!r}"
        ) from None
    if coerced != value or coerced < 1:
        raise error_type(f"{name} must be a positive integer, got {value!r}")
    return coerced


def _validate(p: float, n: int, delta: int, nu: float, strict_model: bool) -> tuple:
    """Check the model assumptions of Section III; return coerced ``(n, delta)``."""
    if not (0.0 < p < 1.0):
        raise ParameterError(f"hardness p must lie in (0, 1), got {p!r}")
    n = coerce_positive_int(n, "number of miners n")
    delta = coerce_positive_int(delta, "maximum delay delta")
    if not (0.0 <= nu < 1.0):
        raise ParameterError(f"adversarial fraction nu must lie in [0, 1), got {nu!r}")
    if strict_model:
        # Inequality (2): 0 < nu < 1/2 < mu, and Inequality (3): n >= 4.
        if not (0.0 < nu < 0.5):
            raise ParameterError(
                "the paper's model (Inequality 2) requires 0 < nu < 1/2; "
                f"got nu = {nu!r}.  Pass strict_model=False to relax this."
            )
        if n < 4:
            raise ParameterError(
                "the paper's model (Inequality 3) requires n >= 4; "
                f"got n = {n!r}.  Pass strict_model=False to relax this."
            )
    return n, delta


@dataclass(frozen=True)
class ProtocolParameters:
    """Immutable description of one protocol configuration.

    Parameters
    ----------
    p:
        Hardness of the proof of work: the probability that a single oracle
        query mines a block.
    n:
        Total number of miners (honest plus corrupted).
    delta:
        Maximum number of rounds by which the adversary may delay a message
        (Δ in the paper).
    nu:
        Fraction of computational power controlled by the adversary (ν).
    strict_model:
        When ``True`` (the default) the constructor enforces the paper's model
        assumptions ``0 < nu < 1/2`` and ``n >= 4``.  Set to ``False`` for
        exploratory use (e.g. plotting bounds right up to ``nu = 1/2``).

    Examples
    --------
    >>> params = ProtocolParameters(p=1e-7, n=100_000, delta=10, nu=0.25)
    >>> round(params.c, 3)
    10.0
    >>> 0 < params.alpha < 1
    True
    """

    p: float
    n: int
    delta: int
    nu: float
    strict_model: bool = field(default=True, compare=False)

    def __post_init__(self) -> None:
        n, delta = _validate(self.p, self.n, self.delta, self.nu, self.strict_model)
        # Integral floats (e.g. delta=3.0) are accepted but normalised to int,
        # so downstream consumers (range(), array shapes) never see floats.
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "delta", delta)

    # ------------------------------------------------------------------
    # Basic fractions and counts
    # ------------------------------------------------------------------
    @property
    def mu(self) -> float:
        """Honest fraction of computational power, ``mu = 1 - nu`` (Eq. 1)."""
        return 1.0 - self.nu

    @property
    def honest_count(self) -> float:
        """Number of honest miners ``mu * n`` (kept real-valued, as in the paper)."""
        return self.mu * self.n

    @property
    def adversary_count(self) -> float:
        """Number of corrupted miners ``nu * n``."""
        return self.nu * self.n

    # ------------------------------------------------------------------
    # The headline quantity c
    # ------------------------------------------------------------------
    @property
    def c(self) -> float:
        """``c := 1 / (p n Δ)`` — expected number of Δ-delays before a block is mined."""
        return 1.0 / (self.p * self.n * self.delta)

    # ------------------------------------------------------------------
    # Per-round mining probabilities (Table I / Eqs. 7-9)
    # ------------------------------------------------------------------
    @property
    def log_alpha_bar(self) -> float:
        """``ln(alpha_bar)`` where ``alpha_bar = (1 - p)^(mu n)`` (Eq. 8)."""
        return self.honest_count * math.log1p(-self.p)

    @property
    def alpha_bar(self) -> float:
        """Probability that no honest miner mines a block in one round (Eq. 8)."""
        return math.exp(self.log_alpha_bar)

    @property
    def alpha(self) -> float:
        """Probability that some honest miner mines a block in one round (Eq. 7)."""
        return -math.expm1(self.log_alpha_bar)

    @property
    def log_alpha1(self) -> float:
        """``ln(alpha1)`` where ``alpha1 = p mu n (1 - p)^(mu n - 1)`` (Eq. 9)."""
        return (
            math.log(self.p)
            + math.log(self.honest_count)
            + (self.honest_count - 1.0) * math.log1p(-self.p)
        )

    @property
    def alpha1(self) -> float:
        """Probability that exactly one honest miner mines in one round (Eq. 9)."""
        return math.exp(self.log_alpha1)

    @property
    def beta(self) -> float:
        """Expected number of adversarial blocks per round, ``beta = nu n p``.

        This is the quantity called β in the PSS consistency condition and the
        per-round expectation behind Eq. (27).
        """
        return self.nu * self.n * self.p

    # ------------------------------------------------------------------
    # Quantities used by Theorem 1 (Eq. 44 / Eq. 26)
    # ------------------------------------------------------------------
    @property
    def log_convergence_opportunity_probability(self) -> float:
        """``ln(alpha_bar^(2 Δ) * alpha1)`` — log of Eq. (44)."""
        return 2.0 * self.delta * self.log_alpha_bar + self.log_alpha1

    @property
    def convergence_opportunity_probability(self) -> float:
        """Stationary probability of a convergence opportunity, Eq. (44)."""
        return math.exp(self.log_convergence_opportunity_probability)

    @property
    def log_mu_nu_ratio(self) -> float:
        """``ln(mu / nu)`` — the denominator of the paper's neat bound."""
        if self.nu <= 0.0:
            raise ParameterError("ln(mu/nu) is undefined for nu = 0")
        return math.log(self.mu / self.nu)

    # ------------------------------------------------------------------
    # Convenience constructors / transformations
    # ------------------------------------------------------------------
    def with_nu(self, nu: float) -> "ProtocolParameters":
        """Return a copy with a different adversarial fraction."""
        return replace(self, nu=nu)

    def with_p(self, p: float) -> "ProtocolParameters":
        """Return a copy with a different proof-of-work hardness."""
        return replace(self, p=p)

    def with_delta(self, delta: int) -> "ProtocolParameters":
        """Return a copy with a different maximum network delay."""
        return replace(self, delta=delta)

    def scaled_to_c(self, c: float) -> "ProtocolParameters":
        """Return a copy whose hardness ``p`` is chosen so that ``1/(p n Δ) = c``."""
        if c <= 0.0:
            raise ParameterError(f"c must be positive, got {c!r}")
        return replace(self, p=1.0 / (c * self.n * self.delta))

    def as_dict(self) -> dict:
        """Return the primary and derived quantities as a plain dictionary."""
        return {
            "p": self.p,
            "n": self.n,
            "delta": self.delta,
            "mu": self.mu,
            "nu": self.nu,
            "c": self.c,
            "alpha": self.alpha,
            "alpha_bar": self.alpha_bar,
            "alpha1": self.alpha1,
            "beta": self.beta,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProtocolParameters(p={self.p:.3e}, n={self.n}, delta={self.delta}, "
            f"nu={self.nu:.4f}, c={self.c:.4g})"
        )


def parameters_from_c(
    c: float,
    n: int,
    delta: int,
    nu: float,
    strict_model: bool = True,
) -> ProtocolParameters:
    """Build :class:`ProtocolParameters` from the headline quantity ``c``.

    The paper's Figure 1 is drawn in terms of ``c = 1/(p n Δ)``; this helper
    inverts that relation, choosing ``p = 1 / (c n Δ)``.

    >>> params = parameters_from_c(c=10.0, n=100_000, delta=10, nu=0.2)
    >>> round(params.c, 9)
    10.0
    """
    if c <= 0.0:
        raise ParameterError(f"c must be positive, got {c!r}")
    p = 1.0 / (c * n * delta)
    return ProtocolParameters(p=p, n=n, delta=delta, nu=nu, strict_model=strict_model)


def parameters_for_target_alpha(
    alpha: float,
    n: int,
    delta: int,
    nu: float,
    strict_model: bool = True,
) -> ProtocolParameters:
    """Choose the hardness ``p`` so that the per-round honest success probability is ``alpha``.

    Solves ``1 - (1 - p)^(mu n) = alpha`` for ``p``.  Useful when configuring
    simulations where a target block rate, rather than a target ``c``, is the
    natural handle.
    """
    if not (0.0 < alpha < 1.0):
        raise ParameterError(f"target alpha must lie in (0, 1), got {alpha!r}")
    mu = 1.0 - nu
    honest = mu * n
    if honest <= 0:
        raise ParameterError("mu * n must be positive")
    p = -math.expm1(math.log1p(-alpha) / honest)
    return ProtocolParameters(p=p, n=n, delta=delta, nu=nu, strict_model=strict_model)
