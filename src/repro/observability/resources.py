"""Process-level resource accounting sampled at run boundaries.

Two gauges, both cheap enough to sample once per ``ExperimentRunner.run_*``
call (one ``getrusage`` syscall plus a dict walk over a handful of buffers)
and both answering the capacity question a serving tier asks first — how
much memory does one experiment point actually cost?

* **peak RSS** — the process's resident-set high-water mark from
  :func:`resource.getrusage` (``ru_maxrss``; kibibytes on Linux, bytes on
  macOS, normalized to bytes here).  Monotone over the process lifetime, so
  sampling it *after* a point ran bounds that point's footprint from above.
* **workspace high water** — the largest total byte footprint the runner's
  :class:`~repro.backend.Workspace` ever held
  (:attr:`~repro.backend.Workspace.high_water_bytes`): the scratch-buffer
  half of the memory story the RSS number blends with everything else.

:func:`sample_resource_gauges` records both through the ambient
:data:`~repro.observability.METRICS` handle (``resource.peak_rss_bytes``,
``resource.workspace_high_water_bytes``) and returns the sample as a plain
dict, which :class:`~repro.simulation.ExperimentRunner` stamps into every
run-manifest record under ``extra["resources"]``.  When neither metrics nor
a run log is active the runner never calls this module, preserving the
layer's zero-overhead-when-off contract.
"""

from __future__ import annotations

import sys
from typing import Dict, Optional

from .metrics import METRICS

__all__ = ["peak_rss_bytes", "sample_resource_gauges"]


def peak_rss_bytes() -> Optional[int]:
    """The process's peak resident set size in bytes, or ``None`` if unknown.

    ``resource`` is POSIX-only and ``ru_maxrss`` units are platform-specific
    (kibibytes on Linux, bytes on macOS); unknown platforms or a zero
    reading yield ``None`` rather than a misleading number.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if peak <= 0:  # pragma: no cover - degenerate kernel report
        return None
    scale = 1 if sys.platform == "darwin" else 1024
    return int(peak) * scale


def sample_resource_gauges(workspace=None) -> Dict[str, Optional[int]]:
    """Sample the resource gauges, record them, and return the sample.

    ``workspace`` (when given) contributes its
    :attr:`~repro.backend.Workspace.high_water_bytes`; every non-``None``
    value is also set as a ``resource.<name>`` gauge on the ambient metrics
    registry (a no-op while metrics are disabled).
    """
    sample: Dict[str, Optional[int]] = {"peak_rss_bytes": peak_rss_bytes()}
    if workspace is not None:
        sample["workspace_high_water_bytes"] = int(workspace.high_water_bytes)
    for name, value in sample.items():
        if value is not None:
            METRICS.gauge(f"resource.{name}", value)
    return sample
