"""The unified perf trajectory: one schema for every benchmark's history.

The repository's benchmark gates catch regressions at a point in time; the
*trajectory* makes throughput history a standing, diffable artefact.  Every
``benchmarks/bench_*.py`` module appends one schema-versioned record per
gated measurement to a single ``BENCH_trajectory.json`` at the repo root
(committed, so the perf history of the project rides along with its code
history), and :func:`repro.analysis.perf_report.perf_trajectory_table`
renders the file as a table.

Record shape (``schema_version`` 1)::

    {
      "schema": "repro.bench_trajectory",
      "schema_version": 1,
      "benchmark": "scenarios",          # which bench module measured it
      "version": "1.8.0",                # repro.__version__ at record time
      "mode": "quick" | "full",          # REPRO_BENCH_QUICK sizing
      "timestamp": 1754650000.0,         # unix seconds (None for migrated
                                         #   pre-schema entries)
      "machine": {...} | None,           # stable fingerprint: cpu model,
                                         #   arch, core count, python/numpy
                                         #   (None for migrated entries)
      "metrics": {...}                   # benchmark-specific numbers:
                                         #   speedups, throughputs, gates
    }

The two pre-schema files (``BENCH_rare_events.json``,
``BENCH_equivocation.json``) remain in place for their original consumers;
:func:`migrate_legacy_entries` lifts their entries into this schema (with
``timestamp``/``machine`` of ``None``), which is how the committed
``BENCH_trajectory.json`` was seeded.
"""

from __future__ import annotations

import json
import os
import platform
from typing import Dict, List, Optional, Union

from ..errors import ObservabilityError

__all__ = [
    "TRAJECTORY_SCHEMA",
    "TRAJECTORY_SCHEMA_VERSION",
    "TRAJECTORY_ENV_VAR",
    "BENCH_MODES",
    "machine_info",
    "trajectory_record",
    "validate_trajectory_record",
    "resolve_trajectory_path",
    "append_trajectory",
    "load_trajectory",
    "migrate_legacy_entries",
]

#: Schema identifier stamped into every record.
TRAJECTORY_SCHEMA = "repro.bench_trajectory"

#: Bumped whenever the record fields change incompatibly.
TRAJECTORY_SCHEMA_VERSION = 1

#: Environment variable overriding the trajectory file path (used by the CI
#: smoke step to validate appends without touching the committed file).
TRAJECTORY_ENV_VAR = "REPRO_BENCH_TRAJECTORY"

#: Workload sizing a record was measured under.
BENCH_MODES = ("quick", "full")

_REQUIRED_FIELDS = {
    "schema": str,
    "schema_version": int,
    "benchmark": str,
    "version": str,
    "mode": str,
    "timestamp": (type(None), int, float),
    "machine": (type(None), dict),
    "metrics": dict,
}


def _cpu_model() -> Optional[str]:
    """The CPU model string, or ``None`` when the platform hides it."""
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as source:
            for line in source:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    model = platform.processor()
    return model or None


def machine_info() -> Dict[str, object]:
    """A *stable* host fingerprint stamped into fresh trajectory records.

    Deliberately limited to what makes two perf numbers comparable — CPU
    model and architecture, core count, python/numpy versions — and nothing
    that churns without changing performance (kernel build strings) or
    identifies the host (no hostname): trajectory files are committed, and
    the regression sentinel wants to group records by *capability*, not by
    machine identity.
    """
    import numpy

    return {
        "cpu": _cpu_model(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
    }


def trajectory_record(
    benchmark: str,
    mode: str,
    metrics: dict,
    version: Optional[str] = None,
    timestamp="auto",
    machine="auto",
) -> dict:
    """Build (and validate) one trajectory record.

    ``timestamp`` and ``machine`` default to the current clock and
    :func:`machine_info`; pass ``None`` explicitly for records whose
    provenance is unknown (the legacy migration path).
    """
    import time

    from .. import _version

    record = {
        "schema": TRAJECTORY_SCHEMA,
        "schema_version": TRAJECTORY_SCHEMA_VERSION,
        "benchmark": str(benchmark),
        "version": _version.__version__ if version is None else str(version),
        "mode": str(mode),
        "timestamp": time.time() if timestamp == "auto" else timestamp,
        "machine": machine_info() if machine == "auto" else machine,
        "metrics": dict(metrics),
    }
    return validate_trajectory_record(record)


def validate_trajectory_record(record: dict) -> dict:
    """Check one record against the trajectory schema; returns it unchanged."""
    if not isinstance(record, dict):
        raise ObservabilityError(
            f"trajectory record must be a dict, got {type(record).__name__}"
        )
    for name, types in _REQUIRED_FIELDS.items():
        if name not in record:
            raise ObservabilityError(
                f"trajectory record missing field {name!r}"
            )
        if not isinstance(record[name], types):
            raise ObservabilityError(
                f"trajectory field {name!r} has type "
                f"{type(record[name]).__name__}, expected {types!r}"
            )
    if record["schema"] != TRAJECTORY_SCHEMA:
        raise ObservabilityError(
            f"unknown trajectory schema {record['schema']!r}"
        )
    if record["schema_version"] != TRAJECTORY_SCHEMA_VERSION:
        raise ObservabilityError(
            "unsupported trajectory schema version "
            f"{record['schema_version']!r}"
        )
    if record["mode"] not in BENCH_MODES:
        raise ObservabilityError(
            f"trajectory mode must be one of {BENCH_MODES}, got "
            f"{record['mode']!r}"
        )
    if not record["metrics"]:
        raise ObservabilityError("trajectory record has empty metrics")
    try:
        json.dumps(record)
    except (TypeError, ValueError) as error:
        raise ObservabilityError(
            f"trajectory record is not JSON-serializable: {error}"
        ) from None
    return record


def resolve_trajectory_path(
    path: Union[None, str, os.PathLike] = None, environ=None
) -> str:
    """Explicit path, else ``REPRO_BENCH_TRAJECTORY``, else the CWD default."""
    if path is not None:
        return os.fspath(path)
    environ = os.environ if environ is None else environ
    override = environ.get(TRAJECTORY_ENV_VAR, "")
    return override if override else "BENCH_trajectory.json"


def append_trajectory(
    record: dict, path: Union[None, str, os.PathLike] = None
) -> str:
    """Validate ``record`` and append it to the trajectory file.

    The file is a single JSON document ``{"schema": ..., "schema_version":
    ..., "entries": [...]}`` — read-modify-written whole, which keeps it
    diffable and hand-editable (benchmarks append rarely and serially).
    Returns the path written.
    """
    validate_trajectory_record(record)
    path = resolve_trajectory_path(path)
    entries = []
    if os.path.exists(path):
        entries = _load_document(path)
    entries.append(record)
    document = {
        "schema": TRAJECTORY_SCHEMA,
        "schema_version": TRAJECTORY_SCHEMA_VERSION,
        "entries": entries,
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as sink:
        json.dump(document, sink, indent=2, sort_keys=True)
        sink.write("\n")
    return path


def load_trajectory(path: Union[None, str, os.PathLike] = None) -> List[dict]:
    """Every validated record of the trajectory file, oldest first."""
    path = resolve_trajectory_path(path)
    return [validate_trajectory_record(entry) for entry in _load_document(path)]


def _load_document(path: str) -> List[dict]:
    try:
        with open(path, "r", encoding="utf-8") as source:
            document = json.load(source)
    except OSError as error:
        raise ObservabilityError(
            f"cannot read trajectory file {path!s}: {error}"
        ) from None
    except json.JSONDecodeError as error:
        raise ObservabilityError(
            f"trajectory file {path!s} is not valid JSON: {error}"
        ) from None
    if not isinstance(document, dict) or "entries" not in document:
        raise ObservabilityError(
            f"trajectory file {path!s} must be a dict with an 'entries' list"
        )
    entries = document["entries"]
    if not isinstance(entries, list):
        raise ObservabilityError(
            f"trajectory file {path!s} 'entries' must be a list"
        )
    return entries


def migrate_legacy_entries(benchmark: str, entries: List[dict]) -> List[dict]:
    """Lift pre-schema ``BENCH_*.json`` entries into trajectory records.

    The legacy files carried flat metric dicts with a ``version`` key and no
    machine/timestamp provenance; everything except ``version`` becomes the
    record's ``metrics``, and the unknown provenance fields are ``None``.
    Legacy benches always recorded full-size workloads, so ``mode`` is
    ``"full"``.
    """
    records = []
    for entry in entries:
        metrics = {key: value for key, value in entry.items() if key != "version"}
        records.append(
            trajectory_record(
                benchmark,
                "full",
                metrics,
                version=str(entry.get("version", "unknown")),
                timestamp=entry.get("timestamp", None),
                machine=None,
            )
        )
    return records
