"""Cross-process telemetry: observability that survives the pool boundary.

The :class:`~repro.simulation.ExperimentRunner` fans grids out over a
:mod:`multiprocessing` pool, and before this module every span, counter and
manifest line produced *inside* a worker died with the worker: the parent
saw only result tuples, so a sharded grid was an observability blind spot
exactly where the most work happens.  Three pieces close it:

* **capture** — a worker entrypoint wraps its execution in
  :func:`capture_worker_telemetry`, which scopes a fresh tracer and metrics
  registry to the worker (via :func:`~repro.observability.use_tracer` /
  :func:`~repro.observability.use_metrics`) and hands the worker's runner a
  :class:`BufferedRunLog` so manifest records accumulate in memory instead
  of racing other workers for the parent's log file.  Capture is driven by
  flags the *parent* computes from its own state (tracing enabled, metrics
  enabled, run log configured), shipped with the task — a worker never
  guesses from its inherited environment.  When nothing is requested the
  context degrades to a :class:`DiscardRunLog` (which also suppresses a
  worker-side ``REPRO_RUN_LOG`` resolution that would double-log points)
  and :meth:`TelemetryCapture.telemetry` returns ``None``, keeping the
  disabled path free.
* **transport** — :class:`WorkerTelemetry` is the picklable envelope: span
  trees as the dicts :meth:`~repro.observability.SpanRecord.to_dict`
  produces, one counters/gauges snapshot, and the buffered manifest
  records.  :func:`span_from_dict` reverses the span serialization on the
  parent side.
* **merge** — :func:`merge_worker_telemetry` grafts the worker's span trees
  under the parent's open grid span (each root stamped with its ``shard``
  index; worker ``start`` clocks are process-local and only meaningful
  within a shard's subtree), folds the counters and gauges into the ambient
  :data:`~repro.observability.METRICS` registry (restoring the per-method
  cache hit/miss/version-skip accounting the sharded path used to bypass),
  and appends the manifest records — shard-stamped under
  ``extra["shard"]`` — to the parent run log, re-emitting the version-skip
  log line for any record that carries a ``stale_version``.  Counter merges
  are sums and manifests are appended in shard order, so a sharded grid
  reports the same totals and the same manifest stream (order aside) as the
  sequential run of the same points.
"""

from __future__ import annotations

import logging
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .manifest import RunLog, validate_manifest_record
from .metrics import METRICS, Metrics, use_metrics
from .tracer import SpanRecord, Tracer, use_tracer

__all__ = [
    "WorkerTelemetry",
    "BufferedRunLog",
    "DiscardRunLog",
    "TelemetryCapture",
    "capture_worker_telemetry",
    "span_from_dict",
    "merge_worker_telemetry",
]


@dataclass
class WorkerTelemetry:
    """One worker's observability output, shaped for pickling.

    ``spans`` holds root span trees as plain dicts (the
    :meth:`~repro.observability.SpanRecord.to_dict` form), ``counters`` and
    ``gauges`` one metrics snapshot, ``manifests`` the validated run-manifest
    records the worker's runner produced.
    """

    spans: List[dict] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, object] = field(default_factory=dict)
    manifests: List[dict] = field(default_factory=list)


class BufferedRunLog(RunLog):
    """An in-memory run log: validates like the file sink, ships as data.

    Worker processes log through one of these so the parent can append
    every record to the real log itself — one writer, shard-stamped lines,
    and an identical manifest stream whether a grid ran sharded or not.
    """

    def __init__(self):
        self.path = None
        self.records: List[dict] = []

    def append(self, record: dict) -> dict:
        validate_manifest_record(record)
        self.records.append(record)
        return record

    def read(self) -> List[dict]:
        return list(self.records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BufferedRunLog(records={len(self.records)})"


class DiscardRunLog(RunLog):
    """A run log that drops every record.

    Handed to worker runners when the parent has no run log configured:
    passing an explicit sink (rather than ``None``) stops the worker from
    resolving ``REPRO_RUN_LOG`` on its own and writing lines the parent
    would not account for.
    """

    def __init__(self):
        self.path = None

    def append(self, record: dict) -> dict:
        return record

    def read(self) -> List[dict]:
        return []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "DiscardRunLog()"


class TelemetryCapture:
    """What :func:`capture_worker_telemetry` yields inside the context.

    Exposes the scoped ``tracer`` / ``metrics`` (``None`` when not
    requested) and the ``run_log`` the worker's runner must be constructed
    with; :meth:`telemetry` packages everything once the work is done.
    """

    def __init__(self, spans: bool, metrics: bool, manifests: bool):
        self._wants = bool(spans) or bool(metrics) or bool(manifests)
        self.tracer: Optional[Tracer] = None
        self.metrics: Optional[Metrics] = None
        self.run_log: RunLog = (
            BufferedRunLog() if manifests else DiscardRunLog()
        )

    def telemetry(self) -> Optional[WorkerTelemetry]:
        """The captured envelope, or ``None`` when nothing was requested."""
        if not self._wants:
            return None
        snapshot = (
            {"counters": {}, "gauges": {}}
            if self.metrics is None
            else self.metrics.snapshot()
        )
        return WorkerTelemetry(
            spans=[] if self.tracer is None else self.tracer.snapshot(),
            counters=dict(snapshot["counters"]),
            gauges=dict(snapshot["gauges"]),
            manifests=(
                self.run_log.records
                if isinstance(self.run_log, BufferedRunLog)
                else []
            ),
        )


@contextmanager
def capture_worker_telemetry(
    spans: bool = False, metrics: bool = False, manifests: bool = False
) -> Iterator[TelemetryCapture]:
    """Scope a worker's observability so it can be shipped to the parent.

    Installs a fresh tracer and/or metrics registry for the block (restoring
    whatever the worker process inherited afterwards) and provides the
    buffering run log; read :meth:`TelemetryCapture.telemetry` *after* the
    block for the complete envelope.
    """
    capture = TelemetryCapture(spans, metrics, manifests)
    with ExitStack() as stack:
        if spans:
            capture.tracer = stack.enter_context(use_tracer())
        if metrics:
            capture.metrics = stack.enter_context(use_metrics())
        yield capture


def span_from_dict(payload: dict) -> SpanRecord:
    """Rebuild a :class:`SpanRecord` tree from its ``to_dict`` serialization."""
    return SpanRecord(
        name=str(payload["name"]),
        start=float(payload["start"]),
        duration=float(payload["duration"]),
        attributes=dict(payload.get("attributes", {})),
        children=[span_from_dict(child) for child in payload.get("children", [])],
    )


def merge_worker_telemetry(
    telemetry: Optional[WorkerTelemetry],
    shard: int,
    span=None,
    run_log: Optional[RunLog] = None,
    logger: Optional[logging.Logger] = None,
) -> None:
    """Fold one worker's telemetry into the parent's observability state.

    ``span`` is the parent's open grid span (the shared
    :data:`~repro.observability.NULL_SPAN` when tracing is off — it carries
    no record, so grafting silently skips); ``run_log`` the parent's sink
    for the shard-stamped manifest records; ``logger`` receives one INFO
    line per version-skip recorded in a worker, mirroring the sequential
    path's logging.  ``None`` telemetry (capture was off) is a no-op.
    """
    if telemetry is None:
        return
    record = getattr(span, "record", None)
    if record is not None:
        for root in telemetry.spans:
            grafted = span_from_dict(root)
            grafted.attributes["shard"] = int(shard)
            record.children.append(grafted)
    registry = METRICS.active
    if registry is not None:
        for name, value in telemetry.counters.items():
            registry.increment(name, value)
        for name, value in telemetry.gauges.items():
            registry.gauge(name, value)
    if run_log is not None:
        for manifest in telemetry.manifests:
            stamped = dict(manifest)
            extra = dict(stamped.get("extra", {}))
            extra["shard"] = int(shard)
            stamped["extra"] = extra
            run_log.append(stamped)
            stale = stamped.get("stale_version")
            if stale is not None and logger is not None:
                logger.info(
                    "cache entry for %s point %s was written by repro %s "
                    "(current %s); recomputed in shard %d",
                    stamped["cache_prefix"],
                    stamped["cache_key"][:12],
                    stale,
                    stamped["repro_version"],
                    int(shard),
                )
