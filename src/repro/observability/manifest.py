"""Per-run JSONL manifests: a provenance trail next to the result cache.

Every ``ExperimentRunner.run_*`` call can append one JSON line to a *run
log* describing exactly what was executed and where the result came from:
the parameter payload, shape, base seed, cache key and prefix, whether the
call was a cache hit / miss / uncached, whether a warm entry was skipped
because it was written by an older package version, the wall-clock
duration, the ambient backend and dtype policy, and a digest of the result
arrays.  Cached ``.npz`` artefacts thereby gain a provenance trail: given a
cache file name, the run log says which call produced it, when, how long it
took, and what the bytes hashed to.

Activation is by construction argument (``ExperimentRunner(run_log=...)``)
or the ``REPRO_RUN_LOG`` environment variable naming the target path — the
conventional location is ``<cache_dir>/run_log.jsonl`` next to the npz
cache.  Records follow the versioned schema below and are validated on
write and on read (:func:`validate_manifest_record`), so downstream tooling
can rely on the fields without defensive parsing.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from ..errors import ObservabilityError

__all__ = [
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_VERSION",
    "RUN_LOG_ENV_VAR",
    "CACHE_STATES",
    "digest_arrays",
    "manifest_record",
    "validate_manifest_record",
    "RunLog",
    "resolve_run_log",
    "read_run_log",
]

#: Schema identifier stamped into every record.
MANIFEST_SCHEMA = "repro.run_manifest"

#: Bumped whenever the record fields change incompatibly.
MANIFEST_SCHEMA_VERSION = 1

#: Environment variable naming the run-log path when no explicit one is given.
RUN_LOG_ENV_VAR = "REPRO_RUN_LOG"

#: Where a result may come from: a warm cache entry, a fresh computation, or
#: a computation on a runner with caching disabled.
CACHE_STATES = ("hit", "miss", "disabled")

#: Fields every record must carry, with their permitted types.
_REQUIRED_FIELDS = {
    "schema": str,
    "schema_version": int,
    "timestamp": (int, float),
    "method": str,
    "cache_prefix": str,
    "cache_key": str,
    "cache": str,
    "stale_version": (type(None), str),
    "duration_s": (int, float),
    "params": dict,
    "trials": int,
    "rounds": int,
    "base_seed": int,
    "backend": str,
    "dtype_policy": str,
    "repro_version": str,
    "result_digest": str,
    "extra": dict,
}


def digest_arrays(**named) -> str:
    """SHA-256 over named host arrays (name, dtype, shape and raw bytes).

    Sorted by name so the digest is independent of keyword order; used both
    for manifest ``result_digest`` fields and the disabled-path golden
    tests.
    """
    blob = hashlib.sha256()
    for name in sorted(named):
        array = np.ascontiguousarray(np.asarray(named[name]))
        blob.update(name.encode("utf-8"))
        blob.update(str(array.dtype).encode("utf-8"))
        blob.update(str(array.shape).encode("utf-8"))
        blob.update(array.tobytes())
    return blob.hexdigest()


def manifest_record(
    method: str,
    cache_prefix: str,
    cache_key: str,
    cache: str,
    duration_s: float,
    params: dict,
    trials: int,
    rounds: int,
    base_seed: int,
    result_digest: str,
    stale_version: Optional[str] = None,
    extra: Optional[dict] = None,
    repro_version: Optional[str] = None,
) -> dict:
    """Build (and validate) one schema-conformant run-manifest record.

    The ambient backend and dtype-policy names are stamped automatically;
    ``extra`` carries method-specific context (scenario name, rare-event
    spec, delay-model name, ...).
    """
    from .. import _version
    from ..backend import get_backend, get_dtype_policy

    record = {
        "schema": MANIFEST_SCHEMA,
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "timestamp": time.time(),
        "method": str(method),
        "cache_prefix": str(cache_prefix),
        "cache_key": str(cache_key),
        "cache": str(cache),
        "stale_version": stale_version,
        "duration_s": float(duration_s),
        "params": dict(params),
        "trials": int(trials),
        "rounds": int(rounds),
        "base_seed": int(base_seed),
        "backend": get_backend().name,
        "dtype_policy": get_dtype_policy().name,
        "repro_version": (
            _version.__version__ if repro_version is None else str(repro_version)
        ),
        "result_digest": str(result_digest),
        "extra": {} if extra is None else dict(extra),
    }
    validate_manifest_record(record)
    return record


def validate_manifest_record(record: dict) -> dict:
    """Check one record against the manifest schema; returns it unchanged.

    Raises :class:`~repro.errors.ObservabilityError` naming the first
    offending field, so a malformed writer fails loudly at write time rather
    than corrupting the log for every later reader.
    """
    if not isinstance(record, dict):
        raise ObservabilityError(
            f"manifest record must be a dict, got {type(record).__name__}"
        )
    for name, types in _REQUIRED_FIELDS.items():
        if name not in record:
            raise ObservabilityError(f"manifest record missing field {name!r}")
        if not isinstance(record[name], types):
            raise ObservabilityError(
                f"manifest field {name!r} has type "
                f"{type(record[name]).__name__}, expected {types!r}"
            )
    if record["schema"] != MANIFEST_SCHEMA:
        raise ObservabilityError(
            f"unknown manifest schema {record['schema']!r}"
        )
    if record["schema_version"] != MANIFEST_SCHEMA_VERSION:
        raise ObservabilityError(
            f"unsupported manifest schema version {record['schema_version']!r}"
        )
    if record["cache"] not in CACHE_STATES:
        raise ObservabilityError(
            f"manifest cache state must be one of {CACHE_STATES}, got "
            f"{record['cache']!r}"
        )
    try:
        json.dumps(record)
    except (TypeError, ValueError) as error:
        raise ObservabilityError(
            f"manifest record is not JSON-serializable: {error}"
        ) from None
    return record


class RunLog:
    """Append-only JSONL sink for run-manifest records.

    Each record is validated, serialized to one line and appended in a
    single write, so concurrent grid workers (each opening the file in
    append mode) interleave whole lines rather than corrupting each other.
    """

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = os.fspath(path)

    def append(self, record: dict) -> dict:
        """Validate ``record`` and append it as one JSON line."""
        validate_manifest_record(record)
        line = json.dumps(record, sort_keys=True)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        try:
            with open(self.path, "a", encoding="utf-8") as sink:
                sink.write(line + "\n")
        except OSError as error:
            raise ObservabilityError(
                f"cannot append to run log {self.path!r}: {error}"
            ) from None
        return record

    def read(self) -> List[dict]:
        """Every record in the log, validated, oldest first."""
        return read_run_log(self.path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunLog({self.path!r})"


def resolve_run_log(
    run_log: Union[None, str, os.PathLike, RunLog] = None,
    environ=None,
) -> Optional[RunLog]:
    """Resolve a run-log argument: explicit sink, path, or the environment.

    ``None`` consults ``REPRO_RUN_LOG`` (empty/unset means no logging), a
    string or path builds a :class:`RunLog` there, and an existing
    :class:`RunLog` passes through — the single resolution point
    :class:`~repro.simulation.runner.ExperimentRunner` calls.
    """
    if isinstance(run_log, RunLog):
        return run_log
    if run_log is not None:
        return RunLog(run_log)
    environ = os.environ if environ is None else environ
    path = environ.get(RUN_LOG_ENV_VAR, "")
    return RunLog(path) if path else None


def read_run_log(path: Union[str, os.PathLike]) -> List[dict]:
    """Parse and validate every record of a JSONL run log."""
    records = []
    try:
        with open(os.fspath(path), "r", encoding="utf-8") as source:
            for number, line in enumerate(source, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ObservabilityError(
                        f"run log {path!s} line {number} is not valid JSON: "
                        f"{error}"
                    ) from None
                records.append(validate_manifest_record(record))
    except OSError as error:
        raise ObservabilityError(
            f"cannot read run log {path!s}: {error}"
        ) from None
    return records
