"""Observability: tracing, metrics, run manifests and the perf trajectory.

Four pieces, all off by default and all bit-neutral when off:

* **tracing** (:mod:`repro.observability.tracer`) — nestable wall-time
  spans dispatched through one module-level :data:`TRACE` handle that every
  engine imports as ``_TRACE``.  Disabled dispatch returns a shared
  :class:`NullSpan` from a single ``None`` check (no allocation, no clock
  read), so the default path is bit-identical to uninstrumented code —
  pinned by golden-digest tests and a <2% overhead gate in
  ``benchmarks/bench_observability.py``.  Enable with ``REPRO_TRACE=1`` or
  a :func:`use_tracer` context; spans record wall time, the ambient backend
  and dtype policy, and whatever attributes the call site attaches
  (trials, rounds, cache state, workspace bytes).
* **metrics** (:mod:`repro.observability.metrics`) — counters and gauges
  behind the same handle pattern (:data:`METRICS`): trials simulated,
  rounds scanned, cache hits/misses per runner method, stale-by-version
  cache skips, host<->device transfers in the accelerator backend,
  workspace buffer reuse versus fresh allocation, rare-event pilot
  iterations and ESS.  :meth:`Metrics.snapshot` exports everything as one
  JSON-serializable dict.
* **run manifests** (:mod:`repro.observability.manifest`) — every
  ``ExperimentRunner.run_*`` call can append a validated JSONL record
  (params, seed, version, backend, cache key, hit/miss, duration, result
  digest) to a run log named by ``REPRO_RUN_LOG`` or the runner's
  ``run_log=`` argument, giving every cached artefact a provenance trail.
* **perf trajectory** (:mod:`repro.observability.trajectory`) — the
  schema-versioned ``BENCH_trajectory.json`` every benchmark module appends
  to, rendered by :func:`repro.analysis.perf_report.perf_trajectory_table`,
  watched by :func:`repro.analysis.perf_report.detect_regressions` (the CI
  perf sentinel), so throughput history is persisted, diffable *and* acted
  on instead of folklore.

Three cross-process pieces extend the substrate past one process:

* **distributed capture** (:mod:`repro.observability.distributed`) — grid
  workers run under :func:`capture_worker_telemetry` and ship their span
  trees, metrics snapshot and buffered manifest records back with the
  result; :func:`merge_worker_telemetry` grafts the spans under the
  parent's grid span (shard-stamped), folds the counters into the ambient
  registry and appends the manifests to the parent run log, so a sharded
  grid reports exactly like a sequential one.
* **grid progress** (:mod:`repro.observability.progress`) — per-point
  completion events (completed/total, duration, running cache-hit ratio,
  ETA) to a stderr status line or JSONL file, configured by
  ``REPRO_PROGRESS`` and off by default.
* **resource accounting** (:mod:`repro.observability.resources`) — peak-RSS
  and workspace high-water gauges sampled at run boundaries and stamped
  into every manifest's ``extra["resources"]``.

Importing this package applies the environment activation exactly once:
``REPRO_TRACE=1`` installs a global tracer *and* metrics registry (one
switch turns the instrumentation layer on).
"""

from .tracer import (
    NULL_SPAN,
    TRACE,
    TRACE_ENV_VAR,
    NullSpan,
    SpanRecord,
    Tracer,
    TraceHandle,
    install_from_env,
    use_tracer,
)
from .metrics import METRICS, Metrics, MetricsHandle, use_metrics
from .manifest import (
    CACHE_STATES,
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_VERSION,
    RUN_LOG_ENV_VAR,
    RunLog,
    digest_arrays,
    manifest_record,
    read_run_log,
    resolve_run_log,
    validate_manifest_record,
)
from .trajectory import (
    BENCH_MODES,
    TRAJECTORY_ENV_VAR,
    TRAJECTORY_SCHEMA,
    TRAJECTORY_SCHEMA_VERSION,
    append_trajectory,
    load_trajectory,
    machine_info,
    migrate_legacy_entries,
    resolve_trajectory_path,
    trajectory_record,
    validate_trajectory_record,
)
from .distributed import (
    BufferedRunLog,
    DiscardRunLog,
    TelemetryCapture,
    WorkerTelemetry,
    capture_worker_telemetry,
    merge_worker_telemetry,
    span_from_dict,
)
from .progress import (
    PROGRESS_ENV_VAR,
    PROGRESS_SCHEMA,
    GridProgress,
    JsonlProgressSink,
    StderrProgressSink,
    resolve_progress_sinks,
)
from .resources import peak_rss_bytes, sample_resource_gauges

__all__ = [
    # tracer
    "TRACE",
    "TRACE_ENV_VAR",
    "NULL_SPAN",
    "NullSpan",
    "SpanRecord",
    "Tracer",
    "TraceHandle",
    "use_tracer",
    "install_from_env",
    # metrics
    "METRICS",
    "Metrics",
    "MetricsHandle",
    "use_metrics",
    # manifest
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_VERSION",
    "RUN_LOG_ENV_VAR",
    "CACHE_STATES",
    "RunLog",
    "digest_arrays",
    "manifest_record",
    "read_run_log",
    "resolve_run_log",
    "validate_manifest_record",
    # trajectory
    "TRAJECTORY_SCHEMA",
    "TRAJECTORY_SCHEMA_VERSION",
    "TRAJECTORY_ENV_VAR",
    "BENCH_MODES",
    "machine_info",
    "trajectory_record",
    "validate_trajectory_record",
    "resolve_trajectory_path",
    "append_trajectory",
    "load_trajectory",
    "migrate_legacy_entries",
    # distributed
    "WorkerTelemetry",
    "BufferedRunLog",
    "DiscardRunLog",
    "TelemetryCapture",
    "capture_worker_telemetry",
    "span_from_dict",
    "merge_worker_telemetry",
    # progress
    "PROGRESS_ENV_VAR",
    "PROGRESS_SCHEMA",
    "GridProgress",
    "StderrProgressSink",
    "JsonlProgressSink",
    "resolve_progress_sinks",
    # resources
    "peak_rss_bytes",
    "sample_resource_gauges",
]

# One-switch environment activation: REPRO_TRACE=1 turns on both the global
# tracer and the global metrics registry at import time.
if install_from_env() is not None and not METRICS.enabled:
    METRICS.install()
