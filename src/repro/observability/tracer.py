"""Nestable wall-time spans with a zero-overhead disabled path.

The engines are instrumented through one module-level dispatch point,
:data:`TRACE` — a :class:`TraceHandle` each engine module imports once
(``from ..observability import TRACE as _TRACE``) and holds forever.  While
no tracer is installed (the default), ``_TRACE.span(...)`` is a single
attribute check returning one shared, stateless :class:`NullSpan` — no
allocation, no clock read, no branching in the span body — so the disabled
path is bit-identical to uninstrumented code (pinned by the golden-digest
tests) and costs well under the 2% gate of
``benchmarks/bench_observability.py``.  The AST hygiene guard
(``tests/test_backend_hygiene.py``) additionally pins every hot-path call
site *outside* the per-round loops, so steady-state kernels never touch the
tracer at all.

With a tracer installed (``REPRO_TRACE=1`` at import, or a
:func:`use_tracer` context), ``span(name, **attributes)`` opens a
:class:`SpanRecord` that nests under the innermost open span, measures wall
time with :func:`time.perf_counter`, and stamps the ambient backend and
dtype-policy names — so a trace tree answers "where did this run spend its
time, on which backend, under which policy" without any engine changes.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = [
    "TRACE_ENV_VAR",
    "SpanRecord",
    "NullSpan",
    "NULL_SPAN",
    "Tracer",
    "TraceHandle",
    "TRACE",
    "use_tracer",
    "install_from_env",
]

#: Environment variable that installs a global tracer at import time.
TRACE_ENV_VAR = "REPRO_TRACE"


@dataclass
class SpanRecord:
    """One completed (or open) span: a named, attributed wall-time interval."""

    name: str
    start: float
    duration: float = 0.0
    attributes: Dict[str, object] = field(default_factory=dict)
    children: List["SpanRecord"] = field(default_factory=list)

    @property
    def child_time(self) -> float:
        """Wall time attributed to direct children."""
        return sum(child.duration for child in self.children)

    @property
    def self_time(self) -> float:
        """Wall time spent in this span outside any child span."""
        return max(self.duration - self.child_time, 0.0)

    def to_dict(self) -> dict:
        """JSON-serializable form (used by snapshots and the run manifests)."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def walk(self) -> Iterator["SpanRecord"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class NullSpan:
    """The shared span of the disabled path: every operation is a no-op.

    A single stateless instance (:data:`NULL_SPAN`) is returned for every
    disabled ``span()`` call, so disabled tracing allocates nothing and the
    ``with`` statement costs two trivial method calls.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attributes) -> "NullSpan":
        return self


#: The one null span every disabled ``span()`` call returns.
NULL_SPAN = NullSpan()


class _Span:
    """A live span: context manager that records into its :class:`Tracer`."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord):
        self._tracer = tracer
        self.record = record

    def set(self, **attributes) -> "_Span":
        """Attach attributes after entry (e.g. outputs known only at exit)."""
        self.record.attributes.update(attributes)
        return self

    def __enter__(self) -> "_Span":
        self._tracer._push(self.record)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._pop(self.record)
        return False


class Tracer:
    """Records a forest of nested :class:`SpanRecord` trees.

    Spans nest by runtime call order: a span opened while another is open
    becomes its child, independent of which module opened it — runner spans
    therefore contain engine spans, which contain kernel spans.  Not
    thread-safe (like the engines themselves); use one tracer per runner.
    """

    def __init__(self, clock=time.perf_counter, stamp_context: bool = True):
        self._clock = clock
        self._stamp_context = stamp_context
        self._stack: List[SpanRecord] = []
        self.roots: List[SpanRecord] = []

    def span(self, name: str, **attributes) -> _Span:
        """Open a new span; use as ``with tracer.span("name", key=value):``."""
        if self._stamp_context:
            # Lazy import: the backend package is unrelated at import time,
            # and this path only runs with tracing enabled.
            from ..backend import get_backend, get_dtype_policy

            attributes.setdefault("backend", get_backend().name)
            attributes.setdefault("dtype_policy", get_dtype_policy().name)
        record = SpanRecord(
            name=str(name), start=self._clock(), attributes=attributes
        )
        return _Span(self, record)

    # ------------------------------------------------------------------
    # Span bookkeeping (driven by _Span.__enter__/__exit__)
    # ------------------------------------------------------------------
    def _push(self, record: SpanRecord) -> None:
        record.start = self._clock()
        if self._stack:
            self._stack[-1].children.append(record)
        else:
            self.roots.append(record)
        self._stack.append(record)

    def _pop(self, record: SpanRecord) -> None:
        record.duration = self._clock() - record.start
        if self._stack and self._stack[-1] is record:
            self._stack.pop()
        elif record in self._stack:  # pragma: no cover - misnested exit
            while self._stack and self._stack[-1] is not record:
                self._stack.pop()
            self._stack.pop()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of currently-open spans."""
        return len(self._stack)

    def walk(self) -> Iterator[SpanRecord]:
        """Every recorded span, depth-first across all roots."""
        for root in self.roots:
            yield from root.walk()

    def total_time(self) -> float:
        """Summed duration of the root spans (children are contained)."""
        return sum(root.duration for root in self.roots)

    def snapshot(self) -> List[dict]:
        """JSON-serializable list of the root span trees."""
        return [root.to_dict() for root in self.roots]

    def reset(self) -> None:
        """Drop every recorded span (open spans are abandoned)."""
        self._stack.clear()
        self.roots.clear()


class TraceHandle:
    """The module-level dispatch point engines route every span through.

    Engine modules bind it once (``from ..observability import TRACE as
    _TRACE``); installing or uninstalling a tracer swaps behaviour for every
    call site at once without touching the engines.  Disabled dispatch is a
    single ``None`` check returning the shared :data:`NULL_SPAN`.
    """

    __slots__ = ("_tracer",)

    def __init__(self):
        self._tracer: Optional[Tracer] = None

    def span(self, name: str, **attributes):
        tracer = self._tracer
        if tracer is None:
            return NULL_SPAN
        return tracer.span(name, **attributes)

    @property
    def active(self) -> Optional[Tracer]:
        """The installed tracer, or ``None`` when tracing is disabled."""
        return self._tracer

    @property
    def enabled(self) -> bool:
        return self._tracer is not None

    def install(self, tracer: Optional[Tracer] = None) -> Tracer:
        """Install (and return) a tracer; a fresh one when none is given."""
        self._tracer = Tracer() if tracer is None else tracer
        return self._tracer

    def uninstall(self) -> Optional[Tracer]:
        """Disable tracing; returns the tracer that was installed, if any."""
        tracer, self._tracer = self._tracer, None
        return tracer


#: The global trace handle every instrumented module dispatches through.
TRACE = TraceHandle()


@contextmanager
def use_tracer(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install ``tracer`` (default: a fresh one) on :data:`TRACE` for a block.

    The previous installation (usually none) is restored on exit, so tests
    and sweep scripts can trace one run without leaking global state.
    """
    previous = TRACE.active
    installed = TRACE.install(tracer)
    try:
        yield installed
    finally:
        if previous is None:
            TRACE.uninstall()
        else:
            TRACE.install(previous)


def install_from_env(environ=None) -> Optional[Tracer]:
    """Install a global tracer when ``REPRO_TRACE=1`` is set; else no-op.

    Called once at :mod:`repro.observability` import time, so setting the
    environment variable before launching a script traces the whole process
    without code changes.
    """
    environ = os.environ if environ is None else environ
    if environ.get(TRACE_ENV_VAR, "0") == "1" and not TRACE.enabled:
        return TRACE.install(Tracer())
    return TRACE.active
