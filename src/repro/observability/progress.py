"""Live grid progress: per-point completion events to pluggable sinks.

A grid of experiment points can run for minutes (or, sharded, saturate every
core for hours) with nothing on the terminal until the final list comes
back.  :class:`GridProgress` closes that gap: the runner's grid loop — both
the serial path and the process-pool fan-out, which completes points out of
order via ``imap_unordered`` callbacks — reports each finished point, and
the reporter emits one event per completion carrying

* ``completed`` / ``total`` and the grid ``label`` (``runner.run_grid``,
  ``runner.run_scenario_grid``, ...),
* the finished point's wall-clock ``duration_s`` and the shard that ran it
  (``None`` on the serial path),
* ``elapsed_s`` and a naive ``eta_s`` (mean wall time per completed point
  times the points remaining — already parallelism-aware, since elapsed
  wall time is divided by *completions*, not work),
* the ``cache_hit_ratio`` running over every point seen so far (``None``
  until a point touches the cache accounting).

Events go to *sinks*: :class:`StderrProgressSink` rewrites a single status
line (a trailing newline once the grid finishes), and
:class:`JsonlProgressSink` appends one JSON object per event for machine
consumers.  Everything is **off by default** — the runner builds a reporter
only when sinks are configured, so an unconfigured grid pays nothing.
Configuration is one environment variable, ``REPRO_PROGRESS``: the value
``stderr`` (or ``-``) selects the status line, any other non-empty value is
treated as a JSONL path.  ``ExperimentRunner(progress=...)`` accepts the
same strings, a ready sink (anything with ``emit(event)``), or a list of
sinks.

Progress reporting lives at the grid loop, one dispatch per *point*; the
AST hygiene guard's no-hot-loop rule keeps instrumentation (this module
included — it never touches the ``_TRACE``/``_METRICS`` handles) out of the
engines' per-round kernels.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Union

__all__ = [
    "PROGRESS_ENV_VAR",
    "PROGRESS_SCHEMA",
    "GridProgress",
    "StderrProgressSink",
    "JsonlProgressSink",
    "resolve_progress_sinks",
]

#: Environment variable configuring grid-progress sinks (unset/empty: off;
#: ``stderr`` or ``-``: a status line; anything else: a JSONL file path).
PROGRESS_ENV_VAR = "REPRO_PROGRESS"

#: Schema identifier stamped into every progress event.
PROGRESS_SCHEMA = "repro.grid_progress"


class StderrProgressSink:
    """One self-overwriting status line (carriage return between events).

    The stream is resolved lazily so tests can capture ``sys.stderr`` and a
    long-lived runner keeps following redirections.
    """

    def __init__(self, stream=None):
        self._stream = stream

    def emit(self, event: dict) -> None:
        stream = sys.stderr if self._stream is None else self._stream
        ratio = event["cache_hit_ratio"]
        line = (
            f"[{event['label']}] {event['completed']}/{event['total']} points"
            f" | last {event['duration_s']:.2f}s"
            f" | eta {event['eta_s']:.1f}s"
            f" | cache {'n/a' if ratio is None else format(ratio, '.0%')}"
        )
        end = "\n" if event["completed"] >= event["total"] else "\r"
        stream.write(line + end)
        stream.flush()


class JsonlProgressSink:
    """Append one JSON object per event to a file (created on first emit)."""

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = os.fspath(path)

    def emit(self, event: dict) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as sink:
            sink.write(json.dumps(event, sort_keys=True) + "\n")


def resolve_progress_sinks(
    progress=None, environ=None
) -> List[object]:
    """Resolve a progress configuration into a (possibly empty) sink list.

    ``None`` consults ``REPRO_PROGRESS`` (unset/empty means no reporting);
    a string is parsed like the environment value (``stderr``/``-`` or a
    JSONL path); a sequence passes through as the sink list; anything else
    is assumed to be a single sink object exposing ``emit(event)``.
    """
    if progress is None:
        environ = os.environ if environ is None else environ
        progress = environ.get(PROGRESS_ENV_VAR, "")
    if not progress:
        return []
    if isinstance(progress, str):
        if progress in ("stderr", "-"):
            return [StderrProgressSink()]
        return [JsonlProgressSink(progress)]
    if isinstance(progress, (list, tuple)):
        return list(progress)
    return [progress]


class GridProgress:
    """Per-completion progress accounting for one grid run.

    Fed by the runner's grid loop (serial) or pool completion callbacks
    (sharded, completion order arbitrary); every :meth:`point_done` call
    updates the running totals and emits one event dict to each sink.
    """

    def __init__(
        self,
        label: str,
        total: int,
        sinks: Sequence[object],
        clock=time.monotonic,
    ):
        self.label = str(label)
        self.total = int(total)
        self.sinks = list(sinks)
        self.completed = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self._clock = clock
        self._start = clock()

    def point_done(
        self,
        duration_s: float,
        cache_hits: int = 0,
        cache_misses: int = 0,
        shard: Optional[int] = None,
    ) -> dict:
        """Record one finished point and emit the resulting event."""
        self.completed += 1
        self.cache_hits += int(cache_hits)
        self.cache_misses += int(cache_misses)
        elapsed = self._clock() - self._start
        remaining = max(self.total - self.completed, 0)
        seen = self.cache_hits + self.cache_misses
        event: Dict[str, object] = {
            "schema": PROGRESS_SCHEMA,
            "label": self.label,
            "completed": self.completed,
            "total": self.total,
            "duration_s": float(duration_s),
            "elapsed_s": elapsed,
            "eta_s": elapsed / self.completed * remaining,
            "cache_hit_ratio": self.cache_hits / seen if seen else None,
            "shard": None if shard is None else int(shard),
        }
        for sink in self.sinks:
            sink.emit(event)
        return event
