"""Counters and gauges behind the same handle pattern as the tracer.

A :class:`Metrics` registry accumulates *counters* (monotone totals: trials
simulated, cache hits per runner method, workspace buffer reuses,
host<->device transfers) and *gauges* (last-observed values: rare-event
pilot ESS, splitting level fractions), and exports both as one
JSON-serializable snapshot.

Like tracing, the instrumented modules dispatch through one module-level
:class:`MetricsHandle` (:data:`METRICS`); while no registry is installed —
the default — ``increment``/``gauge`` are a single attribute check, so the
disabled path stays allocation-free and bit-identical.  ``REPRO_TRACE=1``
installs a registry alongside the global tracer (one switch turns the whole
instrumentation layer on); :func:`use_metrics` scopes one to a block.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Union

__all__ = [
    "Metrics",
    "MetricsHandle",
    "METRICS",
    "use_metrics",
]

Number = Union[int, float]


class Metrics:
    """A named registry of counters (monotone) and gauges (last value)."""

    def __init__(self):
        self._counters: Dict[str, Number] = {}
        self._gauges: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def increment(self, name: str, value: Number = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value) -> None:
        """Set gauge ``name`` to ``value`` (any JSON-serializable value)."""
        self._gauges[name] = value

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Number:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self._counters.get(name, 0)

    def gauge_value(self, name: str, default=None):
        """Current value of gauge ``name``."""
        return self._gauges.get(name, default)

    def snapshot(self) -> dict:
        """JSON-serializable ``{"counters": ..., "gauges": ...}`` snapshot."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
        }

    def reset(self) -> None:
        """Drop every counter and gauge."""
        self._counters.clear()
        self._gauges.clear()


class MetricsHandle:
    """Module-level dispatch point mirroring :class:`~.tracer.TraceHandle`."""

    __slots__ = ("_metrics",)

    def __init__(self):
        self._metrics: Optional[Metrics] = None

    def increment(self, name: str, value: Number = 1) -> None:
        metrics = self._metrics
        if metrics is not None:
            metrics.increment(name, value)

    def gauge(self, name: str, value) -> None:
        metrics = self._metrics
        if metrics is not None:
            metrics.gauge(name, value)

    @property
    def active(self) -> Optional[Metrics]:
        """The installed registry, or ``None`` when metrics are disabled."""
        return self._metrics

    @property
    def enabled(self) -> bool:
        return self._metrics is not None

    def install(self, metrics: Optional[Metrics] = None) -> Metrics:
        """Install (and return) a registry; a fresh one when none is given."""
        self._metrics = Metrics() if metrics is None else metrics
        return self._metrics

    def uninstall(self) -> Optional[Metrics]:
        """Disable metrics; returns the registry that was installed, if any."""
        metrics, self._metrics = self._metrics, None
        return metrics


#: The global metrics handle every instrumented module dispatches through.
METRICS = MetricsHandle()


@contextmanager
def use_metrics(metrics: Optional[Metrics] = None) -> Iterator[Metrics]:
    """Install ``metrics`` (default: a fresh registry) for a block."""
    previous = METRICS.active
    installed = METRICS.install(metrics)
    try:
        yield installed
    finally:
        if previous is None:
            METRICS.uninstall()
        else:
            METRICS.install(previous)
