"""Random walks on finite Markov chains.

Used to empirically validate the closed-form stationary distributions of the
paper's chains (Eqs. 37a-37d, 44) and to realise the T-step random walk of
Section V-B whose indicator sums define the number of convergence
opportunities ``C(t0, t0 + T - 1)`` (Eq. 46).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Sequence

import numpy as np

from ..errors import MarkovChainError
from .chain import FiniteMarkovChain

__all__ = [
    "WalkResult",
    "sample_path",
    "occupation_frequencies",
    "indicator_sum",
]


@dataclass(frozen=True)
class WalkResult:
    """Outcome of a sampled random walk.

    Attributes
    ----------
    states:
        Array of visited state indices, length ``n_steps``.
    labels:
        The chain's state labels (for translating indices back to labels).
    """

    states: np.ndarray
    labels: Sequence[Hashable]

    def label_path(self) -> list:
        """The visited path expressed as state labels."""
        return [self.labels[index] for index in self.states]

    def visit_counts(self) -> Dict[Hashable, int]:
        """Number of visits per state label."""
        counts = np.bincount(self.states, minlength=len(self.labels))
        return {label: int(counts[index]) for index, label in enumerate(self.labels)}

    def frequencies(self) -> Dict[Hashable, float]:
        """Empirical occupation frequencies per state label."""
        total = len(self.states)
        return {
            label: count / total for label, count in self.visit_counts().items()
        }


def sample_path(
    chain: FiniteMarkovChain,
    n_steps: int,
    rng: np.random.Generator,
    initial_state: Optional[Hashable] = None,
    initial_distribution: Optional[np.ndarray] = None,
) -> WalkResult:
    """Sample a path of ``n_steps`` states from the chain.

    The initial state is drawn from ``initial_distribution`` (default: the
    stationary distribution) unless ``initial_state`` is given explicitly.
    """
    if n_steps <= 0:
        raise MarkovChainError("n_steps must be positive")
    if initial_state is not None:
        current = chain.index_of(initial_state)
    else:
        if initial_distribution is None:
            initial_distribution = chain.stationary_distribution()
        initial_distribution = np.asarray(initial_distribution, dtype=float)
        current = int(rng.choice(chain.n_states, p=initial_distribution))

    matrix = chain.transition_matrix
    # Pre-compute cumulative rows once; inverse-CDF sampling keeps the walk
    # fast even for tens of millions of steps.
    cumulative = np.cumsum(matrix, axis=1)
    uniforms = rng.random(n_steps)
    states = np.empty(n_steps, dtype=np.int64)
    for step in range(n_steps):
        states[step] = current
        current = int(np.searchsorted(cumulative[current], uniforms[step], side="right"))
        if current >= chain.n_states:  # guard against cumulative rounding
            current = chain.n_states - 1
    return WalkResult(states=states, labels=chain.labels)


def occupation_frequencies(
    chain: FiniteMarkovChain,
    n_steps: int,
    rng: np.random.Generator,
    initial_state: Optional[Hashable] = None,
) -> Dict[Hashable, float]:
    """Empirical occupation frequencies of a sampled walk (ergodic averages)."""
    walk = sample_path(chain, n_steps, rng, initial_state=initial_state)
    return walk.frequencies()


def indicator_sum(
    walk: WalkResult,
    predicate: Callable[[Hashable], bool],
) -> int:
    """Count the visits for which ``predicate(label)`` is true.

    This realises the sum ``C(t0, t0+T-1) = sum_t f_t(V_t)`` of Eq. (46) for an
    arbitrary indicator ``f``.
    """
    labels = walk.labels
    return int(sum(1 for index in walk.states if predicate(labels[index])))
