"""Spectral diagnostics for finite Markov chains.

The spectral gap gives standard upper and lower bounds on the mixing time used
by the Markov-chain Chernoff bound of Inequality (47); these helpers let the
validation experiments cross-check the direct total-variation computation in
:mod:`repro.markov.mixing` against the relaxation-time estimate.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..errors import MarkovChainError
from .chain import FiniteMarkovChain

__all__ = [
    "eigenvalue_moduli",
    "second_largest_eigenvalue_modulus",
    "spectral_gap",
    "relaxation_time",
    "mixing_time_bounds_from_spectrum",
]


def eigenvalue_moduli(chain: FiniteMarkovChain) -> np.ndarray:
    """Moduli of the transition matrix eigenvalues, sorted in decreasing order."""
    eigenvalues = np.linalg.eigvals(chain.transition_matrix)
    moduli = np.sort(np.abs(eigenvalues))[::-1]
    return moduli


def second_largest_eigenvalue_modulus(chain: FiniteMarkovChain) -> float:
    """The SLEM: second largest eigenvalue modulus (the largest is always 1)."""
    moduli = eigenvalue_moduli(chain)
    if len(moduli) < 2:
        return 0.0
    return float(moduli[1])


def spectral_gap(chain: FiniteMarkovChain) -> float:
    """``1 - SLEM``; strictly positive for ergodic chains."""
    return 1.0 - second_largest_eigenvalue_modulus(chain)


def relaxation_time(chain: FiniteMarkovChain) -> float:
    """``1 / spectral_gap`` — the relaxation time of the chain."""
    gap = spectral_gap(chain)
    if gap <= 0:
        raise MarkovChainError("chain has zero spectral gap (not ergodic)")
    return 1.0 / gap


def mixing_time_bounds_from_spectrum(
    chain: FiniteMarkovChain, epsilon: float = 0.125
) -> Tuple[float, float]:
    """Standard spectral lower/upper bounds on the epsilon-mixing time.

    Uses the classical bounds (Levin & Peres, Theorems 12.4 and 12.5):

    * lower: ``(t_rel - 1) * ln(1 / (2 eps))``
    * upper: ``t_rel * ln(1 / (eps * pi_min))``

    Returns ``(lower, upper)`` as floats.  These are diagnostics; the exact
    value is computed by :func:`repro.markov.mixing.mixing_time`.
    """
    if not (0.0 < epsilon < 1.0):
        raise MarkovChainError(f"epsilon must lie in (0, 1), got {epsilon!r}")
    t_rel = relaxation_time(chain)
    pi = chain.stationary_distribution()
    pi_min = float(pi.min())
    if pi_min <= 0:
        raise MarkovChainError("stationary distribution must be strictly positive")
    lower = max(0.0, (t_rel - 1.0) * math.log(1.0 / (2.0 * epsilon)))
    upper = t_rel * math.log(1.0 / (epsilon * pi_min))
    return lower, upper
