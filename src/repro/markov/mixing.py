"""Mixing-time utilities for finite Markov chains.

The Chernoff-Hoeffding bound for Markov chains used in Section V-B of the
paper (Inequality 47, citing Chung-Lam-Liu-Mitzenmacher) is parameterised by
the epsilon-mixing time ``tau(eps)`` of the chain.  This module provides the
total-variation machinery needed to compute and bound that quantity for the
small-Delta instantiations used in validation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import MarkovChainError
from .chain import FiniteMarkovChain

__all__ = [
    "total_variation_distance",
    "distance_to_stationarity",
    "mixing_time",
    "pi_norm",
]


def total_variation_distance(first: np.ndarray, second: np.ndarray) -> float:
    """Total variation distance ``0.5 * sum |first - second|`` between two distributions."""
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.shape != second.shape:
        raise MarkovChainError(
            f"distributions must share a shape, got {first.shape} and {second.shape}"
        )
    return 0.5 * float(np.abs(first - second).sum())


def distance_to_stationarity(chain: FiniteMarkovChain, steps: int) -> float:
    """Worst-case (over starting states) TV distance to stationarity after ``steps`` steps."""
    if steps < 0:
        raise MarkovChainError("steps must be non-negative")
    pi = chain.stationary_distribution()
    matrix_power = np.linalg.matrix_power(chain.transition_matrix, steps)
    distances = 0.5 * np.abs(matrix_power - pi[None, :]).sum(axis=1)
    return float(distances.max())


def mixing_time(
    chain: FiniteMarkovChain,
    epsilon: float = 0.125,
    max_steps: int = 100_000,
) -> int:
    """Smallest ``t`` with worst-case TV distance to stationarity at most ``epsilon``.

    The paper selects ``epsilon = 1/8`` (the largest value permitted by the
    concentration theorem it cites), which is the default here.  The search
    doubles the horizon geometrically and then bisects, so the cost is
    ``O(log(max_steps))`` matrix powers.
    """
    if not (0.0 < epsilon <= 1.0):
        raise MarkovChainError(f"epsilon must lie in (0, 1], got {epsilon!r}")
    if distance_to_stationarity(chain, 0) <= epsilon:
        return 0

    lower, upper = 0, 1
    while distance_to_stationarity(chain, upper) > epsilon:
        lower, upper = upper, upper * 2
        if upper > max_steps:
            raise MarkovChainError(
                f"chain did not mix within {max_steps} steps at epsilon={epsilon}"
            )
    # Invariant: distance(lower) > epsilon >= distance(upper).
    while upper - lower > 1:
        middle = (lower + upper) // 2
        if distance_to_stationarity(chain, middle) > epsilon:
            lower = middle
        else:
            upper = middle
    return upper


def pi_norm(distribution: np.ndarray, stationary: np.ndarray) -> float:
    """The pi-norm ``sqrt(sum(phi(x)^2 / pi(x)))`` used in Inequality (47).

    Matches the definition below Inequality (47) in the paper, where ``phi`` is
    the initial distribution of the T-step walk and ``pi`` is the stationary
    distribution.
    """
    distribution = np.asarray(distribution, dtype=float)
    stationary = np.asarray(stationary, dtype=float)
    if distribution.shape != stationary.shape:
        raise MarkovChainError("distribution and stationary must share a shape")
    if np.any(stationary <= 0):
        raise MarkovChainError("stationary distribution must be strictly positive")
    return float(np.sqrt(np.sum(distribution**2 / stationary)))
