"""Generic finite Markov chain machinery.

The paper's proof rests on two concrete Markov chains (the suffix chain C_F of
Figure 2 and the concatenation chain C_F||P); this module supplies the generic
substrate they are built on: a validated row-stochastic transition matrix with
stationary-distribution computation, structural checks (irreducibility,
aperiodicity, ergodicity -- the three properties the paper asserts for both of
its chains), distribution evolution and hitting-time utilities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csgraph

from ..errors import MarkovChainError

__all__ = ["FiniteMarkovChain"]

_ROW_SUM_TOLERANCE = 1e-9


@dataclass
class FiniteMarkovChain:
    """A finite, discrete-time Markov chain given by a row-stochastic matrix.

    Parameters
    ----------
    transition_matrix:
        Square array ``P`` with ``P[i, j] = P[X_{t+1} = j | X_t = i]``.
    labels:
        Optional hashable labels for the states (defaults to ``0..k-1``).

    Examples
    --------
    >>> chain = FiniteMarkovChain([[0.5, 0.5], [0.2, 0.8]], labels=["A", "B"])
    >>> pi = chain.stationary_distribution()
    >>> round(pi[0], 6), round(pi[1], 6)
    (0.285714, 0.714286)
    """

    transition_matrix: np.ndarray
    labels: Optional[Sequence[Hashable]] = None
    _label_index: Dict[Hashable, int] = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        matrix = np.asarray(self.transition_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise MarkovChainError(
                f"transition matrix must be square, got shape {matrix.shape}"
            )
        if matrix.shape[0] == 0:
            raise MarkovChainError("transition matrix must have at least one state")
        if np.any(matrix < -_ROW_SUM_TOLERANCE):
            raise MarkovChainError("transition matrix has negative entries")
        row_sums = matrix.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=_ROW_SUM_TOLERANCE):
            raise MarkovChainError(
                f"transition matrix rows must sum to 1, got row sums {row_sums}"
            )
        matrix = np.clip(matrix, 0.0, None)
        matrix = matrix / matrix.sum(axis=1, keepdims=True)
        object.__setattr__(self, "transition_matrix", matrix)

        if self.labels is None:
            labels: List[Hashable] = list(range(matrix.shape[0]))
            object.__setattr__(self, "labels", labels)
        else:
            labels = list(self.labels)
            if len(labels) != matrix.shape[0]:
                raise MarkovChainError(
                    f"expected {matrix.shape[0]} labels, got {len(labels)}"
                )
            if len(set(labels)) != len(labels):
                raise MarkovChainError("state labels must be unique")
            object.__setattr__(self, "labels", labels)
        self._label_index = {label: index for index, label in enumerate(self.labels)}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """Number of states in the chain."""
        return self.transition_matrix.shape[0]

    def index_of(self, label: Hashable) -> int:
        """Return the row index of a state label."""
        try:
            return self._label_index[label]
        except KeyError:
            raise MarkovChainError(f"unknown state label {label!r}") from None

    def probability(self, source: Hashable, target: Hashable) -> float:
        """One-step transition probability between two labelled states."""
        return float(
            self.transition_matrix[self.index_of(source), self.index_of(target)]
        )

    # ------------------------------------------------------------------
    # Structural properties
    # ------------------------------------------------------------------
    def is_irreducible(self) -> bool:
        """``True`` if every state is reachable from every other state."""
        adjacency = (self.transition_matrix > 0).astype(np.int8)
        n_components, _ = csgraph.connected_components(
            adjacency, directed=True, connection="strong"
        )
        return n_components == 1

    def period(self, state: Hashable = None) -> int:
        """Period of the given state (or of the first state by default).

        For an irreducible chain all states share the same period; a period of
        1 means the chain is aperiodic.
        """
        start = 0 if state is None else self.index_of(state)
        adjacency = self.transition_matrix > 0
        # Breadth-first search recording the set of path lengths (mod gcd) at
        # which each state is reachable; the period is the gcd of the lengths
        # of all cycles through `start`.
        level = {start: 0}
        frontier = [start]
        gcd_value = 0
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in np.nonzero(adjacency[node])[0]:
                    neighbor = int(neighbor)
                    candidate_level = level[node] + 1
                    if neighbor not in level:
                        level[neighbor] = candidate_level
                        next_frontier.append(neighbor)
                    else:
                        gcd_value = math.gcd(
                            gcd_value, candidate_level - level[neighbor]
                        )
            frontier = next_frontier
        return gcd_value if gcd_value > 0 else 0

    def is_aperiodic(self) -> bool:
        """``True`` if the chain's period is 1."""
        return self.period() == 1

    def is_ergodic(self) -> bool:
        """``True`` if the chain is irreducible and aperiodic.

        This is the property the paper asserts for both C_F and C_F||P
        ("time-homogeneous, irreducible, and ergodic").
        """
        return self.is_irreducible() and self.is_aperiodic()

    # ------------------------------------------------------------------
    # Stationary distribution and distribution evolution
    # ------------------------------------------------------------------
    def stationary_distribution(self) -> np.ndarray:
        """The stationary distribution ``pi`` with ``pi P = pi`` and ``sum(pi) = 1``.

        Solved as a linear system (replace one balance equation by the
        normalisation constraint), which is numerically robust for the modest
        state counts used in this library.
        """
        matrix = self.transition_matrix
        k = self.n_states
        system = np.vstack([matrix.T - np.eye(k), np.ones((1, k))])
        rhs = np.zeros(k + 1)
        rhs[-1] = 1.0
        solution, *_ = np.linalg.lstsq(system, rhs, rcond=None)
        solution = np.clip(solution, 0.0, None)
        total = solution.sum()
        if total <= 0:
            raise MarkovChainError("failed to compute a stationary distribution")
        return solution / total

    def stationary_as_dict(self) -> Dict[Hashable, float]:
        """Stationary distribution keyed by state label."""
        pi = self.stationary_distribution()
        return {label: float(pi[index]) for index, label in enumerate(self.labels)}

    def evolve(self, distribution: np.ndarray, steps: int = 1) -> np.ndarray:
        """Evolve a row distribution ``steps`` steps forward: ``d -> d P^steps``."""
        if steps < 0:
            raise MarkovChainError("steps must be non-negative")
        current = np.asarray(distribution, dtype=float)
        if current.shape != (self.n_states,):
            raise MarkovChainError(
                f"distribution must have shape ({self.n_states},), got {current.shape}"
            )
        for _ in range(steps):
            current = current @ self.transition_matrix
        return current

    def uniform_distribution(self) -> np.ndarray:
        """The uniform distribution over states (a convenient worst-case start)."""
        return np.full(self.n_states, 1.0 / self.n_states)

    def point_distribution(self, state: Hashable) -> np.ndarray:
        """The distribution concentrated on a single state."""
        distribution = np.zeros(self.n_states)
        distribution[self.index_of(state)] = 1.0
        return distribution

    # ------------------------------------------------------------------
    # Hitting times
    # ------------------------------------------------------------------
    def expected_hitting_times(self, target: Hashable) -> np.ndarray:
        """Expected number of steps to first reach ``target`` from each state.

        Solves the standard first-step system ``h_i = 1 + sum_j P_ij h_j`` for
        ``i != target`` with ``h_target = 0``.
        """
        target_index = self.index_of(target)
        k = self.n_states
        matrix = self.transition_matrix.copy()
        system = np.eye(k) - matrix
        system[target_index, :] = 0.0
        system[target_index, target_index] = 1.0
        rhs = np.ones(k)
        rhs[target_index] = 0.0
        return np.linalg.solve(system, rhs)

    def mean_recurrence_time(self, state: Hashable) -> float:
        """Expected return time to ``state``; equals ``1 / pi(state)`` for ergodic chains."""
        pi = self.stationary_as_dict()
        probability = pi[state]
        if probability <= 0:
            raise MarkovChainError(f"state {state!r} has zero stationary probability")
        return 1.0 / probability
