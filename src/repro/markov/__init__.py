"""Generic finite Markov chain substrate.

The paper's analysis is carried by two purpose-built Markov chains; this
subpackage provides the general machinery those chains (and their empirical
validation) are built on:

* :class:`repro.markov.chain.FiniteMarkovChain` — validated row-stochastic
  matrices with stationary distributions, structural checks and hitting times;
* :mod:`repro.markov.walk` — random walk sampling and ergodic averages;
* :mod:`repro.markov.mixing` — total variation distances, epsilon-mixing times
  and the pi-norm of Inequality (47);
* :mod:`repro.markov.spectral` — spectral gap and relaxation-time diagnostics.
"""

from .chain import FiniteMarkovChain
from .mixing import (
    distance_to_stationarity,
    mixing_time,
    pi_norm,
    total_variation_distance,
)
from .spectral import (
    eigenvalue_moduli,
    mixing_time_bounds_from_spectrum,
    relaxation_time,
    second_largest_eigenvalue_modulus,
    spectral_gap,
)
from .walk import WalkResult, indicator_sum, occupation_frequencies, sample_path

__all__ = [
    "FiniteMarkovChain",
    "WalkResult",
    "sample_path",
    "occupation_frequencies",
    "indicator_sum",
    "total_variation_distance",
    "distance_to_stationarity",
    "mixing_time",
    "pi_norm",
    "eigenvalue_moduli",
    "second_largest_eigenvalue_modulus",
    "spectral_gap",
    "relaxation_time",
    "mixing_time_bounds_from_spectrum",
]
