"""Δ-tightness studies: how conservative is the worst-case delay bound?

The paper prices every honest message at the worst-case delay Δ; real
gossip networks deliver most blocks much faster, so the analytical
convergence-opportunity rate ``alpha_bar^(2Δ) alpha1`` (Eq. 44) is a
*lower* bound on what a topology actually produces.  This module measures
that gap on top of the topology-aware batch engine
(:mod:`repro.simulation.topology` via
:meth:`~repro.simulation.runner.ExperimentRunner.run_topology_point`):

* :func:`delta_tightness_sweep` — one row per (degree, latency-spread)
  cell of a random-regular peer-graph family: the empirical
  convergence-opportunity rate under gossip propagation (with 95% CI),
  the fixed-Δ prediction at the nominal Δ, the prediction at the
  topology's *effective* Δ (the empirical-quantile estimate of
  :meth:`~repro.simulation.topology.PeerGraphTopology.effective_delta`),
  and the tightness ratios between them.  A ratio well above 1 against
  the nominal prediction quantifies exactly how much security margin the
  Δ-worst-case analysis leaves on the table for that topology.
* :func:`effective_delta_table` — the purely structural half: per-degree
  effective-Δ estimates, diameters and delivery-radius statistics,
  without running any simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from ..params import parameters_from_c
from ..simulation.runner import ExperimentRunner
from ..simulation.topology import PeerGraphDelayModel, PeerGraphTopology

__all__ = ["build_regular_topology", "delta_tightness_sweep", "effective_delta_table"]


def build_regular_topology(
    degree: int,
    latency_spread: int = 0,
    *,
    graph_nodes: int = 64,
    seed: int = 0,
) -> PeerGraphTopology:
    """The sweep's graph family: a seeded random-regular gossip graph.

    The graph seed is derived from ``(seed, degree, latency_spread)`` so
    every cell of a sweep gets an independent, reproducible wiring that is
    stable under re-ordering — the same discipline the runner applies to
    its parameter points.
    """
    graph_rng = np.random.default_rng(
        np.random.SeedSequence([int(seed), int(degree), int(latency_spread)])
    )
    return PeerGraphTopology.random_regular(
        graph_nodes, degree, latency_spread=latency_spread, rng=graph_rng
    )


def effective_delta_table(
    degrees: Sequence[int],
    latency_spreads: Sequence[int] = (0,),
    *,
    graph_nodes: int = 64,
    quantile: float = 0.95,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Structural Δ estimates for a family of random-regular gossip graphs."""
    if not degrees or not latency_spreads:
        raise AnalysisError("degrees and latency_spreads must be non-empty")
    rows: List[Dict[str, object]] = []
    for degree in degrees:
        for spread in latency_spreads:
            topology = build_regular_topology(
                degree, spread, graph_nodes=graph_nodes, seed=seed
            )
            radii = topology.delivery_radii()
            rows.append(
                {
                    "degree": int(degree),
                    "latency_spread": int(spread),
                    "nodes": topology.n_nodes,
                    "edges": topology.edge_count,
                    "diameter": topology.diameter,
                    "mean_radius": float(radii.mean()),
                    "effective_delta": topology.effective_delta(quantile),
                    "quantile": float(quantile),
                }
            )
    return rows


def delta_tightness_sweep(
    degrees: Sequence[int] = (2, 4, 8),
    latency_spreads: Sequence[int] = (0,),
    *,
    graph_nodes: int = 64,
    c: float = 4.0,
    n: int = 1_000,
    delta: Optional[int] = None,
    nu: float = 0.2,
    trials: int = 16,
    rounds: int = 8_000,
    quantile: float = 0.95,
    seed: int = 0,
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """Empirical vs analytical convergence-opportunity rates per topology cell.

    For each (degree, latency-spread) cell a random-regular gossip graph is
    built, its effective Δ estimated, and the batch engine run under the
    corresponding :class:`~repro.simulation.topology.PeerGraphDelayModel`.
    ``delta`` is the nominal worst-case bound the adversary is granted
    (``None`` sizes it to cover the *slowest* cell: the maximum diameter
    across the family, so every realized delay obeys the cap without
    clipping).  Rows report the empirical rate with a 95% CI, the fixed-Δ
    predictions at the nominal and effective Δ, and the tightness ratios
    ``empirical / predicted`` — how far the worst-case analysis undershoots
    realistic propagation.
    """
    if not degrees or not latency_spreads:
        raise AnalysisError("degrees and latency_spreads must be non-empty")
    if trials <= 0 or rounds <= 0:
        raise AnalysisError("trials and rounds must be positive")
    cells = [
        (
            int(degree),
            int(spread),
            build_regular_topology(
                int(degree), int(spread), graph_nodes=graph_nodes, seed=seed
            ),
        )
        for degree in degrees
        for spread in latency_spreads
    ]
    if delta is None:
        delta = max(topology.diameter for _, _, topology in cells)
    runner = runner if runner is not None else ExperimentRunner(base_seed=seed)
    rows: List[Dict[str, object]] = []
    for degree, spread, topology in cells:
        params = parameters_from_c(c=float(c), n=n, delta=int(delta), nu=float(nu))
        model = PeerGraphDelayModel(topology)
        result = runner.run_topology_point(params, trials, rounds, delay_model=model)
        rates = result.empirical_convergence_rates
        ci_low, ci_high = result.convergence_rate_ci95
        effective = topology.effective_delta(quantile)
        predicted_nominal = params.convergence_opportunity_probability
        predicted_effective = topology.effective_parameters(
            params, quantile
        ).convergence_opportunity_probability
        empirical = float(rates.mean())
        rows.append(
            {
                "degree": degree,
                "latency_spread": spread,
                "nodes": topology.n_nodes,
                "diameter": topology.diameter,
                "effective_delta": effective,
                "nominal_delta": params.delta,
                "empirical_rate": empirical,
                "empirical_ci95_low": ci_low,
                "empirical_ci95_high": ci_high,
                "predicted_rate_nominal": predicted_nominal,
                "predicted_rate_effective": predicted_effective,
                "tightness_vs_nominal": (
                    empirical / predicted_nominal if predicted_nominal > 0 else np.inf
                ),
                "tightness_vs_effective": (
                    empirical / predicted_effective
                    if predicted_effective > 0
                    else np.inf
                ),
            }
        )
    return rows
