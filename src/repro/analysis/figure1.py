"""Figure 1: maximum tolerable adversarial fraction versus c.

The paper's single figure compares three curves over ``c`` (log-spaced from
0.1 to 100, with ``n = 1e5`` and ``Δ = 1e13``):

* **magenta** — the paper's consistency result: the largest ``nu`` with
  ``c > 2 mu / ln(mu/nu)``;
* **blue** — the PSS consistency result: ``nu < (2 - c + sqrt(c^2 - 2c))/2``
  for ``c > 2`` (zero otherwise);
* **red** — the PSS Remark 8.5 attack: consistency is broken for
  ``nu > (2c + 1 - sqrt(4c^2 + 1))/2``.

:func:`figure1_series` regenerates the three series; :func:`figure1_checks`
verifies the orderings the paper reads off the figure (magenta strictly above
blue, and below red wherever blue is positive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.bounds import nu_max_neat_bound
from ..core.pss import nu_max_pss_consistency, nu_min_pss_attack
from ..errors import AnalysisError

__all__ = [
    "Figure1Point",
    "Figure1Series",
    "default_c_grid",
    "figure1_series",
    "figure1_checks",
]

#: The parameters the paper adopts from Figure 1 of PSS.
PAPER_N = 100_000
PAPER_DELTA = 10**13

#: The c-range displayed in Figure 1.
PAPER_C_MIN = 0.1
PAPER_C_MAX = 100.0


@dataclass(frozen=True)
class Figure1Point:
    """One x-position of Figure 1 and the three curve values at it."""

    c: float
    nu_max_ours: float
    nu_max_pss: float
    nu_min_attack: float


@dataclass(frozen=True)
class Figure1Series:
    """The full set of Figure 1 curves."""

    points: List[Figure1Point]
    n: int
    delta: int

    def as_arrays(self) -> Dict[str, np.ndarray]:
        """Column arrays keyed by series name (for plotting or CSV export)."""
        return {
            "c": np.array([point.c for point in self.points]),
            "nu_max_ours": np.array([point.nu_max_ours for point in self.points]),
            "nu_max_pss": np.array([point.nu_max_pss for point in self.points]),
            "nu_min_attack": np.array([point.nu_min_attack for point in self.points]),
        }

    def as_rows(self) -> List[Dict[str, float]]:
        """Row dictionaries (one per c) for tabulation."""
        return [
            {
                "c": point.c,
                "nu_max_ours": point.nu_max_ours,
                "nu_max_pss": point.nu_max_pss,
                "nu_min_attack": point.nu_min_attack,
            }
            for point in self.points
        ]


def default_c_grid(points: int = 60) -> np.ndarray:
    """The log-spaced c-grid of Figure 1 (0.1 to 100)."""
    if points < 2:
        raise AnalysisError("the c grid needs at least 2 points")
    return np.logspace(np.log10(PAPER_C_MIN), np.log10(PAPER_C_MAX), points)


def figure1_series(
    c_values: Optional[Sequence[float]] = None,
    n: int = PAPER_N,
    delta: int = PAPER_DELTA,
) -> Figure1Series:
    """Regenerate the three curves of Figure 1.

    ``n`` and ``delta`` only matter for translating ``c`` into a hardness ``p``
    (the three closed-form curves depend on ``c`` alone), so the paper's
    values are kept as defaults purely for fidelity of the record.
    """
    grid = default_c_grid() if c_values is None else np.asarray(c_values, dtype=float)
    points = [
        Figure1Point(
            c=float(c),
            nu_max_ours=nu_max_neat_bound(float(c)),
            nu_max_pss=nu_max_pss_consistency(float(c)),
            nu_min_attack=nu_min_pss_attack(float(c)),
        )
        for c in grid
    ]
    return Figure1Series(points=points, n=n, delta=delta)


def figure1_checks(series: Figure1Series) -> Dict[str, bool]:
    """The qualitative facts the paper reads off Figure 1.

    * ``ours_above_pss``: the magenta curve is strictly above the blue curve
      wherever the blue curve is positive (our bound tolerates strictly more
      adversarial power than PSS);
    * ``ours_below_attack``: the magenta curve never exceeds the red attack
      curve (no claimed-consistent point is known-attackable);
    * ``curves_monotone``: every curve is non-decreasing in ``c``.
    """
    ours = np.array([point.nu_max_ours for point in series.points])
    pss = np.array([point.nu_max_pss for point in series.points])
    attack = np.array([point.nu_min_attack for point in series.points])

    positive_pss = pss > 0.0
    ours_above_pss = bool(np.all(ours[positive_pss] > pss[positive_pss]))
    ours_below_attack = bool(np.all(ours <= attack + 1e-12))
    curves_monotone = bool(
        np.all(np.diff(ours) >= -1e-12)
        and np.all(np.diff(pss) >= -1e-12)
        and np.all(np.diff(attack) >= -1e-12)
    )
    return {
        "ours_above_pss": ours_above_pss,
        "ours_below_attack": ours_below_attack,
        "curves_monotone": curves_monotone,
    }
