"""Remark 1: the numerical instantiations of Inequalities (12)-(17).

Remark 1 demonstrates that the Theorem 2 condition really does reduce to
"``c`` slightly greater than ``2 mu / ln(mu/nu)``" by exhibiting two settings
of the constants ``(delta1, delta2)`` at the paper's ``Δ = 1e13``:

==============  =========================  =============================
(delta1, delta2)  nu-range (Inequality 12)    slack factor (Inequality 13)
==============  =========================  =============================
(1/6, 1/2)      ``1e-63 <= nu <= 0.5-1e-7``  ``1 + 5e-5``
(1/8, 2/3)      ``1e-18 <= nu <= 0.5-1e-9``  ``1 + 2e-3``
==============  =========================  =============================

This module recomputes both rows (and any other setting) from the closed
forms, so EXPERIMENTS.md can report paper-stated versus recomputed values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.bounds import nu_range_bounds, simplified_slack_factor
from ..errors import AnalysisError

__all__ = [
    "Remark1Row",
    "remark1_row",
    "remark1_table",
    "PAPER_SETTINGS",
]

#: The (delta1, delta2) settings the paper uses in Remark 1, with the values it reports.
PAPER_SETTINGS: List[Dict[str, float]] = [
    {
        "delta1": 1.0 / 6.0,
        "delta2": 1.0 / 2.0,
        "paper_nu_low": 1e-63,
        "paper_nu_high_gap": 1e-7,
        "paper_slack": 5e-5,
    },
    {
        "delta1": 1.0 / 8.0,
        "delta2": 2.0 / 3.0,
        "paper_nu_low": 1e-18,
        "paper_nu_high_gap": 1e-9,
        "paper_slack": 2e-3,
    },
]

PAPER_DELTA = 10**13


@dataclass(frozen=True)
class Remark1Row:
    """One row of the Remark 1 table (one ``(delta1, delta2)`` setting)."""

    delta: int
    delta1: float
    delta2: float
    nu_low: float
    log10_nu_low: float
    nu_high: float
    nu_high_gap: float
    slack_factor: float
    slack_excess: float

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary for tabulation."""
        return {
            "delta1": self.delta1,
            "delta2": self.delta2,
            "nu_low": self.nu_low,
            "log10_nu_low": self.log10_nu_low,
            "nu_high": self.nu_high,
            "nu_high_gap": self.nu_high_gap,
            "slack_factor": self.slack_factor,
            "slack_excess": self.slack_excess,
        }


def remark1_row(delta: int, delta1: float, delta2: float) -> Remark1Row:
    """Recompute one Remark 1 row from the closed forms.

    ``nu_low`` may underflow to 0.0 at the paper's scale, so the row also
    carries ``log10_nu_low`` computed analytically:
    ``nu_low = 1/(1 + exp(Δ^delta1))`` gives
    ``log10(nu_low) ≈ -Δ^delta1 / ln(10)`` when the exponential dominates.
    """
    if delta < 1:
        raise AnalysisError(f"delta must be >= 1, got {delta!r}")
    nu_low, nu_high = nu_range_bounds(delta, delta1, delta2)
    exponent = float(delta) ** delta1
    # log10(1/(1+exp(x))) = -log10(1 + exp(x)) ≈ -x/ln(10) for large x.
    if exponent > 50.0:
        log10_nu_low = -exponent / math.log(10.0)
    else:
        log10_nu_low = math.log10(nu_low)
    slack = simplified_slack_factor(delta, delta1, delta2)
    return Remark1Row(
        delta=delta,
        delta1=delta1,
        delta2=delta2,
        nu_low=nu_low,
        log10_nu_low=log10_nu_low,
        nu_high=nu_high,
        nu_high_gap=0.5 - nu_high,
        slack_factor=slack,
        slack_excess=slack - 1.0,
    )


def remark1_table(
    delta: int = PAPER_DELTA,
    settings: Optional[Sequence[Tuple[float, float]]] = None,
) -> List[Remark1Row]:
    """Recompute the full Remark 1 table.

    By default uses the paper's two settings at ``Δ = 1e13``; pass ``settings``
    as a sequence of ``(delta1, delta2)`` pairs to explore others.
    """
    if settings is None:
        pairs = [(entry["delta1"], entry["delta2"]) for entry in PAPER_SETTINGS]
    else:
        pairs = list(settings)
    return [remark1_row(delta, delta1, delta2) for delta1, delta2 in pairs]
