"""Theory-versus-simulation validation.

The paper's analytical identities are validated empirically at small Δ (where
random walks and round-based simulation are affordable) by comparing:

* the closed-form stationary distribution of the suffix chain C_F
  (Eqs. 37a-37d) against the numerically solved and the empirically sampled
  distributions;
* the convergence-opportunity probability ``alpha_bar^(2Δ) alpha1`` (Eq. 44)
  and the expectations ``E[C] = T alpha_bar^(2Δ) alpha1`` / ``E[A] = T p nu n``
  (Eqs. 26-27) against the counts produced by the protocol simulator;
* the consistency/attack behaviour across the (c, nu) plane against the
  closed-form curves of Figure 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.concat_chain import count_convergence_opportunities
from ..core.suffix_chain import SuffixChain
from ..errors import AnalysisError
from ..params import ProtocolParameters
from ..simulation import (
    AdversaryStrategy,
    BatchResult,
    BatchSimulation,
    NakamotoSimulation,
    PassiveAdversary,
    PrivateChainAdversary,
)
from ..simulation.rng import SeedLike

__all__ = [
    "StationaryValidation",
    "validate_suffix_stationary",
    "ExpectationValidation",
    "validate_expectations",
    "BatchExpectationValidation",
    "validate_expectations_batch",
    "ConsistencyScenario",
    "validate_consistency_scenario",
]


# ----------------------------------------------------------------------
# Stationary distribution of C_F
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StationaryValidation:
    """Agreement between closed-form, numerical and empirical stationary distributions."""

    delta: int
    rounds_sampled: int
    max_closed_vs_numeric: float
    max_closed_vs_empirical: float
    total_variation_empirical: float

    def agrees(self, numeric_tolerance: float = 1e-9, empirical_tolerance: float = 0.02) -> bool:
        """Whether the three distributions agree within the given tolerances."""
        return (
            self.max_closed_vs_numeric <= numeric_tolerance
            and self.total_variation_empirical <= empirical_tolerance
        )


def validate_suffix_stationary(
    params: ProtocolParameters,
    rounds: int = 200_000,
    rng: Optional[np.random.Generator] = None,
    delta: Optional[int] = None,
) -> StationaryValidation:
    """Compare Eqs. (37a)-(37d) against the numerical and sampled distributions."""
    if rounds <= 0:
        raise AnalysisError("rounds must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    chain = SuffixChain(params, delta=delta)
    closed = chain.closed_form_stationary()
    numeric = chain.numerical_stationary()
    empirical = chain.empirical_stationary(rounds, rng)

    max_closed_vs_numeric = max(
        abs(closed[state] - numeric[state]) for state in chain.states
    )
    max_closed_vs_empirical = max(
        abs(closed[state] - empirical[state]) for state in chain.states
    )
    total_variation = 0.5 * sum(
        abs(closed[state] - empirical[state]) for state in chain.states
    )
    return StationaryValidation(
        delta=chain.delta,
        rounds_sampled=rounds,
        max_closed_vs_numeric=max_closed_vs_numeric,
        max_closed_vs_empirical=max_closed_vs_empirical,
        total_variation_empirical=total_variation,
    )


# ----------------------------------------------------------------------
# Expectations of C and A (Eqs. 26-27) against the protocol simulator
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExpectationValidation:
    """Simulated versus theoretical per-round rates for C and A."""

    rounds: int
    empirical_convergence_rate: float
    theoretical_convergence_rate: float
    empirical_adversary_rate: float
    theoretical_adversary_rate: float

    @property
    def convergence_relative_error(self) -> float:
        """``|empirical - theory| / theory`` for the convergence-opportunity rate."""
        return abs(
            self.empirical_convergence_rate - self.theoretical_convergence_rate
        ) / self.theoretical_convergence_rate

    @property
    def adversary_relative_error(self) -> float:
        """``|empirical - theory| / theory`` for the adversarial block rate."""
        return abs(
            self.empirical_adversary_rate - self.theoretical_adversary_rate
        ) / self.theoretical_adversary_rate

    def agrees(self, tolerance: float = 0.1) -> bool:
        """Whether both relative errors are within ``tolerance``."""
        return (
            self.convergence_relative_error <= tolerance
            and self.adversary_relative_error <= tolerance
        )


def validate_expectations(
    params: ProtocolParameters,
    rounds: int = 50_000,
    rng: Optional[np.random.Generator] = None,
    use_full_simulation: bool = True,
) -> ExpectationValidation:
    """Validate Eqs. (26)-(27)/(44) against a simulated run.

    With ``use_full_simulation=True`` the full protocol simulator (blocks,
    network, adversary) supplies the per-round counts; otherwise the honest
    block counts are drawn i.i.d. binomial directly, which isolates the
    counting identity from the protocol machinery.
    """
    if rounds <= 0:
        raise AnalysisError("rounds must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)

    if use_full_simulation:
        simulation = NakamotoSimulation(
            params, adversary=PassiveAdversary(params.delta), rng=rng
        )
        result = simulation.run(rounds)
        empirical_convergence = result.empirical_convergence_rate
        empirical_adversary = result.empirical_adversary_rate
    else:
        honest = rng.binomial(int(round(params.honest_count)), params.p, size=rounds)
        adversary = rng.binomial(
            int(round(params.adversary_count)), params.p, size=rounds
        )
        empirical_convergence = (
            count_convergence_opportunities(honest, params.delta) / rounds
        )
        empirical_adversary = float(adversary.sum()) / rounds

    return ExpectationValidation(
        rounds=rounds,
        empirical_convergence_rate=empirical_convergence,
        theoretical_convergence_rate=params.convergence_opportunity_probability,
        empirical_adversary_rate=empirical_adversary,
        theoretical_adversary_rate=params.beta,
    )


# ----------------------------------------------------------------------
# Batch (many-trial) validation of the expectations, with confidence bands
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchExpectationValidation:
    """Batch-level agreement between theory and many independent trials.

    Where :class:`ExpectationValidation` compares one long run against the
    theoretical rates, this compares the *distribution over trials*: the
    batch mean of each empirical rate, its 95% confidence interval, and the
    fraction of trials in which the Lemma 1 event ``C > A`` held.
    """

    trials: int
    rounds: int
    mean_convergence_rate: float
    convergence_rate_ci95: Tuple[float, float]
    theoretical_convergence_rate: float
    mean_adversary_rate: float
    adversary_rate_ci95: Tuple[float, float]
    theoretical_adversary_rate: float
    lemma1_fraction: float

    @property
    def convergence_relative_error(self) -> float:
        """``|batch mean - theory| / theory`` for the convergence rate."""
        return abs(
            self.mean_convergence_rate - self.theoretical_convergence_rate
        ) / self.theoretical_convergence_rate

    @property
    def adversary_relative_error(self) -> float:
        """``|batch mean - theory| / theory`` for the adversarial rate.

        For adversary-free configurations (``nu = 0``, where ``beta = 0``)
        the error is 0 when the batch saw no adversarial blocks either, and
        infinite otherwise.
        """
        if self.theoretical_adversary_rate == 0.0:
            return 0.0 if self.mean_adversary_rate == 0.0 else math.inf
        return abs(
            self.mean_adversary_rate - self.theoretical_adversary_rate
        ) / self.theoretical_adversary_rate

    @property
    def convergence_theory_in_ci(self) -> bool:
        """Whether Eq. (44) lies inside the batch 95% confidence interval."""
        low, high = self.convergence_rate_ci95
        return low <= self.theoretical_convergence_rate <= high

    @property
    def adversary_theory_in_ci(self) -> bool:
        """Whether ``p nu n`` lies inside the batch 95% confidence interval."""
        low, high = self.adversary_rate_ci95
        return low <= self.theoretical_adversary_rate <= high

    def agrees(self, tolerance: float = 0.05) -> bool:
        """Whether both batch means are within ``tolerance`` of theory."""
        return (
            self.convergence_relative_error <= tolerance
            and self.adversary_relative_error <= tolerance
        )


def validate_expectations_batch(
    params: ProtocolParameters,
    trials: int = 64,
    rounds: int = 20_000,
    rng: SeedLike = None,
    draw_mode: str = "binomial",
) -> BatchExpectationValidation:
    """Validate Eqs. (26)-(27)/(44) with the vectorized batch engine.

    Runs ``trials`` independent trials simultaneously and summarises the
    per-trial empirical rates against the theoretical values; many short
    trials give a confidence band that one long run cannot.
    """
    if trials <= 0:
        raise AnalysisError("trials must be positive")
    if rounds <= 0:
        raise AnalysisError("rounds must be positive")
    result: BatchResult = BatchSimulation(params, rng=rng, draw_mode=draw_mode).run(
        trials, rounds
    )
    return BatchExpectationValidation(
        trials=trials,
        rounds=rounds,
        mean_convergence_rate=result.mean_convergence_rate,
        convergence_rate_ci95=result.convergence_rate_ci95,
        theoretical_convergence_rate=result.theoretical_convergence_rate,
        mean_adversary_rate=result.mean_adversary_rate,
        adversary_rate_ci95=result.adversary_rate_ci95,
        theoretical_adversary_rate=result.theoretical_adversary_rate,
        lemma1_fraction=result.lemma1_fraction,
    )


# ----------------------------------------------------------------------
# Consistency / attack scenarios across the (c, nu) plane
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConsistencyScenario:
    """Outcome of one simulated scenario compared with the closed-form verdicts."""

    c: float
    nu: float
    delta: int
    rounds: int
    neat_bound_satisfied: bool
    attack_predicted: bool
    convergence_opportunities: int
    adversary_blocks: int
    lemma1_margin: int
    max_violation_depth: int

    @property
    def lemma1_event_holds(self) -> bool:
        """Whether the run had more convergence opportunities than adversarial blocks."""
        return self.lemma1_margin > 0


def validate_consistency_scenario(
    params: ProtocolParameters,
    rounds: int = 50_000,
    adversary: Optional[AdversaryStrategy] = None,
    rng: Optional[np.random.Generator] = None,
) -> ConsistencyScenario:
    """Simulate one (c, nu) point and compare with the paper's predictions.

    The default adversary is the private-chain withholding attacker, so that
    points below the attack curve show deep violations while points above the
    neat bound keep the Lemma 1 margin positive.
    """
    from ..core.bounds import neat_bound
    from ..core.pss import pss_attack_succeeds

    rng = rng if rng is not None else np.random.default_rng(0)
    adversary = adversary or PrivateChainAdversary(params.delta)
    result = NakamotoSimulation(params, adversary=adversary, rng=rng).run(rounds)
    return ConsistencyScenario(
        c=params.c,
        nu=params.nu,
        delta=params.delta,
        rounds=rounds,
        neat_bound_satisfied=params.c > neat_bound(params.nu),
        attack_predicted=pss_attack_succeeds(params.c, params.nu),
        convergence_opportunities=result.convergence_opportunities,
        adversary_blocks=result.total_adversary_blocks,
        lemma1_margin=result.convergence_opportunities - result.total_adversary_blocks,
        max_violation_depth=result.consistency.max_violation_depth,
    )
