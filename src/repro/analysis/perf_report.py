"""Render the persisted perf trajectory as diffable plain-text tables.

The benchmark harness appends one ``repro.bench_trajectory`` record per
gated measurement to ``BENCH_trajectory.json`` (see
:mod:`repro.observability.trajectory`); this module turns that history into
the human-facing artefacts:

* :func:`perf_trajectory_rows` — flat table rows, one per record, with the
  headline metric picked out per benchmark (speedup, variance reduction,
  overhead fraction);
* :func:`perf_trajectory_table` — the rows rendered through
  :func:`repro.analysis.tables.render_table`;
* :func:`latest_by_benchmark` — the newest record per benchmark, the
  one-glance "where is perf today" summary.

Rendering is read-only: this module never writes the trajectory file.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple, Union

from ..observability import load_trajectory
from .tables import render_table

__all__ = [
    "HEADLINE_METRICS",
    "perf_trajectory_rows",
    "perf_trajectory_table",
    "latest_by_benchmark",
]

#: Per-benchmark headline metric surfaced in the ``headline`` column; any
#: benchmark not listed falls back to its first sorted metric name.
HEADLINE_METRICS = {
    "scenarios": "speedup",
    "topology": "speedup",
    "dynamics": "speedup",
    "backend": "speedup",
    "equivocation": "speedup",
    "rare_events": "variance_reduction",
    "observability": "overhead_fraction",
}


def _headline(record: dict) -> Tuple[str, object]:
    metrics = record["metrics"]
    name = HEADLINE_METRICS.get(record["benchmark"])
    if name is None or name not in metrics:
        name = sorted(metrics)[0]
    return name, metrics[name]


def perf_trajectory_rows(
    path: Union[None, str, os.PathLike] = None,
    benchmark: Optional[str] = None,
) -> List[dict]:
    """Flat table rows for the trajectory at ``path``, oldest first.

    ``benchmark`` filters to one benchmark's history (e.g. ``"scenarios"``);
    ``path`` resolves like the trajectory writers do (explicit path, else
    ``REPRO_BENCH_TRAJECTORY``, else ``BENCH_trajectory.json``).
    """
    rows = []
    for record in load_trajectory(path):
        if benchmark is not None and record["benchmark"] != benchmark:
            continue
        name, value = _headline(record)
        machine = record["machine"]
        rows.append(
            {
                "benchmark": record["benchmark"],
                "version": record["version"],
                "mode": record["mode"],
                "headline": f"{name}={value:.4g}"
                if isinstance(value, float)
                else f"{name}={value}",
                "gate": record["metrics"].get("gate", ""),
                "machine": "" if machine is None else machine.get("machine", ""),
                "metrics": len(record["metrics"]),
            }
        )
    return rows


def perf_trajectory_table(
    path: Union[None, str, os.PathLike] = None,
    benchmark: Optional[str] = None,
) -> str:
    """The perf history rendered as a plain-text table."""
    rows = perf_trajectory_rows(path, benchmark=benchmark)
    if not rows:
        return "(no trajectory records)"
    return render_table(rows)


def latest_by_benchmark(
    path: Union[None, str, os.PathLike] = None,
) -> Dict[str, dict]:
    """The newest trajectory record per benchmark (file order = age order)."""
    latest: Dict[str, dict] = {}
    for record in load_trajectory(path):
        latest[record["benchmark"]] = record
    return latest
