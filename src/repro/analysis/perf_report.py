"""Render the persisted perf trajectory as diffable plain-text tables.

The benchmark harness appends one ``repro.bench_trajectory`` record per
gated measurement to ``BENCH_trajectory.json`` (see
:mod:`repro.observability.trajectory`); this module turns that history into
the human-facing artefacts:

* :func:`perf_trajectory_rows` — flat table rows, one per record, with the
  headline metric picked out per benchmark (speedup, variance reduction,
  overhead fraction);
* :func:`perf_trajectory_table` — the rows rendered through
  :func:`repro.analysis.tables.render_table`;
* :func:`latest_by_benchmark` — the newest record per benchmark, the
  one-glance "where is perf today" summary;
* :func:`detect_regressions` — the **perf-regression sentinel**: each
  benchmark's newest record is compared against the median of its prior
  same-mode history, and a recorded slowdown beyond the tolerance comes
  back as a ``regressed`` verdict.  ``python -m repro.analysis.perf_report``
  runs the sentinel from the command line (exit code 1 on any regression),
  which is how CI turns an unwatched perf history into a failing check.

Rendering and checking are read-only: this module never writes the
trajectory file.
"""

from __future__ import annotations

import os
from statistics import median
from typing import Dict, List, Optional, Tuple, Union

from ..observability import load_trajectory
from .tables import render_table

__all__ = [
    "HEADLINE_METRICS",
    "LOWER_IS_BETTER_METRICS",
    "DEFAULT_TOLERANCE",
    "DEFAULT_MIN_HISTORY",
    "perf_trajectory_rows",
    "perf_trajectory_table",
    "latest_by_benchmark",
    "detect_regressions",
    "main",
]

#: Per-benchmark headline metric surfaced in the ``headline`` column; any
#: benchmark not listed falls back to its first sorted metric name.
HEADLINE_METRICS = {
    "scenarios": "speedup",
    "topology": "speedup",
    "dynamics": "speedup",
    "backend": "speedup",
    "equivocation": "speedup",
    "rare_events": "variance_reduction",
    "observability": "overhead_fraction",
}


def _headline(record: dict) -> Tuple[str, object]:
    metrics = record["metrics"]
    name = HEADLINE_METRICS.get(record["benchmark"])
    if name is None or name not in metrics:
        name = sorted(metrics)[0]
    return name, metrics[name]


def perf_trajectory_rows(
    path: Union[None, str, os.PathLike] = None,
    benchmark: Optional[str] = None,
) -> List[dict]:
    """Flat table rows for the trajectory at ``path``, oldest first.

    ``benchmark`` filters to one benchmark's history (e.g. ``"scenarios"``);
    ``path`` resolves like the trajectory writers do (explicit path, else
    ``REPRO_BENCH_TRAJECTORY``, else ``BENCH_trajectory.json``).
    """
    rows = []
    for record in load_trajectory(path):
        if benchmark is not None and record["benchmark"] != benchmark:
            continue
        name, value = _headline(record)
        machine = record["machine"]
        rows.append(
            {
                "benchmark": record["benchmark"],
                "version": record["version"],
                "mode": record["mode"],
                "headline": f"{name}={value:.4g}"
                if isinstance(value, float)
                else f"{name}={value}",
                "gate": record["metrics"].get("gate", ""),
                "machine": "" if machine is None else machine.get("machine", ""),
                "metrics": len(record["metrics"]),
            }
        )
    return rows


def perf_trajectory_table(
    path: Union[None, str, os.PathLike] = None,
    benchmark: Optional[str] = None,
) -> str:
    """The perf history rendered as a plain-text table."""
    rows = perf_trajectory_rows(path, benchmark=benchmark)
    if not rows:
        return "(no trajectory records)"
    return render_table(rows)


def latest_by_benchmark(
    path: Union[None, str, os.PathLike] = None,
) -> Dict[str, dict]:
    """The newest trajectory record per benchmark (file order = age order)."""
    latest: Dict[str, dict] = {}
    for record in load_trajectory(path):
        latest[record["benchmark"]] = record
    return latest


#: Headline metrics where *smaller* numbers are better; every other metric
#: (speedups, variance reductions) improves upward.  Names ending in
#: ``_seconds`` or ``_fraction`` are treated as lower-is-better too.
LOWER_IS_BETTER_METRICS = {"overhead_fraction"}

#: Fractional drift the sentinel tolerates before calling a regression.
#: 0.4 is deliberately loose — benchmark timings on shared CI runners are
#: noisy, and the sentinel exists to catch *structural* slowdowns (a 2x
#: regression trips it comfortably), not 10% jitter.
DEFAULT_TOLERANCE = 0.4

#: Minimum number of *prior* same-mode records a benchmark needs before the
#: sentinel will judge it; with less history the verdict is "insufficient
#: history", never "regressed".
DEFAULT_MIN_HISTORY = 1


def _lower_is_better(name: str) -> bool:
    return (
        name in LOWER_IS_BETTER_METRICS
        or name.endswith("_seconds")
        or name.endswith("_fraction")
    )


def detect_regressions(
    path: Union[None, str, os.PathLike] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    min_history: int = DEFAULT_MIN_HISTORY,
    benchmark: Optional[str] = None,
) -> List[dict]:
    """Judge each benchmark's newest record against its own history.

    For every ``(benchmark, mode)`` group in the trajectory the newest
    record's headline metric is compared to the **median of the prior
    records'** values of the same metric — quick and full workloads never
    share a baseline, and the median keeps one historical outlier from
    poisoning the comparison.  A higher-is-better metric regresses when it
    falls below ``baseline * (1 - tolerance)``; a lower-is-better one (see
    :data:`LOWER_IS_BETTER_METRICS`) when it rises above
    ``baseline * (1 + tolerance)``.

    Groups with fewer than ``min_history`` prior records, a non-numeric
    headline value, or a zero/negative baseline are reported but never
    flagged — the sentinel must pass on a freshly seeded trajectory.

    Returns one verdict dict per group, in first-seen order, each carrying
    ``benchmark``/``mode``/``metric``/``latest``/``baseline``/``history``/
    ``ratio``/``lower_is_better``/``tolerance``/``regressed``/``detail``.
    """
    groups: Dict[Tuple[str, str], List[dict]] = {}
    for record in load_trajectory(path):
        if benchmark is not None and record["benchmark"] != benchmark:
            continue
        groups.setdefault((record["benchmark"], record["mode"]), []).append(
            record
        )
    verdicts = []
    for (bench, mode), records in groups.items():
        latest = records[-1]
        metric, value = _headline(latest)
        lower = _lower_is_better(metric)
        verdict = {
            "benchmark": bench,
            "mode": mode,
            "metric": metric,
            "latest": value,
            "baseline": None,
            "history": 0,
            "ratio": None,
            "lower_is_better": lower,
            "tolerance": float(tolerance),
            "regressed": False,
            "detail": "",
        }
        history = [
            prior["metrics"][metric]
            for prior in records[:-1]
            if isinstance(prior["metrics"].get(metric), (int, float))
        ]
        verdict["history"] = len(history)
        if not isinstance(value, (int, float)):
            verdict["detail"] = f"headline {metric!r} is not numeric"
        elif len(history) < min_history:
            verdict["detail"] = (
                f"insufficient history ({len(history)} prior record(s), "
                f"need {min_history})"
            )
        else:
            baseline = median(history)
            verdict["baseline"] = baseline
            if baseline <= 0:
                verdict["detail"] = f"non-positive baseline {baseline!r}"
            else:
                ratio = value / baseline
                verdict["ratio"] = ratio
                if lower:
                    verdict["regressed"] = ratio > 1.0 + tolerance
                else:
                    verdict["regressed"] = ratio < 1.0 - tolerance
                direction = "<=" if lower else ">="
                verdict["detail"] = (
                    f"{metric}={value:.4g} vs median-of-{len(history)} "
                    f"baseline {baseline:.4g} (ratio {ratio:.3f}, "
                    f"want {direction} within {tolerance:.0%})"
                )
        verdicts.append(verdict)
    return verdicts


def main(argv: Optional[List[str]] = None) -> int:
    """CLI sentinel: print one verdict per line, exit 1 on any regression."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.perf_report",
        description=(
            "Check the committed perf trajectory for headline-metric "
            "regressions against each benchmark's own history."
        ),
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="trajectory file (default: REPRO_BENCH_TRAJECTORY or "
        "BENCH_trajectory.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="fractional drift allowed before flagging (default %(default)s)",
    )
    parser.add_argument(
        "--min-history",
        type=int,
        default=DEFAULT_MIN_HISTORY,
        help="prior records required before judging (default %(default)s)",
    )
    options = parser.parse_args(argv)
    verdicts = detect_regressions(
        options.path,
        tolerance=options.tolerance,
        min_history=options.min_history,
    )
    if not verdicts:
        print("perf sentinel: no trajectory records to judge")
        return 0
    failed = 0
    for verdict in verdicts:
        status = "REGRESSED" if verdict["regressed"] else "ok"
        failed += int(verdict["regressed"])
        print(
            f"perf sentinel: {status:9s} {verdict['benchmark']}/"
            f"{verdict['mode']}: {verdict['detail']}"
        )
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    import sys

    sys.exit(main())
