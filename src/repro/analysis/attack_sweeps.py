"""Attack-surface sweeps: success probabilities over (scenario, nu, Delta).

The paper's consistency statement is adversarial — it must hold against
*every* delay-and-withholding strategy — so its empirical counterpart is a
surface, not a point: for each adversarial scenario and each
``(nu, Delta)`` (or ``(c, nu)``) cell, the probability that the attack
displaces a suffix at least ``target_depth`` deep, estimated over many
vectorized trials.  This module produces those surfaces on top of the
scenario engine (:mod:`repro.simulation.scenarios`) and the seeded/cached
:class:`~repro.simulation.runner.ExperimentRunner`:

* :func:`attack_surface_sweep` — one row per (scenario, Delta, nu) cell with
  the attack-success probability, fork-depth statistics (each with 95%
  confidence intervals) and the closed-form verdicts (neat bound, PSS
  attack condition) for cross-reading against Figure 1;
* :func:`attack_success_grid` — the same numbers for a single scenario as
  dense ``(len(nu_values), len(delta_values))`` NumPy grids, ready for
  heatmaps or further reduction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.bounds import neat_bound
from ..core.pss import pss_attack_succeeds
from ..errors import AnalysisError
from ..params import parameters_from_c
from ..simulation.batch import proportion_confidence_interval
from ..simulation.runner import ExperimentRunner
from ..simulation.scenarios import Scenario, get_scenario

__all__ = ["ATTACK_SCENARIOS", "attack_surface_sweep", "attack_success_grid"]

#: The registered scenarios that actually attempt to displace a suffix.
ATTACK_SCENARIOS = ("private_chain", "selfish_mining")


def _check_shape(trials: int, rounds: int) -> None:
    if trials <= 0:
        raise AnalysisError("trials must be positive")
    if rounds <= 0:
        raise AnalysisError("rounds must be positive")


def attack_surface_sweep(
    scenarios: Sequence[Union[str, Scenario]] = ATTACK_SCENARIOS,
    nu_values: Sequence[float] = (0.15, 0.3, 0.4, 0.45),
    delta_values: Sequence[int] = (1, 3, 10),
    *,
    c: float = 1.0,
    n: int = 500,
    trials: int = 16,
    rounds: int = 4_000,
    seed: int = 0,
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """One row per (scenario, Delta, nu) cell of the attack surface.

    Every cell is simulated with the vectorized scenario engine at ``trials``
    independent trials; the runner supplies per-cell deterministic seeding,
    on-disk caching and (when configured) multiprocessing.  Rows carry the
    scenario's :meth:`~repro.simulation.scenarios.ScenarioResult.summary`
    plus the closed-form verdicts at that ``(c, nu)`` point.
    """
    _check_shape(trials, rounds)
    if not scenarios:
        raise AnalysisError("at least one scenario is required")
    if not nu_values or not delta_values:
        raise AnalysisError("nu_values and delta_values must be non-empty")
    runner = runner if runner is not None else ExperimentRunner(base_seed=seed)
    rows: List[Dict[str, object]] = []
    for entry in scenarios:
        scenario = get_scenario(entry)
        for delta in delta_values:
            points = [
                parameters_from_c(c=float(c), n=n, delta=int(delta), nu=float(nu))
                for nu in nu_values
            ]
            results = runner.run_scenario_grid(points, scenario, trials, rounds)
            for params, result in zip(points, results):
                row = result.summary()
                row["neat_bound_satisfied"] = params.c > neat_bound(params.nu)
                row["attack_predicted"] = pss_attack_succeeds(params.c, params.nu)
                rows.append(row)
    return rows


def attack_success_grid(
    scenario: Union[str, Scenario],
    nu_values: Sequence[float],
    delta_values: Sequence[int],
    *,
    c: float = 1.0,
    n: int = 500,
    trials: int = 16,
    rounds: int = 4_000,
    seed: int = 0,
    success_depth: Optional[int] = None,
    runner: Optional[ExperimentRunner] = None,
) -> Dict[str, np.ndarray]:
    """Dense attack-success and fork-depth grids for one scenario.

    Returns a dictionary of ``(len(nu_values), len(delta_values))`` arrays:
    ``success_probability`` (fraction of trials whose deepest displaced
    suffix reached ``success_depth``, defaulting to the scenario's own
    success depth) with ``success_ci_low`` / ``success_ci_high``,
    ``mean_deepest_fork`` with ``deepest_fork_ci_low`` / ``..._high``,
    ``max_deepest_fork`` and ``mean_releases`` — plus the 1-D coordinate
    arrays ``nu_values`` and ``delta_values``.
    """
    _check_shape(trials, rounds)
    if not nu_values or not delta_values:
        raise AnalysisError("nu_values and delta_values must be non-empty")
    scenario = get_scenario(scenario)
    runner = runner if runner is not None else ExperimentRunner(base_seed=seed)
    shape = (len(nu_values), len(delta_values))
    grids = {
        "success_probability": np.zeros(shape),
        "success_ci_low": np.zeros(shape),
        "success_ci_high": np.zeros(shape),
        "mean_deepest_fork": np.zeros(shape),
        "deepest_fork_ci_low": np.zeros(shape),
        "deepest_fork_ci_high": np.zeros(shape),
        "max_deepest_fork": np.zeros(shape, dtype=np.int64),
        "mean_releases": np.zeros(shape),
    }
    for column, delta in enumerate(delta_values):
        points = [
            parameters_from_c(c=float(c), n=n, delta=int(delta), nu=float(nu))
            for nu in nu_values
        ]
        results = runner.run_scenario_grid(points, scenario, trials, rounds)
        for row, result in enumerate(results):
            mask = result.attack_success_mask(success_depth)
            low, high = _binomial_ci(mask)
            grids["success_probability"][row, column] = float(mask.mean())
            grids["success_ci_low"][row, column] = low
            grids["success_ci_high"][row, column] = high
            fork_low, fork_high = result.deepest_fork_ci95
            grids["mean_deepest_fork"][row, column] = result.mean_deepest_fork
            grids["deepest_fork_ci_low"][row, column] = fork_low
            grids["deepest_fork_ci_high"][row, column] = fork_high
            grids["max_deepest_fork"][row, column] = result.max_deepest_fork
            grids["mean_releases"][row, column] = float(result.releases.mean())
    grids["nu_values"] = np.asarray(nu_values, dtype=np.float64)
    grids["delta_values"] = np.asarray(delta_values, dtype=np.int64)
    return grids


def _binomial_ci(mask: np.ndarray) -> Tuple[float, float]:
    """Wilson score 95% CI for a success fraction (honest at 0 and 1)."""
    mask = np.asarray(mask)
    return proportion_confidence_interval(int(mask.sum()), mask.size)
