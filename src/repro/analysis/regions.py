"""Partitioning the (c, nu) plane into security regions.

Figure 1 implicitly divides the parameter plane into four regions:

* **pss-consistent** — below the blue curve: already certified by PSS;
* **ours-only** — between the blue and magenta curves: certified consistent by
  the paper's bound but not by PSS (the paper's improvement);
* **gap** — between the magenta curve and the red attack curve: neither proven
  consistent nor known attackable (the open problem the paper's introduction
  poses as a future direction);
* **attackable** — above the red curve: the PSS Remark 8.5 attack breaks
  consistency.

This module classifies individual points and integrates the region areas over
the paper's c-range, which turns the figure's visual "the magenta line is well
above the blue line" into numbers (what fraction of the plane each analysis
certifies).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.bounds import nu_max_neat_bound
from ..core.pss import nu_max_pss_consistency, nu_min_pss_attack
from ..errors import AnalysisError
from .figure1 import default_c_grid

__all__ = ["SecurityRegion", "classify_point", "RegionAreas", "region_areas"]


class SecurityRegion(enum.Enum):
    """The four security regions of the (c, nu) plane."""

    PSS_CONSISTENT = "pss-consistent"
    OURS_ONLY = "ours-only"
    GAP = "gap"
    ATTACKABLE = "attackable"


def classify_point(c: float, nu: float) -> SecurityRegion:
    """Classify one (c, nu) point into its security region.

    Boundary points are resolved conservatively: a point exactly on a
    consistency curve is *not* counted as certified (the theorems use strict
    inequalities), and a point exactly on the attack curve is counted as
    attackable.
    """
    if c <= 0.0:
        raise AnalysisError(f"c must be positive, got {c!r}")
    if not (0.0 < nu < 0.5):
        raise AnalysisError(f"nu must lie in (0, 1/2), got {nu!r}")
    if nu >= nu_min_pss_attack(c):
        return SecurityRegion.ATTACKABLE
    if nu < nu_max_pss_consistency(c):
        return SecurityRegion.PSS_CONSISTENT
    if nu < nu_max_neat_bound(c):
        return SecurityRegion.OURS_ONLY
    return SecurityRegion.GAP


@dataclass(frozen=True)
class RegionAreas:
    """Fractions of the sampled (c, nu) rectangle occupied by each region.

    ``fractions`` sums to 1 (up to grid resolution); ``improvement_ratio`` is
    the certified area including the paper's bound divided by the area PSS
    alone certifies — a single-number summary of the paper's gain.
    """

    c_min: float
    c_max: float
    grid_points: int
    fractions: Dict[SecurityRegion, float]

    @property
    def certified_by_pss(self) -> float:
        """Fraction certified consistent by PSS alone."""
        return self.fractions[SecurityRegion.PSS_CONSISTENT]

    @property
    def certified_by_ours(self) -> float:
        """Fraction certified consistent by the paper's bound (a superset of PSS)."""
        return (
            self.fractions[SecurityRegion.PSS_CONSISTENT]
            + self.fractions[SecurityRegion.OURS_ONLY]
        )

    @property
    def open_gap(self) -> float:
        """Fraction neither certified nor known attackable (the open problem)."""
        return self.fractions[SecurityRegion.GAP]

    @property
    def improvement_ratio(self) -> float:
        """Certified-by-ours area over certified-by-PSS area (>= 1)."""
        if self.certified_by_pss <= 0.0:
            return float("inf") if self.certified_by_ours > 0.0 else 1.0
        return self.certified_by_ours / self.certified_by_pss

    def as_rows(self):
        """Rows for tabulation, one per region."""
        return [
            {"region": region.value, "area fraction": fraction}
            for region, fraction in self.fractions.items()
        ]


def region_areas(
    c_values: Optional[Sequence[float]] = None,
    nu_points: int = 200,
) -> RegionAreas:
    """Integrate the region areas over the paper's c-range (log-uniform in c).

    The area element is log-uniform in ``c`` (matching the figure's log axis)
    and uniform in ``nu`` over (0, 1/2).
    """
    if nu_points < 2:
        raise AnalysisError("nu_points must be at least 2")
    grid = default_c_grid() if c_values is None else np.asarray(c_values, dtype=float)
    if len(grid) < 2:
        raise AnalysisError("need at least two c values")
    nu_grid = np.linspace(1e-6, 0.5 - 1e-6, nu_points)

    counts = {region: 0 for region in SecurityRegion}
    for c in grid:
        ours = nu_max_neat_bound(float(c))
        pss = nu_max_pss_consistency(float(c))
        attack = nu_min_pss_attack(float(c))
        for nu in nu_grid:
            if nu >= attack:
                counts[SecurityRegion.ATTACKABLE] += 1
            elif nu < pss:
                counts[SecurityRegion.PSS_CONSISTENT] += 1
            elif nu < ours:
                counts[SecurityRegion.OURS_ONLY] += 1
            else:
                counts[SecurityRegion.GAP] += 1

    total = len(grid) * len(nu_grid)
    fractions = {region: counts[region] / total for region in SecurityRegion}
    return RegionAreas(
        c_min=float(grid[0]),
        c_max=float(grid[-1]),
        grid_points=total,
        fractions=fractions,
    )
