"""Plain-text table rendering.

The benchmarks and examples print the regenerated tables/figure series in the
same row/column layout the paper reports; matplotlib is unavailable in the
offline environment, so output is text (and optionally CSV) rather than plots.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..errors import AnalysisError
from ..params import ProtocolParameters

__all__ = ["format_value", "render_table", "render_mapping", "table_i"]

Number = Union[int, float]


def format_value(value: object, precision: int = 6) -> str:
    """Render one cell: compact scientific/fixed notation for floats."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if math.isnan(value):
            # NaN means "not estimable" (e.g. a single-trial CI half-width),
            # never a numeric value — render it as such.
            return "n/a"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.{precision - 2}e}"
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 6,
) -> str:
    """Render a list of row dictionaries as an aligned plain-text table."""
    if not rows:
        raise AnalysisError("cannot render an empty table")
    if columns is None:
        columns = list(rows[0].keys())
    header = list(columns)
    body = [[format_value(row.get(column, ""), precision) for column in header] for row in rows]
    widths = [
        max(len(header[index]), *(len(line[index]) for line in body))
        for index in range(len(header))
    ]
    lines = [
        "  ".join(header[index].ljust(widths[index]) for index in range(len(header))),
        "  ".join("-" * widths[index] for index in range(len(header))),
    ]
    for line in body:
        lines.append("  ".join(line[index].ljust(widths[index]) for index in range(len(header))))
    return "\n".join(lines)


def render_mapping(mapping: Mapping[str, object], precision: int = 6) -> str:
    """Render a flat mapping as a two-column key/value table."""
    rows = [{"quantity": key, "value": value} for key, value in mapping.items()]
    return render_table(rows, columns=["quantity", "value"], precision=precision)


def table_i(params: ProtocolParameters) -> List[Dict[str, object]]:
    """Table I of the paper: the notation and its values at one parameter point."""
    return [
        {"symbol": "p", "meaning": "hardness of the proof of work", "value": params.p},
        {"symbol": "n", "meaning": "number of miners", "value": params.n},
        {"symbol": "Delta", "meaning": "maximum message delay (rounds)", "value": params.delta},
        {"symbol": "c", "meaning": "1/(p n Delta): expected delays before a block", "value": params.c},
        {"symbol": "mu", "meaning": "honest fraction of computational power", "value": params.mu},
        {"symbol": "nu", "meaning": "adversarial fraction of computational power", "value": params.nu},
        {"symbol": "alpha", "meaning": "P[some honest miner mines in a round]", "value": params.alpha},
        {"symbol": "alpha_bar", "meaning": "P[no honest miner mines in a round]", "value": params.alpha_bar},
        {"symbol": "alpha1", "meaning": "P[exactly one honest miner mines in a round]", "value": params.alpha1},
    ]
