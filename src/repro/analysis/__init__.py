"""Experiment drivers: regenerate the paper's figure, tables and validation studies.

* :mod:`repro.analysis.figure1` — the three curves of Figure 1;
* :mod:`repro.analysis.remark1` — the numerical ranges of Remark 1
  (Inequalities 12-17);
* :mod:`repro.analysis.tables` — plain-text rendering, including Table I;
* :mod:`repro.analysis.validation` — theory-versus-simulation agreement;
* :mod:`repro.analysis.sweeps` — (c, nu) sweeps and the proof-chain ablation;
* :mod:`repro.analysis.attack_sweeps` — attack-success-probability and
  fork-depth surfaces over (scenario, nu, Delta), on the vectorized
  scenario engine;
* :mod:`repro.analysis.topology_sweeps` — Δ-tightness curves: empirical
  convergence-opportunity rates under peer-graph gossip propagation versus
  the paper's fixed-Δ prediction, per graph degree / latency spread;
* :mod:`repro.analysis.partition_sweeps` — consistency-violation depth
  versus partition/eclipse duration (deterministically monotone under the
  shared-trace design), churn-rate tightness tables, and equivocation vs
  single-chain partial-cut comparisons on shared traces, on the dynamics
  subsystem;
* :mod:`repro.analysis.power_sweeps` — pool-concentration tables: Gini/HHI
  of a skewed :class:`~repro.simulation.MiningPowerProfile` versus the
  Poisson-binomial shift of the Eq. (44) convergence-opportunity rate;
* :mod:`repro.analysis.tail_sweeps` — deep-tail validation on the
  rare-event estimator: tilted/splitting violation tails versus the
  Lundberg-exponent predictions under the corrected and Kiffer
  convergence rates, plus the plain-MC overlap-region agreement table;
* :mod:`repro.analysis.perf_report` — the persisted benchmark trajectory
  (``BENCH_trajectory.json``) rendered as diffable plain-text tables, plus
  :func:`~repro.analysis.perf_report.detect_regressions`, the CI perf
  sentinel that compares each benchmark's newest record to the median of
  its prior same-mode history.
"""

from .attack_sweeps import ATTACK_SCENARIOS, attack_success_grid, attack_surface_sweep
from .partition_sweeps import (
    churn_tightness_table,
    equivocation_comparison_sweep,
    partition_depth_sweep,
)
from .power_sweeps import (
    concentration_table,
    gini_coefficient,
    herfindahl_index,
    zipf_weights,
)
from .topology_sweeps import (
    build_regular_topology,
    delta_tightness_sweep,
    effective_delta_table,
)
from .figure1 import Figure1Point, Figure1Series, default_c_grid, figure1_checks, figure1_series
from .regions import RegionAreas, SecurityRegion, classify_point, region_areas
from .remark1 import PAPER_SETTINGS, Remark1Row, remark1_row, remark1_table
from .report import ReportConfig, generate_report
from .sweeps import (
    batch_simulation_sweep,
    bound_sweep,
    implication_chain_ablation,
    security_margin_sweep,
    simulation_sweep,
)
from .perf_report import (
    DEFAULT_MIN_HISTORY,
    DEFAULT_TOLERANCE,
    detect_regressions,
    latest_by_benchmark,
    perf_trajectory_rows,
    perf_trajectory_table,
)
from .tables import format_value, render_mapping, render_table, table_i
from .tail_sweeps import (
    lundberg_exponent,
    overlap_validation_table,
    tail_depth_sweep,
)
from .validation import (
    BatchExpectationValidation,
    ConsistencyScenario,
    ExpectationValidation,
    StationaryValidation,
    validate_consistency_scenario,
    validate_expectations,
    validate_expectations_batch,
    validate_suffix_stationary,
)

__all__ = [
    "Figure1Point",
    "Figure1Series",
    "default_c_grid",
    "figure1_series",
    "figure1_checks",
    "Remark1Row",
    "remark1_row",
    "remark1_table",
    "PAPER_SETTINGS",
    "ReportConfig",
    "generate_report",
    "SecurityRegion",
    "RegionAreas",
    "classify_point",
    "region_areas",
    "render_table",
    "render_mapping",
    "format_value",
    "table_i",
    "StationaryValidation",
    "ExpectationValidation",
    "BatchExpectationValidation",
    "ConsistencyScenario",
    "validate_suffix_stationary",
    "validate_expectations",
    "validate_expectations_batch",
    "validate_consistency_scenario",
    "bound_sweep",
    "security_margin_sweep",
    "simulation_sweep",
    "batch_simulation_sweep",
    "implication_chain_ablation",
    "ATTACK_SCENARIOS",
    "attack_surface_sweep",
    "attack_success_grid",
    "build_regular_topology",
    "delta_tightness_sweep",
    "effective_delta_table",
    "partition_depth_sweep",
    "churn_tightness_table",
    "equivocation_comparison_sweep",
    "zipf_weights",
    "gini_coefficient",
    "herfindahl_index",
    "concentration_table",
    "lundberg_exponent",
    "tail_depth_sweep",
    "overlap_validation_table",
    "perf_trajectory_rows",
    "perf_trajectory_table",
    "latest_by_benchmark",
    "detect_regressions",
    "DEFAULT_TOLERANCE",
    "DEFAULT_MIN_HISTORY",
]
