"""Partition and churn studies: consistency-violation depth under dynamics.

The paper's Lemma 1 prices a depth-``d`` consistency threat as a window of
rounds in which adversarial blocks outnumber convergence opportunities by
``d`` (the batch engine's ``worst_deficits``).  Under a static Δ-bounded
network that deficit is almost always small; a partition or eclipse window
suppresses every convergence opportunity inside it while the adversary
keeps mining, so the deficit — the analytical violation depth — grows with
the window.  This module measures that growth on top of the dynamics
subsystem (:mod:`repro.simulation.dynamics` via
:meth:`~repro.simulation.runner.ExperimentRunner.run_dynamics_point`):

* :func:`partition_depth_sweep` — one row per partition duration: the mean
  and maximum worst-window deficit (with 95% CIs), the Lemma 1 fraction and
  the convergence-opportunity rate against the unpartitioned Eq. (44)
  prediction.  At a fixed seed the full-eclipse schedule consumes no
  entropy, so the mining traces are *identical* across durations and the
  depth column is deterministically non-decreasing in the duration — the
  subsystem's acceptance invariant.
* :func:`churn_tightness_table` — the churn analogue of the Δ-tightness
  sweep: peers periodically leave and rejoin a gossip graph, and each row
  compares the empirical convergence-opportunity rate under that churn
  level against the fixed-Δ prediction (tightness ratio, 95% CI).
* :func:`equivocation_comparison_sweep` — equivocation versus the
  single-chain partition attack on *shared* partial-cut traces: one row
  per duration with both strategies' displaced depths and the equivocation
  advantage, priced by the two-component scan.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import AnalysisError, SimulationError
from ..params import parameters_from_c
from ..simulation.batch import (
    BatchSimulation,
    _confidence_interval,
    draw_mining_traces,
)
from ..simulation.dynamics import (
    ChurnEvent,
    DynamicsSchedule,
    PartitionEvent,
    PartitionScenario,
    TimeVaryingDelayModel,
)
from ..simulation.runner import ExperimentRunner
from ..simulation.scenarios import ScenarioSimulation
from ..simulation.topology import PeerGraphTopology

__all__ = [
    "partition_depth_sweep",
    "churn_tightness_table",
    "equivocation_comparison_sweep",
]


def _check_shape(trials: int, rounds: int) -> None:
    if trials <= 0:
        raise AnalysisError("trials must be positive")
    if rounds <= 0:
        raise AnalysisError("rounds must be positive")


def partition_depth_sweep(
    durations: Sequence[int] = (0, 100, 200, 400),
    *,
    partition_start: int = 1_000,
    c: float = 1.0,
    n: int = 500,
    delta: int = 3,
    nu: float = 0.25,
    trials: int = 16,
    rounds: int = 4_000,
    seed: int = 0,
    topology: Optional[PeerGraphTopology] = None,
    share_traces: bool = True,
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """Violation-depth versus partition-duration curves (95% CIs).

    For each duration the peer network is cut over
    ``[partition_start, partition_start + duration)`` (the full eclipse
    without a ``topology``, a genuine graph partition with one) and the
    passive batch engine measures the worst windowed
    ``adversarial blocks - convergence opportunities`` deficit per trial —
    the depth of the consistency threat Lemma 1 would have to survive.
    Rows also carry the convergence-opportunity rate with its CI and the
    unpartitioned Eq. (44) prediction, quantifying how much of the paper's
    margin the window consumes.

    With ``share_traces=True`` (the default) every duration is evaluated on
    the *same* seeded mining traces and block-origin stream — the
    common-random-numbers design for comparing durations.  A longer window
    then delays every block at least as much as a shorter one, the
    opportunity mask shrinks pointwise, and the violation-depth column is
    deterministically non-decreasing in the duration at any fixed seed.
    ``share_traces=False`` instead routes each duration through
    :meth:`~repro.simulation.runner.ExperimentRunner.run_dynamics_point`
    (independent per-schedule seed streams, on-disk caching).
    """
    _check_shape(trials, rounds)
    if not durations:
        raise AnalysisError("at least one partition duration is required")
    if any(int(duration) < 0 for duration in durations):
        raise AnalysisError("partition durations must be non-negative")
    if not (0 <= int(partition_start) < rounds):
        raise AnalysisError(
            f"partition_start must lie inside the run [0, {rounds}), got "
            f"{partition_start!r}"
        )
    runner = runner if runner is not None else ExperimentRunner(base_seed=seed)
    params = parameters_from_c(c=float(c), n=n, delta=int(delta), nu=float(nu))
    if share_traces:
        trace_rng = np.random.default_rng(
            runner.seed_sequence_for(params, trials, rounds)
        )
        honest, adversary = draw_mining_traces(
            params, trials, rounds, trace_rng, runner.draw_mode
        )
        origin_entropy = runner.seed_sequence_for(params, trials, rounds).entropy
    rows: List[Dict[str, object]] = []
    for duration in durations:
        schedule = DynamicsSchedule(
            [PartitionEvent(int(partition_start), int(duration))]
        )
        if share_traces:
            model = TimeVaryingDelayModel(schedule, topology=topology)
            delays = None
            max_delay = None
            if not model.trivial:
                # A fresh generator from the same per-sweep entropy gives
                # every duration the identical block-origin stream.
                delays = model.draw_delays(
                    trials,
                    rounds,
                    params.delta,
                    np.random.default_rng(
                        np.random.SeedSequence([*np.atleast_1d(origin_entropy), 1])
                    ),
                )
                max_delay = model.delay_cap(params.delta, rounds)
            result = BatchSimulation(
                params, rng=0, draw_mode=runner.draw_mode, delay_model=model
            ).run_traces(honest, adversary, delays=delays, max_delay=max_delay)
        else:
            result = runner.run_dynamics_point(
                params, trials, rounds, schedule, topology=topology
            )
        depth_ci = _confidence_interval(result.worst_deficits)
        rate_ci = result.convergence_rate_ci95
        rows.append(
            {
                "partition_start": int(partition_start),
                "partition_duration": int(duration),
                "c": params.c,
                "nu": params.nu,
                "delta": params.delta,
                "mean_violation_depth": float(result.worst_deficits.mean()),
                "violation_depth_ci95_low": depth_ci[0],
                "violation_depth_ci95_high": depth_ci[1],
                "max_violation_depth": int(result.worst_deficits.max()),
                "lemma1_fraction": result.lemma1_fraction,
                "mean_convergence_rate": result.mean_convergence_rate,
                "convergence_rate_ci95_low": rate_ci[0],
                "convergence_rate_ci95_high": rate_ci[1],
                "predicted_rate_unpartitioned": (
                    params.convergence_opportunity_probability
                ),
                "theoretical_adversary_rate": params.beta,
            }
        )
    return rows


def equivocation_comparison_sweep(
    durations: Sequence[int] = (0, 100, 200, 400),
    *,
    partition_start: int = 1_000,
    cut_fraction: float = 0.5,
    target_depth: int = 6,
    c: float = 1.0,
    n: int = 500,
    delta: int = 3,
    nu: float = 0.25,
    trials: int = 16,
    rounds: int = 4_000,
    seed: int = 0,
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """Equivocation vs single-chain partition attacks on shared traces.

    Both strategies attack the same partial cut — the network splits into a
    majority and a minority holding ``cut_fraction`` of the honest power
    over ``[partition_start, partition_start + duration)`` — and both are
    priced by the two-component scan.  The single-chain attacker
    (``private_chain``) races the best public chain it can see across the
    cut; the equivocating attacker maintains one private chain per
    component, feeding each round's successes to the weaker race and
    releasing conflicting chains to the two sides.

    Every duration and both strategies run on the *same* seeded mining and
    minority-split tensors (the common-random-numbers design of
    :func:`partition_depth_sweep`), so each row's
    ``equivocation_advantage`` — the difference in mean displaced depth —
    reflects the strategy change alone, not sampling noise.  Rows also
    carry both strategies' attack-success probabilities at
    ``target_depth``, the mean merge-on-heal displaced depth, and the
    shared trace parameters.
    """
    _check_shape(trials, rounds)
    if not durations:
        raise AnalysisError("at least one partition duration is required")
    if any(int(duration) < 0 for duration in durations):
        raise AnalysisError("partition durations must be non-negative")
    if not (0 <= int(partition_start) < rounds):
        raise AnalysisError(
            f"partition_start must lie inside the run [0, {rounds}), got "
            f"{partition_start!r}"
        )
    if not (0.0 < float(cut_fraction) < 1.0):
        raise AnalysisError(
            f"cut_fraction must lie strictly in (0, 1), got {cut_fraction!r}"
        )
    runner = runner if runner is not None else ExperimentRunner(base_seed=seed)
    params = parameters_from_c(c=float(c), n=n, delta=int(delta), nu=float(nu))
    trace_rng = np.random.default_rng(
        runner.seed_sequence_for(params, trials, rounds)
    )
    honest, adversary = draw_mining_traces(
        params, trials, rounds, trace_rng, runner.draw_mode
    )
    # A fresh generator from the same per-sweep entropy gives every
    # duration and both strategies the identical minority-split stream.
    origin_entropy = runner.seed_sequence_for(params, trials, rounds).entropy
    split = np.random.default_rng(
        np.random.SeedSequence([*np.atleast_1d(origin_entropy), 2])
    ).binomial(np.asarray(honest), float(cut_fraction))
    rows: List[Dict[str, object]] = []
    for duration in durations:
        results = {}
        for kind in ("private_chain", "equivocation"):
            scenario = PartitionScenario(
                name=f"sweep_{kind}",
                kind=kind,
                target_depth=int(target_depth),
                give_up_deficit=None,
                partition_start=int(partition_start),
                partition_duration=int(duration),
                cut_fraction=float(cut_fraction),
            )
            results[kind] = ScenarioSimulation(
                params, scenario, rng=0, draw_mode=runner.draw_mode
            ).run_traces(honest, adversary, split_counts=split)
        single, equivocation = (
            results["private_chain"],
            results["equivocation"],
        )
        single_ci = _confidence_interval(single.deepest_forks)
        equivocation_ci = _confidence_interval(equivocation.deepest_forks)
        rows.append(
            {
                "partition_start": int(partition_start),
                "partition_duration": int(duration),
                "cut_fraction": float(cut_fraction),
                "target_depth": int(target_depth),
                "c": params.c,
                "nu": params.nu,
                "delta": params.delta,
                "single_mean_deepest_fork": single.mean_deepest_fork,
                "single_deepest_fork_ci95_low": single_ci[0],
                "single_deepest_fork_ci95_high": single_ci[1],
                "single_max_deepest_fork": single.max_deepest_fork,
                "single_success_probability": (
                    single.attack_success_probability
                ),
                "single_mean_merge_depth": float(single.merge_depths.mean()),
                "equivocation_mean_deepest_fork": (
                    equivocation.mean_deepest_fork
                ),
                "equivocation_deepest_fork_ci95_low": equivocation_ci[0],
                "equivocation_deepest_fork_ci95_high": equivocation_ci[1],
                "equivocation_max_deepest_fork": (
                    equivocation.max_deepest_fork
                ),
                "equivocation_success_probability": (
                    equivocation.attack_success_probability
                ),
                "equivocation_mean_merge_depth": float(
                    equivocation.merge_depths.mean()
                ),
                "equivocation_advantage": (
                    equivocation.mean_deepest_fork - single.mean_deepest_fork
                ),
            }
        )
    return rows


def _connected_leave_set(
    topology: PeerGraphTopology,
    count: int,
    rng: np.random.Generator,
    max_attempts: int = 64,
) -> tuple:
    """Draw ``count`` peers whose simultaneous absence keeps gossip connected."""
    nodes = topology.n_nodes
    for _ in range(max_attempts):
        leave = tuple(
            int(node) for node in rng.choice(nodes, size=count, replace=False)
        )
        active = np.ones(nodes, dtype=bool)
        active[list(leave)] = False
        adjacency = (topology.latencies > 0) & active[:, None] & active[None, :]
        reached = np.zeros(nodes, dtype=bool)
        start = int(np.nonzero(active)[0][0])
        reached[start] = True
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbour in np.nonzero(adjacency[node])[0]:
                if not reached[neighbour]:
                    reached[neighbour] = True
                    frontier.append(int(neighbour))
        if (reached == active).all():
            return leave
    raise AnalysisError(
        f"could not find {count} peers whose absence keeps the graph "
        f"connected in {max_attempts} attempts; lower the churn fraction "
        "or use a denser topology"
    )


def churn_tightness_table(
    leave_counts: Sequence[int] = (0, 2, 4),
    *,
    period: int = 500,
    off_duration: int = 250,
    graph_nodes: int = 32,
    degree: int = 4,
    c: float = 4.0,
    n: int = 1_000,
    nu: float = 0.2,
    delta: Optional[int] = None,
    trials: int = 12,
    rounds: int = 4_000,
    seed: int = 0,
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """Convergence-rate tightness under periodic peer churn, per churn level.

    A random-regular gossip graph loses ``leave_count`` random peers every
    ``period`` rounds for ``off_duration`` rounds (the leave sets are
    seeded and validated to keep the remaining graph connected, so every
    schedule compiles).  Each row reports the empirical
    convergence-opportunity rate with a 95% CI, the fixed-Δ Eq. (44)
    prediction at the nominal Δ and the tightness ratio between them —
    how much of the static analysis' margin survives the churn level.
    """
    _check_shape(trials, rounds)
    if not leave_counts:
        raise AnalysisError("at least one churn level is required")
    if period <= 0 or off_duration < 0:
        raise AnalysisError("period must be positive and off_duration >= 0")
    topology = PeerGraphTopology.random_regular(
        graph_nodes,
        degree,
        rng=np.random.default_rng(np.random.SeedSequence([int(seed), 1])),
    )
    if delta is None:
        delta = max(topology.diameter, 1)
    params = parameters_from_c(c=float(c), n=n, delta=int(delta), nu=float(nu))
    runner = runner if runner is not None else ExperimentRunner(base_seed=seed)
    rows: List[Dict[str, object]] = []
    for level, leave_count in enumerate(leave_counts):
        leave_count = int(leave_count)
        if leave_count < 0 or leave_count >= graph_nodes:
            raise AnalysisError(
                f"leave counts must lie in [0, {graph_nodes}), got {leave_count}"
            )
        churn_rng = np.random.default_rng(
            np.random.SeedSequence([int(seed), 2, level])
        )
        events = []
        if leave_count:
            for start in range(period, rounds, period):
                leave = _connected_leave_set(topology, leave_count, churn_rng)
                events.append(ChurnEvent(start, leave, duration=off_duration))
        try:
            result = runner.run_dynamics_point(
                params, trials, rounds, DynamicsSchedule(events), topology=topology
            )
        except SimulationError as error:  # pragma: no cover - defensive
            raise AnalysisError(
                f"churn schedule at leave_count={leave_count} failed to "
                f"compile: {error}"
            ) from error
        rate_ci = result.convergence_rate_ci95
        predicted = params.convergence_opportunity_probability
        empirical = result.mean_convergence_rate
        rows.append(
            {
                "leave_count": leave_count,
                "churn_events": len(events),
                "period": int(period),
                "off_duration": int(off_duration),
                "nodes": topology.n_nodes,
                "delta": params.delta,
                "empirical_rate": empirical,
                "empirical_ci95_low": rate_ci[0],
                "empirical_ci95_high": rate_ci[1],
                "predicted_rate_nominal": predicted,
                "tightness_vs_nominal": (
                    empirical / predicted if predicted > 0 else np.inf
                ),
                "mean_violation_depth": float(result.worst_deficits.mean()),
                "lemma1_fraction": result.lemma1_fraction,
            }
        )
    return rows
