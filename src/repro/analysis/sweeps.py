"""Parameter sweeps.

Sweep helpers used by the benchmarks and examples: evaluate the paper's bounds
and/or run simulations across a grid of ``(c, nu)`` points, and measure the
per-step looseness of the Theorem 1 → Theorem 2 implication chain (an ablation
of the proof's sufficiency steps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core.bounds import (
    neat_bound,
    nu_max_neat_bound,
    theorem1_condition,
    theorem2_c_threshold,
)
from ..core.lemmas import implication_chain_thresholds
from ..core.pss import attack_c_threshold, nu_max_pss_consistency, pss_attack_succeeds
from ..errors import AnalysisError
from ..params import ProtocolParameters, parameters_from_c
from ..simulation import NakamotoSimulation, PrivateChainAdversary
from ..simulation.rng import spawn_rngs
from ..simulation.runner import ExperimentRunner
from .validation import ConsistencyScenario, validate_consistency_scenario

__all__ = [
    "bound_sweep",
    "security_margin_sweep",
    "simulation_sweep",
    "batch_simulation_sweep",
    "implication_chain_ablation",
]


def bound_sweep(
    c_values: Sequence[float],
    nu_values: Sequence[float],
    delta: int = 10,
    n: int = 100_000,
) -> List[Dict[str, object]]:
    """Evaluate every closed-form verdict on a (c, nu) grid.

    Returns one row per grid point with the neat-bound, PSS and attack
    verdicts, suitable for tabulation.
    """
    rows: List[Dict[str, object]] = []
    for c in c_values:
        for nu in nu_values:
            params = parameters_from_c(c=float(c), n=n, delta=delta, nu=float(nu))
            rows.append(
                {
                    "c": float(c),
                    "nu": float(nu),
                    "neat_threshold": neat_bound(float(nu)),
                    "consistent_ours": float(c) > neat_bound(float(nu)),
                    "consistent_pss": float(nu) < nu_max_pss_consistency(float(c)),
                    "attack_succeeds": pss_attack_succeeds(float(c), float(nu)),
                    "theorem1_holds": theorem1_condition(params, delta1=1e-9),
                }
            )
    return rows


def security_margin_sweep(
    nu_values: Sequence[float], delta: int = 10**13
) -> List[Dict[str, float]]:
    """For each ``nu``: the minimal ``c`` required by each analysis and by the attack.

    Rows contain the paper's threshold ``2 mu / ln(mu/nu)``, the PSS threshold
    ``2 (1-nu)^2 / (1 - 2 nu)``, the attack threshold ``nu(1-nu)/(1-2nu)`` and
    the improvement factor of the paper over PSS.
    """
    rows: List[Dict[str, float]] = []
    for nu in nu_values:
        nu = float(nu)
        ours = neat_bound(nu)
        pss = 2.0 * (1.0 - nu) ** 2 / (1.0 - 2.0 * nu)
        attack = attack_c_threshold(nu)
        rows.append(
            {
                "nu": nu,
                "c_required_ours": ours,
                "c_required_pss": pss,
                "c_attack_below": attack,
                "improvement_factor": pss / ours,
                "gap_to_attack": ours / attack,
            }
        )
    return rows


def simulation_sweep(
    scenarios: Sequence[Dict[str, float]],
    rounds: int = 30_000,
    n: int = 1_000,
    delta: int = 3,
    seed: int = 0,
) -> List[ConsistencyScenario]:
    """Run the withholding-attack simulation at each ``{"c": ..., "nu": ...}`` scenario.

    Each scenario gets its own child generator spawned from ``seed`` (via
    :func:`repro.simulation.rng.spawn_rngs`), so the per-scenario random
    streams are independent and stable under re-ordering.
    """
    if rounds <= 0:
        raise AnalysisError("rounds must be positive")
    results: List[ConsistencyScenario] = []
    rngs = spawn_rngs(seed, len(scenarios))
    for scenario, rng in zip(scenarios, rngs):
        params = parameters_from_c(
            c=float(scenario["c"]), n=n, delta=delta, nu=float(scenario["nu"])
        )
        results.append(
            validate_consistency_scenario(
                params,
                rounds=rounds,
                adversary=PrivateChainAdversary(delta),
                rng=rng,
            )
        )
    return results


def batch_simulation_sweep(
    scenarios: Sequence[Dict[str, float]],
    trials: int = 32,
    rounds: int = 20_000,
    n: int = 1_000,
    delta: int = 3,
    seed: int = 0,
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """Vectorized many-trial sweep over ``{"c": ..., "nu": ...}`` scenarios.

    Runs every scenario through the batch Monte Carlo engine (via an
    :class:`~repro.simulation.runner.ExperimentRunner`, so caching and
    multiprocess sharding are available) and returns one row per scenario
    with batch-mean rates, confidence intervals, the Lemma 1 event fraction
    and the worst windowed ``A - C`` deficit observed across trials.
    """
    if rounds <= 0:
        raise AnalysisError("rounds must be positive")
    if trials <= 0:
        raise AnalysisError("trials must be positive")
    runner = runner if runner is not None else ExperimentRunner(base_seed=seed)
    points = [
        parameters_from_c(
            c=float(scenario["c"]), n=n, delta=delta, nu=float(scenario["nu"])
        )
        for scenario in scenarios
    ]
    rows: List[Dict[str, object]] = []
    for params, result in zip(points, runner.run_grid(points, trials, rounds)):
        summary = result.summary()
        summary["neat_bound_satisfied"] = params.c > neat_bound(params.nu)
        summary["attack_predicted"] = pss_attack_succeeds(params.c, params.nu)
        rows.append(summary)
    return rows


def implication_chain_ablation(
    nu_values: Sequence[float],
    delta: int = 10,
    n: int = 100_000,
    eps1: float = 0.1,
    eps2: float = 0.01,
) -> List[Dict[str, float]]:
    """Per-step c-thresholds of the Lemma 4-8 chain, for each ``nu``.

    Quantifies how much each sufficiency step of the proof loosens the
    requirement on ``c``, relative to the neat bound itself.
    """
    rows: List[Dict[str, float]] = []
    for nu in nu_values:
        nu = float(nu)
        steps = implication_chain_thresholds(nu, delta, n, eps1, eps2)
        row: Dict[str, float] = {"nu": nu, "neat_bound": neat_bound(nu)}
        for step in steps:
            row[f"step_{step.name}"] = step.c_threshold
        row["theorem2_threshold"] = theorem2_c_threshold(nu, delta, eps1, eps2)
        rows.append(row)
    return rows
