"""Deep-tail validation: estimated violation tails versus the analytical curves.

The paper's consistency guarantees are statements about probabilities far
below anything plain Monte Carlo can see — the "neat bound" regime is
``1e-9`` and beyond.  The rare-event estimator
(:mod:`repro.simulation.rare_events`) reaches that regime; this module turns
its output into the comparisons the reproduction needs:

* :func:`lundberg_exponent` — the exponential decay rate ``theta*`` of the
  violation tail predicted by the per-round random walk ``A - C``: the
  positive root of ``E[e^{theta (A_1 - C_1)}] = 1`` with ``A_1 ~
  Binomial(m_a, p)`` and ``C_1 ~ Bernoulli(rate)``, solved for both the
  corrected Eq. (44) convergence-opportunity rate and Kiffer et al.'s
  erroneously normalised one — so the measured tail slope can arbitrate
  between the two analytical curves;
* :func:`tail_depth_sweep` — one row per violation depth: the tilted
  estimate with its CI and diagnostics next to both Lundberg predictions
  and the neat-bound verdict, down to depths where the probability is
  ``1e-9`` or smaller;
* :func:`overlap_validation_table` — the 1e-4-to-1e-6 overlap region where
  plain MC is still feasible: plain, tilted and splitting estimates side by
  side with a joint-CI agreement flag per depth (the unbiasedness check the
  estimator's acceptance rests on).

Everything runs through the seeded/cached
:class:`~repro.simulation.runner.ExperimentRunner`, so rows are
deterministic at a given ``seed`` (the goldens pin ``base_seed=2026``) and
re-renders only pay for new points.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from scipy import optimize

from ..core.bounds import neat_bound
from ..core.kiffer import (
    corrected_convergence_rate,
    kiffer_convergence_rate_incorrect,
)
from ..errors import AnalysisError
from ..params import ProtocolParameters
from ..simulation.runner import ExperimentRunner

__all__ = ["lundberg_exponent", "tail_depth_sweep", "overlap_validation_table"]


def lundberg_exponent(
    params: ProtocolParameters, rate: Optional[float] = None
) -> float:
    """The tail decay rate ``theta*`` of the windowed A-C deficit.

    Models one round's deficit increment as ``A_1 - C_1`` with ``A_1 ~
    Binomial(m_a, p)`` (the adversary's blocks) and ``C_1 ~ Bernoulli(rate)``
    (a convergence opportunity), and returns the positive root of the
    Lundberg equation

        ``(1 - p + p e^theta)^{m_a} (1 - rate + rate e^{-theta}) = 1``

    so that ``P[worst deficit >= d] ~ e^{-theta* d}`` for large ``d`` (the
    classical ruin asymptotic; the Bernoulli model for ``C`` ignores the
    window dependence of opportunities, so the prefactor — not the rate — is
    approximate).  ``rate`` defaults to the corrected Eq. (44)
    convergence-opportunity rate; passing
    :func:`~repro.core.kiffer.kiffer_convergence_rate_incorrect`'s value
    yields the curve the measured slope is compared against.
    """
    adversary_miners = int(round(params.adversary_count))
    if adversary_miners < 1:
        raise AnalysisError(
            "the Lundberg exponent needs a non-empty adversary (nu n >= 1)"
        )
    if rate is None:
        rate = corrected_convergence_rate(params)
    if not (0.0 < rate < 1.0):
        raise AnalysisError(f"rate must lie in (0, 1), got {rate!r}")
    mean_increment = adversary_miners * params.p - rate
    if mean_increment >= 0.0:
        raise AnalysisError(
            "the deficit drift is non-negative (the tail does not decay); "
            f"adversary rate {adversary_miners * params.p!r} >= "
            f"convergence rate {rate!r}"
        )
    p = params.p

    def log_mgf(theta: float) -> float:
        return adversary_miners * math.log1p(
            p * math.expm1(theta)
        ) + math.log1p(rate * math.expm1(-theta))

    # The log-MGF is convex, zero at theta=0 with negative slope (the drift),
    # and diverges as theta grows — bracket the positive root geometrically.
    high = 1.0
    while log_mgf(high) <= 0.0:
        high *= 2.0
        if high > 1e6:  # pragma: no cover - defensive
            raise AnalysisError("failed to bracket the Lundberg root")
    return float(optimize.brentq(log_mgf, 1e-12, high, xtol=1e-14, rtol=1e-12))


def tail_depth_sweep(
    params: ProtocolParameters,
    depths: Sequence[int] = (6, 10, 14, 18),
    *,
    trials: int = 8_000,
    rounds: int = 400,
    seed: int = 0,
    pilot_trials: int = 512,
    max_iterations: int = 20,
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """One row per violation depth: tilted estimate versus the analytical tails.

    Each row carries the tilted rare-event estimate (probability, 95% CI,
    relative error, effective sample size), the Lundberg predictions
    ``e^{-theta* depth}`` under the corrected and the Kiffer rates, the
    measured-versus-predicted log-ratio, and the neat-bound verdict at the
    point — the deep-tail counterpart of the paper's Figure 1 comparison.
    """
    _check_sweep(depths, trials, rounds)
    runner = runner if runner is not None else ExperimentRunner(base_seed=seed)
    theta_corrected = lundberg_exponent(params)
    theta_kiffer = lundberg_exponent(
        params, kiffer_convergence_rate_incorrect(params)
    )
    rows: List[Dict[str, object]] = []
    for depth in depths:
        result = runner.run_rare_event_point(
            params,
            trials,
            rounds,
            int(depth),
            method="tilted",
            pilot_trials=pilot_trials,
            max_iterations=max_iterations,
        )
        row = result.summary()
        row["lundberg_exponent"] = theta_corrected
        row["predicted_tail"] = math.exp(-theta_corrected * depth)
        row["predicted_tail_kiffer"] = math.exp(-theta_kiffer * depth)
        row["log10_predicted_tail"] = -theta_corrected * depth / math.log(10.0)
        row["measured_vs_predicted_log10"] = (
            result.log10_probability - row["log10_predicted_tail"]
            if result.probability > 0.0
            else math.nan
        )
        row["neat_bound_satisfied"] = params.c > neat_bound(params.nu)
        rows.append(row)
    return rows


def overlap_validation_table(
    params: ProtocolParameters,
    depths: Sequence[int] = (8, 10),
    *,
    plain_trials: int = 200_000,
    trials: int = 8_000,
    rounds: int = 400,
    seed: int = 0,
    include_splitting: bool = True,
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """Plain / tilted / splitting estimates side by side in the overlap region.

    For each depth (chosen so plain MC at ``plain_trials`` still sees the
    event — the 1e-4-to-1e-6 band), the row holds all estimates with their
    95% CIs plus ``tilted_agrees`` / ``splitting_agrees`` joint-CI overlap
    flags against the plain reference.  A depth where plain MC records zero
    violations still yields an honest row: the Wilson interval gives the
    plain estimate a strictly positive upper bound, and agreement is then
    judged against that bound.  An estimate whose interval has a NaN
    endpoint (single-trial CIs, zero-probability splitting runs) carries
    ``None`` in its agreement flag — no evidence either way — rather than
    letting a NaN comparison masquerade as a verdict.
    """
    _check_sweep(depths, trials, rounds)
    if plain_trials < trials:
        raise AnalysisError(
            "plain_trials should dominate the variance-reduced budget; got "
            f"{plain_trials!r} < {trials!r}"
        )
    runner = runner if runner is not None else ExperimentRunner(base_seed=seed)
    rows: List[Dict[str, object]] = []
    for depth in depths:
        plain = runner.run_rare_event_point(
            params, plain_trials, rounds, int(depth), method="plain"
        )
        tilted = runner.run_rare_event_point(
            params, trials, rounds, int(depth), method="tilted"
        )
        row: Dict[str, object] = {
            "depth": int(depth),
            "rounds": int(rounds),
            "plain_trials": plain.trials,
            "plain_probability": plain.probability,
            "plain_ci_low": plain.ci_low,
            "plain_ci_high": plain.ci_high,
            "plain_hits": plain.hits,
            "tilted_trials": tilted.trials,
            "tilted_probability": tilted.probability,
            "tilted_ci_low": tilted.ci_low,
            "tilted_ci_high": tilted.ci_high,
            "tilted_relative_error": tilted.relative_error,
            "tilted_ess": tilted.effective_sample_size,
            "tilted_agrees": tilted.agrees_with(plain),
        }
        if include_splitting:
            splitting = runner.run_rare_event_point(
                params, trials, rounds, int(depth), method="splitting"
            )
            row["splitting_probability"] = splitting.probability
            row["splitting_ci_low"] = splitting.ci_low
            row["splitting_ci_high"] = splitting.ci_high
            row["splitting_agrees"] = splitting.agrees_with(plain)
        rows.append(row)
    return rows


def _check_sweep(depths: Sequence[int], trials: int, rounds: int) -> None:
    if not depths:
        raise AnalysisError("depths must be non-empty")
    if any(int(depth) < 1 for depth in depths):
        raise AnalysisError("every depth must be >= 1")
    if trials <= 0:
        raise AnalysisError("trials must be positive")
    if rounds <= 0:
        raise AnalysisError("rounds must be positive")
