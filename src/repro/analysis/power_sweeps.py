"""Pool-concentration studies: mining-power skew versus convergence rate.

The paper gives every miner identical computing power, so the per-round
honest block count is ``Binomial(mu n, p)`` and the convergence-opportunity
rate is Eq. (44)'s ``alpha_bar^(2Δ) alpha1``.  Real mining power is pooled:
a few operators control large probability mass.  At a *fixed aggregate rate*
``sum(p_i) = p mu n`` (the constraint
:class:`~repro.simulation.topology.MiningPowerProfile` validates), skewing
the per-miner ``p_i`` moves the per-round law to a Poisson binomial, and
AM-GM pushes ``alpha_bar = prod (1 - p_i)`` *down* — concentration makes
silent rounds rarer, shifting the convergence-opportunity rate the paper's
consistency argument feeds on.

This module quantifies that shift as a table over a family of skewed
profiles:

* :func:`zipf_weights` — the sweep's power family, ``w_i ∝ (i+1)^(-s)``
  (``s = 0`` is the paper's identical-miner case; larger ``s`` concentrates
  mass in the top pools);
* :func:`gini_coefficient` / :func:`herfindahl_index` — the two standard
  concentration statistics of a weight vector (Gini in ``[0, 1)``, HHI in
  ``(1/m, 1]``);
* :func:`concentration_table` — one row per skew: Gini and HHI of the
  honest power distribution, the heterogeneous Eq. (44) rate from
  :class:`~repro.core.probabilities.HeterogeneousMiningProbabilities`, the
  homogeneous baseline, and the ratio between them (the
  *concentration shift*).  Optionally each row is validated against a
  seeded heterogeneous-power batch run whose 95% CI must cover the
  analytical prediction.

Everything analytical is deterministic; the optional simulation column uses
the runner's seeding discipline, so the whole table is reproducible from a
single seed (the golden test pins it at ``base_seed=2026``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from ..params import ProtocolParameters, parameters_from_c
from ..simulation.batch import BatchSimulation
from ..simulation.topology import MiningPowerProfile

__all__ = [
    "zipf_weights",
    "gini_coefficient",
    "herfindahl_index",
    "concentration_table",
]


def zipf_weights(miners: int, skew: float) -> np.ndarray:
    """Zipf-family relative power weights ``w_i ∝ (i+1)^(-skew)``.

    ``skew=0`` gives the paper's identical miners; increasing ``skew``
    concentrates mass in the leading pools (at ``skew=1`` the top pool holds
    ``~1/H_m`` of the power).  The weights are returned unnormalised —
    :meth:`MiningPowerProfile.from_weights` rescales them to the aggregate
    rate the analysis layer expects.
    """
    if miners < 1:
        raise AnalysisError(f"miners must be positive, got {miners!r}")
    if skew < 0:
        raise AnalysisError(f"skew must be non-negative, got {skew!r}")
    return np.arange(1, miners + 1, dtype=np.float64) ** (-float(skew))


def gini_coefficient(weights: Sequence[float]) -> float:
    """The Gini coefficient of a positive weight vector (0 = equal shares).

    Computed from the sorted-share identity
    ``G = (2 sum_i i w_(i)) / (m sum_i w_i) - (m + 1) / m`` with 1-indexed
    ranks over ascending weights.
    """
    values = np.asarray(weights, dtype=np.float64)
    if values.ndim != 1 or values.size < 1:
        raise AnalysisError("weights must be a non-empty 1-D sequence")
    if not (values > 0.0).all():
        raise AnalysisError("weights must be positive")
    ordered = np.sort(values)
    count = ordered.size
    ranks = np.arange(1, count + 1, dtype=np.float64)
    return float(
        2.0 * (ranks * ordered).sum() / (count * ordered.sum())
        - (count + 1.0) / count
    )


def herfindahl_index(weights: Sequence[float]) -> float:
    """The Herfindahl–Hirschman index ``sum_i s_i^2`` of the power shares.

    ``1/m`` for identical miners, approaching 1 as one pool dominates.
    """
    values = np.asarray(weights, dtype=np.float64)
    if values.ndim != 1 or values.size < 1:
        raise AnalysisError("weights must be a non-empty 1-D sequence")
    if not (values > 0.0).all():
        raise AnalysisError("weights must be positive")
    shares = values / values.sum()
    return float((shares**2).sum())


def concentration_table(
    skews: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
    *,
    c: float = 4.0,
    n: int = 200,
    delta: int = 3,
    nu: float = 0.2,
    params: Optional[ProtocolParameters] = None,
    trials: int = 0,
    rounds: int = 4_000,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Gini/HHI of the honest power distribution versus the Eq. (44) shift.

    For each ``skew`` a :func:`zipf_weights` profile is scaled into a
    :class:`~repro.simulation.topology.MiningPowerProfile` (aggregate rates
    pinned to ``params``, so every row is comparable), and the row reports

    * ``gini`` / ``hhi`` — concentration of the honest power vector;
    * ``heterogeneous_rate`` — the Poisson-binomial
      ``alpha_bar^(2Δ) alpha1`` from
      :class:`~repro.core.probabilities.HeterogeneousMiningProbabilities`;
    * ``homogeneous_rate`` — the identical-miner baseline of ``params``;
    * ``rate_shift`` — their ratio.  Both Table-I factors move under
      concentration: AM-GM lowers ``alpha_bar`` (silent rounds get rarer)
      while the one-success mass ``alpha1`` grows (a dominant pool succeeds
      alone more often); at small per-miner ``p`` the ``alpha1`` effect
      wins and the shift exceeds 1, growing with Gini/HHI;
    * with ``trials > 0``, ``empirical_rate`` and its 95% CI from a
      heterogeneous-power batch run seeded as ``seed + row index``, plus
      ``ci_covers_prediction``.

    Rows are ordered as given; a monotone ``skews`` sequence yields
    monotone ``gini`` / ``hhi`` columns (the golden test pins both the
    ordering and the values).
    """
    if not skews:
        raise AnalysisError("skews must be non-empty")
    if trials < 0 or rounds < 1:
        raise AnalysisError("trials must be >= 0 and rounds positive")
    if params is None:
        params = parameters_from_c(c=float(c), n=n, delta=int(delta), nu=float(nu))
    homogeneous = params.convergence_opportunity_probability
    honest_miners = max(int(round(params.honest_count)), 1)
    rows: List[Dict[str, object]] = []
    for index, skew in enumerate(skews):
        weights = zipf_weights(honest_miners, float(skew))
        profile = MiningPowerProfile.from_weights(params, weights)
        probabilities = profile.mining_probabilities()
        heterogeneous = probabilities.convergence_opportunity(params.delta)
        row: Dict[str, object] = {
            "skew": float(skew),
            "honest_miners": honest_miners,
            "gini": gini_coefficient(weights),
            "hhi": herfindahl_index(weights),
            "alpha_bar": probabilities.alpha_bar,
            "alpha1": probabilities.alpha1,
            "heterogeneous_rate": heterogeneous,
            "homogeneous_rate": homogeneous,
            "rate_shift": heterogeneous / homogeneous,
        }
        if trials > 0:
            result = BatchSimulation(
                params, rng=seed + index, power=profile
            ).run(trials, rounds)
            ci_low, ci_high = result.convergence_rate_ci95
            row["empirical_rate"] = result.mean_convergence_rate
            row["empirical_ci95_low"] = ci_low
            row["empirical_ci95_high"] = ci_high
            row["ci_covers_prediction"] = bool(ci_low <= heterogeneous <= ci_high)
        rows.append(row)
    return rows
