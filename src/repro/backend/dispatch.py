"""Backend registry and ambient selection: ``get_backend`` / ``use_backend``.

The engines (:mod:`repro.simulation.batch`, :mod:`repro.simulation.scenarios`,
:mod:`repro.simulation.dynamics`, :mod:`repro.simulation.topology`) never
import an array library directly for their tensor math; they ask this module
for the *active* :class:`ArrayBackend` and call its ops.  Selection is
ambient, so swapping the array library requires no engine-code changes:

* ``use_backend("numpy")`` — a re-entrant context manager pushing a backend
  onto a per-process stack (innermost wins, nesting restores the outer
  choice on exit);
* ``REPRO_BACKEND`` — the environment variable consulted when the stack is
  empty (read at call time, so test harnesses can monkeypatch it);
* the default — the NumPy reference backend, bit-identical to the
  pre-backend engines.

Backends are registered as zero-argument factories, mirroring the delay-model
registry of :mod:`repro.simulation.topology`; instances are cached after the
first successful construction (backends are stateless dispatch tables).  A
factory whose optional dependency is missing raises
:class:`~repro.errors.BackendUnavailableError` — callers that probe for
accelerators catch that one class and fall back or skip.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Union

from ..errors import BackendError

__all__ = [
    "ArrayBackend",
    "ARRAY_OPS",
    "register_backend",
    "get_backend",
    "use_backend",
    "list_backends",
    "backend_specs",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
]

#: Environment variable naming the backend used when no ``use_backend``
#: context is active.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: The backend used when neither a context nor the environment selects one.
DEFAULT_BACKEND = "numpy"

#: The array operations every backend must provide — the complete tensor-op
#: surface of the four engine modules.  Anything an engine hot path needs
#: and is not listed here must go through Python operators (``+``, ``>``,
#: ``&``, fancy indexing), which dispatch through the array type itself.
ARRAY_OPS = (
    # creation / conversion
    "asarray",
    "ascontiguousarray",
    "zeros",
    "empty",
    "full",
    "arange",
    "tile",
    "concatenate",
    "pad",
    "copy",
    # elementwise (all accept ``out=``)
    "add",
    "subtract",
    "multiply",
    "maximum",
    "minimum",
    "equal",
    "greater",
    "greater_equal",
    "less_equal",
    "logical_and",
    "logical_or",
    "logical_not",
    "where",
    "copyto",
    # scans
    "cumsum",
    "maximum_accumulate",
    "minimum_accumulate",
    # indexing / sorting
    "nonzero",
    "argsort",
    # host boundary
    "from_host",
    "to_host",
    # host-seeded RNG bridge
    "binomial",
    "random",
    "integers",
    "geometric",
)

#: Dtype attributes every backend exposes (native dtype objects).
DTYPE_ATTRS = ("int64", "int32", "uint8", "bool_", "float64", "float32")


class ArrayBackend:
    """One array library's dispatch table for the engine tensor ops.

    Subclasses provide every name in :data:`ARRAY_OPS` (as methods or
    staticmethod-wrapped library functions) and every dtype attribute in
    :data:`DTYPE_ATTRS`.  Two contracts keep results reproducible across
    backends:

    * **host-seeded RNG bridging** — the random ops (``binomial``,
      ``random``, ``integers``, ``geometric``) always draw on the *host*
      through the caller's :class:`numpy.random.Generator` and then move the
      tensor to the device via ``from_host``.  One seed therefore produces
      one bit stream no matter which backend executes the math.
    * **host boundary** — engine results are converted back to host NumPy
      with ``to_host`` before they reach result objects, caches or the
      analysis layer, which stay backend-agnostic consumers.
    """

    name: str = "abstract"

    def payload(self) -> Dict[str, object]:
        """Primary fields as a plain dict (diagnostics / cache keys)."""
        return {"name": self.name}

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.describe()!r})"


_REGISTRY: Dict[str, Callable[[], ArrayBackend]] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}
#: The ``use_backend`` stack; innermost entry wins.
_ACTIVE: List[ArrayBackend] = []


def register_backend(
    name: str, factory: Callable[[], ArrayBackend], overwrite: bool = False
) -> None:
    """Register a zero-argument backend factory under ``name``."""
    if not name:
        raise BackendError("backend name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise BackendError(
            f"backend {name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


def list_backends() -> List[str]:
    """Names of all registered backends, sorted (availability not probed)."""
    return sorted(_REGISTRY)


def _build(name: str) -> ArrayBackend:
    if name in _INSTANCES:
        return _INSTANCES[name]
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise BackendError(
            f"unknown backend {name!r}; registered backends: {known}"
        ) from None
    backend = factory()
    if not isinstance(backend, ArrayBackend):
        raise BackendError(
            f"backend factory {name!r} returned {backend!r}, "
            "not an ArrayBackend"
        )
    _INSTANCES[name] = backend
    return backend


def get_backend(backend: Union[None, str, ArrayBackend] = None) -> ArrayBackend:
    """Resolve the active backend.

    ``None`` consults the ambient selection: the innermost ``use_backend``
    context if one is active, else the :data:`BACKEND_ENV_VAR` environment
    variable, else :data:`DEFAULT_BACKEND`.  A string is looked up in the
    registry; an :class:`ArrayBackend` instance passes through unchanged.
    """
    if isinstance(backend, ArrayBackend):
        return backend
    if backend is not None:
        return _build(backend)
    if _ACTIVE:
        return _ACTIVE[-1]
    # An unset *or empty* variable means the default — CI matrices and
    # shell scripts routinely export FOO="" for the baseline leg.
    return _build(os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND)


@contextmanager
def use_backend(backend: Union[str, ArrayBackend]) -> Iterator[ArrayBackend]:
    """Make ``backend`` the ambient selection for the context's duration.

    Contexts nest: the innermost selection wins and exiting restores the
    enclosing one, so a sweep can pin an accelerator for one grid while a
    library-internal helper temporarily drops back to NumPy.
    """
    resolved = get_backend(backend)
    _ACTIVE.append(resolved)
    try:
        yield resolved
    finally:
        _ACTIVE.pop()


def backend_specs() -> Dict[str, Dict[str, object]]:
    """Name → payload (or availability error) for every registered backend.

    Unavailable backends report ``{"available": False, "error": ...}``
    instead of raising, so introspection never crashes on a machine without
    the optional accelerator dependencies.
    """
    specs: Dict[str, Dict[str, object]] = {}
    for name in list_backends():
        try:
            payload = _build(name).payload()
            payload.setdefault("available", True)
            specs[name] = payload
        except BackendError as error:
            specs[name] = {"name": name, "available": False, "error": str(error)}
    return specs
