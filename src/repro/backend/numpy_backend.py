"""The NumPy reference backend — bit-identical to the pre-backend engines.

Every op is the corresponding :mod:`numpy` function itself (no wrappers on
the hot path), so routing the engines through this backend changes *nothing*
about their arithmetic: same ufunc loops, same dtypes, same results down to
the last bit.  The equivalence suites pin that property against pre-refactor
golden digests (``tests/test_backend_equivalence.py``).

The host boundary is the identity here — ``from_host`` / ``to_host`` are
:func:`numpy.asarray`, which returns its argument unchanged for an
``ndarray`` — and the RNG bridge simply forwards to the caller's
:class:`numpy.random.Generator`, preserving the historical bit streams.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .dispatch import ArrayBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(ArrayBackend):
    """Dispatch table mapping every engine op to NumPy directly."""

    name = "numpy"

    # dtypes
    int64 = np.int64
    int32 = np.int32
    uint8 = np.uint8
    bool_ = np.bool_
    float64 = np.float64
    float32 = np.float32

    # creation / conversion
    asarray = staticmethod(np.asarray)
    ascontiguousarray = staticmethod(np.ascontiguousarray)
    zeros = staticmethod(np.zeros)
    empty = staticmethod(np.empty)
    full = staticmethod(np.full)
    arange = staticmethod(np.arange)
    tile = staticmethod(np.tile)
    concatenate = staticmethod(np.concatenate)
    pad = staticmethod(np.pad)

    # elementwise
    add = staticmethod(np.add)
    subtract = staticmethod(np.subtract)
    multiply = staticmethod(np.multiply)
    maximum = staticmethod(np.maximum)
    minimum = staticmethod(np.minimum)
    equal = staticmethod(np.equal)
    greater = staticmethod(np.greater)
    greater_equal = staticmethod(np.greater_equal)
    less_equal = staticmethod(np.less_equal)
    logical_and = staticmethod(np.logical_and)
    logical_or = staticmethod(np.logical_or)
    logical_not = staticmethod(np.logical_not)
    where = staticmethod(np.where)
    copyto = staticmethod(np.copyto)

    # scans
    cumsum = staticmethod(np.cumsum)
    maximum_accumulate = staticmethod(np.maximum.accumulate)
    minimum_accumulate = staticmethod(np.minimum.accumulate)

    # indexing / sorting
    nonzero = staticmethod(np.nonzero)
    argsort = staticmethod(np.argsort)

    # host boundary (identity on NumPy)
    from_host = staticmethod(np.asarray)
    to_host = staticmethod(np.asarray)

    @staticmethod
    def copy(array) -> np.ndarray:
        """A freshly-owned host-side copy (never a view of scratch memory)."""
        return np.array(array, copy=True)

    # ------------------------------------------------------------------
    # Host-seeded RNG bridge: forwards to the caller's Generator, so the
    # bit streams are exactly the historical ones.
    # ------------------------------------------------------------------
    @staticmethod
    def binomial(rng: np.random.Generator, n, p, size) -> np.ndarray:
        return rng.binomial(n, p, size=size)

    @staticmethod
    def random(rng: np.random.Generator, size) -> np.ndarray:
        return rng.random(size)

    @staticmethod
    def integers(
        rng: np.random.Generator,
        low: int,
        high: int,
        size,
        dtype: Optional[type] = None,
    ) -> np.ndarray:
        if dtype is None:
            return rng.integers(low, high, size=size)
        return rng.integers(low, high, size=size, dtype=dtype)

    @staticmethod
    def geometric(
        rng: np.random.Generator, p: float, size: Union[int, Tuple[int, ...]]
    ) -> np.ndarray:
        return rng.geometric(p, size=size)
