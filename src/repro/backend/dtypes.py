"""The engines' dtype policy: one named choice for every tensor family.

The engines allocate three families of tensors, and the policy names one
dtype per family:

* ``index`` — heights, delivery offsets, success counts, window sums (the
  integer state the scans manipulate);
* ``mask`` — boolean indicator tensors (convergence opportunities, pending
  releases, active flags);
* ``stat`` — floating-point statistics accumulation (empirical rates, CI
  half-widths).

Two presets ship:

* ``wide`` (the default) — ``int64`` / ``bool`` / ``float64``: exactly the
  dtypes the pre-backend engines hard-coded, so every golden and every
  equivalence grid is bit-identical under it.
* ``compact`` — ``int32`` / ``uint8`` / ``float32``: half the memory
  traffic per tensor, for accelerator backends and RAM-bound sweeps.
  Integer results are still *exact* (heights and counts are bounded by the
  round count, far below ``2**31``; the engines reject runs where that
  could fail), while float statistics agree with ``wide`` only to
  :data:`COMPACT_STAT_RTOL` — ``float32`` keeps ~7 significant digits and
  the mean/CI reductions accumulate over trials.

Selection mirrors the backend dispatch: ``use_dtype_policy`` contexts nest,
the ``REPRO_DTYPE_POLICY`` environment variable applies when no context is
active, and ``wide`` is the fallback.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Union

from ..errors import BackendError
from .dispatch import ArrayBackend

__all__ = [
    "DtypePolicy",
    "WIDE_POLICY",
    "COMPACT_POLICY",
    "COMPACT_STAT_RTOL",
    "register_dtype_policy",
    "get_dtype_policy",
    "use_dtype_policy",
    "list_dtype_policies",
    "DTYPE_POLICY_ENV_VAR",
]

#: Environment variable naming the policy used when no context is active.
DTYPE_POLICY_ENV_VAR = "REPRO_DTYPE_POLICY"

#: Documented agreement bound between ``compact`` (float32) and ``wide``
#: (float64) statistics: relative tolerance for means, rates and CI bounds.
#: float32 carries ~1.2e-7 per-operation roundoff; the engines' statistics
#: are single-pass reductions over at most ~1e5 trials, so accumulated
#: error stays well inside 1e-4 relative.
COMPACT_STAT_RTOL = 1e-4

#: Mask-dtype string accepted in policies (NumPy spells ``bool`` as
#: ``bool_`` on the backend attribute).
_DTYPE_ATTR = {
    "int64": "int64",
    "int32": "int32",
    "uint8": "uint8",
    "bool": "bool_",
    "float64": "float64",
    "float32": "float32",
}


@dataclass(frozen=True)
class DtypePolicy:
    """Named dtype assignment for the engines' three tensor families."""

    name: str
    index: str = "int64"
    mask: str = "bool"
    stat: str = "float64"

    def __post_init__(self) -> None:
        for field_name, value in (
            ("index", self.index),
            ("mask", self.mask),
            ("stat", self.stat),
        ):
            if value not in _DTYPE_ATTR:
                known = ", ".join(sorted(_DTYPE_ATTR))
                raise BackendError(
                    f"dtype policy field {field_name!r} must be one of "
                    f"{known}; got {value!r}"
                )

    def index_dtype(self, backend: ArrayBackend):
        """The backend-native dtype for heights/offsets/counts."""
        return getattr(backend, _DTYPE_ATTR[self.index])

    def mask_dtype(self, backend: ArrayBackend):
        """The backend-native dtype for indicator masks."""
        return getattr(backend, _DTYPE_ATTR[self.mask])

    def stat_dtype(self, backend: ArrayBackend):
        """The backend-native dtype for statistics accumulation."""
        return getattr(backend, _DTYPE_ATTR[self.stat])

    def check_rounds(self, rounds: int) -> None:
        """Reject run lengths whose heights could overflow the index dtype.

        Heights, counts and window sums are all bounded by
        ``rounds * max_per_round`` ≈ the honest miner count times the round
        count; a conservative ``2**30`` ceiling on ``rounds`` keeps every
        int32 quantity exact with a wide margin.
        """
        if self.index == "int32" and rounds >= 2**30:
            raise BackendError(
                f"the {self.name!r} dtype policy stores heights as int32, "
                f"which cannot safely index {rounds} rounds; use the 'wide' "
                "policy for runs this long"
            )

    def payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "index": self.index,
            "mask": self.mask,
            "stat": self.stat,
        }


WIDE_POLICY = DtypePolicy(name="wide")
COMPACT_POLICY = DtypePolicy(
    name="compact", index="int32", mask="uint8", stat="float32"
)

_POLICIES: Dict[str, DtypePolicy] = {}
_ACTIVE: List[DtypePolicy] = []


def register_dtype_policy(policy: DtypePolicy, overwrite: bool = False) -> DtypePolicy:
    """Add a policy to the registry (refusing silent redefinition)."""
    if policy.name in _POLICIES and not overwrite:
        raise BackendError(
            f"dtype policy {policy.name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _POLICIES[policy.name] = policy
    return policy


register_dtype_policy(WIDE_POLICY)
register_dtype_policy(COMPACT_POLICY)


def list_dtype_policies() -> List[str]:
    """Names of all registered dtype policies, sorted."""
    return sorted(_POLICIES)


def get_dtype_policy(
    policy: Union[None, str, DtypePolicy] = None,
) -> DtypePolicy:
    """Resolve the active dtype policy (context → env var → ``wide``)."""
    if isinstance(policy, DtypePolicy):
        return policy
    if policy is None:
        if _ACTIVE:
            return _ACTIVE[-1]
        # Unset or empty both mean the default (matching get_backend).
        policy = os.environ.get(DTYPE_POLICY_ENV_VAR) or WIDE_POLICY.name
    try:
        return _POLICIES[policy]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise BackendError(
            f"unknown dtype policy {policy!r}; registered policies: {known}"
        ) from None


@contextmanager
def use_dtype_policy(
    policy: Union[str, DtypePolicy],
) -> Iterator[DtypePolicy]:
    """Make ``policy`` the ambient selection for the context's duration."""
    resolved = get_dtype_policy(policy)
    _ACTIVE.append(resolved)
    try:
        yield resolved
    finally:
        _ACTIVE.pop()
