"""Optional accelerator backend via ``array_api_compat`` (CuPy / torch).

This backend activates whichever accelerator array library is actually
installed — CuPy first (CUDA), then torch — wrapped through
`array_api_compat <https://data-apis.org/array-api-compat/>`_ so the engines
talk to one standard namespace.  Nothing here is a hard dependency: on a
machine without any of the libraries, constructing the backend raises
:class:`~repro.errors.BackendUnavailableError` with the import failures
spelled out, and callers (tests, sweep scripts, ``backend_specs``) degrade
to a clear skip rather than a crash.

Reproducibility contract: all randomness is still drawn on the *host* with
the caller's :class:`numpy.random.Generator` and shipped to the device via
``from_host`` — the accelerator executes the deterministic tensor math, it
never draws its own bits.  Results cross back through ``to_host`` at the
engine boundary.  Integer-only pipelines (heights, offsets, masks, window
scans) are exact on every device; ``float32`` statistics under the compact
dtype policy carry the documented tolerance
(:data:`repro.backend.dtypes.COMPACT_STAT_RTOL`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from ..errors import BackendUnavailableError
from ..observability import METRICS as _METRICS
from .dispatch import ArrayBackend

__all__ = ["ArrayApiBackend", "PREFERRED_ACCELERATORS"]

#: Accelerator libraries probed in order; the first importable one wins.
PREFERRED_ACCELERATORS = ("cupy", "torch")


def _import_namespace(module: Optional[str]):
    """(library module, array-api namespace, device) for the chosen library."""
    try:
        import array_api_compat
    except ImportError as error:
        raise BackendUnavailableError(
            "the array_api backend needs the 'array_api_compat' package, "
            f"which is not installed ({error})"
        ) from None

    candidates = PREFERRED_ACCELERATORS if module is None else (module,)
    failures: List[str] = []
    for name in candidates:
        try:
            if name == "cupy":
                import cupy  # noqa: F401  (availability probe)
                import array_api_compat.cupy as namespace  # pragma: no cover

                return "cupy", namespace, None  # pragma: no cover
            if name == "torch":
                import torch
                import array_api_compat.torch as namespace  # pragma: no cover

                device = (  # pragma: no cover
                    "cuda" if torch.cuda.is_available() else "cpu"
                )
                return "torch", namespace, device  # pragma: no cover
            failures.append(f"{name}: not a supported accelerator library")
        except ImportError as error:
            failures.append(f"{name}: {error}")
    raise BackendUnavailableError(
        "no accelerator array library is installed; tried "
        + "; ".join(failures)
    )


class ArrayApiBackend(ArrayBackend):  # pragma: no cover - needs accelerator deps
    """Engine ops over an array-API-compatible accelerator namespace.

    Parameters
    ----------
    module:
        ``"cupy"``, ``"torch"`` or ``None`` to probe
        :data:`PREFERRED_ACCELERATORS` in order.  Raises
        :class:`~repro.errors.BackendUnavailableError` when nothing usable
        is installed.
    """

    name = "array_api"

    def __init__(self, module: Optional[str] = None):
        self.module, self.xp, self.device = _import_namespace(module)
        xp = self.xp
        self.int64 = xp.int64
        self.int32 = xp.int32
        self.uint8 = xp.uint8
        self.bool_ = xp.bool
        self.float64 = xp.float64
        self.float32 = xp.float32

    # ------------------------------------------------------------------
    # Creation / conversion
    # ------------------------------------------------------------------
    def _kw(self, kwargs):
        if self.device is not None and "device" not in kwargs:
            kwargs["device"] = self.device
        return kwargs

    def asarray(self, obj, dtype=None):
        return self.xp.asarray(obj, dtype=dtype, **self._kw({}))

    def ascontiguousarray(self, obj, dtype=None):
        # The array-API namespace has no layout control; a plain conversion
        # keeps semantics (the engines only need value identity).
        return self.asarray(obj, dtype=dtype)

    def zeros(self, shape, dtype=None):
        return self.xp.zeros(shape, dtype=dtype, **self._kw({}))

    def empty(self, shape, dtype=None):
        return self.xp.empty(shape, dtype=dtype, **self._kw({}))

    def full(self, shape, fill_value, dtype=None):
        return self.xp.full(shape, fill_value, dtype=dtype, **self._kw({}))

    def arange(self, *args, dtype=None):
        return self.xp.arange(*args, dtype=dtype, **self._kw({}))

    def tile(self, array, reps):
        return self.xp.tile(array, reps)

    def concatenate(self, arrays, axis=0):
        return self.xp.concat(arrays, axis=axis)

    def pad(self, array, pad_width):
        """Zero padding via explicit allocation (array-API has no ``pad``)."""
        pad_width = tuple(tuple(int(p) for p in pair) for pair in pad_width)
        shape = tuple(
            int(size) + before + after
            for size, (before, after) in zip(array.shape, pad_width)
        )
        out = self.zeros(shape, dtype=array.dtype)
        region = tuple(
            slice(before, before + int(size))
            for size, (before, _) in zip(array.shape, pad_width)
        )
        out[region] = array
        return out

    def copy(self, array):
        return self.xp.asarray(array, copy=True)

    # ------------------------------------------------------------------
    # Elementwise — the engines pass ``out=`` on their hot paths; the
    # array-API namespace has no ``out=``, so fall back to assignment.
    # ------------------------------------------------------------------
    def _elementwise(self, op, *args, out=None):
        result = op(*args)
        if out is None:
            return result
        out[...] = self.xp.astype(result, out.dtype)
        return out

    def add(self, a, b, out=None):
        return self._elementwise(self.xp.add, a, b, out=out)

    def subtract(self, a, b, out=None):
        return self._elementwise(self.xp.subtract, a, b, out=out)

    def multiply(self, a, b, out=None):
        return self._elementwise(self.xp.multiply, a, b, out=out)

    def maximum(self, a, b, out=None):
        return self._elementwise(self.xp.maximum, a, b, out=out)

    def minimum(self, a, b, out=None):
        return self._elementwise(self.xp.minimum, a, b, out=out)

    def equal(self, a, b, out=None):
        return self._elementwise(self.xp.equal, a, b, out=out)

    def greater(self, a, b, out=None):
        return self._elementwise(self.xp.greater, a, b, out=out)

    def greater_equal(self, a, b, out=None):
        return self._elementwise(self.xp.greater_equal, a, b, out=out)

    def less_equal(self, a, b, out=None):
        return self._elementwise(self.xp.less_equal, a, b, out=out)

    def logical_and(self, a, b, out=None):
        return self._elementwise(self.xp.logical_and, a, b, out=out)

    def logical_or(self, a, b, out=None):
        return self._elementwise(self.xp.logical_or, a, b, out=out)

    def logical_not(self, a, out=None):
        return self._elementwise(self.xp.logical_not, a, out=out)

    def where(self, condition, a, b, out=None):
        return self._elementwise(self.xp.where, condition, a, b, out=out)

    def copyto(self, dst, src, where=None):
        if where is None:
            dst[...] = src
        else:
            dst[...] = self.xp.where(where, self.xp.asarray(src, dtype=dst.dtype), dst)
        return dst

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def cumsum(self, array, axis=None, dtype=None, out=None):
        if dtype is not None:
            array = self.xp.astype(self.xp.asarray(array), dtype)
        result = self.xp.cumulative_sum(array, axis=axis)
        if out is None:
            return result
        out[...] = self.xp.astype(result, out.dtype)
        return out

    def _accumulate(self, array, axis, combine, out=None):
        """Running combine along ``axis`` — O(n) slicewise (no native op)."""
        xp = self.xp
        result = xp.asarray(array, copy=True) if out is None else out
        if out is not None:
            out[...] = xp.astype(xp.asarray(array), out.dtype)
        length = result.shape[axis]
        index = [slice(None)] * result.ndim
        for position in range(1, length):
            index[axis] = position
            current = tuple(index)
            index[axis] = position - 1
            previous = tuple(index)
            result[current] = combine(result[previous], result[current])
        return result

    def maximum_accumulate(self, array, axis=0, out=None):
        if self.module == "torch":
            import torch

            result = torch.cummax(self.xp.asarray(array), dim=axis).values
            if out is None:
                return result
            out[...] = self.xp.astype(result, out.dtype)
            return out
        if hasattr(self.xp, "maximum") and hasattr(
            getattr(self.xp, "maximum"), "accumulate"
        ):  # cupy keeps the NumPy ufunc machinery
            return self.xp.maximum.accumulate(array, axis=axis, out=out)
        return self._accumulate(array, axis, self.xp.maximum, out=out)

    def minimum_accumulate(self, array, axis=0, out=None):
        if self.module == "torch":
            import torch

            result = torch.cummin(self.xp.asarray(array), dim=axis).values
            if out is None:
                return result
            out[...] = self.xp.astype(result, out.dtype)
            return out
        if hasattr(self.xp, "minimum") and hasattr(
            getattr(self.xp, "minimum"), "accumulate"
        ):
            return self.xp.minimum.accumulate(array, axis=axis, out=out)
        return self._accumulate(array, axis, self.xp.minimum, out=out)

    # ------------------------------------------------------------------
    # Indexing / sorting
    # ------------------------------------------------------------------
    def nonzero(self, array):
        return self.xp.nonzero(array)

    def argsort(self, array, axis=-1, kind=None):
        # array-API sorts are stable by default; ``kind`` is accepted for
        # signature compatibility with the NumPy call sites.
        return self.xp.argsort(array, axis=axis, stable=True)

    # ------------------------------------------------------------------
    # Host boundary
    # ------------------------------------------------------------------
    def from_host(self, array, dtype=None):
        _METRICS.increment("backend.array_api.from_host")
        return self.asarray(np.asarray(array), dtype=dtype)

    def to_host(self, array):
        _METRICS.increment("backend.array_api.to_host")
        if isinstance(array, np.ndarray):
            return array
        if self.module == "torch":
            return array.detach().cpu().numpy()
        if self.module == "cupy":
            import cupy

            return cupy.asnumpy(array)
        return np.asarray(array)  # pragma: no cover - defensive

    # ------------------------------------------------------------------
    # Host-seeded RNG bridge: draw on the host, ship to the device.
    # ------------------------------------------------------------------
    def binomial(self, rng: np.random.Generator, n, p, size):
        return self.from_host(rng.binomial(n, p, size=size))

    def random(self, rng: np.random.Generator, size):
        return self.from_host(rng.random(size))

    def integers(
        self,
        rng: np.random.Generator,
        low: int,
        high: int,
        size,
        dtype: Optional[type] = None,
    ):
        if dtype is None:
            return self.from_host(rng.integers(low, high, size=size))
        return self.from_host(rng.integers(low, high, size=size, dtype=dtype))

    def geometric(
        self, rng: np.random.Generator, p: float, size: Union[int, Tuple[int, ...]]
    ):
        return self.from_host(rng.geometric(p, size=size))

    def payload(self):
        return {"name": self.name, "module": self.module, "device": self.device}

    def describe(self) -> str:
        device = "" if self.device is None else f", device={self.device}"
        return f"{self.name}({self.module}{device})"
