"""One chunk-size knob for every bounded-memory execution path.

Three engines chunk their work so peak memory stays bounded regardless of
trial count: the Bernoulli summation fallback in
:mod:`repro.simulation.batch`, the rare-event estimators in
:mod:`repro.simulation.rare_events`, and the streaming spine in
:mod:`repro.simulation.streaming`.  They used to carry private module
constants (``_BERNOULLI_CHUNK_CELLS``, ``_RARE_CHUNK_CELLS``); this module
unifies them behind one validated configuration point:

* :func:`resolve_chunk_cells` — the active chunk budget in *cells*
  (trials x rounds elements): an explicit override if given, else the
  :data:`CHUNK_ENV_VAR` environment variable (read at call time, so test
  harnesses can monkeypatch it), else :data:`DEFAULT_CHUNK_CELLS`.
  Non-positive or non-integer values are rejected with
  :class:`~repro.errors.BackendError` instead of silently degenerating
  into one-cell chunks or unbounded allocation.
* :func:`chunk_trials` — the per-chunk trial count that keeps a
  ``(chunk, rounds)`` tensor inside the budget (always >= 1, so tiny
  budgets degrade to one trial at a time rather than zero progress).
* :func:`chunk_sizes` — the greedy per-chunk trial counts covering a
  total trial count (sums exactly to ``trials``).

The budget is an *execution* knob, never a draw-protocol knob: callers
whose results must be chunk-invariant (the streaming engine) layer their
own fixed seed-block protocol on top and only group whole blocks per
chunk.
"""

from __future__ import annotations

import os
from typing import List, Optional

from ..errors import BackendError

__all__ = [
    "CHUNK_ENV_VAR",
    "DEFAULT_CHUNK_CELLS",
    "resolve_chunk_cells",
    "chunk_trials",
    "chunk_sizes",
]

#: Environment variable overriding the default chunk budget (in cells).
CHUNK_ENV_VAR = "REPRO_CHUNK_CELLS"

#: Default per-chunk cell budget: 16M int64 cells is 128 MiB per tensor,
#: small enough to stay cache-friendly alongside the scan scratch and large
#: enough that per-chunk Python overhead disappears into the array math.
DEFAULT_CHUNK_CELLS = 16_000_000


def _validate(cells: object, source: str) -> int:
    try:
        value = int(cells)
    except (TypeError, ValueError):
        raise BackendError(
            f"invalid chunk-cell budget {cells!r} from {source}: "
            "expected a positive integer"
        ) from None
    if isinstance(cells, float) and not float(cells).is_integer():
        raise BackendError(
            f"invalid chunk-cell budget {cells!r} from {source}: "
            "expected a positive integer"
        )
    if value <= 0:
        raise BackendError(
            f"invalid chunk-cell budget {value} from {source}: "
            "chunk budgets must be positive"
        )
    return value


def resolve_chunk_cells(override: Optional[int] = None) -> int:
    """The active chunk budget in cells (trials x rounds elements).

    Precedence: explicit ``override`` > :data:`CHUNK_ENV_VAR` >
    :data:`DEFAULT_CHUNK_CELLS`.  Invalid values (non-integer, zero,
    negative) raise :class:`~repro.errors.BackendError` from whichever
    source supplied them.
    """
    if override is not None:
        return _validate(override, "explicit override")
    env = os.environ.get(CHUNK_ENV_VAR)
    if env:
        return _validate(env, f"environment variable {CHUNK_ENV_VAR}")
    return DEFAULT_CHUNK_CELLS


def chunk_trials(rounds: int, cells: Optional[int] = None) -> int:
    """Trials per chunk keeping a ``(chunk, rounds)`` tensor in budget.

    Always at least 1: a budget smaller than one row degrades to
    single-trial chunks, never to zero progress.
    """
    budget = resolve_chunk_cells(cells)
    return max(budget // max(int(rounds), 1), 1)


def chunk_sizes(
    trials: int, rounds: int, cells: Optional[int] = None
) -> List[int]:
    """Greedy per-chunk trial counts covering ``trials`` exactly."""
    total = int(trials)
    if total <= 0:
        return []
    per_chunk = chunk_trials(rounds, cells)
    sizes = [per_chunk] * (total // per_chunk)
    if total % per_chunk:
        sizes.append(total % per_chunk)
    return sizes
