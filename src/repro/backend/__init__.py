"""Array-API backend layer: pluggable tensor math for the engines.

Every tensor operation in the batch, scenario, topology and dynamics engines
dispatches through an :class:`ArrayBackend` — a named dispatch table of the
~30 array ops the engines actually use — instead of module-level ``numpy``
calls.  The layer has four pieces:

* **dispatch** (:mod:`repro.backend.dispatch`) — the backend registry plus
  ambient selection: ``use_backend("...")`` contexts (nesting, innermost
  wins), the ``REPRO_BACKEND`` environment variable, and the NumPy default.
* **backends** — :class:`~repro.backend.numpy_backend.NumpyBackend` (the
  reference: every op *is* the NumPy function, so results are bit-identical
  to the pre-backend engines) and
  :class:`~repro.backend.array_api.ArrayApiBackend` (CuPy / torch through
  ``array_api_compat`` when installed; a clean
  :class:`~repro.errors.BackendUnavailableError` otherwise).  Randomness is
  always drawn host-side through the caller's
  :class:`numpy.random.Generator` and bridged to the device, so one seed
  produces one bit stream on every backend.
* **dtype policy** (:mod:`repro.backend.dtypes`) — a named dtype per tensor
  family: ``wide`` (int64 / bool / float64, the bit-exact default) and
  ``compact`` (int32 / uint8 / float32 — exact integers, float statistics
  within :data:`~repro.backend.dtypes.COMPACT_STAT_RTOL`), selected via
  ``use_dtype_policy`` / ``REPRO_DTYPE_POLICY``.
* **workspace** (:mod:`repro.backend.workspace`) — preallocated scratch
  buffers keyed by tag, reused across repeated (trials, rounds) runs so
  sweeps stop re-allocating in the hot kernels.
* **chunking** (:mod:`repro.backend.chunking`) — the one chunk-size knob
  (``REPRO_CHUNK_CELLS``, validated) shared by every bounded-memory
  execution path: the Bernoulli summation fallback, the rare-event
  estimators and the streaming trial engine.

The engine boundary is host NumPy: results, caches and the analysis layer
never see device arrays.
"""

from .dispatch import (
    ARRAY_OPS,
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    ArrayBackend,
    backend_specs,
    get_backend,
    list_backends,
    register_backend,
    use_backend,
)
from .dtypes import (
    COMPACT_POLICY,
    COMPACT_STAT_RTOL,
    DTYPE_POLICY_ENV_VAR,
    WIDE_POLICY,
    DtypePolicy,
    get_dtype_policy,
    list_dtype_policies,
    register_dtype_policy,
    use_dtype_policy,
)
from .chunking import (
    CHUNK_ENV_VAR,
    DEFAULT_CHUNK_CELLS,
    chunk_sizes,
    chunk_trials,
    resolve_chunk_cells,
)
from .numpy_backend import NumpyBackend
from .array_api import ArrayApiBackend, PREFERRED_ACCELERATORS
from .workspace import Workspace

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "ArrayApiBackend",
    "PREFERRED_ACCELERATORS",
    "ARRAY_OPS",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "register_backend",
    "get_backend",
    "use_backend",
    "list_backends",
    "backend_specs",
    "DtypePolicy",
    "WIDE_POLICY",
    "COMPACT_POLICY",
    "COMPACT_STAT_RTOL",
    "DTYPE_POLICY_ENV_VAR",
    "register_dtype_policy",
    "get_dtype_policy",
    "use_dtype_policy",
    "list_dtype_policies",
    "Workspace",
    "CHUNK_ENV_VAR",
    "DEFAULT_CHUNK_CELLS",
    "resolve_chunk_cells",
    "chunk_trials",
    "chunk_sizes",
]

register_backend("numpy", NumpyBackend)
register_backend("array_api", ArrayApiBackend)
