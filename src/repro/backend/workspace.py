"""Preallocated scratch buffers for the engines' per-(trials, rounds) loops.

A sweep revisits the same tensor shapes thousands of times: every grid point
runs the same (trials, rounds) batch, and every ``run_traces`` call used to
re-allocate the same dozen scratch tensors — cumulative-sum panels, window
buffers, scan state vectors, delivery rings.  A :class:`Workspace` keeps one
buffer per *tag* and hands it back on every request with a matching shape
and dtype, so the steady state of a sweep performs no allocation at all in
the hot kernels (the ``bench_backend.py`` gate holds the workspace path to
≥ 1.5x over the per-call-allocation path).

Contracts:

* a tag is used by at most one logical buffer per engine invocation —
  engines namespace their tags (``"deficit.cumulative"``, ``"scan.public"``)
  so kernels never collide;
* workspace buffers are **scratch**: nothing reachable from a result object
  may alias one.  Engines copy any escaping array out of the workspace
  (``backend.copy``) before returning;
* a workspace binds lazily to the first backend that allocates through it
  and refuses, with :class:`~repro.errors.BackendError`, to serve a
  different backend afterwards (device buffers are not interchangeable);
* not thread-safe — share workspaces across sequential runs, not across
  threads.  (Process pools are fine: each worker builds its own.)
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import BackendError
from ..observability import METRICS as _METRICS
from .dispatch import ArrayBackend, get_backend

__all__ = ["Workspace"]


class Workspace:
    """A keyed pool of reusable scratch tensors for one backend.

    Parameters
    ----------
    backend:
        The owning :class:`~repro.backend.dispatch.ArrayBackend`, or
        ``None`` to bind lazily to the ambient backend on first use.
    """

    def __init__(self, backend: Optional[ArrayBackend] = None):
        self._backend = backend
        self._buffers: Dict[str, object] = {}
        self._high_water_bytes = 0

    @property
    def backend(self) -> Optional[ArrayBackend]:
        """The backend this workspace allocates on (``None`` until first use)."""
        return self._backend

    def bind(self, backend: Optional[ArrayBackend] = None) -> ArrayBackend:
        """Bind (or verify) the owning backend and return it.

        With no argument an already-bound workspace returns its own backend
        — it never re-consults the ambient selection, so buffers allocated
        by an engine keep working when later calls happen outside the
        ``use_backend`` context the engine was built under.
        """
        if backend is None:
            if self._backend is not None:
                return self._backend
            backend = get_backend()
        else:
            backend = get_backend(backend)
        if self._backend is None:
            self._backend = backend
        elif self._backend is not backend:
            detail = (
                " (two distinct instances of the same backend — bind engines "
                "and workspaces to one shared instance)"
                if self._backend.name == backend.name
                else ""
            )
            raise BackendError(
                f"workspace is bound to backend {self._backend.name!r} but "
                f"was asked to allocate on {backend.name!r}{detail}; use one "
                "workspace per backend"
            )
        return backend

    # ------------------------------------------------------------------
    # Buffer acquisition
    # ------------------------------------------------------------------
    def empty(self, tag: str, shape: Tuple[int, ...], dtype):
        """The reusable buffer for ``tag`` (contents unspecified).

        Reuses the existing buffer when shape and dtype match; otherwise
        allocates a replacement through the bound backend (a sweep that
        changes shape simply re-warms once).
        """
        backend = self.bind()
        shape = tuple(int(size) for size in shape)
        buffer = self._buffers.get(tag)
        if (
            buffer is not None
            and tuple(buffer.shape) == shape
            and buffer.dtype == dtype
        ):
            _METRICS.increment("workspace.reused")
            return buffer
        _METRICS.increment("workspace.allocated")
        buffer = backend.empty(shape, dtype=dtype)
        self._buffers[tag] = buffer
        # High-water bookkeeping only runs on the (rare) allocation path, so
        # the steady-state reuse hit stays a dict lookup plus one increment.
        self._high_water_bytes = max(self._high_water_bytes, self.nbytes)
        return buffer

    def zeros(self, tag: str, shape: Tuple[int, ...], dtype):
        """Like :meth:`empty`, but the returned buffer is zero-filled."""
        buffer = self.empty(tag, shape, dtype)
        buffer[...] = 0
        return buffer

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def tags(self) -> Tuple[str, ...]:
        """Currently-held buffer tags, sorted."""
        return tuple(sorted(self._buffers))

    @property
    def nbytes(self) -> int:
        """Total bytes held across all buffers."""
        total = 0
        for buffer in self._buffers.values():
            nbytes = getattr(buffer, "nbytes", None)
            if nbytes is None:  # torch spells it element_size() * numel()
                nbytes = buffer.element_size() * buffer.numel()
            total += int(nbytes)
        return total

    @property
    def high_water_bytes(self) -> int:
        """Largest total byte footprint this workspace has ever held.

        A high-water mark, not a live gauge: :meth:`clear` releases the
        buffers but keeps the mark, which is what the resource-accounting
        manifests want to know (how much scratch the run peaked at).
        """
        return max(self._high_water_bytes, self.nbytes)

    def clear(self) -> None:
        """Drop every buffer (the backend binding is kept)."""
        self._buffers.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        backend = "unbound" if self._backend is None else self._backend.name
        return (
            f"Workspace(backend={backend}, buffers={len(self._buffers)}, "
            f"nbytes={self.nbytes})"
        )
