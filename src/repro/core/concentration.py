"""Concentration bounds used in the proof of Theorem 1 (Section V-B/V-C).

Two tails are bounded:

* the number of convergence opportunities ``C(t0, t0+T-1)`` — an additive
  functional of the Markov chain C_F||P — is concentrated via the
  Chernoff-Hoeffding bound for Markov chains of Chung, Lam, Liu and
  Mitzenmacher (Theorem 3.1 of reference [19]; Inequality 47 in the paper);
* the number of adversarial blocks ``A(t0, t0+T-1) ~ Binomial(T nu n, p)`` is
  bounded via the relative-entropy (Arratia-Gordon) binomial tail
  (Inequalities 48-49).

The union-bound combination (display 25) then gives the overall consistency
failure probability of the window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import ParameterError
from ..params import ProtocolParameters
from .lemmas import delta2_delta3_constants

__all__ = [
    "bernoulli_relative_entropy",
    "adversary_upper_tail_log_bound",
    "adversary_upper_tail_bound",
    "markov_lower_tail_log_bound",
    "markov_lower_tail_bound",
    "ConsistencyFailureBound",
    "consistency_failure_bound",
    "window_for_target_failure",
]


def bernoulli_relative_entropy(inflated: float, base: float) -> float:
    """``D(inflated || base)`` between two Bernoulli distributions (Eq. 48).

    ``D(q || p) = q ln(q/p) + (1-q) ln((1-q)/(1-p))``; the paper instantiates
    it at ``q = (1 + delta3) p``.

    >>> bernoulli_relative_entropy(0.2, 0.1) > 0
    True
    >>> bernoulli_relative_entropy(0.1, 0.1)
    0.0
    """
    if not (0.0 < base < 1.0):
        raise ParameterError(f"base probability must lie in (0, 1), got {base!r}")
    if not (0.0 <= inflated <= 1.0):
        raise ParameterError(f"inflated probability must lie in [0, 1], got {inflated!r}")
    if inflated == 0.0:
        return -math.log1p(-base)
    if inflated == 1.0:
        return -math.log(base)
    return inflated * math.log(inflated / base) + (1.0 - inflated) * math.log(
        (1.0 - inflated) / (1.0 - base)
    )


# ----------------------------------------------------------------------
# Adversarial block count: upper tail (Inequalities 48-49)
# ----------------------------------------------------------------------
def adversary_upper_tail_log_bound(
    params: ProtocolParameters, rounds: int, delta3: float
) -> float:
    """Log of the bound on ``P[A >= (1 + delta3) E[A]]`` (Inequality 49).

    The bound is ``exp(-T nu n D((1+delta3) p || p))``; this returns the log,
    i.e. ``-T nu n D(...)``.
    """
    if rounds <= 0:
        raise ParameterError("rounds must be positive")
    if delta3 <= 0.0:
        raise ParameterError(f"delta3 must be positive, got {delta3!r}")
    inflated = (1.0 + delta3) * params.p
    if inflated >= 1.0:
        # The tail event is impossible; the probability (and bound) is 0.
        return -math.inf
    entropy = bernoulli_relative_entropy(inflated, params.p)
    return -rounds * params.adversary_count * entropy


def adversary_upper_tail_bound(
    params: ProtocolParameters, rounds: int, delta3: float
) -> float:
    """Linear-scale version of :func:`adversary_upper_tail_log_bound`."""
    value = adversary_upper_tail_log_bound(params, rounds, delta3)
    return 0.0 if value == -math.inf else math.exp(value)


# ----------------------------------------------------------------------
# Convergence opportunity count: lower tail (Inequality 47)
# ----------------------------------------------------------------------
def markov_lower_tail_log_bound(
    params: ProtocolParameters,
    rounds: int,
    delta2: float,
    mixing_time: float,
    phi_pi_norm: float = 1.0,
    leading_constant: float = 1.0,
) -> float:
    """Log of the bound on ``P[C <= (1 - delta2) E[C]]`` (Inequality 47).

    The bound is ``c ||phi||_pi exp(-delta2^2 T alpha_bar^(2Δ) alpha1 / (72 tau))``
    where ``tau`` is the (1/8)-mixing time of C_F||P and ``c`` an absolute
    constant from the cited theorem (exposed as ``leading_constant``).

    Parameters
    ----------
    mixing_time:
        The epsilon-mixing time ``tau`` of the chain (epsilon = 1/8 in the
        paper); obtain it from :func:`repro.markov.mixing.mixing_time` on the
        validation-scale chain, or bound it spectrally.
    phi_pi_norm:
        The pi-norm of the initial distribution (``1`` when the walk starts in
        stationarity; Proposition 1 provides the general upper bound).
    """
    if rounds <= 0:
        raise ParameterError("rounds must be positive")
    if not (0.0 < delta2 < 1.0):
        raise ParameterError(f"delta2 must lie in (0, 1), got {delta2!r}")
    if mixing_time <= 0.0:
        raise ParameterError(f"mixing_time must be positive, got {mixing_time!r}")
    if phi_pi_norm <= 0.0:
        raise ParameterError(f"phi_pi_norm must be positive, got {phi_pi_norm!r}")
    if leading_constant <= 0.0:
        raise ParameterError(f"leading_constant must be positive, got {leading_constant!r}")
    expected_rate = params.convergence_opportunity_probability
    exponent = -(delta2**2) * rounds * expected_rate / (72.0 * mixing_time)
    return math.log(leading_constant) + math.log(phi_pi_norm) + exponent


def markov_lower_tail_bound(
    params: ProtocolParameters,
    rounds: int,
    delta2: float,
    mixing_time: float,
    phi_pi_norm: float = 1.0,
    leading_constant: float = 1.0,
) -> float:
    """Linear-scale version of :func:`markov_lower_tail_log_bound`, capped at 1."""
    value = markov_lower_tail_log_bound(
        params, rounds, delta2, mixing_time, phi_pi_norm, leading_constant
    )
    return min(1.0, math.exp(value))


# ----------------------------------------------------------------------
# The union bound (display 25)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConsistencyFailureBound:
    """The combined failure-probability bound for one window of ``T`` rounds.

    Attributes
    ----------
    rounds:
        Window length ``T``.
    delta1, delta2, delta3:
        The constants of the argument; ``delta2``/``delta3`` follow Eq. (23)
        when derived from ``delta1``.
    convergence_tail, adversary_tail:
        The two individual tail bounds (Inequalities 47 and 49).
    total:
        Their sum, capped at 1 — the bound on the probability that the window
        does *not* have more convergence opportunities than adversarial blocks.
    guaranteed_gap:
        The lower bound (Eq. 24) on ``C - A`` that holds outside the failure
        event: ``((1+delta1)^(2/3) - (1+delta1)^(1/3)) E[A]``.
    """

    rounds: int
    delta1: float
    delta2: float
    delta3: float
    convergence_tail: float
    adversary_tail: float
    total: float
    guaranteed_gap: float


def consistency_failure_bound(
    params: ProtocolParameters,
    rounds: int,
    delta1: float,
    mixing_time: float,
    phi_pi_norm: float = 1.0,
    leading_constant: float = 1.0,
) -> ConsistencyFailureBound:
    """Combine the two tails via the union bound of display (25).

    ``delta2`` and ``delta3`` are derived from ``delta1`` by Eq. (23), exactly
    as in the paper's proof.
    """
    if delta1 <= 0.0:
        raise ParameterError(f"delta1 must be positive, got {delta1!r}")
    delta2, delta3 = delta2_delta3_constants(delta1)
    convergence_tail = markov_lower_tail_bound(
        params, rounds, delta2, mixing_time, phi_pi_norm, leading_constant
    )
    adversary_tail = adversary_upper_tail_bound(params, rounds, delta3)
    expected_adversary = params.beta * rounds
    gap = ((1.0 + delta1) ** (2.0 / 3.0) - (1.0 + delta1) ** (1.0 / 3.0)) * (
        expected_adversary
    )
    return ConsistencyFailureBound(
        rounds=rounds,
        delta1=delta1,
        delta2=delta2,
        delta3=delta3,
        convergence_tail=convergence_tail,
        adversary_tail=adversary_tail,
        total=min(1.0, convergence_tail + adversary_tail),
        guaranteed_gap=gap,
    )


def window_for_target_failure(
    params: ProtocolParameters,
    delta1: float,
    mixing_time: float,
    target_probability: float,
    phi_pi_norm: float = 1.0,
    leading_constant: float = 1.0,
    max_rounds: int = 10**12,
) -> int:
    """Smallest window length ``T`` whose failure bound is at most ``target_probability``.

    Searches by doubling followed by bisection on the monotone (in ``T``)
    union bound.  Raises :class:`ParameterError` if even ``max_rounds`` rounds
    are insufficient (e.g. when Theorem 1's condition does not hold and the
    bound does not decay).
    """
    if not (0.0 < target_probability < 1.0):
        raise ParameterError(
            f"target_probability must lie in (0, 1), got {target_probability!r}"
        )

    def bound(rounds: int) -> float:
        return consistency_failure_bound(
            params, rounds, delta1, mixing_time, phi_pi_norm, leading_constant
        ).total

    low, high = 1, 2
    while bound(high) > target_probability:
        low, high = high, high * 2
        if high > max_rounds:
            raise ParameterError(
                f"no window up to {max_rounds} rounds achieves failure probability "
                f"{target_probability}"
            )
    while high - low > 1:
        middle = (low + high) // 2
        if bound(middle) > target_probability:
            low = middle
        else:
            high = middle
    return high
