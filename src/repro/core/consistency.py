"""Window-level consistency analysis (Lemma 1 and the quantities of Section V).

Lemma 1 reduces blockchain consistency to a counting statement: in every
window of ``T`` rounds, the number of convergence opportunities ``C`` must
exceed the number of adversarial blocks ``A`` (with overwhelming probability
in ``T``).  This module packages the expectations of both quantities
(Eqs. 26-27), the Theorem 1 margin between them, and the failure-probability
bounds of Section V into a single analyzer with a tabulatable summary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import ParameterError
from ..params import ProtocolParameters
from . import bounds as bounds_module
from .concentration import ConsistencyFailureBound, consistency_failure_bound

__all__ = ["ConsistencyVerdict", "ConsistencyAnalyzer"]


@dataclass(frozen=True)
class ConsistencyVerdict:
    """Summary of one parameter point, suitable for tabulation.

    Attributes
    ----------
    c:
        The configured ``1/(p n Δ)``.
    neat_threshold:
        ``2 mu / ln(mu/nu)`` — the paper's headline threshold on ``c``.
    satisfies_neat_bound:
        ``True`` when ``c`` exceeds the neat threshold.
    theorem1_margin_log:
        ``ln`` of the ratio between the two sides of Inequality (10) at
        ``delta1 -> 0``; positive values mean Theorem 1 applies for some
        positive ``delta1``.
    theorem2_threshold, satisfies_theorem2:
        The full Theorem 2 threshold on ``c`` (Inequality 11) and whether the
        configured ``c`` meets it for the analyzer's ``eps1``/``eps2``.
    expected_convergence_rate, expected_adversary_rate:
        Per-round expectations ``alpha_bar^(2Δ) alpha1`` and ``p nu n``.
    """

    c: float
    neat_threshold: float
    satisfies_neat_bound: bool
    theorem1_margin_log: float
    theorem1_max_delta1: float
    theorem2_threshold: float
    satisfies_theorem2: bool
    expected_convergence_rate: float
    expected_adversary_rate: float


class ConsistencyAnalyzer:
    """Evaluate the paper's consistency machinery at one parameter point.

    Parameters
    ----------
    params:
        The protocol configuration to analyse.
    eps1, eps2:
        The constants of Theorems 2/3 used when evaluating those conditions.

    Examples
    --------
    >>> from repro.params import parameters_from_c
    >>> params = parameters_from_c(c=5.0, n=100_000, delta=10, nu=0.2)
    >>> analyzer = ConsistencyAnalyzer(params)
    >>> analyzer.verdict().satisfies_neat_bound
    True
    """

    def __init__(
        self,
        params: ProtocolParameters,
        eps1: float = 0.1,
        eps2: float = 0.01,
    ):
        if not (0.0 < eps1 < 1.0):
            raise ParameterError(f"eps1 must lie in (0, 1), got {eps1!r}")
        if eps2 <= 0.0:
            raise ParameterError(f"eps2 must be positive, got {eps2!r}")
        self.params = params
        self.eps1 = eps1
        self.eps2 = eps2

    # ------------------------------------------------------------------
    # Expectations (Eqs. 26-27)
    # ------------------------------------------------------------------
    def expected_convergence_opportunities(self, rounds: int) -> float:
        """``E[C(t0, t0+T-1)] = T alpha_bar^(2Δ) alpha1`` (Eq. 26)."""
        if rounds <= 0:
            raise ParameterError("rounds must be positive")
        return rounds * self.params.convergence_opportunity_probability

    def expected_adversary_blocks(self, rounds: int) -> float:
        """``E[A(t0, t0+T-1)] = T p nu n`` (Eq. 27)."""
        if rounds <= 0:
            raise ParameterError("rounds must be positive")
        return rounds * self.params.beta

    def expectation_ratio_log(self) -> float:
        """``ln(E[C] / E[A])`` — independent of ``T``; positive iff Theorem 1 applies."""
        return self.params.log_convergence_opportunity_probability - math.log(
            self.params.beta
        )

    # ------------------------------------------------------------------
    # Theorem applications
    # ------------------------------------------------------------------
    def theorem1_applies(self, delta1: float = 1e-9) -> bool:
        """Whether Inequality (10) holds for the given (small) ``delta1``."""
        return bounds_module.theorem1_condition(self.params, delta1)

    def theorem1_max_delta1(self) -> float:
        """The largest ``delta1`` for which Inequality (10) holds (negative if none)."""
        return bounds_module.max_delta1_for_theorem1(self.params)

    def theorem2_applies(self) -> bool:
        """Whether Inequality (11) of Theorem 2 holds with the analyzer's constants."""
        return bounds_module.theorem2_condition(self.params, self.eps1, self.eps2)

    def satisfies_neat_bound(self) -> bool:
        """Whether ``c`` strictly exceeds ``2 mu / ln(mu/nu)``."""
        return self.params.c > bounds_module.neat_bound(self.params.nu)

    # ------------------------------------------------------------------
    # Failure probability over a window
    # ------------------------------------------------------------------
    def failure_bound(
        self,
        rounds: int,
        mixing_time: float,
        delta1: Optional[float] = None,
        phi_pi_norm: float = 1.0,
    ) -> ConsistencyFailureBound:
        """The union-bound failure probability (display 25) for a window of ``rounds``.

        ``delta1`` defaults to half of the largest admissible value at these
        parameters, mirroring the paper's requirement that some positive
        constant exists without committing to a specific one.
        """
        if delta1 is None:
            max_delta1 = self.theorem1_max_delta1()
            if max_delta1 <= 0.0:
                raise ParameterError(
                    "Theorem 1 does not apply at these parameters; supply delta1 explicitly"
                )
            delta1 = max_delta1 / 2.0
        return consistency_failure_bound(
            self.params, rounds, delta1, mixing_time, phi_pi_norm
        )

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def verdict(self) -> ConsistencyVerdict:
        """A tabulatable summary of every bound at this parameter point."""
        return ConsistencyVerdict(
            c=self.params.c,
            neat_threshold=bounds_module.neat_bound(self.params.nu),
            satisfies_neat_bound=self.satisfies_neat_bound(),
            theorem1_margin_log=self.expectation_ratio_log(),
            theorem1_max_delta1=self.theorem1_max_delta1(),
            theorem2_threshold=bounds_module.theorem2_c_threshold(
                self.params.nu, self.params.delta, self.eps1, self.eps2
            ),
            satisfies_theorem2=self.theorem2_applies(),
            expected_convergence_rate=self.params.convergence_opportunity_probability,
            expected_adversary_rate=self.params.beta,
        )
