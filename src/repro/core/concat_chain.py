"""The concatenation Markov chain C_F||P (Section V-A, Eqs. 38-44).

The second chain of the paper tracks the concatenation
``F_{t-Delta-1} S_{t-Delta} ... S_t`` of

* the suffix summary of rounds up to ``t - Delta - 1`` (a member of the
  Suffix-Set), and
* the detailed states of the last ``Delta + 1`` rounds, where the detailed
  state of a round distinguishes exactly how many honest blocks it produced
  (``H_h`` for ``h >= 1``, or ``N``; Eq. 38).

The state space has size ``(2 Delta + 1) * |Detailed-State-Set|^(Delta + 1)``,
so unlike C_F it is never enumerated explicitly for realistic parameters.
What the paper (and this module) uses instead is the *product form* of the
stationary distribution (Eq. 40): the stationary probability of
``f s(1) ... s(Delta+1)`` equals ``pi_F(f) * prod_i P[s(i)]``.

The key derived quantity is the stationary probability of the convergence
opportunity pattern ``HN^{>=Delta} || H_1 N^Delta`` (Eq. 44):

    ``pi = alpha_bar^Delta * alpha_1 * alpha_bar^Delta = alpha_bar^(2 Delta) alpha_1``

together with the minimum stationary probability and the pi-norm bound of
Proposition 1 that feed the Chernoff-Hoeffding argument of Section V-B.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ParameterError
from ..params import ProtocolParameters
from .probabilities import binomial_pmf, log_binomial_pmf
from .suffix_chain import SuffixChain, SuffixState, SuffixStateKind

__all__ = [
    "DetailedState",
    "ConcatChain",
    "convergence_opportunity_mask",
    "count_convergence_opportunities",
]


@dataclass(frozen=True)
class DetailedState:
    """A member of the Detailed-State-Set (Eq. 38): ``N`` or ``H_h`` with ``h >= 1``.

    ``blocks == 0`` encodes ``N``; ``blocks == h >= 1`` encodes ``H_h``.
    """

    blocks: int

    def __post_init__(self) -> None:
        if self.blocks < 0:
            raise ParameterError("blocks must be non-negative")

    @property
    def is_empty(self) -> bool:
        """``True`` for the ``N`` state (no honest block mined this round)."""
        return self.blocks == 0

    def label(self) -> str:
        """Human-readable label (``N`` or ``H1``, ``H2``, ...)."""
        return "N" if self.is_empty else f"H{self.blocks}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label()


class ConcatChain:
    """Product-form view of the chain C_F||P for one protocol configuration.

    Parameters
    ----------
    params:
        Protocol parameters.
    delta:
        Optional override of Delta (defaults to ``params.delta``), mirroring
        :class:`repro.core.suffix_chain.SuffixChain`.
    """

    def __init__(self, params: ProtocolParameters, delta: Optional[int] = None):
        self.params = params
        self.delta = int(params.delta if delta is None else delta)
        if self.delta < 1:
            raise ParameterError(f"delta must be >= 1, got {self.delta!r}")
        self.suffix_chain = SuffixChain(params, delta=self.delta)

    # ------------------------------------------------------------------
    # Detailed per-round state probabilities (Eq. 41)
    # ------------------------------------------------------------------
    def detailed_state_probability(self, state: DetailedState) -> float:
        """``P[s]`` for one detailed state (Eq. 41): binomial pmf or ``alpha_bar``."""
        if state.is_empty:
            return self.params.alpha_bar
        return binomial_pmf(state.blocks, self.params.honest_count, self.params.p)

    def log_detailed_state_probability(self, state: DetailedState) -> float:
        """Log-space version of :meth:`detailed_state_probability`."""
        if state.is_empty:
            return self.params.log_alpha_bar
        return log_binomial_pmf(state.blocks, self.params.honest_count, self.params.p)

    # ------------------------------------------------------------------
    # Product-form stationary distribution (Eq. 40)
    # ------------------------------------------------------------------
    def stationary_probability(
        self, suffix: SuffixState, detailed: Sequence[DetailedState]
    ) -> float:
        """``pi_{F||P}(f s(1) ... s(Delta+1)) = pi_F(f) prod_i P[s(i)]`` (Eq. 40)."""
        return math.exp(self.log_stationary_probability(suffix, detailed))

    def log_stationary_probability(
        self, suffix: SuffixState, detailed: Sequence[DetailedState]
    ) -> float:
        """Log-space version of :meth:`stationary_probability`."""
        detailed = list(detailed)
        if len(detailed) != self.delta + 1:
            raise ParameterError(
                f"expected {self.delta + 1} detailed round states, got {len(detailed)}"
            )
        total = self.suffix_chain.log_stationary(suffix)
        for state in detailed:
            total += self.log_detailed_state_probability(state)
        return total

    # ------------------------------------------------------------------
    # The convergence opportunity (Eqs. 42-44)
    # ------------------------------------------------------------------
    def convergence_opportunity_state(self) -> Tuple[SuffixState, List[DetailedState]]:
        """The state ``HN^{>=Delta} || H_1 N^Delta`` that defines a convergence opportunity."""
        suffix = SuffixState(SuffixStateKind.LONG_GAP)
        detailed = [DetailedState(1)] + [DetailedState(0)] * self.delta
        return suffix, detailed

    def log_convergence_opportunity_probability(self) -> float:
        """``ln(alpha_bar^(2 Delta) alpha1)`` — Eq. (44) in log space."""
        return (
            2.0 * self.delta * self.params.log_alpha_bar + self.params.log_alpha1
        )

    def convergence_opportunity_probability(self) -> float:
        """The stationary probability of a convergence opportunity, Eq. (44)."""
        return math.exp(self.log_convergence_opportunity_probability())

    def expected_convergence_opportunities(self, rounds: int) -> float:
        """``E[C(t0, t0 + T - 1)] = T alpha_bar^(2 Delta) alpha1`` — Eq. (26)."""
        if rounds <= 0:
            raise ParameterError("rounds must be positive")
        return rounds * self.convergence_opportunity_probability()

    # ------------------------------------------------------------------
    # Proposition 1: minimum stationary probability and pi-norm bound
    # ------------------------------------------------------------------
    def log_min_detailed_probability(self) -> float:
        """``ln(min{p^(mu n), (1-p)^(mu n)})`` — the minimal detailed-state probability (Eq. 97).

        The least likely detailed state is ``H_{mu n}`` (every honest miner
        succeeds, probability ``p^(mu n)``) when ``p <= 1/2`` and ``N``
        (probability ``(1-p)^(mu n)``) when ``p > 1/2``.
        """
        honest = self.params.honest_count
        return min(honest * math.log(self.params.p), honest * math.log1p(-self.params.p))

    def log_min_stationary(self) -> float:
        """Log of the minimal stationary probability of C_F||P (Proposition 1 / Eq. 98).

        The suffix-chain minimum is Eq. (99):
        ``alpha * alpha_bar^(Delta-1) * min(1 - alpha_bar^Delta, alpha_bar^Delta)``,
        evaluated here entirely in log space so the result stays finite at the
        paper's Delta = 1e13 scale.
        """
        log_alpha_bar = self.params.log_alpha_bar
        log_tail_mass = self.delta * log_alpha_bar
        log_one_minus_tail = _log1mexp_local(log_tail_mass)
        log_suffix_min = (
            math.log(self.params.alpha)
            + (self.delta - 1) * log_alpha_bar
            + min(log_one_minus_tail, log_tail_mass)
        )
        return log_suffix_min + (self.delta + 1) * self.log_min_detailed_probability()

    def min_stationary(self) -> float:
        """Linear-scale minimal stationary probability (may underflow to 0.0)."""
        return math.exp(self.log_min_stationary())

    def log_phi_pi_norm_bound(self) -> float:
        """Log of the Proposition 1 bound ``||phi||_pi <= 1 / sqrt(min pi_{F||P})``."""
        return -0.5 * self.log_min_stationary()

    def phi_pi_norm_bound(self) -> float:
        """Linear-scale Proposition 1 bound (may overflow to ``inf``)."""
        value = self.log_phi_pi_norm_bound()
        try:
            return math.exp(value)
        except OverflowError:  # pragma: no cover - extreme parameters only
            return math.inf


def _log1mexp_local(log_value: float) -> float:
    """Numerically stable ``log(1 - exp(log_value))`` for ``log_value < 0``."""
    if log_value >= 0.0:
        raise ParameterError("log(1 - exp(x)) requires x < 0")
    if log_value > -math.log(2.0):
        return math.log(-math.expm1(log_value))
    return math.log1p(-math.exp(log_value))


def convergence_opportunity_mask(honest_counts, delta: int) -> np.ndarray:
    """Boolean ``(trials, rounds)`` mask of completed convergence opportunities.

    Entry ``[t, r]`` is ``True`` when the pattern ``N^Δ H_1 N^Δ`` of Eq. (42)
    *completes* at round ``r`` of trial ``t`` — round ``r - Δ`` produced
    exactly one honest block and the Δ rounds on either side produced none.
    This is the single vectorized implementation of the window test shared by
    the scalar counter below and the batch engine
    (:mod:`repro.simulation.batch`); summing along the round axis reproduces
    the streaming detector's count.
    """
    if delta < 1:
        raise ParameterError(f"delta must be >= 1, got {delta!r}")
    counts = np.asarray(honest_counts, dtype=np.int64)
    if counts.ndim != 2:
        raise ParameterError(
            f"honest_counts must be 2-dimensional (trials, rounds), got shape {counts.shape}"
        )
    trials, rounds = counts.shape
    mask = np.zeros((trials, rounds), dtype=bool)
    if rounds < 2 * delta + 1:
        return mask
    empty = counts == 0
    single = counts == 1
    # Sliding-window check: the all-empty tests on either side of the single
    # honest block are window sums over the `empty` indicator, via cumsums.
    cumulative = np.zeros((trials, rounds + 1), dtype=np.int64)
    np.cumsum(empty, axis=1, out=cumulative[:, 1:])
    centres = np.arange(delta, rounds - delta)
    empties_before = cumulative[:, centres] - cumulative[:, centres - delta]
    empties_after = cumulative[:, centres + delta + 1] - cumulative[:, centres + 1]
    hits = single[:, centres] & (empties_before == delta) & (empties_after == delta)
    mask[:, centres + delta] = hits
    return mask


def count_convergence_opportunities(
    honest_blocks_per_round: Sequence[int], delta: int
) -> int:
    """Count convergence opportunities in a per-round honest block-count trace.

    A convergence opportunity is *completed* at round ``t`` (0-indexed) when

    * rounds ``t - 2*delta .. t - delta - 1`` produced no honest block
      (so that ``F_{t-delta-1} = HN^{>=Delta}``),
    * round ``t - delta`` produced exactly one honest block, and
    * rounds ``t - delta + 1 .. t`` produced no honest block.

    This is the simulation-side counterpart of the indicator sum
    ``C(t0, t0 + T - 1)`` of Eq. (46); dividing by the trace length converges
    to ``alpha_bar^(2 Delta) alpha1`` (Eq. 44) by ergodicity.
    """
    counts = np.asarray(honest_blocks_per_round, dtype=np.int64)
    if counts.ndim != 1:
        raise ParameterError(
            f"honest_blocks_per_round must be 1-dimensional, got shape {counts.shape}"
        )
    return int(convergence_opportunity_mask(counts[np.newaxis, :], delta).sum())
