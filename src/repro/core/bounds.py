"""The paper's consistency bounds (Theorems 1, 2 and 3).

This module is the heart of the reproduction: it implements

* the **neat bound** ``2 mu / ln(mu / nu)`` and numerical solvers for the
  maximum tolerable adversarial fraction ``nu_max(c)`` (the magenta curve of
  Figure 1);
* the exact sufficient condition of **Theorem 1**
  (Inequality 10: ``alpha_bar^(2 Delta) * alpha1 >= (1 + delta1) p nu n``);
* the two conditions of **Theorem 3** (Inequalities 50 and 51) and their
  combination, the condition of **Theorem 2** (Inequality 11);
* the nu-range condition (Inequality 12) and the simplified form of the bound
  (Inequality 13) used in Remark 1.

All threshold evaluations are performed in log space where necessary so that
the paper's operating point (``Delta = 1e13``) is handled exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from scipy import optimize

from ..errors import ParameterError
from ..params import ProtocolParameters

__all__ = [
    "neat_bound",
    "nu_max_neat_bound",
    "c_threshold_neat",
    "theorem1_lhs_log",
    "theorem1_rhs_log",
    "theorem1_condition",
    "theorem1_margin_log",
    "max_delta1_for_theorem1",
    "theorem3_pn_threshold",
    "theorem3_pn_condition",
    "theorem3_c_threshold",
    "theorem3_c_condition",
    "theorem2_c_threshold",
    "theorem2_condition",
    "nu_range_condition",
    "nu_range_bounds",
    "simplified_slack_factor",
    "theorem2_simplified_c_threshold",
    "theorem2_simplified_condition",
    "BoundEvaluation",
]

_NU_EPSILON = 1e-15


# ----------------------------------------------------------------------
# The neat bound 2 mu / ln(mu / nu)
# ----------------------------------------------------------------------
def neat_bound(nu: float, mu: Optional[float] = None) -> float:
    """The paper's headline threshold ``2 mu / ln(mu / nu)``.

    Consistency holds whenever ``c`` is slightly greater than this value
    (Theorem 2 / Remark 1).  ``mu`` defaults to ``1 - nu``.

    >>> round(neat_bound(0.25), 6)
    1.365337
    """
    if mu is None:
        mu = 1.0 - nu
    if not (0.0 < nu < mu):
        raise ParameterError(f"need 0 < nu < mu, got nu={nu!r}, mu={mu!r}")
    return 2.0 * mu / math.log(mu / nu)


def nu_max_neat_bound(c: float) -> float:
    """Largest adversarial fraction ``nu`` for which ``c > 2 mu / ln(mu/nu)``.

    This is the magenta curve of Figure 1: for a given ``c`` it returns the
    value ``nu_max`` solving ``2 (1 - nu) / ln((1 - nu)/nu) = c`` on
    ``(0, 1/2)``.  Because the threshold is strictly increasing in ``nu`` (it
    tends to 0 as ``nu -> 0`` and to infinity as ``nu -> 1/2``) the solution is
    unique; it is found by bracketed root finding.

    Strictly speaking the returned value itself is not tolerable (the theorem
    uses a strict inequality); it is the supremum of tolerable fractions.

    >>> 0.0 < nu_max_neat_bound(2.0) < 0.5
    True
    >>> nu_max_neat_bound(1e-9)
    0.0
    """
    if c <= 0.0:
        raise ParameterError(f"c must be positive, got {c!r}")

    def gap(nu: float) -> float:
        return neat_bound(nu) - c

    low, high = _NU_EPSILON, 0.5 - _NU_EPSILON
    if gap(low) >= 0.0:
        # Even a vanishing adversary needs a larger c than provided.
        return 0.0
    if gap(high) <= 0.0:  # pragma: no cover - cannot happen for finite c
        return 0.5
    return float(optimize.brentq(gap, low, high, xtol=1e-14, rtol=1e-12))


def c_threshold_neat(nu: float) -> float:
    """Alias for :func:`neat_bound` expressed as a minimal ``c`` for a given ``nu``."""
    return neat_bound(nu)


# ----------------------------------------------------------------------
# Theorem 1: alpha_bar^(2 Delta) * alpha1 >= (1 + delta1) p nu n
# ----------------------------------------------------------------------
def theorem1_lhs_log(params: ProtocolParameters) -> float:
    """Log of the left-hand side of Inequality (10): ``ln(alpha_bar^(2Δ) alpha1)``."""
    return params.log_convergence_opportunity_probability


def theorem1_rhs_log(params: ProtocolParameters, delta1: float) -> float:
    """Log of the right-hand side of Inequality (10): ``ln((1 + delta1) p nu n)``."""
    if delta1 <= 0.0:
        raise ParameterError(f"delta1 must be positive, got {delta1!r}")
    if params.nu <= 0.0:
        raise ParameterError("Theorem 1 requires a non-zero adversary (nu > 0)")
    return math.log1p(delta1) + math.log(params.p) + math.log(params.nu * params.n)


def theorem1_margin_log(params: ProtocolParameters, delta1: float) -> float:
    """``ln(LHS) - ln(RHS)`` of Inequality (10); non-negative when the theorem applies."""
    return theorem1_lhs_log(params) - theorem1_rhs_log(params, delta1)


def theorem1_condition(params: ProtocolParameters, delta1: float) -> bool:
    """Whether Inequality (10) of Theorem 1 holds for the given ``delta1 > 0``."""
    return theorem1_margin_log(params, delta1) >= 0.0


def max_delta1_for_theorem1(params: ProtocolParameters) -> float:
    """The largest ``delta1`` for which Inequality (10) still holds.

    Solves ``alpha_bar^(2Δ) alpha1 = (1 + delta1) p nu n`` for ``delta1``;
    a negative return value means Theorem 1 is not applicable (no positive
    ``delta1`` exists) at these parameters.
    """
    log_ratio = theorem1_lhs_log(params) - (
        math.log(params.p) + math.log(params.nu * params.n)
    )
    return math.expm1(log_ratio)


# ----------------------------------------------------------------------
# Theorem 3: the pair of conditions (50) and (51)
# ----------------------------------------------------------------------
def theorem3_pn_threshold(nu: float, eps1: float) -> float:
    """Right-hand side of Inequality (50): ``eps1 ln(mu/nu) / ((ln(mu/nu) + 1) mu)``."""
    _check_eps(eps1, "eps1", upper=1.0)
    mu = 1.0 - nu
    log_ratio = math.log(mu / nu)
    return eps1 * log_ratio / ((log_ratio + 1.0) * mu)


def theorem3_pn_condition(params: ProtocolParameters, eps1: float) -> bool:
    """Whether Inequality (50) holds: ``p n <= eps1 ln(mu/nu) / ((ln(mu/nu)+1) mu)``."""
    return params.p * params.n <= theorem3_pn_threshold(params.nu, eps1)


def theorem3_c_threshold(nu: float, delta: int, eps1: float, eps2: float) -> float:
    """Right-hand side of Inequality (51): ``(2mu/ln(mu/nu) + 1/Δ) (1+eps2)/(1-eps1)``."""
    _check_eps(eps1, "eps1", upper=1.0)
    _check_eps(eps2, "eps2")
    return (neat_bound(nu) + 1.0 / delta) * (1.0 + eps2) / (1.0 - eps1)


def theorem3_c_condition(
    params: ProtocolParameters, eps1: float, eps2: float
) -> bool:
    """Whether Inequality (51) holds for the given constants."""
    return params.c >= theorem3_c_threshold(params.nu, params.delta, eps1, eps2)


# ----------------------------------------------------------------------
# Theorem 2: Inequality (11) = max of (51) and the pn-condition in c-space
# ----------------------------------------------------------------------
def theorem2_c_threshold(nu: float, delta: int, eps1: float, eps2: float) -> float:
    """Right-hand side of Inequality (11): the max of the two Theorem 3 thresholds.

    The second term is the pn-condition (50) rewritten in ``c``-space:
    ``c >= (ln(mu/nu) + 1) mu / (eps1 Δ ln(mu/nu))``.
    """
    _check_eps(eps1, "eps1", upper=1.0)
    _check_eps(eps2, "eps2")
    mu = 1.0 - nu
    log_ratio = math.log(mu / nu)
    first = (neat_bound(nu) + 1.0 / delta) * (1.0 + eps2) / (1.0 - eps1)
    second = (log_ratio + 1.0) * mu / (eps1 * delta * log_ratio)
    return max(first, second)


def theorem2_condition(
    params: ProtocolParameters, eps1: float, eps2: float
) -> bool:
    """Whether Inequality (11) of Theorem 2 holds for the given constants."""
    return params.c >= theorem2_c_threshold(params.nu, params.delta, eps1, eps2)


# ----------------------------------------------------------------------
# Inequalities (12) and (13): the nu-range and the simplified bound
# ----------------------------------------------------------------------
def nu_range_bounds(delta: int, delta1: float, delta2: float) -> tuple:
    """The interval ``[nu_low, nu_high]`` of Inequality (12).

    ``nu_low = 1 / (1 + exp(Δ^delta1))`` and
    ``nu_high = 1 / (1 + exp(1 / (Δ^delta2 - 1)))``.

    For the paper's ``Δ = 1e13`` and ``delta1 = 1/6`` the lower bound is of
    order ``1e-64`` and underflows a double; in that case the returned lower
    bound is the correctly rounded nearest double (possibly ``0.0``) while the
    log-space value can be recovered as ``-Δ^delta1`` to first order.
    """
    _check_positive(delta1, "delta1")
    _check_positive(delta2, "delta2")
    if delta1 + delta2 >= 1.0:
        raise ParameterError(
            f"the paper requires delta1 + delta2 < 1, got {delta1 + delta2!r}"
        )
    exponent_low = float(delta) ** delta1
    # 1 / (1 + exp(x)) computed stably as exp(-x) / (1 + exp(-x)).
    if exponent_low > 700.0:
        nu_low = 0.0
    else:
        nu_low = math.exp(-exponent_low) / (1.0 + math.exp(-exponent_low))
    exponent_high = 1.0 / (float(delta) ** delta2 - 1.0)
    nu_high = 1.0 / (1.0 + math.exp(exponent_high))
    return nu_low, nu_high


def nu_range_condition(nu: float, delta: int, delta1: float, delta2: float) -> bool:
    """Whether ``nu`` lies in the interval of Inequality (12)."""
    nu_low, nu_high = nu_range_bounds(delta, delta1, delta2)
    return nu_low <= nu <= nu_high


def simplified_slack_factor(delta: int, delta1: float, delta2: float) -> float:
    """The multiplicative slack ``(1 + Δ^(delta1 - 1)) / (1 - Δ^(delta1 + delta2 - 1))``.

    This is the last factor of Inequality (13); Remark 1 shows it is
    ``1 + 5e-5`` for ``(delta1, delta2) = (1/6, 1/2)`` and ``1 + 2e-3`` for
    ``(1/8, 2/3)`` at ``Δ = 1e13``.
    """
    _check_positive(delta1, "delta1")
    _check_positive(delta2, "delta2")
    if delta1 + delta2 >= 1.0:
        raise ParameterError(
            f"the paper requires delta1 + delta2 < 1, got {delta1 + delta2!r}"
        )
    numerator = 1.0 + float(delta) ** (delta1 - 1.0)
    denominator = 1.0 - float(delta) ** (delta1 + delta2 - 1.0)
    if denominator <= 0.0:
        raise ParameterError(
            "Delta^(delta1 + delta2 - 1) must be < 1 for the simplified bound"
        )
    return numerator / denominator


def theorem2_simplified_c_threshold(
    nu: float, delta: int, eps2: float, delta1: float, delta2: float
) -> float:
    """Right-hand side of Inequality (13): ``2mu/ln(mu/nu) * (1+eps2) * slack``."""
    _check_eps(eps2, "eps2")
    return neat_bound(nu) * (1.0 + eps2) * simplified_slack_factor(delta, delta1, delta2)


def theorem2_simplified_condition(
    params: ProtocolParameters, eps2: float, delta1: float, delta2: float
) -> bool:
    """Whether Inequality (13) holds (requires ``nu`` in the range of Inequality 12)."""
    if not nu_range_condition(params.nu, params.delta, delta1, delta2):
        return False
    return params.c >= theorem2_simplified_c_threshold(
        params.nu, params.delta, eps2, delta1, delta2
    )


# ----------------------------------------------------------------------
# A consolidated evaluation record
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BoundEvaluation:
    """All of the paper's thresholds evaluated at one parameter point.

    Produced by :func:`evaluate_bounds`; convenient for tabulation in the
    analysis harness and in EXPERIMENTS.md.
    """

    params: ProtocolParameters
    neat_threshold: float
    theorem1_margin_log: float
    theorem1_holds: bool
    theorem2_threshold: float
    theorem2_holds: bool
    theorem3_pn_threshold: float
    theorem3_pn_holds: bool
    theorem3_c_threshold: float
    theorem3_c_holds: bool

    @property
    def c(self) -> float:
        """The configured value of ``c`` for quick reference."""
        return self.params.c


def evaluate_bounds(
    params: ProtocolParameters,
    delta1: float = 0.01,
    eps1: float = 0.1,
    eps2: float = 0.01,
) -> BoundEvaluation:
    """Evaluate every bound of the paper at one parameter point."""
    return BoundEvaluation(
        params=params,
        neat_threshold=neat_bound(params.nu),
        theorem1_margin_log=theorem1_margin_log(params, delta1),
        theorem1_holds=theorem1_condition(params, delta1),
        theorem2_threshold=theorem2_c_threshold(params.nu, params.delta, eps1, eps2),
        theorem2_holds=theorem2_condition(params, eps1, eps2),
        theorem3_pn_threshold=theorem3_pn_threshold(params.nu, eps1),
        theorem3_pn_holds=theorem3_pn_condition(params, eps1),
        theorem3_c_threshold=theorem3_c_threshold(params.nu, params.delta, eps1, eps2),
        theorem3_c_holds=theorem3_c_condition(params, eps1, eps2),
    )


__all__.append("evaluate_bounds")


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------
def _check_eps(value: float, name: str, upper: Optional[float] = None) -> None:
    if value <= 0.0:
        raise ParameterError(f"{name} must be positive, got {value!r}")
    if upper is not None and value >= upper:
        raise ParameterError(f"{name} must be < {upper}, got {value!r}")


def _check_positive(value: float, name: str) -> None:
    if value <= 0.0:
        raise ParameterError(f"{name} must be positive, got {value!r}")
