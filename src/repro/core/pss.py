"""Baselines from Pass, Seeman and Shelat (Eurocrypt 2017).

The paper compares its bound against two results of PSS, both of which appear
in Figure 1:

* the **PSS consistency condition** ``alpha * (1 - (2 Delta + 2) alpha) > beta``
  with ``alpha = 1 - (1 - p)^(mu n)`` and ``beta = nu n p`` (blue curve).  The
  paper's Section I derives the c-space approximation
  ``c > 2 (1 - nu)^2 / (1 - 2 nu)``, equivalently
  ``nu < (2 - c + sqrt(c^2 - 2 c)) / 2`` for ``c > 2``;
* the **PSS Remark 8.5 attack**, which breaks consistency whenever
  ``1/c > 1/nu - 1/(1 - nu)``, i.e. ``nu > (2 c + 1 - sqrt(4 c^2 + 1)) / 2``
  (red curve).

Both the exact condition (in terms of the protocol parameters) and the
approximate c-space curves are implemented so Figure 1 can be regenerated
exactly as the paper draws it and the approximation itself can be audited.
"""

from __future__ import annotations

import math
from typing import Optional

from scipy import optimize

from ..errors import ParameterError
from ..params import ProtocolParameters

__all__ = [
    "pss_consistency_condition_exact",
    "pss_consistency_margin_exact",
    "pss_c_threshold",
    "nu_max_pss_consistency",
    "pss_attack_succeeds",
    "nu_min_pss_attack",
    "attack_c_threshold",
]

_NU_EPSILON = 1e-15


# ----------------------------------------------------------------------
# PSS consistency (blue curve)
# ----------------------------------------------------------------------
def pss_consistency_margin_exact(params: ProtocolParameters) -> float:
    """``alpha (1 - (2 Delta + 2) alpha) - beta`` — positive iff PSS consistency holds.

    This is the exact condition of PSS as quoted in Section I of the paper
    (before the approximations leading to the c-space curve).
    """
    alpha = params.alpha
    beta = params.beta
    return alpha * (1.0 - (2.0 * params.delta + 2.0) * alpha) - beta


def pss_consistency_condition_exact(params: ProtocolParameters) -> bool:
    """Whether the exact PSS consistency condition holds."""
    return pss_consistency_margin_exact(params) > 0.0


def pss_c_threshold(nu: float) -> float:
    """The c-space PSS consistency threshold ``2 (1 - nu)^2 / (1 - 2 nu)``.

    Valid for ``nu < 1/2``; diverges as ``nu -> 1/2``.  Consistency (per PSS,
    in the paper's approximation) requires ``c`` strictly greater than this.

    >>> round(pss_c_threshold(0.25), 4)
    2.25
    """
    if not (0.0 <= nu < 0.5):
        raise ParameterError(f"nu must lie in [0, 1/2), got {nu!r}")
    return 2.0 * (1.0 - nu) ** 2 / (1.0 - 2.0 * nu)


def nu_max_pss_consistency(c: float) -> float:
    """Largest ``nu`` tolerated by the PSS consistency condition at a given ``c``.

    ``nu_max = (2 - c + sqrt(c^2 - 2 c)) / 2`` for ``c > 2`` and 0 otherwise
    (the blue curve of Figure 1).

    >>> nu_max_pss_consistency(1.5)
    0.0
    >>> 0.0 < nu_max_pss_consistency(3.0) < 0.5
    True
    """
    if c <= 0.0:
        raise ParameterError(f"c must be positive, got {c!r}")
    if c <= 2.0:
        return 0.0
    value = 0.5 * (2.0 - c + math.sqrt(c * c - 2.0 * c))
    return min(max(value, 0.0), 0.5)


# ----------------------------------------------------------------------
# PSS Remark 8.5 attack (red curve)
# ----------------------------------------------------------------------
def pss_attack_succeeds(c: float, nu: float) -> bool:
    """Whether the PSS Remark 8.5 attack breaks consistency: ``1/c > 1/nu - 1/(1-nu)``.

    The attack has the adversary privately extend its own chain while delaying
    honest blocks maximally; it wins when adversarial blocks arrive faster than
    the honest chain's effective (delay-throttled) growth.
    """
    if c <= 0.0:
        raise ParameterError(f"c must be positive, got {c!r}")
    if not (0.0 < nu < 1.0):
        raise ParameterError(f"nu must lie in (0, 1), got {nu!r}")
    return 1.0 / c > 1.0 / nu - 1.0 / (1.0 - nu)


def nu_min_pss_attack(c: float) -> float:
    """Smallest ``nu`` at which the Remark 8.5 attack succeeds, ``(2c+1-sqrt(4c^2+1))/2``.

    This is the red curve of Figure 1: consistency is definitely broken for
    ``nu`` above this value.

    >>> 0.0 < nu_min_pss_attack(1.0) < 0.5
    True
    >>> nu_min_pss_attack(100.0) < nu_min_pss_attack(1.0)
    False
    """
    if c <= 0.0:
        raise ParameterError(f"c must be positive, got {c!r}")
    value = 0.5 * (2.0 * c + 1.0 - math.sqrt(4.0 * c * c + 1.0))
    return min(max(value, 0.0), 0.5)


def attack_c_threshold(nu: float) -> float:
    """The value of ``c`` below which the Remark 8.5 attack succeeds for a given ``nu``.

    Inverts ``1/c = 1/nu - 1/(1-nu)``: the attack wins for
    ``c < nu (1 - nu) / (1 - 2 nu)``.
    """
    if not (0.0 < nu < 0.5):
        raise ParameterError(f"nu must lie in (0, 1/2), got {nu!r}")
    return nu * (1.0 - nu) / (1.0 - 2.0 * nu)


def nu_max_pss_consistency_exact(
    c: float, n: int, delta: int, search_points: int = 200
) -> float:
    """Largest ``nu`` satisfying the *exact* PSS condition at the given ``c``, ``n``, ``Δ``.

    Unlike :func:`nu_max_pss_consistency` this keeps the full expression
    ``alpha (1 - (2Δ + 2) alpha) > beta`` (no approximation), solving for the
    boundary by bisection.  Used by the validation experiments to quantify how
    tight the paper's approximation of the PSS curve is.
    """
    if c <= 0.0:
        raise ParameterError(f"c must be positive, got {c!r}")

    def margin(nu: float) -> float:
        params = ProtocolParameters(
            p=1.0 / (c * n * delta), n=n, delta=delta, nu=nu, strict_model=False
        )
        return pss_consistency_margin_exact(params)

    low, high = _NU_EPSILON, 0.5 - _NU_EPSILON
    if margin(low) <= 0.0:
        return 0.0
    if margin(high) >= 0.0:
        return 0.5
    return float(optimize.brentq(margin, low, high, xtol=1e-14, rtol=1e-12))


__all__.append("nu_max_pss_consistency_exact")
