"""The lemma machinery of Section VI (Lemmas 2-8, Propositions 1-2, Eqs. 60-61).

Theorem 2 is derived from Theorem 1 through a chain of implications
(52)-(59), each step backed by one of Lemmas 2-8.  This module implements

* the explicit constants ``delta4`` (Eq. 60) and ``delta1`` (Eq. 61) chosen in
  the proof, and the auxiliary constants ``delta2``/``delta3`` (Eq. 23) used by
  the concentration argument of Section V;
* each lemma as a numerically checkable statement (premises plus conclusion),
  so the whole proof pipeline can be audited on concrete parameters;
* the per-step ``c`` thresholds of the implication chain, exposing how much
  slack each sufficiency step introduces on the way from Inequality (10) to
  the neat bound.

These functions power the property-based tests (every lemma must hold on
randomly drawn admissible parameters) and the ablation benchmark that measures
the per-step looseness of the chain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ParameterError
from ..params import ProtocolParameters
from .bounds import neat_bound

__all__ = [
    "delta4_constant",
    "delta1_constant",
    "delta2_delta3_constants",
    "lemma2_premise",
    "lemma2_implication_holds",
    "lemma3_inequality_holds",
    "lemma4_c_threshold",
    "proposition2_holds",
    "lemma5_inequality_holds",
    "lemma6_inequality_holds",
    "lemma7_brackets",
    "lemma7_holds",
    "lemma8_holds",
    "ImplicationStep",
    "implication_chain_thresholds",
]


# ----------------------------------------------------------------------
# The proof's explicit constants
# ----------------------------------------------------------------------
def delta4_constant(nu: float, eps1: float, eps2: float) -> float:
    """``delta4`` from Eq. (60): ``(eps1+eps2) ln(mu/nu) / (eps1+eps2+(1-eps1)(ln(mu/nu)+1))``."""
    _check_constants(nu, eps1, eps2)
    mu = 1.0 - nu
    log_ratio = math.log(mu / nu)
    return (eps1 + eps2) * log_ratio / (eps1 + eps2 + (1.0 - eps1) * (log_ratio + 1.0))


def delta1_constant(nu: float, eps1: float, eps2: float) -> float:
    """``delta1`` from Eq. (61): ``(1 + delta4)(1 - eps1 ln(mu/nu)/(ln(mu/nu)+1)) - 1``."""
    _check_constants(nu, eps1, eps2)
    mu = 1.0 - nu
    log_ratio = math.log(mu / nu)
    delta4 = delta4_constant(nu, eps1, eps2)
    return (1.0 + delta4) * (1.0 - eps1 * log_ratio / (log_ratio + 1.0)) - 1.0


def delta2_delta3_constants(delta1: float) -> tuple:
    """``(delta2, delta3)`` from Eq. (23): the constants of the concentration argument.

    ``delta2 = 1 - (1 + delta1)^(-1/3)`` and ``delta3 = (1 + delta1)^(1/3) - 1``;
    chosen so that ``(1 - delta2)(1 + delta1) - (1 + delta3)`` is a positive
    constant (Eq. 24).
    """
    if delta1 <= 0.0:
        raise ParameterError(f"delta1 must be positive, got {delta1!r}")
    cube_root = (1.0 + delta1) ** (1.0 / 3.0)
    return 1.0 - 1.0 / cube_root, cube_root - 1.0


# ----------------------------------------------------------------------
# Lemma 2 (Appendix B): alpha >= ((1+delta1)/(1-p mu n) * nu/mu)^(1/(2 Delta))
#                       implies Inequality (10), given 0 < p mu n < 1.
# ----------------------------------------------------------------------
def lemma2_premise(params: ProtocolParameters) -> bool:
    """Premise of Lemma 2 (Ineq. 65): ``0 < p mu n < 1``."""
    value = params.p * params.honest_count
    return 0.0 < value < 1.0


def lemma2_threshold_log(params: ProtocolParameters, delta1: float) -> float:
    """Log of the right-hand side of Inequality (66)."""
    if delta1 <= 0.0:
        raise ParameterError(f"delta1 must be positive, got {delta1!r}")
    p_mu_n = params.p * params.honest_count
    if not (0.0 < p_mu_n < 1.0):
        raise ParameterError("Lemma 2 requires 0 < p mu n < 1")
    return (
        math.log1p(delta1) - math.log1p(-p_mu_n) + math.log(params.nu / params.mu)
    ) / (2.0 * params.delta)


def lemma2_implication_holds(params: ProtocolParameters, delta1: float) -> bool:
    """Check the implication of Lemma 2 on concrete parameters.

    Returns ``True`` when either the antecedent (Ineq. 66) fails or the
    conclusion (Ineq. 10) holds, i.e. when the implication is not falsified.
    """
    if not lemma2_premise(params):
        return True
    antecedent = params.log_alpha_bar >= lemma2_threshold_log(params, delta1)
    if not antecedent:
        return True
    # Conclusion: Inequality (10) in log space.
    log_lhs = params.log_convergence_opportunity_probability
    log_rhs = math.log1p(delta1) + math.log(params.beta)
    return log_lhs >= log_rhs - 1e-12


# ----------------------------------------------------------------------
# Lemma 3 (Appendix C): under Inequality (50), with delta4 > threshold and
# delta1 from Eq. (61): ((1+delta1)/(1-p mu n))^(1/(2 Delta)) <= 1 + delta4/(2 Delta).
# ----------------------------------------------------------------------
def lemma3_delta4_lower_bound(nu: float, eps1: float) -> float:
    """The lower bound on ``delta4`` from Inequality (68)."""
    if not (0.0 < eps1 < 1.0):
        raise ParameterError(f"eps1 must lie in (0, 1), got {eps1!r}")
    mu = 1.0 - nu
    log_ratio = math.log(mu / nu)
    return eps1 * log_ratio / (1.0 + (1.0 - eps1) * log_ratio)


def lemma3_inequality_holds(
    params: ProtocolParameters, eps1: float, eps2: float
) -> bool:
    """Verify Inequality (70) of Lemma 3 on concrete parameters.

    Checks that with ``delta4`` from Eq. (60) and ``delta1`` from Eq. (61),
    and under the pn-condition (50),
    ``((1 + delta1)/(1 - p mu n))^(1/(2 Delta)) <= 1 + delta4 / (2 Delta)``.
    Returns ``True`` vacuously when the pn-condition fails.
    """
    from .bounds import theorem3_pn_condition

    if not theorem3_pn_condition(params, eps1):
        return True
    delta4 = delta4_constant(params.nu, eps1, eps2)
    delta1 = delta1_constant(params.nu, eps1, eps2)
    p_mu_n = params.p * params.honest_count
    if p_mu_n >= 1.0:
        return True
    log_lhs = (math.log1p(delta1) - math.log1p(-p_mu_n)) / (2.0 * params.delta)
    log_rhs = math.log1p(delta4 / (2.0 * params.delta))
    return log_lhs <= log_rhs + 1e-15


# ----------------------------------------------------------------------
# Lemma 4 (Appendix D): the c threshold equivalent to Inequality (71)
# ----------------------------------------------------------------------
def lemma4_c_threshold(params: ProtocolParameters, delta4: float) -> float:
    """Right-hand side of Inequality (74): the c threshold equivalent to Ineq. (71).

    ``c >= 1 / (n Delta (1 - ((1 + delta4/(2Δ)) (nu/mu)^(1/(2Δ)))^(1/(mu n))))``.
    Requires ``0 < delta4 < ln(mu/nu)`` (Inequality 73) so the denominator is
    positive (Proposition 2).
    """
    _check_delta4(params.nu, delta4)
    inner_log = (
        math.log1p(delta4 / (2.0 * params.delta))
        + math.log(params.nu / params.mu) / (2.0 * params.delta)
    ) / params.honest_count
    denominator = -math.expm1(inner_log)
    if denominator <= 0.0:
        raise ParameterError("Lemma 4 denominator is non-positive (check delta4)")
    return 1.0 / (params.n * params.delta * denominator)


def proposition2_holds(nu: float, delta: int, delta4: float) -> bool:
    """Proposition 2: ``1 - (1 + delta4/(2Δ)) (nu/mu)^(1/(2Δ)) > 0`` under Ineq. (73)."""
    _check_delta4(nu, delta4)
    mu = 1.0 - nu
    value = 1.0 - (1.0 + delta4 / (2.0 * delta)) * (nu / mu) ** (1.0 / (2.0 * delta))
    return value > 0.0


# ----------------------------------------------------------------------
# Lemma 5 (Appendix F): mu-based threshold dominates the n-based one
# ----------------------------------------------------------------------
def lemma5_lhs(params: ProtocolParameters, delta4: float) -> float:
    """Left-hand side of Inequality (76): ``mu / (Δ (1 - (1+delta4/(2Δ))(nu/mu)^(1/(2Δ))))``."""
    _check_delta4(params.nu, delta4)
    denominator = 1.0 - (1.0 + delta4 / (2.0 * params.delta)) * (
        params.nu / params.mu
    ) ** (1.0 / (2.0 * params.delta))
    if denominator <= 0.0:
        raise ParameterError("Lemma 5 denominator is non-positive (check delta4)")
    return params.mu / (params.delta * denominator)


def lemma5_inequality_holds(params: ProtocolParameters, delta4: float) -> bool:
    """Verify Inequality (76): the Lemma 5 LHS dominates the Lemma 4 threshold."""
    return lemma5_lhs(params, delta4) >= lemma4_c_threshold(params, delta4) - 1e-12


# ----------------------------------------------------------------------
# Lemma 6 (Appendix G): replacing the delta4-inflated denominator
# ----------------------------------------------------------------------
def lemma6_lhs(nu: float, delta: int, delta4: float) -> float:
    """LHS of Inequality (79): ``(1 + delta4/(ln(mu/nu) - delta4)) / (1 - (nu/mu)^(1/(2Δ)))``."""
    _check_delta4(nu, delta4)
    mu = 1.0 - nu
    log_ratio = math.log(mu / nu)
    base = 1.0 / (1.0 - (nu / mu) ** (1.0 / (2.0 * delta)))
    return base * (1.0 + delta4 / (log_ratio - delta4))


def lemma6_rhs(nu: float, delta: int, delta4: float) -> float:
    """RHS of Inequality (79): ``1 / (1 - (1 + delta4/(2Δ)) (nu/mu)^(1/(2Δ)))``."""
    _check_delta4(nu, delta4)
    mu = 1.0 - nu
    denominator = 1.0 - (1.0 + delta4 / (2.0 * delta)) * (nu / mu) ** (
        1.0 / (2.0 * delta)
    )
    if denominator <= 0.0:
        raise ParameterError("Lemma 6 RHS denominator is non-positive")
    return 1.0 / denominator


def lemma6_inequality_holds(nu: float, delta: int, delta4: float) -> bool:
    """Verify Inequality (79) on concrete parameters (strict inequality)."""
    return lemma6_lhs(nu, delta, delta4) > lemma6_rhs(nu, delta, delta4)


# ----------------------------------------------------------------------
# Lemma 7 (Appendix H): the two-sided bracket around the key expression
# ----------------------------------------------------------------------
def lemma7_brackets(nu: float, delta: int) -> tuple:
    """The three quantities of Inequality (82), as ``(lower, middle, upper)``.

    * lower  = ``2 / ln(mu/nu)``
    * middle = ``1 / (Δ (1 - (nu/mu)^(1/(2Δ))))``
    * upper  = ``2 / ln(mu/nu) + 1/Δ``
    """
    if not (0.0 < nu < 0.5):
        raise ParameterError(f"nu must lie in (0, 1/2), got {nu!r}")
    if delta < 1:
        raise ParameterError(f"delta must be >= 1, got {delta!r}")
    mu = 1.0 - nu
    log_ratio = math.log(mu / nu)
    lower = 2.0 / log_ratio
    # Compute 1 - (nu/mu)^(1/(2Δ)) = -expm1(ln(nu/mu)/(2Δ)) for accuracy at large Δ.
    one_minus_ratio = -math.expm1(math.log(nu / mu) / (2.0 * delta))
    middle = 1.0 / (delta * one_minus_ratio)
    upper = lower + 1.0 / delta
    return lower, middle, upper


def lemma7_holds(nu: float, delta: int) -> bool:
    """Verify the two-sided bracket of Inequality (82)."""
    lower, middle, upper = lemma7_brackets(nu, delta)
    return lower - 1e-12 <= middle <= upper + 1e-12


# ----------------------------------------------------------------------
# Lemma 8 (Appendix I): the slack factor is below (1+eps2)/(1-eps1)
# ----------------------------------------------------------------------
def lemma8_holds(nu: float, eps1: float, eps2: float) -> bool:
    """Verify Inequality (85): ``1 + delta4/(ln(mu/nu) - delta4) < (1+eps2)/(1-eps1)``."""
    _check_constants(nu, eps1, eps2)
    mu = 1.0 - nu
    log_ratio = math.log(mu / nu)
    delta4 = delta4_constant(nu, eps1, eps2)
    lhs = 1.0 + delta4 / (log_ratio - delta4)
    rhs = (1.0 + eps2) / (1.0 - eps1)
    return lhs < rhs


# ----------------------------------------------------------------------
# The implication chain (52)-(59): per-step c thresholds
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ImplicationStep:
    """One step of the implication chain, with the minimal ``c`` it requires."""

    name: str
    description: str
    c_threshold: float


def implication_chain_thresholds(
    nu: float, delta: int, n: int, eps1: float, eps2: float
) -> List[ImplicationStep]:
    """The per-step sufficient ``c`` thresholds of the chain (55)-(59).

    Steps (52)-(54) are conditions on ``alpha_bar`` rather than ``c``; the
    chain becomes a ``c`` threshold from step (55) onwards.  The returned list
    is ordered from the tightest (earliest) to the loosest (final, Theorem 3)
    threshold, which quantifies the slack introduced by each sufficiency step.
    """
    _check_constants(nu, eps1, eps2)
    mu = 1.0 - nu
    log_ratio = math.log(mu / nu)
    delta4 = delta4_constant(nu, eps1, eps2)

    # Step (55): Lemma 4 threshold.  Needs a ProtocolParameters carrier for
    # mu*n; p is irrelevant to the threshold, so any valid value works.
    carrier = ProtocolParameters(
        p=0.5 / (n * delta), n=n, delta=delta, nu=nu, strict_model=False
    )
    step55 = lemma4_c_threshold(carrier, delta4)

    # Step (56): Lemma 5 threshold.
    step56 = lemma5_lhs(carrier, delta4)

    # Step (57): Lemma 6 threshold.
    one_minus_ratio = -math.expm1(math.log(nu / mu) / (2.0 * delta))
    step57 = (mu / (delta * one_minus_ratio)) * (1.0 + delta4 / (log_ratio - delta4))

    # Step (58): Lemma 7 threshold.
    step58 = (2.0 * mu / log_ratio + mu / delta) * (
        1.0 + delta4 / (log_ratio - delta4)
    )

    # Step (59): Lemma 8 / Theorem 3 threshold (Inequality 51).
    step59 = (2.0 * mu / log_ratio + 1.0 / delta) * (1.0 + eps2) / (1.0 - eps1)

    return [
        ImplicationStep("55", "Lemma 4: exact inversion of the alpha_bar condition", step55),
        ImplicationStep("56", "Lemma 5: replace 1/(n(1-x^(1/mu n))) by mu/x", step56),
        ImplicationStep("57", "Lemma 6: pull the delta4 inflation out of the denominator", step57),
        ImplicationStep("58", "Lemma 7: bracket 1/(Δ(1-(nu/mu)^(1/2Δ))) by 2/ln(mu/nu)+1/Δ", step58),
        ImplicationStep("59", "Lemma 8 / Theorem 3: absorb the slack into (1+eps2)/(1-eps1)", step59),
    ]


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------
def _check_constants(nu: float, eps1: float, eps2: float) -> None:
    if not (0.0 < nu < 0.5):
        raise ParameterError(f"nu must lie in (0, 1/2), got {nu!r}")
    if not (0.0 < eps1 < 1.0):
        raise ParameterError(f"eps1 must lie in (0, 1), got {eps1!r}")
    if eps2 <= 0.0:
        raise ParameterError(f"eps2 must be positive, got {eps2!r}")


def _check_delta4(nu: float, delta4: float) -> None:
    if not (0.0 < nu < 0.5):
        raise ParameterError(f"nu must lie in (0, 1/2), got {nu!r}")
    log_ratio = math.log((1.0 - nu) / nu)
    if not (0.0 < delta4 < log_ratio):
        raise ParameterError(
            f"Inequality (73) requires 0 < delta4 < ln(mu/nu) = {log_ratio!r}, got {delta4!r}"
        )
