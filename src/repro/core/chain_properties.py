"""Chain growth and chain quality estimates (Section II / future-work extension).

The paper analyses only consistency, listing chain growth and chain quality as
the other two standard properties and flagging their analysis with its Markov
machinery as future work.  This module supplies the standard Δ-delay-model
estimates for both (following the quantities used by PSS and the backbone
line of work), so the simulator's measurements have analytical counterparts:

* **chain growth**: honest progress is throttled by the delay — a new honest
  block only extends the *common* chain once the previous one has propagated,
  so the effective growth rate is at least ``gamma = alpha / (1 + Delta * alpha)``
  blocks per round (the "discounted" honest rate of PSS);
* **chain quality**: out of the blocks that make it into the chain, the
  adversary can contribute at most its mining rate ``beta = p nu n`` per round,
  so the honest fraction is at least ``1 - beta / gamma`` (when positive).

These are *estimates of the guaranteed lower bounds*, not exact values; the
tests compare them against the simulator in the regimes where they are
meaningful (they become vacuous as ``beta`` approaches ``gamma``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ParameterError
from ..params import ProtocolParameters

__all__ = [
    "discounted_honest_rate",
    "chain_growth_lower_bound",
    "chain_quality_lower_bound",
    "expected_block_interval_rounds",
    "ChainPropertyEstimates",
    "estimate_chain_properties",
]


def discounted_honest_rate(params: ProtocolParameters) -> float:
    """The delay-discounted honest success rate ``gamma = alpha / (1 + Delta alpha)``.

    Intuition: after an honest success, up to Δ rounds may pass before every
    honest miner has adopted the new chain; successes during that window do
    not all translate into growth of the common chain.  ``gamma`` is the
    standard lower-bound rate used throughout the Δ-delay literature.
    """
    alpha = params.alpha
    return alpha / (1.0 + params.delta * alpha)


def chain_growth_lower_bound(params: ProtocolParameters) -> float:
    """Guaranteed chain growth in blocks per round (the growth parameter ``g``)."""
    return discounted_honest_rate(params)


def chain_quality_lower_bound(params: ProtocolParameters) -> float:
    """Guaranteed honest fraction of chain blocks (the quality parameter ``q``).

    ``q >= 1 - beta / gamma`` when the right-hand side is positive; otherwise
    the bound is vacuous and 0 is returned (the adversary can in principle
    claim every block).
    """
    gamma = discounted_honest_rate(params)
    if gamma <= 0.0:
        raise ParameterError("discounted honest rate must be positive")
    return max(0.0, 1.0 - params.beta / gamma)


def expected_block_interval_rounds(params: ProtocolParameters) -> float:
    """Expected rounds between consecutive blocks of the common chain, ``1 / gamma``."""
    gamma = discounted_honest_rate(params)
    if gamma <= 0.0:
        raise ParameterError("discounted honest rate must be positive")
    return 1.0 / gamma


@dataclass(frozen=True)
class ChainPropertyEstimates:
    """All three property estimates at one parameter point.

    ``consistency_threshold_c`` is the paper's neat bound, included so a
    designer can read the three guarantees side by side.
    """

    growth_per_round: float
    quality_fraction: float
    block_interval_rounds: float
    consistency_threshold_c: float
    configured_c: float

    @property
    def consistent(self) -> bool:
        """Whether the configured ``c`` exceeds the paper's consistency threshold."""
        return self.configured_c > self.consistency_threshold_c


def estimate_chain_properties(params: ProtocolParameters) -> ChainPropertyEstimates:
    """Bundle the growth/quality/consistency estimates for one configuration."""
    from .bounds import neat_bound

    return ChainPropertyEstimates(
        growth_per_round=chain_growth_lower_bound(params),
        quality_fraction=chain_quality_lower_bound(params),
        block_interval_rounds=expected_block_interval_rounds(params),
        consistency_threshold_c=neat_bound(params.nu),
        configured_c=params.c,
    )
