"""Per-round mining probabilities (Eqs. 7-9, 41, 43 of the paper).

The model of Section III assigns one oracle query per honest miner per round.
The number of blocks mined by the ``mu * n`` honest miners in one round is
therefore ``Binomial(mu * n, p)`` (Eq. 41), and by the ``nu * n`` corrupted
miners ``Binomial(nu * n, p)`` (Section V-A, proof of Eq. 27).

This module packages those distributions together with the derived scalar
probabilities ``alpha``, ``alpha_bar``, ``alpha1`` (Table I), keeping every
quantity available in log space so that the paper's extreme parameter regime
(``delta = 1e13``, ``p ~ 1e-18``) does not underflow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import stats

from ..errors import ParameterError
from ..params import ProtocolParameters

__all__ = [
    "MiningProbabilities",
    "log_binomial_pmf",
    "binomial_pmf",
    "honest_block_distribution",
    "adversary_block_distribution",
    "round_state_probabilities",
]


def log_binomial_pmf(k: int, trials: float, success: float) -> float:
    """Natural log of the Binomial(trials, success) pmf at ``k``.

    ``trials`` is allowed to be real-valued (the paper treats ``mu * n`` as a
    real number); the binomial coefficient is evaluated through
    ``lgamma``.

    >>> round(math.exp(log_binomial_pmf(1, 10, 0.1)), 6)
    0.38742
    """
    if k < 0 or k > trials:
        return -math.inf
    if not (0.0 < success < 1.0):
        raise ParameterError(f"success probability must lie in (0, 1), got {success!r}")
    log_choose = (
        math.lgamma(trials + 1.0)
        - math.lgamma(k + 1.0)
        - math.lgamma(trials - k + 1.0)
    )
    return log_choose + k * math.log(success) + (trials - k) * math.log1p(-success)


def binomial_pmf(k: int, trials: float, success: float) -> float:
    """Binomial(trials, success) pmf at ``k`` (linear scale)."""
    value = log_binomial_pmf(k, trials, success)
    return 0.0 if value == -math.inf else math.exp(value)


def honest_block_distribution(params: ProtocolParameters):
    """The ``Binomial(mu n, p)`` distribution of honest blocks per round (Eq. 41).

    Returns a frozen :mod:`scipy.stats` distribution.  The number of trials is
    rounded to the nearest integer because scipy requires integral ``n``; the
    scalar probabilities on :class:`MiningProbabilities` keep the real-valued
    form used by the paper's closed-form expressions.
    """
    return stats.binom(int(round(params.honest_count)), params.p)


def adversary_block_distribution(params: ProtocolParameters):
    """The ``Binomial(nu n, p)`` distribution of adversarial blocks per round."""
    return stats.binom(int(round(params.adversary_count)), params.p)


def round_state_probabilities(params: ProtocolParameters, max_blocks: int = 8) -> dict:
    """Probabilities of the detailed round states of Eq. (38).

    Returns a dictionary mapping ``"N"`` to ``alpha_bar`` and ``"H1"``,
    ``"H2"``, ... up to ``max_blocks`` to the corresponding binomial pmf
    values, plus ``"H>=k"`` for the tail mass beyond ``max_blocks``.
    """
    probs = {"N": params.alpha_bar}
    total_h = 0.0
    trials = params.honest_count
    for h in range(1, max_blocks + 1):
        value = binomial_pmf(h, trials, params.p)
        probs[f"H{h}"] = value
        total_h += value
    tail = max(params.alpha - total_h, 0.0)
    probs[f"H>={max_blocks + 1}"] = tail
    return probs


@dataclass(frozen=True)
class MiningProbabilities:
    """Scalar per-round probabilities derived from :class:`ProtocolParameters`.

    Attributes
    ----------
    alpha:
        ``P[some honest miner mines]`` (Eq. 7).
    alpha_bar:
        ``P[no honest miner mines]`` (Eq. 8).
    alpha1:
        ``P[exactly one honest miner mines]`` (Eq. 9 / Eq. 43).
    beta:
        Expected adversarial blocks per round, ``nu n p``.
    log_alpha_bar, log_alpha1:
        Log-space versions of the above, exact for tiny ``p``.
    """

    alpha: float
    alpha_bar: float
    alpha1: float
    beta: float
    log_alpha_bar: float
    log_alpha1: float

    @classmethod
    def from_parameters(cls, params: ProtocolParameters) -> "MiningProbabilities":
        """Build the probability bundle for one protocol configuration."""
        return cls(
            alpha=params.alpha,
            alpha_bar=params.alpha_bar,
            alpha1=params.alpha1,
            beta=params.beta,
            log_alpha_bar=params.log_alpha_bar,
            log_alpha1=params.log_alpha1,
        )

    def log_convergence_opportunity(self, delta: int) -> float:
        """``ln(alpha_bar^(2 Δ) alpha1)`` — log of Eq. (44) for the given Δ."""
        return 2.0 * delta * self.log_alpha_bar + self.log_alpha1

    def convergence_opportunity(self, delta: int) -> float:
        """``alpha_bar^(2 Δ) alpha1`` — Eq. (44) for the given Δ."""
        return math.exp(self.log_convergence_opportunity(delta))

    def sanity_check(self, tolerance: float = 1e-12) -> bool:
        """Verify the basic identities ``alpha + alpha_bar = 1`` and ``alpha1 <= alpha``."""
        return (
            abs(self.alpha + self.alpha_bar - 1.0) <= tolerance
            and self.alpha1 <= self.alpha + tolerance
            and 0.0 <= self.alpha1 <= 1.0
        )


def poisson_binomial_distribution(probabilities: Sequence[float]) -> np.ndarray:
    """Exact pmf of ``sum_i Bernoulli(p_i)`` for heterogeneous ``p_i``.

    The Poisson-binomial law governs per-round success counts when miners
    have unequal power (:class:`~repro.simulation.topology.MiningPowerProfile`),
    replacing the identical-miner binomial of Eq. (41).  Computed with the
    stable O(n²) convolution recurrence — each miner's Bernoulli factor is
    folded into the running pmf — which is exact for the miner counts the
    simulation layer handles (the closed-form ``alpha``-style scalars on
    :class:`HeterogeneousMiningProbabilities` stay O(n) and log-space for
    the paper's extreme regimes).

    >>> pmf = poisson_binomial_distribution([0.5, 0.5])
    >>> [round(v, 6) for v in pmf]
    [0.25, 0.5, 0.25]
    """
    values = np.asarray(probabilities, dtype=np.float64)
    if values.ndim != 1:
        raise ParameterError("probabilities must be a 1-D sequence")
    if values.size and not ((values >= 0.0) & (values <= 1.0)).all():
        raise ParameterError("probabilities must lie in [0, 1]")
    pmf = np.zeros(values.size + 1, dtype=np.float64)
    pmf[0] = 1.0
    for index, p in enumerate(values):
        head = pmf[: index + 2].copy()
        pmf[1 : index + 2] = head[1:] * (1.0 - p) + head[:-1] * p
        pmf[0] = head[0] * (1.0 - p)
    return pmf


def poisson_binomial_pmf(k: int, probabilities: Sequence[float]) -> float:
    """``P[sum_i Bernoulli(p_i) = k]`` (exact, linear scale)."""
    values = np.asarray(probabilities, dtype=np.float64)
    if k < 0 or k > values.size:
        return 0.0
    return float(poisson_binomial_distribution(values)[int(k)])


class HeterogeneousMiningProbabilities:
    """Per-round probabilities for miners with unequal power (Poisson-binomial).

    The heterogeneous analogue of :class:`MiningProbabilities`: the number
    of honest blocks per round is ``sum_i Bernoulli(p_i)`` instead of
    ``Binomial(mu n, p)``, so the Table I scalars become

    * ``alpha_bar = prod_i (1 - p_i)`` — no honest block (heterogeneous Eq. 8);
    * ``alpha = 1 - alpha_bar`` (Eq. 7);
    * ``alpha1 = alpha_bar * sum_i p_i / (1 - p_i)`` — exactly one honest
      block (Eq. 9 / Eq. 43), and
    * ``beta = sum_j q_j`` — the expected adversarial blocks per round over
      the corrupted miners' own probabilities ``q_j`` (Eq. 27).

    Everything is kept in log space (``log1p`` / ``expm1`` accumulation),
    so the convergence-opportunity rate stays exact in the paper's extreme
    regimes.  With all ``p_i`` equal this reduces to the binomial bundle:
    the two classes then agree to floating-point roundoff.
    """

    def __init__(
        self, honest_p: Sequence[float], adversary_p: Sequence[float] = ()
    ):
        honest = np.asarray(honest_p, dtype=np.float64)
        adversary = np.asarray(adversary_p, dtype=np.float64)
        if honest.ndim != 1 or adversary.ndim != 1:
            raise ParameterError(
                "per-miner probability vectors must be 1-dimensional"
            )
        if honest.size < 1:
            raise ParameterError("at least one honest miner is required")
        for side, values in (("honest", honest), ("adversary", adversary)):
            if values.size and not ((values > 0.0) & (values < 1.0)).all():
                raise ParameterError(
                    f"{side} per-miner probabilities must lie in (0, 1)"
                )
        self.honest_p = honest
        self.adversary_p = adversary

    # ------------------------------------------------------------------
    # Table I scalars (log-space exact)
    # ------------------------------------------------------------------
    @property
    def log_alpha_bar(self) -> float:
        """``ln P[no honest block] = sum_i ln(1 - p_i)``."""
        return float(np.log1p(-self.honest_p).sum())

    @property
    def alpha_bar(self) -> float:
        return math.exp(self.log_alpha_bar)

    @property
    def alpha(self) -> float:
        return -math.expm1(self.log_alpha_bar)

    @property
    def log_alpha1(self) -> float:
        """``ln P[exactly one honest block]`` — the one-success mass in logs."""
        return self.log_alpha_bar + math.log(
            float((self.honest_p / (1.0 - self.honest_p)).sum())
        )

    @property
    def alpha1(self) -> float:
        return math.exp(self.log_alpha1)

    @property
    def beta(self) -> float:
        """Expected adversarial blocks per round, ``sum_j q_j``."""
        return float(self.adversary_p.sum())

    # ------------------------------------------------------------------
    # Distributions and the convergence-opportunity rate
    # ------------------------------------------------------------------
    def honest_distribution(self) -> np.ndarray:
        """Exact per-round honest block-count pmf (Poisson-binomial)."""
        return poisson_binomial_distribution(self.honest_p)

    def adversary_distribution(self) -> np.ndarray:
        """Exact per-round adversarial block-count pmf (Poisson-binomial)."""
        return poisson_binomial_distribution(self.adversary_p)

    def log_convergence_opportunity(self, delta: int) -> float:
        """``ln(alpha_bar^(2 Δ) alpha1)`` — Eq. (44) under heterogeneous power."""
        if delta < 1:
            raise ParameterError(f"delta must be >= 1, got {delta!r}")
        return 2.0 * delta * self.log_alpha_bar + self.log_alpha1

    def convergence_opportunity(self, delta: int) -> float:
        """``alpha_bar^(2 Δ) alpha1`` — the analytical convergence-opportunity
        rate a heterogeneous-power batch run should approach (validated by
        the simulation-side tests against
        :class:`~repro.simulation.BatchSimulation` with a power profile)."""
        return math.exp(self.log_convergence_opportunity(delta))

    def sanity_check(self, tolerance: float = 1e-12) -> bool:
        """``alpha + alpha_bar = 1`` and ``0 <= alpha1 <= alpha`` still hold."""
        return (
            abs(self.alpha + self.alpha_bar - 1.0) <= tolerance
            and self.alpha1 <= self.alpha + tolerance
            and 0.0 <= self.alpha1 <= 1.0
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HeterogeneousMiningProbabilities(honest={self.honest_p.size}, "
            f"adversary={self.adversary_p.size}, alpha={self.alpha:.3e})"
        )


def poisson_binomial_convergence_opportunity(
    honest_p: Sequence[float], delta: int
) -> float:
    """Convenience wrapper: the heterogeneous Eq. (44) rate in one call."""
    return HeterogeneousMiningProbabilities(honest_p).convergence_opportunity(delta)


def expected_honest_blocks(params: ProtocolParameters, rounds: int) -> float:
    """Expected number of honest blocks mined over ``rounds`` rounds."""
    return params.honest_count * params.p * rounds


def expected_adversary_blocks(params: ProtocolParameters, rounds: int) -> float:
    """Expected number of adversarial blocks mined over ``rounds`` rounds (Eq. 27)."""
    return params.beta * rounds


def sample_honest_blocks(
    params: ProtocolParameters, rounds: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample the per-round number of honest blocks for ``rounds`` i.i.d. rounds."""
    return rng.binomial(int(round(params.honest_count)), params.p, size=rounds)


def sample_adversary_blocks(
    params: ProtocolParameters, rounds: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample the per-round number of adversarial blocks for ``rounds`` i.i.d. rounds."""
    return rng.binomial(int(round(params.adversary_count)), params.p, size=rounds)


__all__ += [
    "poisson_binomial_distribution",
    "poisson_binomial_pmf",
    "poisson_binomial_convergence_opportunity",
    "HeterogeneousMiningProbabilities",
    "expected_honest_blocks",
    "expected_adversary_blocks",
    "sample_honest_blocks",
    "sample_adversary_blocks",
]
