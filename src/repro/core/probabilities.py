"""Per-round mining probabilities (Eqs. 7-9, 41, 43 of the paper).

The model of Section III assigns one oracle query per honest miner per round.
The number of blocks mined by the ``mu * n`` honest miners in one round is
therefore ``Binomial(mu * n, p)`` (Eq. 41), and by the ``nu * n`` corrupted
miners ``Binomial(nu * n, p)`` (Section V-A, proof of Eq. 27).

This module packages those distributions together with the derived scalar
probabilities ``alpha``, ``alpha_bar``, ``alpha1`` (Table I), keeping every
quantity available in log space so that the paper's extreme parameter regime
(``delta = 1e13``, ``p ~ 1e-18``) does not underflow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import stats

from ..errors import ParameterError
from ..params import ProtocolParameters

__all__ = [
    "MiningProbabilities",
    "log_binomial_pmf",
    "binomial_pmf",
    "honest_block_distribution",
    "adversary_block_distribution",
    "round_state_probabilities",
]


def log_binomial_pmf(k: int, trials: float, success: float) -> float:
    """Natural log of the Binomial(trials, success) pmf at ``k``.

    ``trials`` is allowed to be real-valued (the paper treats ``mu * n`` as a
    real number); the binomial coefficient is evaluated through
    ``lgamma``.

    >>> round(math.exp(log_binomial_pmf(1, 10, 0.1)), 6)
    0.38742
    """
    if k < 0 or k > trials:
        return -math.inf
    if not (0.0 < success < 1.0):
        raise ParameterError(f"success probability must lie in (0, 1), got {success!r}")
    log_choose = (
        math.lgamma(trials + 1.0)
        - math.lgamma(k + 1.0)
        - math.lgamma(trials - k + 1.0)
    )
    return log_choose + k * math.log(success) + (trials - k) * math.log1p(-success)


def binomial_pmf(k: int, trials: float, success: float) -> float:
    """Binomial(trials, success) pmf at ``k`` (linear scale)."""
    value = log_binomial_pmf(k, trials, success)
    return 0.0 if value == -math.inf else math.exp(value)


def honest_block_distribution(params: ProtocolParameters):
    """The ``Binomial(mu n, p)`` distribution of honest blocks per round (Eq. 41).

    Returns a frozen :mod:`scipy.stats` distribution.  The number of trials is
    rounded to the nearest integer because scipy requires integral ``n``; the
    scalar probabilities on :class:`MiningProbabilities` keep the real-valued
    form used by the paper's closed-form expressions.
    """
    return stats.binom(int(round(params.honest_count)), params.p)


def adversary_block_distribution(params: ProtocolParameters):
    """The ``Binomial(nu n, p)`` distribution of adversarial blocks per round."""
    return stats.binom(int(round(params.adversary_count)), params.p)


def round_state_probabilities(params: ProtocolParameters, max_blocks: int = 8) -> dict:
    """Probabilities of the detailed round states of Eq. (38).

    Returns a dictionary mapping ``"N"`` to ``alpha_bar`` and ``"H1"``,
    ``"H2"``, ... up to ``max_blocks`` to the corresponding binomial pmf
    values, plus ``"H>=k"`` for the tail mass beyond ``max_blocks``.
    """
    probs = {"N": params.alpha_bar}
    total_h = 0.0
    trials = params.honest_count
    for h in range(1, max_blocks + 1):
        value = binomial_pmf(h, trials, params.p)
        probs[f"H{h}"] = value
        total_h += value
    tail = max(params.alpha - total_h, 0.0)
    probs[f"H>={max_blocks + 1}"] = tail
    return probs


@dataclass(frozen=True)
class MiningProbabilities:
    """Scalar per-round probabilities derived from :class:`ProtocolParameters`.

    Attributes
    ----------
    alpha:
        ``P[some honest miner mines]`` (Eq. 7).
    alpha_bar:
        ``P[no honest miner mines]`` (Eq. 8).
    alpha1:
        ``P[exactly one honest miner mines]`` (Eq. 9 / Eq. 43).
    beta:
        Expected adversarial blocks per round, ``nu n p``.
    log_alpha_bar, log_alpha1:
        Log-space versions of the above, exact for tiny ``p``.
    """

    alpha: float
    alpha_bar: float
    alpha1: float
    beta: float
    log_alpha_bar: float
    log_alpha1: float

    @classmethod
    def from_parameters(cls, params: ProtocolParameters) -> "MiningProbabilities":
        """Build the probability bundle for one protocol configuration."""
        return cls(
            alpha=params.alpha,
            alpha_bar=params.alpha_bar,
            alpha1=params.alpha1,
            beta=params.beta,
            log_alpha_bar=params.log_alpha_bar,
            log_alpha1=params.log_alpha1,
        )

    def log_convergence_opportunity(self, delta: int) -> float:
        """``ln(alpha_bar^(2 Δ) alpha1)`` — log of Eq. (44) for the given Δ."""
        return 2.0 * delta * self.log_alpha_bar + self.log_alpha1

    def convergence_opportunity(self, delta: int) -> float:
        """``alpha_bar^(2 Δ) alpha1`` — Eq. (44) for the given Δ."""
        return math.exp(self.log_convergence_opportunity(delta))

    def sanity_check(self, tolerance: float = 1e-12) -> bool:
        """Verify the basic identities ``alpha + alpha_bar = 1`` and ``alpha1 <= alpha``."""
        return (
            abs(self.alpha + self.alpha_bar - 1.0) <= tolerance
            and self.alpha1 <= self.alpha + tolerance
            and 0.0 <= self.alpha1 <= 1.0
        )


def expected_honest_blocks(params: ProtocolParameters, rounds: int) -> float:
    """Expected number of honest blocks mined over ``rounds`` rounds."""
    return params.honest_count * params.p * rounds


def expected_adversary_blocks(params: ProtocolParameters, rounds: int) -> float:
    """Expected number of adversarial blocks mined over ``rounds`` rounds (Eq. 27)."""
    return params.beta * rounds


def sample_honest_blocks(
    params: ProtocolParameters, rounds: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample the per-round number of honest blocks for ``rounds`` i.i.d. rounds."""
    return rng.binomial(int(round(params.honest_count)), params.p, size=rounds)


def sample_adversary_blocks(
    params: ProtocolParameters, rounds: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample the per-round number of adversarial blocks for ``rounds`` i.i.d. rounds."""
    return rng.binomial(int(round(params.adversary_count)), params.p, size=rounds)


__all__ += [
    "expected_honest_blocks",
    "expected_adversary_blocks",
    "sample_honest_blocks",
    "sample_adversary_blocks",
]
