"""The paper's primary contribution: consistency bounds and Markov-chain analysis.

Submodules
----------
``probabilities``
    Per-round mining probabilities (alpha, alpha_bar, alpha1; Eqs. 7-9, 41).
``bounds``
    The neat bound ``2 mu / ln(mu/nu)`` and the conditions of Theorems 1-3.
``pss``
    Pass-Seeman-Shelat consistency and attack baselines (Figure 1's blue/red).
``kiffer``
    The Kiffer et al. comparison (the correction discussed in Section IV).
``lemmas``
    Lemmas 2-8, Propositions 1-2, and the proof's explicit constants.
``suffix_chain``
    The suffix Markov chain C_F (Figure 2, Eqs. 29-37).
``concat_chain``
    The concatenation chain C_F||P and the convergence opportunity (Eqs. 38-44).
``concentration``
    Chernoff-Hoeffding and binomial tail bounds (Inequalities 47-49).
``consistency``
    The window-level consistency analyzer built on all of the above.
"""

from .bounds import (
    BoundEvaluation,
    evaluate_bounds,
    neat_bound,
    nu_max_neat_bound,
    theorem1_condition,
    theorem2_c_threshold,
    theorem2_condition,
    theorem3_c_condition,
    theorem3_pn_condition,
)
from .concat_chain import ConcatChain, DetailedState, count_convergence_opportunities
from .concentration import (
    ConsistencyFailureBound,
    adversary_upper_tail_bound,
    consistency_failure_bound,
    markov_lower_tail_bound,
)
from .consistency import ConsistencyAnalyzer, ConsistencyVerdict
from .kiffer import correction_ratio
from .lemmas import delta1_constant, delta4_constant, implication_chain_thresholds
from .probabilities import (
    HeterogeneousMiningProbabilities,
    MiningProbabilities,
    poisson_binomial_convergence_opportunity,
    poisson_binomial_distribution,
    poisson_binomial_pmf,
)
from .pss import (
    nu_max_pss_consistency,
    nu_min_pss_attack,
    pss_attack_succeeds,
    pss_consistency_condition_exact,
)
from .suffix_chain import SuffixChain, SuffixState, SuffixStateKind

__all__ = [
    "MiningProbabilities",
    "HeterogeneousMiningProbabilities",
    "poisson_binomial_distribution",
    "poisson_binomial_pmf",
    "poisson_binomial_convergence_opportunity",
    "neat_bound",
    "nu_max_neat_bound",
    "theorem1_condition",
    "theorem2_condition",
    "theorem2_c_threshold",
    "theorem3_pn_condition",
    "theorem3_c_condition",
    "evaluate_bounds",
    "BoundEvaluation",
    "nu_max_pss_consistency",
    "nu_min_pss_attack",
    "pss_attack_succeeds",
    "pss_consistency_condition_exact",
    "correction_ratio",
    "delta1_constant",
    "delta4_constant",
    "implication_chain_thresholds",
    "SuffixChain",
    "SuffixState",
    "SuffixStateKind",
    "ConcatChain",
    "DetailedState",
    "count_convergence_opportunities",
    "adversary_upper_tail_bound",
    "markov_lower_tail_bound",
    "consistency_failure_bound",
    "ConsistencyFailureBound",
    "ConsistencyAnalyzer",
    "ConsistencyVerdict",
]
