"""Comparison with the Markov-chain analysis of Kiffer, Rajaraman and shelat (CCS 2018).

Section IV of the paper ("Novelty of our Theorem 1") contrasts Theorem 1 with
the earlier Markov-chain-based analysis of Kiffer et al. [6].  The paper makes
three observations:

1. Kiffer et al. use a *two-state* Markov chain which "cannot cover all
   possible states", unlike the (2 Delta + 1)-state suffix chain C_F;
2. their computation of the quantities ``l_11`` and ``l_10`` uses ``1/(mu p)``
   where it should use ``1/alpha = 1/(1 - (1 - p)^(mu n))``;
3. as a consequence, their Inequality (1) — which "looks similar" to the
   paper's Inequality (10) — is incorrect.

This module reconstructs both versions so the difference can be measured:

* :func:`kiffer_style_condition_incorrect` — the convergence-opportunity rate
  computed with the erroneous ``1/(mu p)`` normalisation (i.e. treating the
  per-round honest success probability as ``mu n p`` instead of ``alpha``);
* :func:`corrected_condition` — the corrected rate, which coincides with the
  paper's Theorem 1 expression ``alpha_bar^(2 Delta) alpha1``.

The reconstruction is documented as such: reference [6] is closed-form but not
reproduced verbatim here; what matters for this reproduction is the *relative*
effect of the correction the paper points out, which these two functions
expose directly.
"""

from __future__ import annotations

import math

from ..errors import ParameterError
from ..params import ProtocolParameters

__all__ = [
    "kiffer_convergence_rate_incorrect",
    "kiffer_style_condition_incorrect",
    "corrected_convergence_rate",
    "corrected_condition",
    "correction_ratio",
]


def kiffer_convergence_rate_incorrect(params: ProtocolParameters) -> float:
    """Per-round convergence-opportunity rate with the erroneous normalisation.

    Kiffer et al. compute the expected time spent in the "all honest parties
    agree" state using ``1 / (mu p)`` where the paper shows ``1 / alpha``
    should be used.  Equivalently, the linearised rate substitutes the
    first-success probability ``mu n p`` for ``alpha = 1 - (1-p)^(mu n)`` and
    for ``alpha1``.  The resulting rate is

    ``(1 - mu n p)^(2 Delta) * mu n p``

    The error relative to the corrected rate ``alpha_bar^(2 Delta) alpha1``
    is not one-sided: the substitution *under*-estimates the quiet-round
    probability (``1 - mu n p <= alpha_bar``) but *over*-estimates the
    single-success probability (``mu n p >= alpha1``); which effect dominates
    depends on ``Delta`` and ``mu n p``.  Both effects vanish as ``p -> 0``.
    """
    rate = params.honest_count * params.p
    if rate >= 1.0:
        raise ParameterError(
            "the linearised (incorrect) rate requires mu n p < 1; "
            f"got mu n p = {rate!r}"
        )
    return (1.0 - rate) ** (2 * params.delta) * rate


def kiffer_style_condition_incorrect(
    params: ProtocolParameters, delta1: float
) -> bool:
    """The Kiffer-style sufficient condition with the erroneous normalisation.

    Mirrors the shape of the paper's Inequality (10) but with the incorrect
    rate; useful only for measuring the gap the paper's correction closes.
    """
    if delta1 <= 0.0:
        raise ParameterError(f"delta1 must be positive, got {delta1!r}")
    return kiffer_convergence_rate_incorrect(params) >= (1.0 + delta1) * params.beta


def corrected_convergence_rate(params: ProtocolParameters) -> float:
    """The corrected per-round convergence-opportunity rate, ``alpha_bar^(2Δ) alpha1``.

    Identical to Eq. (44) of the paper / the left-hand side of Theorem 1.
    """
    return params.convergence_opportunity_probability


def corrected_condition(params: ProtocolParameters, delta1: float) -> bool:
    """The corrected sufficient condition — the paper's Inequality (10)."""
    if delta1 <= 0.0:
        raise ParameterError(f"delta1 must be positive, got {delta1!r}")
    log_lhs = params.log_convergence_opportunity_probability
    log_rhs = math.log1p(delta1) + math.log(params.beta)
    return log_lhs >= log_rhs


def correction_ratio(params: ProtocolParameters) -> float:
    """Ratio incorrect-rate / corrected-rate.

    Quantifies the relative error introduced by the erroneous normalisation of
    [6] at the given parameters.  The ratio tends to 1 as ``p -> 0`` with
    everything else fixed (the linearisation becomes exact); away from that
    limit it can land on either side of 1, because the substitution
    under-estimates ``alpha_bar`` but over-estimates ``alpha1``.
    """
    incorrect = kiffer_convergence_rate_incorrect(params)
    corrected = corrected_convergence_rate(params)
    if corrected <= 0.0:
        raise ParameterError("corrected rate underflowed; use log-space comparison")
    return incorrect / corrected
