"""The suffix-of-previous-and-current-states Markov chain C_F (Figure 2, Section V-A).

Each round is in state ``H`` (at least one honest block mined, probability
``alpha``) or ``N`` (no honest block, probability ``alpha_bar``).  The chain
C_F tracks a *suffix summary* ``F_t`` of the state history, taking one of the
``2 Delta + 1`` values of the Suffix-Set (Eq. 29):

* ``HN^{<=Delta-1}H``                  — last two honest rounds at most Delta-1 apart, current round honest;
* ``HN^{<=Delta-1}HN^a``, a = 1..Delta-1 — as above followed by ``a`` empty rounds;
* ``HN^{>=Delta}``                     — at least Delta empty rounds since the last honest round;
* ``HN^{>=Delta}HN^b``, b = 0..Delta-1 — a long gap, then an honest round, then ``b`` empty rounds.

The module provides the explicit transition matrix (for modest ``Delta``), the
closed-form stationary distribution of Eqs. (37a)-(37d), and sampling of the
underlying H/N round process so the chain's ergodic averages can be validated
empirically.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MarkovChainError, ParameterError
from ..markov import FiniteMarkovChain
from ..params import ProtocolParameters

__all__ = [
    "SuffixStateKind",
    "SuffixState",
    "SuffixChain",
    "suffix_states",
    "suffix_trajectory",
]


class SuffixStateKind(enum.Enum):
    """The four structural families of Suffix-Set members (Eq. 29)."""

    SHORT_GAP_HEAD = "HN<=D-1 H"
    """``HN^{<=Delta-1}H``: current round honest, previous honest round within Delta-1."""

    SHORT_GAP_TAIL = "HN<=D-1 H N^a"
    """``HN^{<=Delta-1}HN^a`` for a in 1..Delta-1."""

    LONG_GAP = "HN>=D"
    """``HN^{>=Delta}``: at least Delta empty rounds since the last honest round."""

    LONG_GAP_TAIL = "HN>=D H N^b"
    """``HN^{>=Delta}HN^b`` for b in 0..Delta-1."""


@dataclass(frozen=True, order=True)
class SuffixState:
    """One member of the Suffix-Set: a structural kind plus its tail length.

    ``tail`` is the exponent ``a`` (for SHORT_GAP_TAIL), ``b`` (for
    LONG_GAP_TAIL) and 0 for the two singleton kinds.
    """

    kind: SuffixStateKind
    tail: int = 0

    def __post_init__(self) -> None:
        if self.kind in (SuffixStateKind.SHORT_GAP_HEAD, SuffixStateKind.LONG_GAP):
            if self.tail != 0:
                raise MarkovChainError(f"{self.kind} does not carry a tail length")
        elif self.kind is SuffixStateKind.SHORT_GAP_TAIL and self.tail < 1:
            raise MarkovChainError("SHORT_GAP_TAIL requires tail >= 1")
        elif self.kind is SuffixStateKind.LONG_GAP_TAIL and self.tail < 0:
            raise MarkovChainError("LONG_GAP_TAIL requires tail >= 0")

    def label(self) -> str:
        """Human-readable label matching the paper's notation."""
        if self.kind is SuffixStateKind.SHORT_GAP_HEAD:
            return "HN<=D-1.H"
        if self.kind is SuffixStateKind.LONG_GAP:
            return "HN>=D"
        if self.kind is SuffixStateKind.SHORT_GAP_TAIL:
            return f"HN<=D-1.H.N^{self.tail}"
        return f"HN>=D.H.N^{self.tail}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label()


def suffix_states(delta: int) -> List[SuffixState]:
    """Enumerate the ``2 Delta + 1`` states of the Suffix-Set for a given Delta.

    Order: SHORT_GAP_HEAD, SHORT_GAP_TAIL(1..Delta-1), LONG_GAP,
    LONG_GAP_TAIL(0..Delta-1).
    """
    if delta < 1:
        raise ParameterError(f"delta must be >= 1, got {delta!r}")
    states: List[SuffixState] = [SuffixState(SuffixStateKind.SHORT_GAP_HEAD)]
    states.extend(
        SuffixState(SuffixStateKind.SHORT_GAP_TAIL, a) for a in range(1, delta)
    )
    states.append(SuffixState(SuffixStateKind.LONG_GAP))
    states.extend(
        SuffixState(SuffixStateKind.LONG_GAP_TAIL, b) for b in range(0, delta)
    )
    return states


def _next_state(state: SuffixState, honest_round: bool, delta: int) -> SuffixState:
    """The deterministic successor of ``state`` given whether the next round is H or N.

    Encodes the transition rules (1)-(4) of Section V-A / Figure 2.
    """
    kind = state.kind
    if honest_round:
        if kind is SuffixStateKind.LONG_GAP:
            # HN^{>=Delta} followed by H becomes HN^{>=Delta}HN^0.
            return SuffixState(SuffixStateKind.LONG_GAP_TAIL, 0)
        # Every other state followed by H collapses to HN^{<=Delta-1}H: the gap
        # to the previous honest round is at most Delta-1.
        return SuffixState(SuffixStateKind.SHORT_GAP_HEAD)
    # The next round is N.
    if kind is SuffixStateKind.SHORT_GAP_HEAD:
        if delta <= 1:
            # With Delta = 1 a single empty round already makes the gap >= Delta.
            return SuffixState(SuffixStateKind.LONG_GAP)
        return SuffixState(SuffixStateKind.SHORT_GAP_TAIL, 1)
    if kind is SuffixStateKind.SHORT_GAP_TAIL:
        if state.tail >= delta - 1:
            return SuffixState(SuffixStateKind.LONG_GAP)
        return SuffixState(SuffixStateKind.SHORT_GAP_TAIL, state.tail + 1)
    if kind is SuffixStateKind.LONG_GAP:
        return SuffixState(SuffixStateKind.LONG_GAP)
    # LONG_GAP_TAIL
    if state.tail >= delta - 1:
        return SuffixState(SuffixStateKind.LONG_GAP)
    return SuffixState(SuffixStateKind.LONG_GAP_TAIL, state.tail + 1)


def suffix_trajectory(round_states: Sequence[bool], delta: int) -> List[SuffixState]:
    """Map a sequence of per-round H/N indicators onto the C_F trajectory.

    ``round_states[t]`` is ``True`` when round ``t`` is an H round.  The chain
    is only well-defined after two honest rounds have occurred; the trajectory
    is seeded in ``HN^{>=Delta}`` (the paper considers large ``t``, where the
    seeding washes out) and the full per-round list is returned.
    """
    current = SuffixState(SuffixStateKind.LONG_GAP)
    trajectory: List[SuffixState] = []
    for honest in round_states:
        current = _next_state(current, bool(honest), delta)
        trajectory.append(current)
    return trajectory


class SuffixChain:
    """The Markov chain C_F for a given protocol configuration.

    Parameters
    ----------
    params:
        Protocol parameters supplying ``alpha``/``alpha_bar`` and ``Delta``.
    delta:
        Optional override of the Delta used by the chain (defaults to
        ``params.delta``); useful when validating with a small chain while
        keeping the mining probabilities of a larger configuration.

    Examples
    --------
    >>> params = ProtocolParameters(p=1e-4, n=100, delta=3, nu=0.2)
    >>> chain = SuffixChain(params)
    >>> pi = chain.closed_form_stationary()
    >>> abs(sum(pi.values()) - 1.0) < 1e-12
    True
    """

    #: Refuse to enumerate the state space explicitly beyond this many states;
    #: the closed-form/log-space methods remain available at any Delta.
    MAX_EXPLICIT_STATES = 2_000_001

    def __init__(self, params: ProtocolParameters, delta: Optional[int] = None):
        self.params = params
        self.delta = int(params.delta if delta is None else delta)
        if self.delta < 1:
            raise ParameterError(f"delta must be >= 1, got {self.delta!r}")
        self.alpha = params.alpha
        self.alpha_bar = params.alpha_bar
        # The state list is built lazily: at the paper's Delta = 1e13 the
        # Suffix-Set has 2e13 members and must never be materialised; only the
        # closed-form expressions are used there.
        self._states: Optional[List[SuffixState]] = None
        self._index: Optional[dict] = None

    # ------------------------------------------------------------------
    # Construction of the explicit chain
    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """Number of states, ``2 Delta + 1``."""
        return 2 * self.delta + 1

    @property
    def states(self) -> List[SuffixState]:
        """The explicit Suffix-Set (only materialised for modest Delta)."""
        if self._states is None:
            if self.n_states > self.MAX_EXPLICIT_STATES:
                raise ParameterError(
                    f"refusing to enumerate {self.n_states} suffix states; use the "
                    "closed-form/log-space methods at this Delta"
                )
            self._states = suffix_states(self.delta)
            self._index = {
                state: position for position, state in enumerate(self._states)
            }
        return self._states

    @property
    def state_index(self) -> dict:
        """Mapping from state to its position in :attr:`states`."""
        if self._index is None:
            _ = self.states
        return self._index

    def transition_matrix(self) -> np.ndarray:
        """The explicit ``(2Δ+1) x (2Δ+1)`` row-stochastic transition matrix."""
        size = self.n_states
        matrix = np.zeros((size, size))
        for row, state in enumerate(self.states):
            matrix[row, self.state_index[_next_state(state, True, self.delta)]] += self.alpha
            matrix[row, self.state_index[_next_state(state, False, self.delta)]] += (
                self.alpha_bar
            )
        return matrix

    def to_markov_chain(self) -> FiniteMarkovChain:
        """Wrap the chain in a generic :class:`FiniteMarkovChain`."""
        return FiniteMarkovChain(
            self.transition_matrix(), labels=[state.label() for state in self.states]
        )

    # ------------------------------------------------------------------
    # Stationary distribution
    # ------------------------------------------------------------------
    def closed_form_stationary(self) -> Dict[SuffixState, float]:
        """The closed-form stationary distribution of Eqs. (37a)-(37d).

        * ``pi(HN^{<=Δ-1}H)      = alpha (1 - alpha_bar^Δ)``
        * ``pi(HN^{<=Δ-1}HN^a)   = alpha (1 - alpha_bar^Δ) alpha_bar^a``
        * ``pi(HN^{>=Δ})          = alpha_bar^Δ``
        * ``pi(HN^{>=Δ}HN^b)      = alpha alpha_bar^(Δ+b)``
        """
        alpha, alpha_bar, delta = self.alpha, self.alpha_bar, self.delta
        tail_mass = alpha_bar**delta
        distribution: Dict[SuffixState, float] = {}
        for state in self.states:
            if state.kind is SuffixStateKind.SHORT_GAP_HEAD:
                value = alpha * (1.0 - tail_mass)
            elif state.kind is SuffixStateKind.SHORT_GAP_TAIL:
                value = alpha * (1.0 - tail_mass) * alpha_bar**state.tail
            elif state.kind is SuffixStateKind.LONG_GAP:
                value = tail_mass
            else:  # LONG_GAP_TAIL
                value = alpha * alpha_bar ** (delta + state.tail)
            distribution[state] = value
        return distribution

    def numerical_stationary(self) -> Dict[SuffixState, float]:
        """The stationary distribution solved numerically from the transition matrix."""
        chain = self.to_markov_chain()
        pi = chain.stationary_distribution()
        return {state: float(pi[position]) for position, state in enumerate(self.states)}

    def log_stationary(self, state: SuffixState) -> float:
        """Natural log of the closed-form stationary probability of one state.

        Unlike :meth:`closed_form_stationary`, this stays finite even at the
        paper's ``Delta = 1e13`` operating point (where ``alpha_bar^Delta``
        underflows a double).
        """
        log_alpha = math.log(self.alpha)
        log_alpha_bar = self.params.log_alpha_bar
        log_tail_mass = self.delta * log_alpha_bar
        if state.kind is SuffixStateKind.SHORT_GAP_HEAD:
            return log_alpha + _log1mexp(log_tail_mass)
        if state.kind is SuffixStateKind.SHORT_GAP_TAIL:
            return log_alpha + _log1mexp(log_tail_mass) + state.tail * log_alpha_bar
        if state.kind is SuffixStateKind.LONG_GAP:
            return log_tail_mass
        return log_alpha + (self.delta + state.tail) * log_alpha_bar

    def long_gap_probability(self) -> float:
        """``pi(HN^{>=Delta}) = alpha_bar^Delta`` — Eq. (37c), used in Eq. (44)."""
        return math.exp(self.delta * self.params.log_alpha_bar)

    def min_stationary(self) -> float:
        """Minimal stationary probability over the Suffix-Set (Eq. 99).

        ``min pi_F = alpha * alpha_bar^(Delta-1) * min(1 - alpha_bar^Delta, alpha_bar^Delta)``.
        """
        alpha, alpha_bar, delta = self.alpha, self.alpha_bar, self.delta
        tail_mass = alpha_bar**delta
        return alpha * alpha_bar ** (delta - 1) * min(1.0 - tail_mass, tail_mass)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_round_states(self, rounds: int, rng: np.random.Generator) -> np.ndarray:
        """Sample i.i.d. per-round H/N indicators (True for an H round)."""
        if rounds <= 0:
            raise ParameterError("rounds must be positive")
        return rng.random(rounds) < self.alpha

    def empirical_stationary(
        self, rounds: int, rng: np.random.Generator
    ) -> Dict[SuffixState, float]:
        """Empirical occupation frequencies of C_F over a sampled H/N trajectory."""
        round_states = self.sample_round_states(rounds, rng)
        trajectory = suffix_trajectory(round_states, self.delta)
        counts: Dict[SuffixState, int] = {state: 0 for state in self.states}
        for visited in trajectory:
            counts[visited] += 1
        total = len(trajectory)
        return {state: counts[state] / total for state in self.states}


def _log1mexp(log_value: float) -> float:
    """Numerically stable ``log(1 - exp(log_value))`` for ``log_value < 0``."""
    if log_value >= 0.0:
        raise ParameterError("log(1 - exp(x)) requires x < 0")
    if log_value > -math.log(2.0):
        return math.log(-math.expm1(log_value))
    return math.log1p(-math.exp(log_value))
