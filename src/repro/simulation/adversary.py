"""Adversary strategies.

The adversary of Section III fully controls the corrupted miners and the
message delays (up to Δ).  A strategy decides, each round,

* how long to delay each newly mined honest block (``delay_for_honest_block``),
* which block its own miners extend (``mining_parent``),
* and whether/when to publish privately held blocks (``blocks_to_release``).

Three strategies are provided:

:class:`PassiveAdversary`
    Mines on the public longest chain, publishes immediately, imposes no extra
    delay.  Consistency should hold comfortably; useful as a control.
:class:`MaxDelayAdversary`
    Delays every honest block by the full Δ and mines publicly.  This stresses
    the convergence-opportunity machinery (it minimises the number of
    opportunities for a given mining rate) without attempting to fork.
:class:`PrivateChainAdversary`
    The withholding attack in the spirit of PSS Remark 8.5: delay all honest
    blocks by Δ, mine a private chain from a chosen fork point, and release it
    once it is longer than the public chain (displacing the honest players'
    chain and, if the fork is deep, breaking T-consistency).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import SimulationError
from .block import Block
from .blocktree import BlockTree

__all__ = [
    "AdversaryStrategy",
    "PassiveAdversary",
    "MaxDelayAdversary",
    "PrivateChainAdversary",
    "EquivocationAdversary",
    "SelfishMiningAdversary",
]


class AdversaryStrategy(abc.ABC):
    """Interface every adversary strategy implements.

    The simulation calls the hooks in this order each round:

    1. :meth:`delay_for_honest_block` for every honest block mined this round;
    2. :meth:`mining_parent` once, before the adversarial mining draws;
    3. :meth:`register_adversary_block` for every adversarial block mined;
    4. :meth:`blocks_to_release` once, at the end of the round.
    """

    def __init__(self, delta: int):
        if delta < 1:
            raise SimulationError(f"delta must be >= 1, got {delta!r}")
        self.delta = int(delta)

    @abc.abstractmethod
    def delay_for_honest_block(self, block: Block, round_index: int) -> int:
        """The delay (0..Δ) to impose on a newly mined honest block."""

    @abc.abstractmethod
    def mining_parent(self, public_tree: BlockTree, round_index: int) -> int:
        """The block id the adversary's miners extend this round."""

    @abc.abstractmethod
    def register_adversary_block(self, block: Block, round_index: int) -> None:
        """Called for each adversarial block mined this round."""

    @abc.abstractmethod
    def blocks_to_release(self, public_tree: BlockTree, round_index: int) -> List[Block]:
        """Privately held blocks to publish at the end of this round."""

    def describe(self) -> str:
        """Human-readable strategy name (used in experiment tables)."""
        return type(self).__name__


class PassiveAdversary(AdversaryStrategy):
    """Mines on the public longest chain and publishes everything immediately."""

    def __init__(self, delta: int, honest_delay: int = 0):
        super().__init__(delta)
        if not (0 <= honest_delay <= delta):
            raise SimulationError(
                f"honest_delay must lie in [0, {delta}], got {honest_delay!r}"
            )
        self.honest_delay = honest_delay
        self._fresh_blocks: List[Block] = []

    def delay_for_honest_block(self, block: Block, round_index: int) -> int:
        return self.honest_delay

    def mining_parent(self, public_tree: BlockTree, round_index: int) -> int:
        return public_tree.best_tip

    def register_adversary_block(self, block: Block, round_index: int) -> None:
        self._fresh_blocks.append(block)

    def blocks_to_release(self, public_tree: BlockTree, round_index: int) -> List[Block]:
        released, self._fresh_blocks = self._fresh_blocks, []
        return released


class MaxDelayAdversary(PassiveAdversary):
    """Delays every honest block by the full Δ; otherwise behaves like :class:`PassiveAdversary`."""

    def __init__(self, delta: int):
        super().__init__(delta, honest_delay=delta)


@dataclass
class _PrivateChainState:
    """Book-keeping for the withholding attack."""

    fork_point: Optional[int] = None
    private_tip: Optional[int] = None
    private_height: int = 0
    withheld: List[Block] = field(default_factory=list)
    releases: int = 0
    deepest_fork: int = 0
    release_rounds: List[int] = field(default_factory=list)
    abandon_rounds: List[int] = field(default_factory=list)


class PrivateChainAdversary(AdversaryStrategy):
    """Withholding attack in the spirit of PSS Remark 8.5.

    The adversary forks from the public best tip the first time it mines,
    extends its private chain in secret, and delays all honest blocks by Δ.
    It publishes the private chain only when doing so violates T-consistency
    for ``T = target_depth``: the private chain must be strictly longer than
    the public chain *and* the public chain must have grown by at least
    ``target_depth`` blocks above the fork point, so the release displaces a
    suffix that deep.  If the adversary falls hopelessly behind
    (``give_up_deficit`` blocks below the public chain) it abandons the fork
    and restarts from the current public tip.

    Parameters
    ----------
    delta:
        The network delay cap Δ.
    target_depth:
        Minimum depth of the public suffix a release must displace (the ``T``
        whose consistency the attack aims to break).
    give_up_deficit:
        Abandon the private fork once it falls this many blocks behind the
        public chain.  ``None`` never gives up.
    """

    def __init__(
        self,
        delta: int,
        target_depth: int = 6,
        give_up_deficit: Optional[int] = 12,
    ):
        super().__init__(delta)
        if target_depth < 1:
            raise SimulationError(f"target_depth must be >= 1, got {target_depth!r}")
        if give_up_deficit is not None and give_up_deficit < 1:
            raise SimulationError(
                f"give_up_deficit must be >= 1 or None, got {give_up_deficit!r}"
            )
        self.target_depth = target_depth
        self.give_up_deficit = give_up_deficit
        self._state = _PrivateChainState()

    # ------------------------------------------------------------------
    # Strategy hooks
    # ------------------------------------------------------------------
    def delay_for_honest_block(self, block: Block, round_index: int) -> int:
        return self.delta

    def mining_parent(self, public_tree: BlockTree, round_index: int) -> int:
        state = self._state
        if state.private_tip is not None:
            return state.private_tip
        # No private chain yet: fork from the current public best tip.
        return public_tree.best_tip

    def register_adversary_block(self, block: Block, round_index: int) -> None:
        state = self._state
        if state.private_tip is None:
            state.fork_point = block.parent_id
        state.private_tip = block.block_id
        state.private_height = block.height
        state.withheld.append(block)

    def blocks_to_release(self, public_tree: BlockTree, round_index: int) -> List[Block]:
        state = self._state
        if not state.withheld:
            return []
        public_height = public_tree.height
        # Abandon a hopeless fork and restart from the public tip next round.
        if (
            self.give_up_deficit is not None
            and public_height - state.private_height >= self.give_up_deficit
        ):
            state.withheld = []
            state.private_tip = None
            state.fork_point = None
            state.private_height = 0
            state.abandon_rounds.append(round_index)
            return []
        if state.private_height <= public_height:
            return []
        fork_depth = public_height
        if state.fork_point is not None and state.fork_point in public_tree:
            fork_depth = public_height - public_tree.get(state.fork_point).height
        if fork_depth < self.target_depth:
            # Not deep enough yet to violate T-consistency for the target T;
            # keep withholding while ahead.
            return []
        # Release the whole private chain; record how deep the displaced
        # public suffix is (number of public blocks above the fork point).
        state.deepest_fork = max(state.deepest_fork, fork_depth)
        released, state.withheld = state.withheld, []
        state.releases += 1
        state.release_rounds.append(round_index)
        # Start a fresh fork the next time the adversary mines.
        state.private_tip = None
        state.fork_point = None
        state.private_height = 0
        return released

    # ------------------------------------------------------------------
    # Attack statistics
    # ------------------------------------------------------------------
    @property
    def releases(self) -> int:
        """Number of private-chain releases so far."""
        return self._state.releases

    @property
    def deepest_fork(self) -> int:
        """Deepest public suffix displaced by a release (a consistency-violation depth)."""
        return self._state.deepest_fork

    @property
    def withheld_count(self) -> int:
        """Number of blocks currently withheld."""
        return len(self._state.withheld)

    @property
    def private_height(self) -> int:
        """Height of the current private tip (0 when no private chain exists)."""
        return self._state.private_height

    @property
    def release_rounds(self) -> List[int]:
        """Rounds (1-indexed) at which a private chain was released."""
        return list(self._state.release_rounds)

    @property
    def abandon_rounds(self) -> List[int]:
        """Rounds (1-indexed) at which a hopeless fork was abandoned."""
        return list(self._state.abandon_rounds)


class EquivocationAdversary(PrivateChainAdversary):
    """Per-component equivocation, projected onto a merged network.

    The full strategy shows *conflicting* private chains to the two sides of
    a network partition (one chain per component, successes routed to the
    weaker race), which only the vectorized two-component scan in
    :mod:`repro.simulation.scenarios` can price — the legacy per-trial
    simulator has no network components to disagree about.  On a merged
    network the conflicting chains collapse into one, so this reference
    strategy is behaviourally identical to :class:`PrivateChainAdversary`;
    it exists so ``kind="equivocation"`` scenarios can still be replayed
    through the legacy engine for the unpartitioned prefix of a run.
    """


class SelfishMiningAdversary(AdversaryStrategy):
    """Selfish mining (Eyal-Sirer style), adapted to the round/Δ-delay model.

    The adversary mines a private chain from the public tip and releases just
    enough of it, just in time, to orphan freshly mined honest blocks:

    * while its private lead over the public chain is at least 2, it keeps
      everything withheld;
    * when the public chain catches up to within 1 block of the private tip,
      it releases the whole private chain, winning the race because honest
      blocks are additionally delayed by Δ rounds;
    * if the public chain overtakes the private one, it abandons the fork and
      restarts from the public tip.

    Unlike :class:`PrivateChainAdversary` this strategy does not aim to break
    T-consistency for large T — its releases displace only a shallow suffix —
    but it degrades *chain quality*: the fraction of honest blocks in the
    chain drops below the honest mining share.  It exists to exercise the
    chain-quality metric and the ``repro.core.chain_properties`` estimates.
    """

    def __init__(self, delta: int):
        super().__init__(delta)
        self._state = _PrivateChainState()
        self._orphaned_honest = 0

    # ------------------------------------------------------------------
    # Strategy hooks
    # ------------------------------------------------------------------
    def delay_for_honest_block(self, block: Block, round_index: int) -> int:
        return self.delta

    def mining_parent(self, public_tree: BlockTree, round_index: int) -> int:
        state = self._state
        if state.private_tip is not None:
            return state.private_tip
        return public_tree.best_tip

    def register_adversary_block(self, block: Block, round_index: int) -> None:
        state = self._state
        if state.private_tip is None:
            state.fork_point = block.parent_id
        state.private_tip = block.block_id
        state.private_height = block.height
        state.withheld.append(block)

    def blocks_to_release(self, public_tree: BlockTree, round_index: int) -> List[Block]:
        state = self._state
        if not state.withheld:
            return []
        public_height = public_tree.height
        lead = state.private_height - public_height
        if lead >= 2:
            # Comfortable lead: keep mining in secret.
            return []
        if lead <= -1:
            # Overtaken: abandon the fork and restart from the public tip.
            state.withheld = []
            state.private_tip = None
            state.fork_point = None
            state.private_height = 0
            state.abandon_rounds.append(round_index)
            return []
        # Lead of 0 or 1: publish everything and claim the race.  Count the
        # honest blocks above the fork point that this release orphans.
        if state.fork_point is not None and state.fork_point in public_tree:
            fork_height = public_tree.get(state.fork_point).height
            orphaned = max(public_height - fork_height, 0)
            self._orphaned_honest += orphaned
            state.deepest_fork = max(state.deepest_fork, orphaned)
        released, state.withheld = state.withheld, []
        state.releases += 1
        state.release_rounds.append(round_index)
        state.private_tip = None
        state.fork_point = None
        state.private_height = 0
        return released

    # ------------------------------------------------------------------
    # Attack statistics
    # ------------------------------------------------------------------
    @property
    def releases(self) -> int:
        """Number of private-chain releases so far."""
        return self._state.releases

    @property
    def deepest_fork(self) -> int:
        """Deepest public suffix displaced by a release."""
        return self._state.deepest_fork

    @property
    def orphaned_honest_blocks(self) -> int:
        """Total number of honest blocks orphaned by the strategy's releases."""
        return self._orphaned_honest

    @property
    def private_height(self) -> int:
        """Height of the current private tip (0 when no private chain exists)."""
        return self._state.private_height

    @property
    def withheld_count(self) -> int:
        """Number of blocks currently withheld."""
        return len(self._state.withheld)

    @property
    def release_rounds(self) -> List[int]:
        """Rounds (1-indexed) at which the private chain was released."""
        return list(self._state.release_rounds)

    @property
    def abandon_rounds(self) -> List[int]:
        """Rounds (1-indexed) at which an overtaken fork was abandoned."""
        return list(self._state.abandon_rounds)
