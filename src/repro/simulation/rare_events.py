"""Rare-event estimation of deep consistency-violation probabilities.

The paper's consistency bounds live at violation probabilities of ``1e-9``
and below, but brute-force Monte Carlo through
:class:`~repro.simulation.batch.BatchSimulation` bottoms out around ``1e-6``:
at ``P = 1e-9`` even ``1e10`` trials yield ~10 violations.  This module
estimates the probability of the Lemma 1 threat event

    ``P[ some window has  A(s,t) - C(s,t) >= depth ]``

(the batch engine's ``worst_deficits >= depth``) with two classical
variance-reduction techniques layered on the batch engine:

* **exponential tilting** (importance sampling) — the per-round mining draws
  stay Binomial but at *tilted* per-query probabilities: the adversary's
  success probability is pushed up and the honest one down, so deep deficits
  become common under the sampling measure.  Because an exponentially tilted
  Bernoulli/Binomial family is closed under tilting, the per-trial
  likelihood ratio is **exact** and depends only on block totals:

      ``log LR = H ln(p/q_h) + (m_h R_h - H) ln((1-p)/(1-q_h))
               + A ln(p/q_a) + (m_a R_a - A) ln((1-p)/(1-q_a))``

  where ``H``/``A`` are the honest/adversarial block totals over ``R_h`` /
  ``R_a`` rounds.  The estimator uses the *stopped* ratio — each violating
  trial is weighted over its first-crossing prefix only (``R_a`` = the
  crossing round, ``R_h`` = ``R_a + delta`` for the opportunity mask's
  look-ahead), which is unbiased by optional stopping because the crossing
  is a stopping time and the violation indicator is prefix-measurable, and
  avoids the pure weight noise the post-crossing rounds would add.  The
  tilt itself is auto-tuned by a cross-entropy pilot stage: the
  standard CE update for an exponential family sets the tilted probabilities
  to the likelihood-ratio-weighted empirical success frequencies of the
  elite (deepest-deficit) pilot trials, iterated until the elite deficit
  threshold reaches the target depth — i.e. the tilt centres the windowed
  A-C deficit on the violation threshold.

* **multilevel splitting** — for schedules where a single global tilt is
  inefficient, the event is factored through the intermediate levels
  ``deficit >= 1, 2, ..., depth``: trajectories that reach level ``l`` are
  cloned at their first crossing (the iid-rounds structure makes the
  conditional law of the future given the frozen prefix exact — the honest
  prefix is kept ``delta`` rounds longer than the adversarial one because
  the opportunity mask at round ``r`` looks ahead that far) and their
  suffixes redrawn, so the product of per-level conditional hit fractions
  estimates the tail.

All tensor math goes through the active :class:`~repro.backend.ArrayBackend`
(host-seeded RNG, dtype-policy aware, optional workspace), so estimates are
backend-independent; trials are processed in bounded-memory chunks, so deep
tails can be hunted with large budgets without materialising a huge
``(trials, rounds)`` tensor.  A zero tilt is *bit-identical* to plain MC at
the same seed (the draw protocol is unchanged and every likelihood ratio is
exactly 1), which is how the equivalence tests pin the estimator.  Plain-MC
probability estimates carry Wilson score intervals
(:func:`~repro.simulation.batch.proportion_confidence_interval`), so a
zero-violation run reports an honest strictly positive upper bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..backend import (
    ArrayBackend,
    Workspace,
    get_backend,
    get_dtype_policy,
    resolve_chunk_cells,
)
from ..core.concat_chain import convergence_opportunity_mask
from ..errors import SimulationError
from ..observability import METRICS as _METRICS, TRACE as _TRACE
from ..params import ProtocolParameters
from .batch import (
    BatchSimulation,
    draw_mining_traces,
    proportion_confidence_interval,
)
from .rng import SeedLike, resolve_rng

__all__ = [
    "RARE_EVENT_METHODS",
    "ExponentialTilt",
    "log_likelihood_ratios",
    "draw_tilted_traces",
    "cross_entropy_tilt",
    "RareEventResult",
    "RareEventSimulation",
]

#: The estimation methods a :class:`RareEventResult` can carry.
RARE_EVENT_METHODS = ("plain", "tilted", "splitting")

#: Legacy override hook for the per-chunk cell budget.  ``None`` (the
#: default) defers to :func:`repro.backend.resolve_chunk_cells` — the one
#: knob the runner and the estimator both read, so a monkeypatched override
#: here (or ``REPRO_CHUNK_CELLS`` in the environment) reaches every path.
#: Read at call time, never cached.
_RARE_CHUNK_CELLS: Optional[int] = None

#: Tilted probabilities are kept strictly inside (0, 1).
_PROBABILITY_FLOOR = 1e-12


def _miner_counts(params: ProtocolParameters) -> Tuple[int, int]:
    """The integer (honest, adversarial) miner counts of the draw protocol."""
    honest = max(int(round(params.honest_count)), 1)
    adversary = int(round(params.adversary_count))
    return honest, adversary


@dataclass(frozen=True)
class ExponentialTilt:
    """Tilted per-query success probabilities for the two mining populations.

    An exponential tilt of a ``Bernoulli(p)`` by parameter ``theta`` is the
    ``Bernoulli(q)`` with ``q = p e^theta / (1 - p + p e^theta)`` — still a
    Bernoulli, so the per-round Binomial draws stay Binomial and the
    likelihood ratio is exact.  The tilt is described directly by the two
    tilted probabilities (the natural parameterisation of the cross-entropy
    update); :meth:`from_theta` builds the symmetric single-parameter drift
    tilt (adversary up by ``+theta``, honest down by ``-theta``).
    """

    honest_p: float
    adversary_p: float

    def __post_init__(self) -> None:
        for name, value in (
            ("honest_p", self.honest_p),
            ("adversary_p", self.adversary_p),
        ):
            if not (0.0 < value < 1.0):
                raise SimulationError(
                    f"tilted {name} must lie in (0, 1), got {value!r}"
                )

    @classmethod
    def identity(cls, params: ProtocolParameters) -> "ExponentialTilt":
        """The zero tilt: sampling measure equals the model, every LR is 1."""
        return cls(honest_p=params.p, adversary_p=params.p)

    @classmethod
    def from_theta(
        cls, params: ProtocolParameters, theta: float
    ) -> "ExponentialTilt":
        """The drift tilt: adversary tilted by ``+theta``, honest by ``-theta``."""
        return cls(
            honest_p=_tilt_probability(params.p, -theta),
            adversary_p=_tilt_probability(params.p, theta),
        )

    def is_identity(self, params: ProtocolParameters) -> bool:
        """Whether this tilt leaves the sampling measure exactly unchanged."""
        return self.honest_p == params.p and self.adversary_p == params.p

    def payload(self) -> Dict[str, float]:
        """Primary fields as a plain dict (cache keys / diagnostics)."""
        return {"honest_p": self.honest_p, "adversary_p": self.adversary_p}


def _tilt_probability(p: float, theta: float) -> float:
    """``p e^theta / (1 - p + p e^theta)``, clipped strictly inside (0, 1)."""
    if theta == 0.0:
        return p
    # Stable for large |theta|: write as 1 / (1 + (1-p)/p e^-theta).
    tilted = 1.0 / (1.0 + math.exp(-theta) * (1.0 - p) / p)
    return min(max(tilted, _PROBABILITY_FLOOR), 1.0 - _PROBABILITY_FLOOR)


def log_likelihood_ratios(
    params: ProtocolParameters,
    tilt: ExponentialTilt,
    honest_blocks: np.ndarray,
    adversary_blocks: np.ndarray,
    honest_rounds,
    adversary_rounds=None,
) -> np.ndarray:
    """Exact per-trial ``ln(dP/dQ)`` of the model vs the tilted measure.

    Because every round's draw is Binomial and the tilt only changes the
    per-query probability, the trial's log-likelihood ratio is linear in the
    per-trial block totals — no per-round tensor is needed, and the identity
    tilt yields exactly zero for every trial (not merely up to rounding).

    ``honest_rounds`` / ``adversary_rounds`` (scalars or per-trial arrays)
    are the numbers of rounds the ratio covers for each population; the
    *stopped* estimator passes each trial's first-crossing prefix lengths —
    the honest prefix runs ``delta`` rounds past the adversarial one because
    the opportunity mask looks that far ahead — while full-trajectory
    callers pass the common horizon.  ``adversary_rounds`` defaults to
    ``honest_rounds``.
    """
    if adversary_rounds is None:
        adversary_rounds = honest_rounds
    honest_miners, adversary_miners = _miner_counts(params)
    honest_blocks = np.asarray(honest_blocks, dtype=np.float64)
    adversary_blocks = np.asarray(adversary_blocks, dtype=np.float64)
    honest_rounds = np.asarray(honest_rounds, dtype=np.float64)
    adversary_rounds = np.asarray(adversary_rounds, dtype=np.float64)
    if np.any(honest_rounds < 0.0) or np.any(adversary_rounds < 0.0):
        raise SimulationError("round counts must be non-negative")
    if adversary_miners == 0 and tilt.adversary_p != params.p:
        raise SimulationError(
            "cannot tilt the adversarial draws of a zero-adversary model"
        )
    log_ratio = np.zeros_like(honest_blocks)
    p = params.p
    for blocks, rounds, miners, q in (
        (honest_blocks, honest_rounds, honest_miners, tilt.honest_p),
        (adversary_blocks, adversary_rounds, adversary_miners, tilt.adversary_p),
    ):
        if miners == 0 or q == p:
            continue
        log_ratio += blocks * math.log(p / q)
        log_ratio += (miners * rounds - blocks) * math.log(
            (1.0 - p) / (1.0 - q)
        )
    return log_ratio


def draw_tilted_traces(
    params: ProtocolParameters,
    tilt: ExponentialTilt,
    trials: int,
    rounds: int,
    rng: SeedLike = None,
    backend: Optional[ArrayBackend] = None,
    policy=None,
):
    """Draw ``(trials, rounds)`` success-count tensors under a tilted measure.

    Mirrors the binomial path of
    :func:`~repro.simulation.batch.draw_mining_traces` — honest tensor first,
    then adversarial, both on the host generator and bridged to the active
    backend — but at the tilt's per-query probabilities.  With the identity
    tilt the draws are bit-identical to the plain engine's at the same seed,
    which is the estimator's ``tilt=0`` equivalence anchor.
    """
    if trials < 1:
        raise SimulationError(f"trials must be positive, got {trials!r}")
    if rounds < 1:
        raise SimulationError(f"rounds must be positive, got {rounds!r}")
    xp = get_backend(backend)
    policy = get_dtype_policy(policy)
    policy.check_rounds(rounds)
    index_dtype = policy.index_dtype(xp)
    generator = resolve_rng(rng)
    honest_miners, adversary_miners = _miner_counts(params)
    honest = xp.binomial(generator, honest_miners, tilt.honest_p, (trials, rounds))
    if adversary_miners > 0:
        adversary = xp.binomial(
            generator, adversary_miners, tilt.adversary_p, (trials, rounds)
        )
    else:
        adversary = xp.zeros((trials, rounds), dtype=index_dtype)
    return (
        xp.asarray(honest, dtype=index_dtype),
        xp.asarray(adversary, dtype=index_dtype),
    )


def cross_entropy_tilt(
    params: ProtocolParameters,
    depth: int,
    rounds: int,
    rng: SeedLike = None,
    pilot_trials: int = 512,
    elite_fraction: float = 0.1,
    max_iterations: int = 10,
    smoothing: float = 0.7,
    workspace: Optional[Workspace] = None,
) -> Tuple[ExponentialTilt, int]:
    """Auto-tune a tilt with the cross-entropy method; returns (tilt, iterations).

    Each pilot iteration draws ``pilot_trials`` traces under the current
    tilt, ranks them by worst windowed A-C deficit, and applies the standard
    CE update for the Bernoulli exponential family: the new tilted
    probabilities are the likelihood-ratio-weighted empirical per-query
    success frequencies of the elite trials.  The elite set is the top
    ``elite_fraction`` *capped at the target level*: once the elite quantile
    reaches ``depth``, the elite becomes every trial with ``deficit >=
    depth``, so the final update targets exactly the violation event rather
    than a deeper one (overshooting the tilt degenerates the importance
    weights).  Updates are smoothed (``smoothing`` is the weight of the new
    estimate), two monotonicity guards keep the update aimed at the
    violation event (the adversary is never tilted below ``p``, the honest
    side never above), and iteration stops after the level-capped update —
    the tilt then centres the deficit distribution on the threshold.
    """
    if depth < 1:
        raise SimulationError(f"depth must be >= 1, got {depth!r}")
    if pilot_trials < 2:
        raise SimulationError(
            f"pilot_trials must be >= 2, got {pilot_trials!r}"
        )
    if not (0.0 < elite_fraction <= 0.5):
        raise SimulationError(
            f"elite_fraction must lie in (0, 0.5], got {elite_fraction!r}"
        )
    if max_iterations < 1:
        raise SimulationError(
            f"max_iterations must be >= 1, got {max_iterations!r}"
        )
    if not (0.0 < smoothing <= 1.0):
        raise SimulationError(
            f"smoothing must lie in (0, 1], got {smoothing!r}"
        )
    generator = resolve_rng(rng)
    honest_miners, adversary_miners = _miner_counts(params)
    if adversary_miners == 0:
        raise SimulationError(
            "rare-event tilting needs a non-empty adversary (nu n >= 1)"
        )
    engine = BatchSimulation(params, rng=generator, workspace=workspace)
    elite_count = max(int(math.ceil(elite_fraction * pilot_trials)), 1)
    tilt = ExponentialTilt.identity(params)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        honest, adversary = draw_tilted_traces(
            params,
            tilt,
            pilot_trials,
            rounds,
            generator,
            backend=engine.backend,
            policy=engine.policy,
        )
        result = engine.run_traces(honest, adversary)
        deficits = result.worst_deficits
        order = np.argsort(deficits)[::-1]
        elite = order[:elite_count]
        threshold = int(deficits[elite].min())
        if threshold >= depth:
            # Level capped at the target: the elite is every violating
            # trial, so the final update aims at the event itself rather
            # than a deeper (weight-degenerating) one.
            threshold = depth
            elite = np.nonzero(deficits >= depth)[0]
        weights = np.exp(
            log_likelihood_ratios(
                params,
                tilt,
                result.honest_blocks[elite],
                result.adversary_blocks[elite],
                rounds,
            )
        )
        total = float(weights.sum())
        if total <= 0.0:  # pragma: no cover - defensive (weights are positive)
            break
        honest_rate = float(
            (weights * result.honest_blocks[elite]).sum()
            / (total * honest_miners * rounds)
        )
        adversary_rate = float(
            (weights * result.adversary_blocks[elite]).sum()
            / (total * adversary_miners * rounds)
        )
        tilt = ExponentialTilt(
            honest_p=_clip_probability(
                min(
                    smoothing * honest_rate + (1.0 - smoothing) * tilt.honest_p,
                    params.p,
                )
            ),
            adversary_p=_clip_probability(
                max(
                    smoothing * adversary_rate
                    + (1.0 - smoothing) * tilt.adversary_p,
                    params.p,
                )
            ),
        )
        if threshold >= depth:
            break
    return tilt, iterations


def _clip_probability(value: float) -> float:
    return min(max(value, _PROBABILITY_FLOOR), 1.0 - _PROBABILITY_FLOOR)


@dataclass
class RareEventResult:
    """One rare-event probability estimate with honesty diagnostics.

    ``probability`` is the unbiased (tilting) or consistent (splitting)
    estimate of ``P[worst windowed A-C deficit >= depth]``;
    ``relative_error`` is the estimated standard error divided by the
    estimate (NaN when no trial contributed), and
    ``effective_sample_size`` is ``(sum w)^2 / sum w^2`` over the
    contributing importance weights — the number of plain-MC violations the
    weighted sample is worth (NaN for splitting, ``hits`` for plain MC).
    """

    params: ProtocolParameters
    depth: int
    method: str
    trials: int
    rounds: int
    probability: float
    ci_low: float
    ci_high: float
    relative_error: float
    effective_sample_size: float
    hits: int
    tilt: Optional[ExponentialTilt] = None
    pilot_iterations: int = 0
    #: Splitting only: the per-level conditional hit fractions whose product
    #: is ``probability``.
    level_probabilities: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def ci95(self) -> Tuple[float, float]:
        """The 95% confidence interval ``(ci_low, ci_high)``."""
        return (self.ci_low, self.ci_high)

    @property
    def log10_probability(self) -> float:
        """``log10`` of the estimate (``-inf`` for an exact zero)."""
        if self.probability <= 0.0:
            return -math.inf
        return math.log10(self.probability)

    def agrees_with(self, other: "RareEventResult") -> Optional[bool]:
        """Whether the two estimates' 95% intervals overlap (joint-CI check).

        Returns ``None`` — *no evidence*, not disagreement — when either
        interval has a NaN endpoint: single-trial CIs and zero-probability
        splitting runs report NaN half-widths, and a NaN comparison must
        not silently decide the overlap either way.  (A splitting run can
        have a finite ``ci_low`` of 0.0 next to a NaN ``ci_high``, so both
        endpoints of both intervals are checked.)
        """
        if any(
            math.isnan(value)
            for value in (self.ci_low, self.ci_high, other.ci_low, other.ci_high)
        ):
            return None
        return self.ci_low <= other.ci_high and other.ci_low <= self.ci_high

    def summary(self) -> Dict[str, object]:
        """A flat dictionary of the headline numbers (for tables)."""
        row: Dict[str, object] = {
            "method": self.method,
            "depth": self.depth,
            "trials": self.trials,
            "rounds": self.rounds,
            "c": self.params.c,
            "nu": self.params.nu,
            "delta": self.params.delta,
            "probability": self.probability,
            "log10_probability": self.log10_probability,
            "ci95_low": self.ci_low,
            "ci95_high": self.ci_high,
            "relative_error": self.relative_error,
            "effective_sample_size": self.effective_sample_size,
            "hits": self.hits,
            "pilot_iterations": self.pilot_iterations,
        }
        if self.tilt is not None:
            row["tilt_honest_p"] = self.tilt.honest_p
            row["tilt_adversary_p"] = self.tilt.adversary_p
        return row


class RareEventSimulation:
    """Batched rare-event estimator for deep consistency violations.

    Parameters
    ----------
    params:
        Protocol parameters; the identical-miner Binomial model (a
        heterogeneous :class:`~repro.simulation.MiningPowerProfile` has no
        closed-form likelihood ratio under this tilt family and is rejected
        upstream by the runner).
    depth:
        The violation depth whose tail probability is estimated:
        ``P[worst windowed A-C deficit >= depth]``.
    rng:
        Source of randomness; one generator drives the pilot stages and the
        main run in order, so a seed fully determines the estimate.
    workspace:
        Optional :class:`~repro.backend.Workspace` shared with the batch
        engine's window kernels.
    chunk_cells:
        Optional per-chunk cell budget override; ``None`` defers to the
        module-level ``_RARE_CHUNK_CELLS`` hook and then to the shared
        :func:`repro.backend.resolve_chunk_cells` configuration
        (``REPRO_CHUNK_CELLS``).  An execution knob only for the windowed
        deficit statistics; for the Binomial draw protocol chunk
        boundaries are part of the protocol (each chunk is one vectorized
        draw), so estimates at different budgets agree statistically, not
        bit-for-bit.

    Examples
    --------
    >>> from repro.params import parameters_from_c
    >>> params = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)
    >>> estimator = RareEventSimulation(params, depth=3, rng=0)
    >>> result = estimator.run_tilted(trials=512, rounds=600)
    >>> 0.0 < result.probability < 1.0
    True
    """

    def __init__(
        self,
        params: ProtocolParameters,
        depth: int,
        rng: SeedLike = None,
        workspace: Optional[Workspace] = None,
        chunk_cells: Optional[int] = None,
    ):
        if depth < 1:
            raise SimulationError(f"depth must be >= 1, got {depth!r}")
        honest_miners, adversary_miners = _miner_counts(params)
        if adversary_miners == 0:
            raise SimulationError(
                "rare-event estimation needs a non-empty adversary (nu n >= 1)"
            )
        if chunk_cells is not None:
            chunk_cells = resolve_chunk_cells(chunk_cells)
        self.params = params
        self.depth = int(depth)
        self.chunk_cells = chunk_cells
        self.rng = resolve_rng(rng)
        self.engine = BatchSimulation(params, rng=self.rng, workspace=workspace)

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------
    def _chunk_cells(self) -> int:
        """The active per-chunk cell budget, resolved at call time.

        Precedence: the instance override > the legacy module hook
        (``_RARE_CHUNK_CELLS``, kept so existing monkeypatches keep
        working) > the shared chunking config.
        """
        if self.chunk_cells is not None:
            return self.chunk_cells
        return resolve_chunk_cells(_RARE_CHUNK_CELLS)

    def _chunk_sizes(self, trials: int, rounds: int) -> list:
        chunk = max(int(self._chunk_cells() // max(rounds, 1)), 1)
        sizes = []
        remaining = int(trials)
        while remaining > 0:
            sizes.append(min(chunk, remaining))
            remaining -= sizes[-1]
        return sizes

    def _deficits(self, honest, adversary):
        """Worst windowed deficits plus block totals for pre-drawn tensors."""
        result = self.engine.run_traces(honest, adversary)
        return result.worst_deficits, result.honest_blocks, result.adversary_blocks

    # ------------------------------------------------------------------
    # Plain Monte Carlo (the overlap-region reference)
    # ------------------------------------------------------------------
    def run_plain(self, trials: int, rounds: int) -> RareEventResult:
        """Brute-force violation frequency with a Wilson score interval.

        Chunked over trials, so large overlap-region budgets never
        materialise more than the configured chunk budget at once.  The
        Wilson interval keeps a zero-violation run honest: its upper bound
        is strictly positive (``~3.84 / trials``), never the false
        certainty of a zero-width normal interval.
        """
        if trials < 1:
            raise SimulationError(f"trials must be positive, got {trials!r}")
        _METRICS.increment("engine.rare_events.trials", int(trials))
        hits = 0
        with _TRACE.span(
            "rare.plain", trials=int(trials), rounds=int(rounds), depth=self.depth
        ):
            for chunk in self._chunk_sizes(trials, rounds):
                honest, adversary = draw_mining_traces(
                    self.params,
                    chunk,
                    rounds,
                    self.rng,
                    backend=self.engine.backend,
                    policy=self.engine.policy,
                )
                deficits, _, _ = self._deficits(honest, adversary)
                hits += int((deficits >= self.depth).sum())
        probability = hits / trials
        ci_low, ci_high = proportion_confidence_interval(hits, trials)
        relative_error = (
            math.sqrt((1.0 - probability) / (trials * probability))
            if hits
            else math.nan
        )
        return RareEventResult(
            params=self.params,
            depth=self.depth,
            method="plain",
            trials=trials,
            rounds=rounds,
            probability=probability,
            ci_low=ci_low,
            ci_high=ci_high,
            relative_error=relative_error,
            effective_sample_size=float(hits) if hits else math.nan,
            hits=hits,
        )

    # ------------------------------------------------------------------
    # Exponential tilting (importance sampling)
    # ------------------------------------------------------------------
    def run_tilted(
        self,
        trials: int,
        rounds: int,
        tilt: Optional[ExponentialTilt] = None,
        pilot_trials: int = 512,
        elite_fraction: float = 0.1,
        max_iterations: int = 10,
        smoothing: float = 0.7,
    ) -> RareEventResult:
        """Importance-sampled tail estimate under an exponential tilt.

        Without an explicit ``tilt`` the cross-entropy pilot stage runs
        first (consuming entropy from the estimator's generator *before*
        the main draws — part of the draw protocol, so a seed fully
        determines the result).  The estimate ``mean(1{violation} * LR)``
        uses the *stopped* likelihood ratio: each violating trial is
        weighted by the exact ratio over its first-crossing prefix only
        (the honest prefix ``delta`` rounds longer than the adversarial
        one, matching the opportunity mask's look-ahead).  Because the
        first crossing is a stopping time and the indicator is
        prefix-measurable, optional stopping makes this unbiased for any
        fixed tilt — and far lower-variance than the full-trajectory
        ratio, whose post-crossing rounds contribute pure weight noise.
        With the identity tilt the result is bit-identical to
        :meth:`run_plain` at the same seed (same draws, every weight
        exactly 1).
        """
        if trials < 2:
            raise SimulationError(f"trials must be >= 2, got {trials!r}")
        _METRICS.increment("engine.rare_events.trials", int(trials))
        pilot_iterations = 0
        if tilt is None:
            with _TRACE.span(
                "rare.pilot", depth=self.depth, pilot_trials=int(pilot_trials)
            ):
                tilt, pilot_iterations = cross_entropy_tilt(
                    self.params,
                    self.depth,
                    rounds,
                    self.rng,
                    pilot_trials=pilot_trials,
                    elite_fraction=elite_fraction,
                    max_iterations=max_iterations,
                    smoothing=smoothing,
                    workspace=self.engine.workspace,
                )
            _METRICS.increment(
                "rare_events.pilot_iterations", pilot_iterations
            )
        xp = self.engine.backend
        delta = self.params.delta
        hits = 0
        weight_sum = 0.0
        weight_square_sum = 0.0
        with _TRACE.span(
            "rare.tilted",
            trials=int(trials),
            rounds=int(rounds),
            depth=self.depth,
        ):
            for chunk in self._chunk_sizes(trials, rounds):
                honest, adversary = draw_tilted_traces(
                    self.params,
                    tilt,
                    chunk,
                    rounds,
                    self.rng,
                    backend=xp,
                    policy=self.engine.policy,
                )
                honest_host = xp.to_host(honest)
                adversary_host = xp.to_host(adversary)
                reached, first_crossing = self._first_crossings(
                    honest_host, adversary_host, self.depth
                )
                hits += int(reached.sum())
                if not reached.any():
                    continue
                # Stopped likelihood ratio: weight only the prefix up to each
                # trial's first crossing (honest side `delta` rounds further).
                adversary_cut = first_crossing[reached]
                honest_cut = np.minimum(adversary_cut + delta, rounds)
                rows = np.arange(adversary_cut.size)
                honest_blocks = np.cumsum(
                    honest_host[reached], axis=1, dtype=np.int64
                )[rows, honest_cut - 1]
                adversary_blocks = np.cumsum(
                    adversary_host[reached], axis=1, dtype=np.int64
                )[rows, adversary_cut - 1]
                log_ratio = log_likelihood_ratios(
                    self.params,
                    tilt,
                    honest_blocks,
                    adversary_blocks,
                    honest_cut,
                    adversary_cut,
                )
                weights = np.exp(np.minimum(log_ratio, 700.0))
                weight_sum += float(weights.sum())
                weight_square_sum += float((weights * weights).sum())
        probability = weight_sum / trials
        # Sample variance of the weighted indicator (zeros included).
        variance = max(
            weight_square_sum / trials - probability * probability, 0.0
        ) / max(trials - 1, 1)
        half_width = 1.96 * math.sqrt(variance)
        relative_error = (
            math.sqrt(variance) / probability if probability > 0.0 else math.nan
        )
        effective = (
            weight_sum * weight_sum / weight_square_sum
            if weight_square_sum > 0.0
            else math.nan
        )
        if not math.isnan(effective):
            _METRICS.gauge("rare_events.effective_sample_size", float(effective))
        return RareEventResult(
            params=self.params,
            depth=self.depth,
            method="tilted",
            trials=trials,
            rounds=rounds,
            probability=probability,
            ci_low=max(probability - half_width, 0.0),
            ci_high=min(probability + half_width, 1.0),
            relative_error=relative_error,
            effective_sample_size=effective,
            hits=hits,
            tilt=tilt,
            pilot_iterations=pilot_iterations,
        )

    # ------------------------------------------------------------------
    # Multilevel splitting
    # ------------------------------------------------------------------
    def run_splitting(self, trials: int, rounds: int) -> RareEventResult:
        """Fixed-effort multilevel splitting on the deficit levels ``1..depth``.

        Stage ``l`` holds ``trials`` trajectories conditioned (by cloning at
        the first level-``l`` crossing and redrawing the suffix) on having
        reached deficit ``l``; the fraction that reaches ``l+1`` estimates
        the conditional probability, and the product over levels estimates
        the tail.  Cloning is exact because rounds are iid: the frozen
        prefix keeps the adversarial counts up to the crossing round and the
        honest counts ``delta`` rounds further (the opportunity mask at the
        crossing looks that far ahead).  The product estimator is the
        standard fixed-effort one — consistent, with O(1/trials) bias,
        which the tilting path avoids when it applies.
        """
        if trials < 2:
            raise SimulationError(f"trials must be >= 2, got {trials!r}")
        _METRICS.increment("engine.rare_events.trials", int(trials))
        xp = self.engine.backend
        delta = self.params.delta
        with _TRACE.span(
            "rare.splitting",
            trials=int(trials),
            rounds=int(rounds),
            depth=self.depth,
        ):
            honest, adversary = draw_mining_traces(
                self.params,
                trials,
                rounds,
                self.rng,
                backend=xp,
                policy=self.engine.policy,
            )
            honest = xp.to_host(honest)
            adversary = xp.to_host(adversary)
            level_probabilities = np.full(self.depth, np.nan)
            probability = 1.0
            relative_variance = 0.0
            hits = 0
            for level in range(1, self.depth + 1):
                reached, first_crossing = self._first_crossings(
                    honest, adversary, level
                )
                hits = int(reached.sum())
                _METRICS.gauge("rare_events.splitting_level_hits", hits)
                fraction = hits / trials
                level_probabilities[level - 1] = fraction
                probability *= fraction
                if hits == 0:
                    probability = 0.0
                    break
                relative_variance += (1.0 - fraction) / max(hits, 1)
                if level == self.depth:
                    break
                ancestors = np.nonzero(reached)[0][
                    self.rng.integers(0, hits, size=trials)
                ]
                crossings = first_crossing[ancestors]
                fresh_honest, fresh_adversary = draw_mining_traces(
                    self.params,
                    trials,
                    rounds,
                    self.rng,
                    backend=xp,
                    policy=self.engine.policy,
                )
                columns = np.arange(rounds)[None, :]
                adversary = np.where(
                    columns < crossings[:, None],
                    adversary[ancestors],
                    xp.to_host(fresh_adversary),
                )
                honest = np.where(
                    columns < np.minimum(crossings + delta, rounds)[:, None],
                    honest[ancestors],
                    xp.to_host(fresh_honest),
                )
        if probability > 0.0:
            standard_error = probability * math.sqrt(relative_variance)
            ci_low = max(probability - 1.96 * standard_error, 0.0)
            ci_high = min(probability + 1.96 * standard_error, 1.0)
            relative_error = standard_error / probability
        else:
            ci_low, ci_high, relative_error = 0.0, math.nan, math.nan
        return RareEventResult(
            params=self.params,
            depth=self.depth,
            method="splitting",
            trials=trials,
            rounds=rounds,
            probability=probability,
            ci_low=ci_low,
            ci_high=ci_high,
            relative_error=relative_error,
            effective_sample_size=math.nan,
            hits=hits,
            level_probabilities=level_probabilities,
        )

    def _first_crossings(
        self, honest: np.ndarray, adversary: np.ndarray, level: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-trial first rounds at which the running drawdown reaches ``level``.

        The drawdown of the running difference ``D_r = C(1,r) - A(1,r)``
        after round ``r`` equals the worst deficit over windows ending at or
        before ``r``; its first crossing of ``level`` is the cloning point
        for the splitting stages.  Host-side analysis (the crossing scan is
        a control-flow step, not a hot kernel).
        """
        mask = convergence_opportunity_mask(honest, self.params.delta)
        difference = np.cumsum(mask.astype(np.int64) - adversary, axis=1)
        padded = np.concatenate(
            [np.zeros((difference.shape[0], 1), dtype=np.int64), difference],
            axis=1,
        )
        drawdown = np.maximum.accumulate(padded, axis=1) - padded
        crossed = drawdown >= level
        reached = crossed.any(axis=1)
        # argmax yields the first True column; the padded index is exactly
        # the number of rounds the prefix spans.
        first_crossing = np.argmax(crossed, axis=1)
        return reached, first_crossing
