"""Round-based simulation of Nakamoto's protocol in the Δ-delay model.

This subpackage is the synthetic substrate for the paper's model (Section
III): the paper itself is analytical, so the simulator exists to *exercise*
the same model the analysis is about — counting convergence opportunities and
adversarial blocks (the two sides of Lemma 1), measuring consistency
violations under withholding attacks, and validating the Markov-chain
expressions (Eqs. 26-27 and 44) empirically.

Components
----------
``block`` / ``blocktree``
    Blocks, block trees, longest-chain selection and prefix predicates.
``oracle``
    The random-oracle mining model (one query per honest miner per round).
``network``
    The Δ-delay adversarial message scheduler.
``miners``
    The honest population's shared view and per-creator private knowledge.
``adversary``
    Strategies: passive, maximum-delay, and the private-chain withholding
    attack of PSS Remark 8.5.
``events``
    Round records and the streaming convergence-opportunity detector.
``metrics``
    Consistency (Definition 1), chain growth and chain quality.
``protocol``
    The :class:`NakamotoSimulation` driver and its result object.
"""

from .adversary import (
    AdversaryStrategy,
    MaxDelayAdversary,
    PassiveAdversary,
    PrivateChainAdversary,
    SelfishMiningAdversary,
)
from .block import GENESIS_ID, Block, genesis_block
from .blocktree import BlockTree, common_prefix_length, is_prefix_up_to
from .events import ConvergenceOpportunityDetector, RoundRecord
from .metrics import (
    ConsistencyReport,
    chain_growth_rate,
    chain_quality,
    consistency_report,
    consistency_violation_depth,
)
from .miners import HonestPopulation
from .network import DeltaDelayNetwork, InFlightMessage
from .oracle import MiningOracle
from .protocol import NakamotoSimulation, SimulationResult

__all__ = [
    "Block",
    "GENESIS_ID",
    "genesis_block",
    "BlockTree",
    "common_prefix_length",
    "is_prefix_up_to",
    "MiningOracle",
    "DeltaDelayNetwork",
    "InFlightMessage",
    "HonestPopulation",
    "AdversaryStrategy",
    "PassiveAdversary",
    "MaxDelayAdversary",
    "PrivateChainAdversary",
    "SelfishMiningAdversary",
    "RoundRecord",
    "ConvergenceOpportunityDetector",
    "ConsistencyReport",
    "consistency_report",
    "consistency_violation_depth",
    "chain_growth_rate",
    "chain_quality",
    "NakamotoSimulation",
    "SimulationResult",
]
