"""Round-based simulation of Nakamoto's protocol in the Δ-delay model.

This subpackage is the synthetic substrate for the paper's model (Section
III): the paper itself is analytical, so the simulator exists to *exercise*
the same model the analysis is about — counting convergence opportunities and
adversarial blocks (the two sides of Lemma 1), measuring consistency
violations under withholding attacks, and validating the Markov-chain
expressions (Eqs. 26-27 and 44) empirically.

Components
----------
``block`` / ``blocktree``
    Blocks, block trees, longest-chain selection and prefix predicates.
``oracle``
    The random-oracle mining model (one query per honest miner per round).
``network``
    The Δ-delay adversarial message scheduler.
``miners``
    The honest population's shared view and per-creator private knowledge.
``adversary``
    Strategies: passive, maximum-delay, and the private-chain withholding
    attack of PSS Remark 8.5.
``events``
    Round records and the streaming convergence-opportunity detector.
``metrics``
    Consistency (Definition 1), chain growth and chain quality.
``protocol``
    The :class:`NakamotoSimulation` driver and its result object.
``batch``
    The NumPy-vectorized batch Monte Carlo engine: ``T`` independent trials
    executed simultaneously as array operations, with per-trial Lemma 1
    statistics and batch-level mean/CI aggregates.
``scenarios``
    The vectorized adversarial scenario engine: named attack scenarios
    (``passive``, ``max_delay``, ``private_chain``, ``selfish_mining``)
    executed for ``T`` trials at once as ``(trials,)`` state vectors —
    private-fork leads, pending-release masks, Δ-capped delivery pipelines —
    bit-comparable to the legacy simulator under scripted replay.
``topology``
    Heterogeneous network structure: the delay-model registry
    (``fixed_delta``, ``uniform``, ``truncated_geometric``, ``peer_graph``)
    drawing per-block delivery offsets capped at Δ, peer-graph gossip
    propagation with a vectorized min-plus kernel and effective-Δ
    estimation, and per-miner :class:`MiningPowerProfile` success
    probabilities — all threaded through both engines with fixed-Δ as the
    bit-exact default.
``dynamics``
    Time-varying network dynamics: round-indexed :class:`DynamicsSchedule`
    events (peer churn, latency drift, bounded-window partitions and full
    eclipses) compiled into per-round delivery tensors, the
    :class:`TimeVaryingDelayModel` feeding them to both engines (empty
    schedules stay bit-identical to the static subsystem), partition and
    eclipse attack scenarios where the adversary schedules the cut itself,
    and :class:`AdversaryPlacement` — corrupted miners positioned on the
    gossip graph whose releases propagate instead of landing instantly.
    :class:`PartitionScenario` with ``cut_fraction`` prices *partial* cuts
    with the two-component scan (per-component public chains, merge-on-heal
    reconciliation, pinned bit-exactly to
    :func:`reference_partition_scan`), including the ``equivocation``
    family where the adversary shows conflicting private chains to the two
    components.
``streaming``
    The O(chunk)-memory streaming trial engine: the same dense batch and
    scenario kernels driven in fixed-cell chunks through online
    accumulators (exact integer tallies, Chan/Kahan float moments, a
    bounded worst-deficit histogram), producing summary-only results whose
    entries match the dense ``summary()`` exactly for integer-backed
    statistics and within :data:`~repro.simulation.streaming.STREAM_STAT_RTOL`
    for float moments.  Seeding is chunk-invariant: trials are carved into
    fixed ``SEED_BLOCK_CELLS``-cell seed blocks, each drawn from its own
    spawned :class:`numpy.random.SeedSequence`, so one seed produces one
    bit stream regardless of chunk size or serial-versus-sharded execution.
``rare_events``
    Rare-event estimation of deep violation tails: exponential tilting of
    the Bernoulli/Binomial mining draws with exact (stopped) per-trial
    likelihood ratios and a cross-entropy pilot stage, plus multilevel
    splitting on the worst windowed A-C deficit — reaching violation
    probabilities of ``1e-9`` and below with bounded relative error, where
    plain Monte Carlo bottoms out around ``1e-6``.
``runner``
    :class:`ExperimentRunner`: seeded, cached, optionally multiprocess
    experiments over grids of parameter points, (point, scenario) pairs,
    (point, delay model) topology runs, (point, schedule) dynamics runs
    and estimator-aware rare-event points.
``rng``
    The single-generator seeding discipline (:func:`resolve_rng`,
    :func:`spawn_rngs`) threaded through every stochastic component.
"""

from .adversary import (
    AdversaryStrategy,
    EquivocationAdversary,
    MaxDelayAdversary,
    PassiveAdversary,
    PrivateChainAdversary,
    SelfishMiningAdversary,
)
from .block import GENESIS_ID, Block, genesis_block
from .blocktree import BlockTree, common_prefix_length, is_prefix_up_to
from .events import ConvergenceOpportunityDetector, RoundRecord
from .metrics import (
    ConsistencyReport,
    chain_growth_rate,
    chain_quality,
    consistency_report,
    consistency_violation_depth,
)
from .batch import (
    BatchResult,
    BatchSimulation,
    convergence_opportunity_mask,
    count_convergence_opportunities_batch,
    draw_mining_traces,
    worst_window_deficits,
)
from .miners import HonestPopulation
from .rare_events import (
    RARE_EVENT_METHODS,
    ExponentialTilt,
    RareEventResult,
    RareEventSimulation,
    cross_entropy_tilt,
    draw_tilted_traces,
    log_likelihood_ratios,
)
from .network import DeltaDelayNetwork, InFlightMessage
from .oracle import MiningOracle, ScriptedMiningOracle
from .protocol import NakamotoSimulation, SimulationResult
from .rng import resolve_rng, spawn_rngs
from .runner import ENGINE_VERSION, ExperimentRunner
from .topology import (
    DelayModel,
    FixedDeltaDelayModel,
    MiningPowerProfile,
    PeerGraphDelayModel,
    PeerGraphTopology,
    TruncatedGeometricDelayModel,
    UniformDelayModel,
    convergence_opportunity_mask_with_delays,
    delay_model_specs,
    get_delay_model,
    list_delay_models,
    reference_draw_delays,
    register_delay_model,
    resolve_delay_model,
)
from .dynamics import (
    PLACEMENT_KINDS,
    AdversaryPlacement,
    ChurnEvent,
    CompiledSchedule,
    DynamicsSchedule,
    LatencyDriftEvent,
    PartitionEvent,
    PartitionScenario,
    TimeVaryingDelayModel,
    compile_eclipse_offsets,
    compile_schedule,
    list_placements,
    partition_windows,
    reference_compile_schedule,
)
from .streaming import (
    SEED_BLOCK_CELLS,
    STREAM_STAT_RTOL,
    DeficitHistogram,
    OnlineMoments,
    ScenarioStreamingAccumulator,
    StreamingAccumulator,
    StreamingBatchResult,
    StreamingBatchSimulation,
    StreamingScenarioResult,
    StreamingScenarioSimulation,
    seed_block_trials,
)
from .scenarios import (
    SCENARIO_KINDS,
    Scenario,
    ScenarioResult,
    ScenarioSimulation,
    get_scenario,
    list_scenarios,
    reference_partition_scan,
    register_scenario,
    rotating_honest_attribution,
)

__all__ = [
    "Block",
    "GENESIS_ID",
    "genesis_block",
    "BlockTree",
    "common_prefix_length",
    "is_prefix_up_to",
    "MiningOracle",
    "DeltaDelayNetwork",
    "InFlightMessage",
    "HonestPopulation",
    "AdversaryStrategy",
    "PassiveAdversary",
    "MaxDelayAdversary",
    "PrivateChainAdversary",
    "EquivocationAdversary",
    "SelfishMiningAdversary",
    "RoundRecord",
    "ConvergenceOpportunityDetector",
    "ConsistencyReport",
    "consistency_report",
    "consistency_violation_depth",
    "chain_growth_rate",
    "chain_quality",
    "NakamotoSimulation",
    "SimulationResult",
    "ScriptedMiningOracle",
    "BatchSimulation",
    "BatchResult",
    "draw_mining_traces",
    "convergence_opportunity_mask",
    "count_convergence_opportunities_batch",
    "worst_window_deficits",
    "RARE_EVENT_METHODS",
    "ExponentialTilt",
    "RareEventResult",
    "RareEventSimulation",
    "cross_entropy_tilt",
    "draw_tilted_traces",
    "log_likelihood_ratios",
    "ExperimentRunner",
    "ENGINE_VERSION",
    "SCENARIO_KINDS",
    "Scenario",
    "ScenarioResult",
    "ScenarioSimulation",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "reference_partition_scan",
    "rotating_honest_attribution",
    "resolve_rng",
    "spawn_rngs",
    "DelayModel",
    "FixedDeltaDelayModel",
    "UniformDelayModel",
    "TruncatedGeometricDelayModel",
    "PeerGraphDelayModel",
    "PeerGraphTopology",
    "MiningPowerProfile",
    "register_delay_model",
    "get_delay_model",
    "list_delay_models",
    "delay_model_specs",
    "resolve_delay_model",
    "reference_draw_delays",
    "convergence_opportunity_mask_with_delays",
    "ChurnEvent",
    "LatencyDriftEvent",
    "PartitionEvent",
    "DynamicsSchedule",
    "CompiledSchedule",
    "compile_schedule",
    "reference_compile_schedule",
    "compile_eclipse_offsets",
    "TimeVaryingDelayModel",
    "PLACEMENT_KINDS",
    "AdversaryPlacement",
    "list_placements",
    "PartitionScenario",
    "partition_windows",
    "SEED_BLOCK_CELLS",
    "STREAM_STAT_RTOL",
    "seed_block_trials",
    "OnlineMoments",
    "DeficitHistogram",
    "StreamingAccumulator",
    "ScenarioStreamingAccumulator",
    "StreamingBatchResult",
    "StreamingScenarioResult",
    "StreamingBatchSimulation",
    "StreamingScenarioSimulation",
]
