"""Experiment orchestration on top of the batch Monte Carlo engines.

:class:`ExperimentRunner` turns the raw :class:`~repro.simulation.batch.BatchSimulation`
and the adversarial :class:`~repro.simulation.scenarios.ScenarioSimulation`
into sweep-scale tools:

* **deterministic seeding** — every parameter point (and every
  (point, scenario) pair) gets its own :class:`numpy.random.SeedSequence`
  derived from the runner's base seed and the point's cache key, so a
  point's result is identical whether it is run alone, inside a grid,
  serially or sharded across processes;
* **multiprocessing sharding** — grids of parameter points can be fanned out
  over a :mod:`multiprocessing` pool (one point per task; the batch engine
  already vectorizes over trials within a point).  Every grid — serial or
  sharded — runs through one :meth:`ExperimentRunner._run_grid` spine that
  opens a grid-level tracer span, reports per-point progress to the
  optional :class:`~repro.observability.GridProgress` sinks, and, on the
  sharded path, ships each worker's spans / metrics / manifest records back
  with its result and merges them into the parent's observability state
  (see :mod:`repro.observability.distributed`), so a sharded grid reports
  exactly like a sequential one;
* **on-disk caching** — results are persisted as ``.npz`` files keyed by a
  digest of ``(engine version, parameters, trials, rounds, draw mode, base
  seed[, scenario])``, so repeated sweeps (e.g. re-running a benchmark or
  extending a grid) only pay for the new points.  Scenario results cache
  their per-trial aggregates; per-round record tensors are never persisted.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from .. import _version
from ..backend import (
    DEFAULT_BACKEND,
    WIDE_POLICY,
    Workspace,
    get_backend,
    get_dtype_policy,
)
from ..errors import SimulationError
from ..observability import (
    METRICS as _METRICS,
    TRACE as _TRACE,
    GridProgress,
    RunLog,
    WorkerTelemetry,
    capture_worker_telemetry,
    digest_arrays,
    manifest_record,
    merge_worker_telemetry,
    resolve_progress_sinks,
    resolve_run_log,
    sample_resource_gauges,
)
from ..params import ProtocolParameters
from .batch import DRAW_MODES, BatchResult, BatchSimulation
from .rare_events import (
    RARE_EVENT_METHODS,
    ExponentialTilt,
    RareEventResult,
    RareEventSimulation,
)
from .dynamics import (
    AdversaryPlacement,
    DynamicsSchedule,
    PartitionScenario,
    TimeVaryingDelayModel,
)
from .scenarios import Scenario, ScenarioResult, ScenarioSimulation, get_scenario
from .streaming import (
    StreamingBatchResult,
    StreamingBatchSimulation,
    StreamingScenarioResult,
    StreamingScenarioSimulation,
)
from .topology import (
    DelayModel,
    MiningPowerProfile,
    PeerGraphTopology,
    resolve_delay_model,
)

__all__ = ["ENGINE_VERSION", "ExperimentRunner"]

_LOGGER = logging.getLogger(__name__)

#: Bumped whenever the batch engine's draw protocol or statistics change, so
#: stale cache entries are never reused across incompatible versions.  The
#: package version (:mod:`repro._version`) is *also* mixed into every cache
#: key, so even engine changes that forget to bump this constant can never
#: silently reuse a cache written by an older release.
ENGINE_VERSION = 1


def _params_payload(params: ProtocolParameters) -> dict:
    """The primary fields of ``params`` (enough to reconstruct it exactly)."""
    return {
        "p": params.p,
        "n": params.n,
        "delta": params.delta,
        "nu": params.nu,
        "strict_model": params.strict_model,
    }


def _params_from_payload(payload: dict) -> ProtocolParameters:
    return ProtocolParameters(
        p=float(payload["p"]),
        n=int(payload["n"]),
        delta=int(payload["delta"]),
        nu=float(payload["nu"]),
        strict_model=bool(payload.get("strict_model", True)),
    )


def _scenario_from_payload(payload: dict) -> Scenario:
    common = dict(
        name=str(payload["name"]),
        kind=str(payload["kind"]),
        honest_delay=(
            None if payload["honest_delay"] is None else int(payload["honest_delay"])
        ),
        target_depth=int(payload["target_depth"]),
        give_up_deficit=(
            None
            if payload["give_up_deficit"] is None
            else int(payload["give_up_deficit"])
        ),
    )
    if "partition_start" in payload:
        cut_fraction = payload.get("cut_fraction")
        return PartitionScenario(
            partition_start=int(payload["partition_start"]),
            partition_duration=int(payload["partition_duration"]),
            cut_fraction=(
                None if cut_fraction is None else float(cut_fraction)
            ),
            **common,
        )
    return Scenario(**common)


def _batch_result_digest(result: BatchResult) -> str:
    """Manifest digest of a batch result's persisted arrays."""
    return digest_arrays(
        convergence_opportunities=result.convergence_opportunities,
        honest_blocks=result.honest_blocks,
        adversary_blocks=result.adversary_blocks,
        worst_deficits=result.worst_deficits,
    )


def _scenario_result_digest(result: ScenarioResult) -> str:
    """Manifest digest of a scenario result's persisted per-trial arrays."""
    return digest_arrays(
        **{
            name: getattr(result, name)
            for name in ExperimentRunner._SCENARIO_ARRAYS
        }
    )


def _stream_result_digest(result) -> str:
    """Manifest digest of a streamed result's full statistical state.

    Streamed results are summary-only, so the digest covers the complete
    accumulator payload rather than per-trial arrays — two runs digest
    equal exactly when every tallied statistic is bit-identical.
    """
    blob = json.dumps(result.payload(), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _rare_result_digest(result: RareEventResult) -> str:
    """Manifest digest of a rare-event estimate's headline numbers."""
    blob = json.dumps(
        {
            "probability": result.probability,
            "ci_low": result.ci_low,
            "ci_high": result.ci_high,
            "relative_error": result.relative_error,
            "effective_sample_size": result.effective_sample_size,
            "hits": result.hits,
            "pilot_iterations": result.pilot_iterations,
            "tilt": None if result.tilt is None else result.tilt.payload(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class _WorkerOutcome:
    """One grid point's result plus worker-side accounting, pool-shipped.

    ``telemetry`` carries the worker's captured spans / metrics snapshot /
    buffered manifest records (``None`` when the parent requested no
    capture); the scalar counters always travel so the parent's
    ``cache_hits`` / ``cache_misses`` / ``version_skips`` attributes stay
    correct even with observability off.
    """

    result: object
    cache_hits: int
    cache_misses: int
    version_skips: int
    duration_s: float
    telemetry: Optional[WorkerTelemetry]


def _worker_runner(capture, base_seed, draw_mode, cache_dir) -> "ExperimentRunner":
    """A worker-process runner wired into the telemetry capture context."""
    return ExperimentRunner(
        base_seed=base_seed,
        cache_dir=cache_dir,
        processes=None,
        draw_mode=draw_mode,
        run_log=capture.run_log,
        progress=(),
    )


def _worker_outcome(runner, result, started, capture) -> _WorkerOutcome:
    return _WorkerOutcome(
        result=result,
        cache_hits=runner.cache_hits,
        cache_misses=runner.cache_misses,
        version_skips=runner.version_skips,
        duration_s=time.perf_counter() - started,
        telemetry=capture.telemetry(),
    )


def _run_point_task(args: tuple) -> tuple:
    """Top-level worker so grid points can be shipped to a process pool.

    Every worker task has the shape ``(index, capture_flags, *payload)``
    and returns ``(index, _WorkerOutcome)``: the index lets the parent
    reorder ``imap_unordered`` completions deterministically, and the
    capture flags (computed by the *parent* from its own observability
    state) scope a tracer / metrics registry / buffering run log around the
    point so spans, counters and manifest records survive the pool
    boundary instead of dying with the worker.
    """
    index, flags, payload, trials, rounds, base_seed, draw_mode, cache_dir = args
    started = time.perf_counter()
    with capture_worker_telemetry(**flags) as capture:
        runner = _worker_runner(capture, base_seed, draw_mode, cache_dir)
        result = runner.run_point(_params_from_payload(payload), trials, rounds)
    return index, _worker_outcome(runner, result, started, capture)


def _run_scenario_point_task(args: tuple) -> tuple:
    """Top-level worker for scenario grid points (process-pool friendly)."""
    (
        index,
        flags,
        payload,
        scenario_payload,
        trials,
        rounds,
        base_seed,
        draw_mode,
        cache_dir,
    ) = args
    started = time.perf_counter()
    with capture_worker_telemetry(**flags) as capture:
        runner = _worker_runner(capture, base_seed, draw_mode, cache_dir)
        result = runner.run_scenario_point(
            _params_from_payload(payload),
            _scenario_from_payload(scenario_payload),
            trials,
            rounds,
        )
    return index, _worker_outcome(runner, result, started, capture)


def _run_rare_event_point_task(args: tuple) -> tuple:
    """Top-level worker for rare-event grid points.

    The estimator spec travels as the flat payload dict
    :meth:`ExperimentRunner._rare_event_spec` builds; an explicit tilt is
    reconstructed from its payload, so the task tuple stays picklable.
    """
    index, flags, payload, spec, trials, rounds, base_seed, draw_mode, cache_dir = args
    started = time.perf_counter()
    with capture_worker_telemetry(**flags) as capture:
        runner = _worker_runner(capture, base_seed, draw_mode, cache_dir)
        tilt_payload = spec["tilt"]
        result = runner.run_rare_event_point(
            _params_from_payload(payload),
            trials,
            rounds,
            spec["depth"],
            method=spec["method"],
            tilt=(
                None if tilt_payload is None else ExponentialTilt(**tilt_payload)
            ),
            pilot_trials=spec["pilot_trials"],
            elite_fraction=spec["elite_fraction"],
            max_iterations=spec["max_iterations"],
            smoothing=spec["smoothing"],
        )
    return index, _worker_outcome(runner, result, started, capture)


def _run_streaming_point_task(args: tuple) -> tuple:
    """Top-level worker for streamed grid points (process-pool friendly).

    Chunk-invariant per-block seeding makes the shard's streamed summary
    bit-identical to the serial path's, whatever ``chunk_cells`` either
    side uses — the worker only needs the point payload, the optional
    scenario payload and the depth list.
    """
    (
        index,
        flags,
        payload,
        scenario_payload,
        depths,
        chunk_cells,
        trials,
        rounds,
        base_seed,
        draw_mode,
        cache_dir,
    ) = args
    started = time.perf_counter()
    with capture_worker_telemetry(**flags) as capture:
        runner = _worker_runner(capture, base_seed, draw_mode, cache_dir)
        result = runner.run_streaming_point(
            _params_from_payload(payload),
            trials,
            rounds,
            depths=tuple(depths),
            scenario=(
                None
                if scenario_payload is None
                else _scenario_from_payload(scenario_payload)
            ),
            chunk_cells=chunk_cells,
        )
    return index, _worker_outcome(runner, result, started, capture)


class ExperimentRunner:
    """Seeded, cached, optionally parallel batch experiments.

    Parameters
    ----------
    base_seed:
        Root of all randomness: combined with each point's cache key to
        derive that point's :class:`~numpy.random.SeedSequence`.
    cache_dir:
        Directory for on-disk result caching; ``None`` disables caching.
    processes:
        Number of worker processes for :meth:`run_grid`; ``None`` or ``1``
        runs serially in-process.
    draw_mode:
        Forwarded to :class:`~repro.simulation.batch.BatchSimulation`.
    run_log:
        Where to append one JSONL run-manifest record per ``run_*`` point
        call: a path, an open :class:`~repro.observability.RunLog`, or
        ``None`` to consult the ``REPRO_RUN_LOG`` environment variable
        (unset means no logging).  The conventional location is
        ``<cache_dir>/run_log.jsonl`` next to the npz cache.
    progress:
        Grid-progress configuration, resolved by
        :func:`~repro.observability.resolve_progress_sinks`: ``None``
        consults ``REPRO_PROGRESS`` (unset means no reporting, the
        default), ``"stderr"``/``"-"`` selects a status line, any other
        string a JSONL path, and a sink object (or list of sinks) passes
        through.  Grids emit one event per completed point.
    """

    def __init__(
        self,
        base_seed: int = 0,
        cache_dir: Optional[str] = None,
        processes: Optional[int] = None,
        draw_mode: str = "binomial",
        run_log: Union[None, str, os.PathLike, RunLog] = None,
        progress=None,
    ):
        if draw_mode not in DRAW_MODES:
            raise SimulationError(
                f"draw_mode must be one of {DRAW_MODES}, got {draw_mode!r}"
            )
        if processes is not None and processes < 1:
            raise SimulationError(f"processes must be >= 1, got {processes!r}")
        self.base_seed = int(base_seed)
        self.cache_dir = cache_dir
        self.processes = processes
        self.draw_mode = draw_mode
        self.run_log = resolve_run_log(run_log)
        self.progress_sinks = resolve_progress_sinks(progress)
        self.cache_hits = 0
        self.cache_misses = 0
        # Warm cache entries skipped because they were written by a different
        # package release (counted by _cached_run via the sidecar index).
        self.version_skips = 0
        # One scratch workspace shared across every point this runner
        # executes in-process: repeated (trials, rounds) grid points reuse
        # the engines' hot-kernel buffers instead of re-allocating them.
        # (Process-pool workers each build their own runner and workspace;
        # results never alias workspace memory, so sharing is safe.)
        self.workspace = Workspace()

    # ------------------------------------------------------------------
    # Keys and seeds
    # ------------------------------------------------------------------
    def _point_payload(
        self,
        params: ProtocolParameters,
        trials: int,
        rounds: int,
        scenario: Optional[Union[str, Scenario]] = None,
        delay_model: Optional[DelayModel] = None,
        power: Optional[MiningPowerProfile] = None,
        placement: Optional[AdversaryPlacement] = None,
        rare_event: Optional[dict] = None,
        streaming: Optional[dict] = None,
    ) -> dict:
        """The version-free description of one experiment point.

        ``streaming`` marks the point as a streamed run (its own draw
        protocol, hence its own cache slot and seed stream) and carries
        only statistics-affecting knobs — ``chunk_cells`` is deliberately
        excluded because results are bit-identical across chunk sizes.
        """
        payload = {
            "engine_version": ENGINE_VERSION,
            "params": _params_payload(params),
            "trials": int(trials),
            "rounds": int(rounds),
            "draw_mode": self.draw_mode,
            "base_seed": self.base_seed,
        }
        if scenario is not None:
            payload["scenario"] = get_scenario(scenario).payload()
        if delay_model is not None:
            payload["delay_model"] = delay_model.payload()
        if power is not None:
            payload["power"] = power.payload()
        if placement is not None:
            payload["placement"] = placement.payload()
        if rare_event is not None:
            payload["rare_event"] = rare_event
        if streaming is not None:
            payload["streaming"] = streaming
        return payload

    @staticmethod
    def _digest(payload: dict) -> str:
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _point_identity_key(
        self,
        params: ProtocolParameters,
        trials: int,
        rounds: int,
        scenario: Optional[Union[str, Scenario]] = None,
        delay_model: Optional[DelayModel] = None,
        power: Optional[MiningPowerProfile] = None,
        placement: Optional[AdversaryPlacement] = None,
        rare_event: Optional[dict] = None,
        streaming: Optional[dict] = None,
    ) -> tuple:
        """``(identity, key)`` digests for one point.

        The *identity* hashes the version-free point payload — the digest
        that seeds the point and names its sidecar index file — while the
        *key* additionally folds in the package version and any non-default
        backend / dtype-policy, exactly as :meth:`cache_key` documents.
        """
        payload = self._point_payload(
            params,
            trials,
            rounds,
            scenario,
            delay_model,
            power,
            placement,
            rare_event,
            streaming,
        )
        identity = self._digest(payload)
        versioned = dict(payload)
        versioned["package_version"] = _version.__version__
        # Non-default backends and dtype policies get their own cache slots
        # (compact float statistics differ within a documented tolerance;
        # accelerator kernels need not be bit-reproducible across devices).
        # Default-configuration keys are unchanged, so warm caches and the
        # base_seed=2026 goldens survive this layer.  Seeds deliberately
        # ignore both: the host-seeded RNG bridge makes one seed produce one
        # bit stream on every backend (see seed_sequence_for).
        backend = get_backend()
        if backend.name != DEFAULT_BACKEND:
            versioned["backend"] = backend.payload()
        policy = get_dtype_policy()
        if policy.name != WIDE_POLICY.name:
            versioned["dtype_policy"] = policy.payload()
        return identity, self._digest(versioned)

    def _seed_from_identity(self, identity: str) -> np.random.SeedSequence:
        """Base seed plus entropy words sliced from the identity digest."""
        words = [
            int(identity[index : index + 8], 16) for index in range(0, 32, 8)
        ]
        return np.random.SeedSequence([self.base_seed, *words])

    def cache_key(
        self,
        params: ProtocolParameters,
        trials: int,
        rounds: int,
        scenario: Optional[Union[str, Scenario]] = None,
        delay_model: Union[None, str, DelayModel] = None,
        power: Optional[MiningPowerProfile] = None,
        placement: Optional[AdversaryPlacement] = None,
        rare_event: Optional[dict] = None,
    ) -> str:
        """Hex digest identifying one (version, engine, params, shape, seed, …) result.

        Passive fixed-delta batch runs omit the scenario / delay-model /
        power / placement / rare-event fields entirely.  Dynamics runs fold
        the whole schedule payload (event list, and the topology digest when
        one is wired) into the key, so two runs differing only in when a
        partition heals never collide; rare-event runs fold the full
        estimator spec (depth, method, explicit tilt, pilot knobs), so two
        estimates differing only in pilot configuration never collide.  The
        package version is always included, so a cache written by an older
        release (whose engine semantics may have since changed) is never
        silently reused — an upgrade simply recomputes and re-stores under
        the new key.
        """
        _, key = self._point_identity_key(
            params,
            trials,
            rounds,
            scenario=scenario,
            delay_model=resolve_delay_model(delay_model),
            power=power,
            placement=placement,
            rare_event=rare_event,
        )
        return key

    def seed_sequence_for(
        self,
        params: ProtocolParameters,
        trials: int,
        rounds: int,
        scenario: Optional[Union[str, Scenario]] = None,
        delay_model: Union[None, str, DelayModel] = None,
        power: Optional[MiningPowerProfile] = None,
        placement: Optional[AdversaryPlacement] = None,
        rare_event: Optional[dict] = None,
    ) -> np.random.SeedSequence:
        """The point's seed sequence: base seed plus point-digest entropy words.

        Deriving the entropy from the point description makes the stream a
        pure function of (engine version, parameters, shape, draw mode,
        base seed, scenario, delay model, power, placement, rare-event
        spec) — independent of grid composition and execution order.  The
        *package* version is deliberately excluded: upgrading the library
        invalidates caches but must not silently reroll every seeded
        experiment.
        """
        identity, _ = self._point_identity_key(
            params,
            trials,
            rounds,
            scenario=scenario,
            delay_model=resolve_delay_model(delay_model),
            power=power,
            placement=placement,
            rare_event=rare_event,
        )
        return self._seed_from_identity(identity)

    # ------------------------------------------------------------------
    # Cache persistence
    # ------------------------------------------------------------------
    def _cache_path(self, key: str, prefix: str = "batch") -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, f"{prefix}_{key}.npz")

    def _cache_index_path(self, prefix: str, identity: str) -> Optional[str]:
        """The sidecar file recording the last key written for one identity.

        The identity digest is version-free (the same digest that seeds the
        point), so the sidecar survives package upgrades — which is exactly
        what lets a miss be classified as *stale by version* rather than
        merely cold.
        """
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, f"{prefix}_{identity}.latest.json")

    def _stale_cache_version(self, prefix: str, identity: str) -> Optional[str]:
        """The writer version of a warm-but-unusable cache slot, if any.

        Returns the package version recorded by the last writer of this
        point's sidecar index when it differs from the running version —
        i.e. the miss about to be recomputed had a warm entry that a release
        bump invalidated.  Missing or unreadable sidecars mean a plain cold
        miss (``None``).
        """
        path = self._cache_index_path(prefix, identity)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as source:
                index = json.load(source)
        except (OSError, json.JSONDecodeError):
            return None
        version = index.get("package_version")
        if version is not None and str(version) != _version.__version__:
            return str(version)
        return None

    def _write_cache_index(self, prefix: str, identity: str, key: str) -> None:
        path = self._cache_index_path(prefix, identity)
        if path is None:
            return
        os.makedirs(os.path.dirname(path), exist_ok=True)
        temporary = f"{path}.tmp.{os.getpid()}"
        with open(temporary, "w", encoding="utf-8") as sink:
            json.dump(
                {"key": key, "package_version": _version.__version__},
                sink,
                sort_keys=True,
            )
        os.replace(temporary, path)

    def _cached_run(
        self,
        method: str,
        prefix: str,
        identity: str,
        key: str,
        load,
        store,
        compute,
        result_digest,
        params: ProtocolParameters,
        trials: int,
        rounds: int,
        extra: Optional[dict] = None,
    ):
        """The shared load-or-compute-and-store path of every ``run_*`` point.

        One place owns the cache consultation, the hit/miss/version-skip
        accounting (instance counters *and* ``runner.<method>.*`` metrics),
        the ``runner.<method>`` tracer span, the sidecar index update and
        the optional run-manifest append — so every engine the runner fronts
        reports identically.
        """
        start = time.perf_counter()
        path = self._cache_path(key, prefix)
        stale_version = None
        with _TRACE.span(
            f"runner.{method}",
            prefix=prefix,
            trials=int(trials),
            rounds=int(rounds),
        ) as span:
            cached = load(path) if path is not None else None
            if cached is not None:
                cache_state = "hit"
                self.cache_hits += 1
                _METRICS.increment(f"runner.{method}.cache_hits")
                result = cached
            else:
                cache_state = "disabled" if path is None else "miss"
                self.cache_misses += 1
                _METRICS.increment(f"runner.{method}.cache_misses")
                if path is not None:
                    stale_version = self._stale_cache_version(prefix, identity)
                    if stale_version is not None:
                        self.version_skips += 1
                        _METRICS.increment(f"runner.{method}.version_skips")
                        _LOGGER.info(
                            "cache entry for %s point %s was written by repro "
                            "%s (current %s); recomputing",
                            prefix,
                            identity[:12],
                            stale_version,
                            _version.__version__,
                        )
                result = compute()
                if path is not None:
                    store(path, result)
                    self._write_cache_index(prefix, identity, key)
            span.set(cache=cache_state)
            # The manifest write happens inside the span so the span tree
            # accounts for the full runner call, provenance trail included.
            if self.run_log is not None:
                # Resource accounting rides the run boundary: peak RSS and
                # the workspace high-water mark, sampled once per point and
                # stamped into the manifest's free-form extra payload.
                stamped_extra = dict(extra or {})
                stamped_extra["resources"] = sample_resource_gauges(
                    self.workspace
                )
                self.run_log.append(
                    manifest_record(
                        method=method,
                        cache_prefix=prefix,
                        cache_key=key,
                        cache=cache_state,
                        duration_s=time.perf_counter() - start,
                        params=_params_payload(params),
                        trials=int(trials),
                        rounds=int(rounds),
                        base_seed=self.base_seed,
                        result_digest=result_digest(result),
                        stale_version=stale_version,
                        extra=stamped_extra,
                    )
                )
            elif _METRICS.enabled:
                sample_resource_gauges(self.workspace)
        return result

    def _run_grid(
        self,
        method: str,
        points: Sequence[ProtocolParameters],
        run_one,
        tasks: Optional[list] = None,
        worker=None,
    ) -> list:
        """The shared spine of every ``run_*_grid`` method.

        ``run_one(point)`` is the serial path; ``tasks`` (one picklable
        tuple per point) and ``worker`` (a top-level ``(index, flags,
        *task) -> (index, _WorkerOutcome)`` function) enable the
        process-pool path — grids whose inputs cannot be rebuilt from a
        flat payload (topology, dynamics) simply omit them and always run
        serially.  Both paths run under one ``runner.<method>`` span and
        feed the configured progress sinks; the sharded path additionally
        ships each worker's telemetry back and merges it (spans grafted
        under the grid span shard-stamped, counters folded into the
        ambient registry, manifests appended to the parent run log), so a
        sharded grid reports like a sequential one.
        """
        points = list(points)
        if not points:
            return []
        sharded = (
            worker is not None
            and self.processes is not None
            and self.processes > 1
            and len(points) > 1
        )
        sinks = self.progress_sinks
        progress = (
            GridProgress(f"runner.{method}", len(points), sinks)
            if sinks
            else None
        )
        with _TRACE.span(
            f"runner.{method}", points=len(points), sharded=sharded
        ) as span:
            if not sharded:
                if progress is None:
                    return [run_one(point) for point in points]
                results = []
                for point in points:
                    hits, misses = self.cache_hits, self.cache_misses
                    started = time.perf_counter()
                    results.append(run_one(point))
                    progress.point_done(
                        time.perf_counter() - started,
                        cache_hits=self.cache_hits - hits,
                        cache_misses=self.cache_misses - misses,
                    )
                return results
            # Capture flags come from the *parent's* observability state, so
            # a worker never guesses from its inherited environment.
            flags = {
                "spans": _TRACE.enabled,
                "metrics": _METRICS.enabled,
                "manifests": self.run_log is not None,
            }
            jobs = [(index, flags, *task) for index, task in enumerate(tasks)]
            outcomes: List[Optional[_WorkerOutcome]] = [None] * len(jobs)
            import multiprocessing

            with multiprocessing.Pool(min(self.processes, len(jobs))) as pool:
                for index, outcome in pool.imap_unordered(worker, jobs):
                    outcomes[index] = outcome
                    if progress is not None:
                        progress.point_done(
                            outcome.duration_s,
                            cache_hits=outcome.cache_hits,
                            cache_misses=outcome.cache_misses,
                            shard=index,
                        )
            # Fold in shard order (not completion order) so counters,
            # grafted spans and manifest lines land deterministically.
            results = []
            for index, outcome in enumerate(outcomes):
                self.cache_hits += outcome.cache_hits
                self.cache_misses += outcome.cache_misses
                self.version_skips += outcome.version_skips
                merge_worker_telemetry(
                    outcome.telemetry,
                    shard=index,
                    span=span,
                    run_log=self.run_log,
                    logger=_LOGGER,
                )
                results.append(outcome.result)
            return results

    def _load_cached(self, path: str) -> Optional[BatchResult]:
        if not os.path.exists(path):
            return None
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            return BatchResult(
                params=_params_from_payload(meta["params"]),
                trials=int(meta["trials"]),
                rounds=int(meta["rounds"]),
                draw_mode=str(meta["draw_mode"]),
                convergence_opportunities=archive["convergence_opportunities"],
                honest_blocks=archive["honest_blocks"],
                adversary_blocks=archive["adversary_blocks"],
                worst_deficits=archive["worst_deficits"],
                delay_model=str(meta.get("delay_model", "fixed_delta")),
            )

    def _store_cached(self, path: str, result: BatchResult) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        meta = json.dumps(
            {
                "engine_version": ENGINE_VERSION,
                "package_version": _version.__version__,
                "params": _params_payload(result.params),
                "trials": result.trials,
                "rounds": result.rounds,
                "draw_mode": result.draw_mode,
                "base_seed": self.base_seed,
                "delay_model": result.delay_model,
            },
            sort_keys=True,
        )
        temporary = f"{path}.tmp.{os.getpid()}"
        np.savez(
            temporary,
            meta=np.asarray(meta),
            convergence_opportunities=result.convergence_opportunities,
            honest_blocks=result.honest_blocks,
            adversary_blocks=result.adversary_blocks,
            worst_deficits=result.worst_deficits,
        )
        os.replace(f"{temporary}.npz", path)

    #: Per-trial aggregate arrays persisted for a scenario result.
    _SCENARIO_ARRAYS = (
        "releases",
        "abandons",
        "deepest_forks",
        "orphaned_honest",
        "withheld_final",
        "final_public_heights",
        "honest_blocks",
        "adversary_blocks",
        "convergence_opportunities",
        "worst_deficits",
        "merge_depths",
    )

    def _load_cached_scenario(self, path: str) -> Optional[ScenarioResult]:
        if not os.path.exists(path):
            return None
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            scenario = _scenario_from_payload(meta["scenario"])
            delay_model = meta.get("delay_model")
            return ScenarioResult(
                params=_params_from_payload(meta["params"]),
                scenario=scenario,
                trials=int(meta["trials"]),
                rounds=int(meta["rounds"]),
                draw_mode=str(meta["draw_mode"]),
                honest_delay=int(meta["honest_delay"]),
                delay_model=None if delay_model is None else str(delay_model),
                release_delay=int(meta.get("release_delay", 0)),
                **{name: archive[name] for name in self._SCENARIO_ARRAYS},
            )

    def _store_cached_scenario(self, path: str, result: ScenarioResult) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        meta = json.dumps(
            {
                "engine_version": ENGINE_VERSION,
                "package_version": _version.__version__,
                "params": _params_payload(result.params),
                "scenario": result.scenario.payload(),
                "trials": result.trials,
                "rounds": result.rounds,
                "draw_mode": result.draw_mode,
                "honest_delay": result.honest_delay,
                "base_seed": self.base_seed,
                "delay_model": result.delay_model,
                "release_delay": result.release_delay,
            },
            sort_keys=True,
        )
        temporary = f"{path}.tmp.{os.getpid()}"
        np.savez(
            temporary,
            meta=np.asarray(meta),
            **{name: getattr(result, name) for name in self._SCENARIO_ARRAYS},
        )
        os.replace(f"{temporary}.npz", path)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_point(
        self, params: ProtocolParameters, trials: int, rounds: int
    ) -> BatchResult:
        """Run (or fetch from cache) one parameter point."""
        identity, key = self._point_identity_key(params, trials, rounds)

        def compute() -> BatchResult:
            rng = np.random.default_rng(self._seed_from_identity(identity))
            simulation = BatchSimulation(
                params, rng=rng, draw_mode=self.draw_mode, workspace=self.workspace
            )
            return simulation.run(trials, rounds)

        return self._cached_run(
            "run_point",
            "batch",
            identity,
            key,
            self._load_cached,
            self._store_cached,
            compute,
            _batch_result_digest,
            params,
            trials,
            rounds,
            extra={"draw_mode": self.draw_mode},
        )

    def run_grid(
        self,
        points: Sequence[ProtocolParameters],
        trials: int,
        rounds: int,
    ) -> List[BatchResult]:
        """Run every parameter point, sharded across processes when configured."""
        points = list(points)
        return self._run_grid(
            "run_grid",
            points,
            lambda point: self.run_point(point, trials, rounds),
            tasks=[
                (
                    _params_payload(point),
                    trials,
                    rounds,
                    self.base_seed,
                    self.draw_mode,
                    self.cache_dir,
                )
                for point in points
            ],
            worker=_run_point_task,
        )

    # ------------------------------------------------------------------
    # Adversarial scenario execution
    # ------------------------------------------------------------------
    def run_scenario_point(
        self,
        params: ProtocolParameters,
        scenario: Union[str, Scenario],
        trials: int,
        rounds: int,
    ) -> ScenarioResult:
        """Run (or fetch from cache) one (parameter point, scenario) pair."""
        scenario = get_scenario(scenario)
        identity, key = self._point_identity_key(
            params, trials, rounds, scenario=scenario
        )

        def compute() -> ScenarioResult:
            rng = np.random.default_rng(self._seed_from_identity(identity))
            simulation = ScenarioSimulation(
                params,
                scenario,
                rng=rng,
                draw_mode=self.draw_mode,
                workspace=self.workspace,
            )
            return simulation.run(trials, rounds)

        return self._cached_run(
            "run_scenario_point",
            "scenario",
            identity,
            key,
            self._load_cached_scenario,
            self._store_cached_scenario,
            compute,
            _scenario_result_digest,
            params,
            trials,
            rounds,
            extra={
                "draw_mode": self.draw_mode,
                "scenario": scenario.payload(),
            },
        )

    def run_scenario_grid(
        self,
        points: Sequence[ProtocolParameters],
        scenario: Union[str, Scenario],
        trials: int,
        rounds: int,
    ) -> List[ScenarioResult]:
        """Run one scenario at every parameter point, sharded when configured."""
        scenario = get_scenario(scenario)
        points = list(points)
        return self._run_grid(
            "run_scenario_grid",
            points,
            lambda point: self.run_scenario_point(point, scenario, trials, rounds),
            tasks=[
                (
                    _params_payload(point),
                    scenario.payload(),
                    trials,
                    rounds,
                    self.base_seed,
                    self.draw_mode,
                    self.cache_dir,
                )
                for point in points
            ],
            worker=_run_scenario_point_task,
        )

    # ------------------------------------------------------------------
    # Topology-aware execution
    # ------------------------------------------------------------------
    def run_topology_point(
        self,
        params: ProtocolParameters,
        trials: int,
        rounds: int,
        delay_model: Union[str, DelayModel],
        power: Optional[MiningPowerProfile] = None,
    ) -> BatchResult:
        """Run (or fetch from cache) one parameter point under a delay model.

        The cache key folds in the delay-model payload (for ``peer_graph``
        that includes the topology's generator spec or matrix digest) and,
        when given, the mining-power profile digest — so two runs differing
        only in graph wiring or power skew never collide.
        """
        model = resolve_delay_model(delay_model)
        if model is None:
            raise SimulationError(
                "run_topology_point requires a delay model; use run_point for "
                "the fixed-delta default"
            )
        identity, key = self._point_identity_key(
            params, trials, rounds, delay_model=model, power=power
        )

        def compute() -> BatchResult:
            rng = np.random.default_rng(self._seed_from_identity(identity))
            simulation = BatchSimulation(
                params,
                rng=rng,
                draw_mode=self.draw_mode,
                delay_model=model,
                power=power,
                workspace=self.workspace,
            )
            return simulation.run(trials, rounds)

        return self._cached_run(
            "run_topology_point",
            "topology",
            identity,
            key,
            self._load_cached,
            self._store_cached,
            compute,
            _batch_result_digest,
            params,
            trials,
            rounds,
            extra={
                "draw_mode": self.draw_mode,
                "delay_model": model.payload(),
                "power": None if power is None else power.payload(),
            },
        )

    def run_topology_grid(
        self,
        points: Sequence[ProtocolParameters],
        trials: int,
        rounds: int,
        delay_model: Union[str, DelayModel],
        power: Optional[MiningPowerProfile] = None,
    ) -> List[BatchResult]:
        """Run every parameter point under one delay model.

        Topology grids run serially in-process: delay models (in particular
        peer graphs with cached distance matrices) are not
        pickle-reconstructible from a flat payload, and the batch engine
        already vectorizes all trials within a point.
        """
        return self._run_grid(
            "run_topology_grid",
            points,
            lambda point: self.run_topology_point(
                point, trials, rounds, delay_model, power=power
            ),
        )

    # ------------------------------------------------------------------
    # Network-dynamics execution
    # ------------------------------------------------------------------
    def run_dynamics_point(
        self,
        params: ProtocolParameters,
        trials: int,
        rounds: int,
        schedule: Optional[DynamicsSchedule] = None,
        topology: Optional[PeerGraphTopology] = None,
        scenario: Union[None, str, Scenario] = None,
        power: Optional[MiningPowerProfile] = None,
        placement: Optional[AdversaryPlacement] = None,
    ) -> Union[BatchResult, ScenarioResult]:
        """Run (or fetch from cache) one point under a dynamics schedule.

        ``schedule`` (default: the scenario's own cut when it is a
        :class:`~repro.simulation.dynamics.PartitionScenario`, otherwise
        empty) and the optional ``topology`` are wrapped into one
        :class:`~repro.simulation.dynamics.TimeVaryingDelayModel`.  Without
        a ``scenario`` the passive batch engine measures consistency
        margins under the schedule; with one, the vectorized scenario
        engine runs the attack, optionally with a placement-aware
        adversary.  Cache keys fold in the full schedule payload, the
        topology digest and the placement, so every distinct dynamics
        experiment gets its own seed stream and cache slot.
        """
        if schedule is None:
            if isinstance(scenario, str):
                scenario = get_scenario(scenario)
            if isinstance(scenario, PartitionScenario):
                schedule = scenario.dynamics_schedule()
            else:
                schedule = DynamicsSchedule()
        model = TimeVaryingDelayModel(schedule, topology=topology)
        if scenario is None:
            if placement is not None:
                raise SimulationError(
                    "adversary placement needs an adversarial scenario; the "
                    "passive batch engine has no releases to delay"
                )
            identity, key = self._point_identity_key(
                params, trials, rounds, delay_model=model, power=power
            )

            def compute_passive() -> BatchResult:
                rng = np.random.default_rng(self._seed_from_identity(identity))
                simulation = BatchSimulation(
                    params,
                    rng=rng,
                    draw_mode=self.draw_mode,
                    delay_model=model,
                    power=power,
                    workspace=self.workspace,
                )
                return simulation.run(trials, rounds)

            return self._cached_run(
                "run_dynamics_point",
                "dynamics",
                identity,
                key,
                self._load_cached,
                self._store_cached,
                compute_passive,
                _batch_result_digest,
                params,
                trials,
                rounds,
                extra={
                    "draw_mode": self.draw_mode,
                    "delay_model": model.payload(),
                    "power": None if power is None else power.payload(),
                },
            )
        scenario = get_scenario(scenario)
        cut_fraction = getattr(scenario, "cut_fraction", None)
        if cut_fraction is not None:
            # A partial cut is priced by the two-component scan, which owns
            # its delivery semantics: no topology, and no schedule beyond
            # the scenario's own cut.  The cache key still folds in the
            # schedule (via the model) plus the scenario payload, whose
            # cut_fraction separates it from the full-eclipse variant.
            if topology is not None:
                raise SimulationError(
                    "partial-cut scenarios (cut_fraction set) split honest "
                    "power probabilistically, not by graph position; "
                    "topology must be None"
                )
            if schedule.payload() != scenario.dynamics_schedule().payload():
                raise SimulationError(
                    "a partial-cut scenario runs its own cut schedule; pass "
                    "schedule=None or the scenario's dynamics_schedule()"
                )
        identity, key = self._point_identity_key(
            params,
            trials,
            rounds,
            scenario=scenario,
            delay_model=model,
            power=power,
            placement=placement,
        )

        def compute_scenario() -> ScenarioResult:
            rng = np.random.default_rng(self._seed_from_identity(identity))
            simulation = ScenarioSimulation(
                params,
                scenario,
                rng=rng,
                draw_mode=self.draw_mode,
                # The two-component scan replaces the delay model for partial
                # cuts; ScenarioSimulation rejects the combination explicitly.
                delay_model=None if cut_fraction is not None else model,
                power=power,
                placement=placement,
                workspace=self.workspace,
            )
            return simulation.run(trials, rounds)

        return self._cached_run(
            "run_dynamics_point",
            "dynamics_scenario",
            identity,
            key,
            self._load_cached_scenario,
            self._store_cached_scenario,
            compute_scenario,
            _scenario_result_digest,
            params,
            trials,
            rounds,
            extra={
                "draw_mode": self.draw_mode,
                "delay_model": model.payload(),
                "scenario": scenario.payload(),
                "power": None if power is None else power.payload(),
                "placement": None if placement is None else placement.payload(),
            },
        )

    def run_dynamics_grid(
        self,
        points: Sequence[ProtocolParameters],
        trials: int,
        rounds: int,
        schedule: Optional[DynamicsSchedule] = None,
        topology: Optional[PeerGraphTopology] = None,
        scenario: Union[None, str, Scenario] = None,
        power: Optional[MiningPowerProfile] = None,
        placement: Optional[AdversaryPlacement] = None,
    ) -> List[Union[BatchResult, ScenarioResult]]:
        """Run every parameter point under one dynamics schedule.

        Serial in-process, like the topology grids: compiled schedules and
        peer graphs are not pickle-reconstructible from a flat payload, and
        both engines already vectorize all trials within a point.
        """
        return self._run_grid(
            "run_dynamics_grid",
            points,
            lambda point: self.run_dynamics_point(
                point,
                trials,
                rounds,
                schedule,
                topology=topology,
                scenario=scenario,
                power=power,
                placement=placement,
            ),
        )

    # ------------------------------------------------------------------
    # Rare-event execution
    # ------------------------------------------------------------------
    @staticmethod
    def _rare_event_spec(
        depth: int,
        method: str,
        tilt: Optional[ExponentialTilt],
        pilot_trials: int,
        elite_fraction: float,
        max_iterations: int,
        smoothing: float,
    ) -> dict:
        """The estimator-aware half of a rare-event cache key / seed payload.

        Every knob that changes either the sampling measure or the amount of
        entropy the estimator consumes is part of the spec, so two estimates
        that could differ numerically can never share a cache slot or a
        seed stream.  The pilot knobs are folded in even with an explicit
        tilt (when they are inert) — a constant key for a given call
        signature is worth more than a marginally smaller payload.
        """
        if method not in RARE_EVENT_METHODS:
            raise SimulationError(
                f"method must be one of {RARE_EVENT_METHODS}, got {method!r}"
            )
        return {
            "depth": int(depth),
            "method": method,
            "tilt": None if tilt is None else tilt.payload(),
            "pilot_trials": int(pilot_trials),
            "elite_fraction": float(elite_fraction),
            "max_iterations": int(max_iterations),
            "smoothing": float(smoothing),
        }

    def _load_cached_rare(self, path: str) -> Optional[RareEventResult]:
        if not os.path.exists(path):
            return None
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            tilt_payload = meta.get("tilt")
            levels = archive["level_probabilities"]
            return RareEventResult(
                params=_params_from_payload(meta["params"]),
                depth=int(meta["depth"]),
                method=str(meta["method"]),
                trials=int(meta["trials"]),
                rounds=int(meta["rounds"]),
                probability=float(meta["probability"]),
                ci_low=float(meta["ci_low"]),
                ci_high=float(meta["ci_high"]),
                relative_error=float(meta["relative_error"]),
                effective_sample_size=float(meta["effective_sample_size"]),
                hits=int(meta["hits"]),
                tilt=(
                    None
                    if tilt_payload is None
                    else ExponentialTilt(**tilt_payload)
                ),
                pilot_iterations=int(meta["pilot_iterations"]),
                level_probabilities=None if levels.size == 0 else levels,
            )

    def _store_cached_rare(self, path: str, result: RareEventResult) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        meta = json.dumps(
            {
                "engine_version": ENGINE_VERSION,
                "package_version": _version.__version__,
                "params": _params_payload(result.params),
                "depth": result.depth,
                "method": result.method,
                "trials": result.trials,
                "rounds": result.rounds,
                "probability": result.probability,
                "ci_low": result.ci_low,
                "ci_high": result.ci_high,
                "relative_error": result.relative_error,
                "effective_sample_size": result.effective_sample_size,
                "hits": result.hits,
                "tilt": None if result.tilt is None else result.tilt.payload(),
                "pilot_iterations": result.pilot_iterations,
                "base_seed": self.base_seed,
            },
            sort_keys=True,
        )
        levels = (
            np.zeros(0)
            if result.level_probabilities is None
            else np.asarray(result.level_probabilities)
        )
        temporary = f"{path}.tmp.{os.getpid()}"
        np.savez(temporary, meta=np.asarray(meta), level_probabilities=levels)
        os.replace(f"{temporary}.npz", path)

    def run_rare_event_point(
        self,
        params: ProtocolParameters,
        trials: int,
        rounds: int,
        depth: int,
        method: str = "tilted",
        tilt: Optional[ExponentialTilt] = None,
        pilot_trials: int = 512,
        elite_fraction: float = 0.1,
        max_iterations: int = 10,
        smoothing: float = 0.7,
    ) -> RareEventResult:
        """Run (or fetch from cache) one rare-event estimate.

        ``method`` selects the estimator (``"plain"``, ``"tilted"`` or
        ``"splitting"``); for ``"tilted"`` an explicit ``tilt`` skips the
        cross-entropy pilot stage.  The cache key and seed stream fold in
        the full estimator spec, so e.g. the same point estimated at two
        depths, or with and without a pinned tilt, never collide.  Only the
        binomial draw mode is supported: the exponential-tilt likelihood
        ratios are exact for the Binomial per-round law, not for the
        auditing Bernoulli path or heterogeneous power profiles.
        """
        if self.draw_mode != "binomial":
            raise SimulationError(
                "rare-event estimation supports only the binomial draw mode; "
                f"this runner uses {self.draw_mode!r}"
            )
        spec = self._rare_event_spec(
            depth,
            method,
            tilt,
            pilot_trials,
            elite_fraction,
            max_iterations,
            smoothing,
        )
        identity, key = self._point_identity_key(
            params, trials, rounds, rare_event=spec
        )

        def compute() -> RareEventResult:
            rng = np.random.default_rng(self._seed_from_identity(identity))
            estimator = RareEventSimulation(
                params, depth, rng=rng, workspace=self.workspace
            )
            if method == "plain":
                return estimator.run_plain(trials, rounds)
            if method == "splitting":
                return estimator.run_splitting(trials, rounds)
            return estimator.run_tilted(
                trials,
                rounds,
                tilt=tilt,
                pilot_trials=pilot_trials,
                elite_fraction=elite_fraction,
                max_iterations=max_iterations,
                smoothing=smoothing,
            )

        return self._cached_run(
            "run_rare_event_point",
            "rare",
            identity,
            key,
            self._load_cached_rare,
            self._store_cached_rare,
            compute,
            _rare_result_digest,
            params,
            trials,
            rounds,
            extra={"draw_mode": self.draw_mode, "rare_event": spec},
        )

    def run_rare_event_grid(
        self,
        points: Sequence[ProtocolParameters],
        trials: int,
        rounds: int,
        depth: int,
        method: str = "tilted",
        tilt: Optional[ExponentialTilt] = None,
        pilot_trials: int = 512,
        elite_fraction: float = 0.1,
        max_iterations: int = 10,
        smoothing: float = 0.7,
    ) -> List[RareEventResult]:
        """Run one rare-event estimate at every parameter point.

        Sharded across processes when the runner is configured for it — the
        full estimator spec is a flat picklable payload (an explicit tilt
        travels as ``tilt.payload()``), so rare-event grids fan out exactly
        like batch grids.  Per-point seeds make every estimate independent
        of grid composition either way.
        """
        spec = self._rare_event_spec(
            depth,
            method,
            tilt,
            pilot_trials,
            elite_fraction,
            max_iterations,
            smoothing,
        )
        points = list(points)
        return self._run_grid(
            "run_rare_event_grid",
            points,
            lambda point: self.run_rare_event_point(
                point,
                trials,
                rounds,
                depth,
                method=method,
                tilt=tilt,
                pilot_trials=pilot_trials,
                elite_fraction=elite_fraction,
                max_iterations=max_iterations,
                smoothing=smoothing,
            ),
            tasks=[
                (
                    _params_payload(point),
                    spec,
                    trials,
                    rounds,
                    self.base_seed,
                    self.draw_mode,
                    self.cache_dir,
                )
                for point in points
            ],
            worker=_run_rare_event_point_task,
        )

    # ------------------------------------------------------------------
    # Streaming execution
    # ------------------------------------------------------------------
    @staticmethod
    def _streaming_spec(
        depths: Iterable[int], scenario: Optional[Scenario]
    ) -> dict:
        """The statistics-affecting half of a streamed cache key / seed payload.

        Only knobs that change the *result* belong here: the tracked
        violation depths (each depth adds an exact hit tally).
        ``chunk_cells`` is execution policy — streamed summaries are
        bit-identical across chunk sizes — so it never enters the key, and
        a sweep can retune its memory budget without invalidating caches.
        """
        depths = tuple(sorted({int(depth) for depth in depths}))
        if scenario is not None and depths:
            raise SimulationError(
                "violation depths are a batch statistic; scenario streaming "
                f"does not track them (got depths={depths!r})"
            )
        return {"depths": list(depths)}

    def _load_cached_stream(self, path: str):
        if not os.path.exists(path):
            return None
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            params = _params_from_payload(meta["params"])
            scenario_payload = meta.get("scenario")
            if scenario_payload is not None:
                return StreamingScenarioResult.from_payload(
                    meta["state"],
                    params,
                    _scenario_from_payload(scenario_payload),
                )
            return StreamingBatchResult.from_payload(meta["state"], params)

    def _store_cached_stream(self, path: str, result) -> None:
        """Persist a streamed result: pure JSON state, no per-trial arrays."""
        os.makedirs(os.path.dirname(path), exist_ok=True)
        meta_payload = {
            "engine_version": ENGINE_VERSION,
            "package_version": _version.__version__,
            "params": _params_payload(result.params),
            "base_seed": self.base_seed,
            "state": result.payload(),
        }
        if isinstance(result, StreamingScenarioResult):
            meta_payload["scenario"] = result.scenario.payload()
        meta = json.dumps(meta_payload, sort_keys=True)
        temporary = f"{path}.tmp.{os.getpid()}"
        np.savez(temporary, meta=np.asarray(meta))
        os.replace(f"{temporary}.npz", path)

    def run_streaming_point(
        self,
        params: ProtocolParameters,
        trials: int,
        rounds: int,
        depths: Iterable[int] = (),
        scenario: Union[None, str, Scenario] = None,
        chunk_cells: Optional[int] = None,
    ):
        """Run (or fetch from cache) one streamed, O(chunk)-memory point.

        Executes the point through :class:`StreamingBatchSimulation` (or
        :class:`StreamingScenarioSimulation` when ``scenario`` is given) —
        the dense kernels driven in bounded chunks with online accumulation,
        so ``trials`` can reach ``1e8+`` without materialising per-trial
        arrays.  Streamed points use their own per-block draw protocol, so
        they occupy their own cache slots and seed streams — a streamed
        point is a new seeded experiment, not a re-execution of the dense
        one.  ``depths`` requests exact violation hit counts (batch runs
        only); ``chunk_cells`` is pure execution policy and deliberately
        absent from the cache key — summaries are bit-identical across
        chunk sizes.
        """
        scenario = None if scenario is None else get_scenario(scenario)
        spec = self._streaming_spec(depths, scenario)
        identity, key = self._point_identity_key(
            params, trials, rounds, scenario=scenario, streaming=spec
        )
        prefix = "stream" if scenario is None else "stream_scenario"

        def compute():
            seed = self._seed_from_identity(identity)
            if scenario is None:
                simulation = StreamingBatchSimulation(
                    params,
                    seed=seed,
                    draw_mode=self.draw_mode,
                    workspace=self.workspace,
                    chunk_cells=chunk_cells,
                )
                return simulation.run(
                    trials,
                    rounds,
                    depths=spec["depths"],
                    progress=self.progress_sinks,
                )
            simulation = StreamingScenarioSimulation(
                params,
                scenario,
                seed=seed,
                draw_mode=self.draw_mode,
                workspace=self.workspace,
                chunk_cells=chunk_cells,
            )
            return simulation.run(trials, rounds, progress=self.progress_sinks)

        extra = {"draw_mode": self.draw_mode, "streaming": spec}
        if scenario is not None:
            extra["scenario"] = scenario.payload()
        return self._cached_run(
            "run_streaming_point",
            prefix,
            identity,
            key,
            self._load_cached_stream,
            self._store_cached_stream,
            compute,
            _stream_result_digest,
            params,
            trials,
            rounds,
            extra=extra,
        )

    def run_streaming_grid(
        self,
        points: Sequence[ProtocolParameters],
        trials: int,
        rounds: int,
        depths: Iterable[int] = (),
        scenario: Union[None, str, Scenario] = None,
        chunk_cells: Optional[int] = None,
    ) -> list:
        """Run one streamed point per parameter, sharded when configured.

        Per-point seeds plus chunk-invariant per-block seeding make every
        streamed summary bit-identical whether the grid runs serially or
        across a process pool, and whatever chunk size each side uses.
        """
        scenario = None if scenario is None else get_scenario(scenario)
        spec = self._streaming_spec(depths, scenario)
        points = list(points)
        return self._run_grid(
            "run_streaming_grid",
            points,
            lambda point: self.run_streaming_point(
                point,
                trials,
                rounds,
                depths=spec["depths"],
                scenario=scenario,
                chunk_cells=chunk_cells,
            ),
            tasks=[
                (
                    _params_payload(point),
                    None if scenario is None else scenario.payload(),
                    spec["depths"],
                    chunk_cells,
                    trials,
                    rounds,
                    self.base_seed,
                    self.draw_mode,
                    self.cache_dir,
                )
                for point in points
            ],
            worker=_run_streaming_point_task,
        )
